/**
 * @file
 * Observability-layer tests: the trace recorder, kernel-work counters,
 * split latency histograms, the OpenMetrics exporter — and the two
 * memory-estimator regressions that motivated this layer (a budget gate
 * is only as good as its closed forms).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "align/nw.hh"
#include "common/status.hh"
#include "engine/budget.hh"
#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/metrics.hh"
#include "engine/trace.hh"
#include "sequence/generator.hh"

namespace gmx::engine {
namespace {

using Outcome = Engine::AlignOutcome;

// ---------------------------------------------------------------------------
// Budget-estimator regressions.
// ---------------------------------------------------------------------------

TEST(BudgetEstimators, HirschbergBytesCoverTextRowsWhenPatternIsShort)
{
    // Regression: the estimator used to size the DP rows over
    // min(n, m) + 1, but hirschberg.cc's lastRow always allocates
    // row(m + 1) over the TEXT. A short-pattern/long-text pair was
    // under-estimated by orders of magnitude, so the budget gate admitted
    // requests whose real footprint blew the cap.
    const size_t n = 10;      // pattern
    const size_t m = 100'000; // text
    const size_t rows = 2 * (m + 1) * sizeof(i64); // what the kernel allocates
    EXPECT_GE(hirschbergBytes(n, m), rows);

    // And it may not balloon either: rows + O(n + m) op buffer.
    EXPECT_LE(hirschbergBytes(n, m), rows + 2 * (n + m));

    // Symmetric shape must still be covered.
    EXPECT_GE(hirschbergBytes(m, m), 2 * (m + 1) * sizeof(i64));
}

TEST(BudgetEstimators, CascadeAutoFilterKKeepsTheSkewTerm)
{
    // The closed form is max(8, longer/16, skew + 4); all three regimes.
    EXPECT_EQ(cascadeAutoFilterK(100, 100), 8);       // small, balanced
    EXPECT_EQ(cascadeAutoFilterK(3200, 3200), 200);   // longer/16 wins
    EXPECT_EQ(cascadeAutoFilterK(100, 2000), 1904);   // skew + 4 wins
    EXPECT_EQ(cascadeAutoFilterK(2000, 100), 1904);   // symmetric in skew
}

TEST(BudgetEstimators, DistanceOnlyBytesSizeFilterFromTheSharedClosedForm)
{
    // Regression: the estimator used max(8, longer/16) for the Bitap
    // filter budget and dropped the skew + 4 term the cascade actually
    // routes with, so skewed pairs under-reserved the filter's (k+1)
    // state vectors.
    const size_t n = 256, m = 8192;
    const unsigned tile = 32;
    const size_t k =
        static_cast<size_t>(cascadeAutoFilterK(n, m)) + 1; // 7940 + 1
    const size_t filter = 2 * k * ((n + 63) / 64) * sizeof(u64);
    EXPECT_GE(distanceOnlyBytes(n, m, tile), filter);

    // The pre-fix closed form dropped the skew term: k would have been
    // max(8, 8192/16) + 1 = 513, an order of magnitude under what the
    // cascade actually allocates for this pair.
    const size_t k_noskew = std::max<size_t>(8, m / 16) + 1;
    const size_t filter_noskew = 2 * k_noskew * ((n + 63) / 64) * sizeof(u64);
    EXPECT_GT(filter, 10 * filter_noskew);
    EXPECT_GT(distanceOnlyBytes(n, m, tile), filter_noskew);
}

// ---------------------------------------------------------------------------
// LatencyHistogram robustness.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ClampsNonFiniteAndNegativeDurations)
{
    LatencyHistogram h;
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(-1.0);
    h.record(std::numeric_limits<double>::infinity());
    h.record(1e9); // ~31 years, far past the last bucket
    h.record(0.001); // 1000 us, a sane sample

    const auto buckets = h.buckets();
    u64 total = 0;
    for (u64 b : buckets)
        total += b;
    EXPECT_EQ(total, 5u) << "every sample lands in exactly one bucket";

    // NaN and negative clamp to bucket 0; inf and oversized to the last.
    EXPECT_EQ(buckets.front(), 2u);
    EXPECT_EQ(buckets.back(), 2u);

    // The running sum stays finite (clamped samples contribute their
    // clamped value).
    EXPECT_TRUE(std::isfinite(h.sumUs()));
    EXPECT_GE(h.sumUs(), 1000.0);
}

TEST(LatencyHistogram, BucketsArePowersOfTwoMicroseconds)
{
    LatencyHistogram h;
    h.record(0.5e-6);  // 0.5 us -> bucket 0: [0, 1us)
    h.record(1.5e-6);  // 1.5 us -> bucket 1: [1, 2us)
    h.record(3e-6);    // 3 us   -> bucket 2: [2, 4us)
    h.record(1000e-6); // 1000us -> bucket 10: [512, 1024us)
    const auto b = h.buckets();
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 1u);
    EXPECT_EQ(b[10], 1u);
}

// ---------------------------------------------------------------------------
// NW kernel counters (the one aligner that predated KernelCounts).
// ---------------------------------------------------------------------------

TEST(KernelCounts, NwDistanceAndAlignChargeCells)
{
    seq::Generator gen(7);
    const auto pair = gen.pair(100, 0.05);
    const u64 expect =
        static_cast<u64>(pair.pattern.size()) * pair.text.size();

    gmx::KernelCounts c;
    gmx::KernelContext ctx(gmx::CancelToken{}, &c);
    align::nwDistance(pair.pattern, pair.text, ctx);
    EXPECT_EQ(c.cells, expect);
    EXPECT_GT(c.alu, 0u);

    gmx::KernelCounts ca;
    gmx::KernelContext ctx_a(gmx::CancelToken{}, &ca);
    const auto res = align::nwAlign(pair.pattern, pair.text, ctx_a);
    EXPECT_EQ(ca.cells, expect);
    EXPECT_TRUE(res.has_cigar);
    EXPECT_GT(ca.stores, ca.cells) << "traceback stores the direction matrix";
}

// ---------------------------------------------------------------------------
// TraceRecorder unit behaviour.
// ---------------------------------------------------------------------------

TEST(TraceRecorder, DeterministicSampling)
{
    TraceRecorder every(16, 1);
    EXPECT_TRUE(every.sampled(1));
    EXPECT_TRUE(every.sampled(2));

    TraceRecorder third(16, 3);
    EXPECT_FALSE(third.sampled(1));
    EXPECT_FALSE(third.sampled(2));
    EXPECT_TRUE(third.sampled(3));
    EXPECT_TRUE(third.sampled(6));

    TraceRecorder off(0, 1);
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.sampled(1));
    off.record(1, TraceEvent::Enqueue, 0); // must be a harmless no-op
    EXPECT_EQ(off.recorded(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsTheNewestSpansAndCountsDrops)
{
    TraceRecorder ring(4, 1);
    for (u64 i = 1; i <= 10; ++i)
        ring.record(i, TraceEvent::Enqueue, static_cast<i64>(i));
    EXPECT_EQ(ring.recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);

    const auto spans = ring.spans();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest surviving first: ids 7..10.
    for (size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].id, 7 + i);
}

TEST(TraceRecorder, SpansRoundTripTierCodeAndDetail)
{
    TraceRecorder ring(8, 1);
    ring.record(5, TraceEvent::Enqueue, 100);
    ring.recordTier(5, TraceEvent::TierAttempt, 200, Tier::Banded,
                    StatusCode::Ok, 4096);
    ring.recordTier(5, TraceEvent::Complete, 300, Tier::Banded,
                    StatusCode::DeadlineExceeded, 4096);

    const auto spans = ring.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].event, TraceEvent::Enqueue);
    EXPECT_FALSE(spans[0].has_tier);
    EXPECT_EQ(spans[1].event, TraceEvent::TierAttempt);
    ASSERT_TRUE(spans[1].has_tier);
    EXPECT_EQ(spans[1].tier, Tier::Banded);
    EXPECT_EQ(spans[1].detail, 4096u);
    EXPECT_EQ(spans[2].code, StatusCode::DeadlineExceeded);
    EXPECT_EQ(spans[2].t_us, 300);

    const std::string json = ring.toJson();
    EXPECT_NE(json.find("\"recorded\":3"), std::string::npos);
    EXPECT_NE(json.find("\"tier\":\"banded\""), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"DEADLINE_EXCEEDED\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: engine traffic leaves ordered spans and reconciled counters.
// ---------------------------------------------------------------------------

/** Index of a lifecycle event in pipeline order. */
int
eventRank(TraceEvent e)
{
    return static_cast<int>(e);
}

TEST(EngineObservability, SpansArriveInPipelineOrderPerRequest)
{
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.trace_capacity = 4096;
    cfg.trace_sample_every = 1;
    Engine engine(cfg);

    seq::Generator gen(31);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.push_back(gen.pair(200, 0.05));
    const auto results = engine.alignAll(pairs, true);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok()) << r.status().toString();

    std::map<u64, std::vector<TraceSpan>> by_id;
    for (const auto &s : engine.trace().spans())
        by_id[s.id].push_back(s);
    ASSERT_EQ(by_id.size(), pairs.size());

    for (const auto &[id, spans] : by_id) {
        // Every traced request walks the full pipeline: enqueue, dispatch,
        // admission, at least one tier attempt, completion.
        ASSERT_GE(spans.size(), 5u) << "request " << id;
        EXPECT_EQ(spans.front().event, TraceEvent::Enqueue);
        EXPECT_EQ(spans.back().event, TraceEvent::Complete);
        EXPECT_EQ(spans.back().code, StatusCode::Ok);
        for (size_t i = 1; i < spans.size(); ++i) {
            EXPECT_LE(eventRank(spans[i - 1].event), eventRank(spans[i].event))
                << "request " << id << " span " << i;
            EXPECT_LE(spans[i - 1].t_us, spans[i].t_us)
                << "request " << id << " span " << i
                << ": timestamps must be monotonic";
        }
        // Tier attempts carry the cells they computed.
        for (const auto &s : spans) {
            if (s.event == TraceEvent::TierAttempt) {
                EXPECT_TRUE(s.has_tier);
                EXPECT_GT(s.detail, 0u) << "attempt with zero cells";
            }
        }
    }
}

TEST(EngineObservability, SamplingTracesEveryNthRequestOnly)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.trace_sample_every = 4;
    Engine engine(cfg);

    seq::Generator gen(37);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 16; ++i)
        pairs.push_back(gen.pair(100, 0.02));
    engine.alignAll(pairs, false);

    for (const auto &s : engine.trace().spans())
        EXPECT_EQ(s.id % 4, 0u) << "unsampled request leaked into the ring";
    EXPECT_GT(engine.trace().recorded(), 0u);
}

TEST(EngineObservability, CountersReconcileAndTiersAccountTheWork)
{
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);

    seq::Generator gen(41);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 20; ++i)
        pairs.push_back(gen.pair(300, i % 2 ? 0.02 : 0.25));
    const auto results = engine.alignAll(pairs, true);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok());

    const auto snap = engine.metrics();
    EXPECT_EQ(snap.submitted, pairs.size());
    EXPECT_EQ(snap.completed + snap.failed + snap.shed, snap.submitted);
    EXPECT_EQ(snap.completed, pairs.size());

    u64 hits = 0, attempts = 0, cells = 0, qwait = 0, service = 0;
    double work_us = 0;
    for (const auto &t : snap.tiers) {
        attempts += t.attempts;
        cells += t.cells;
        work_us += t.work_us;
        qwait += t.queue_wait.count;
        service += t.service.count;
    }
    for (u64 h : snap.tier_hits)
        hits += h;

    // Every cascade-routed completion lands in exactly one tier, and its
    // split timings land with it.
    EXPECT_EQ(hits, snap.completed);
    EXPECT_EQ(qwait, snap.completed);
    EXPECT_EQ(service, snap.completed);
    EXPECT_EQ(snap.latency_count, snap.completed);

    // Escalations charge their failed attempts: attempts >= completions,
    // and real kernel work was accounted.
    EXPECT_GE(attempts, snap.completed);
    EXPECT_GT(cells, 0u);
    EXPECT_GT(work_us, 0.0);
    for (const auto &t : snap.tiers) {
        // The phase split partitions the attempt wall-clock (timer
        // overhead and rounding make it slightly smaller, never larger),
        // and GCUPS is defined over the pure-kernel phase only.
        EXPECT_LE(t.setup_us + t.kernel_us, t.work_us * 1.01 + 1.0);
        if (t.attempts > 0) {
            EXPECT_GT(t.kernel_us, 0.0);
        }
        if (t.kernel_us > 0) {
            EXPECT_NEAR(t.gcups, t.cells / t.kernel_us / 1e3,
                        1e-9 + t.gcups * 1e-9);
        }
    }
    EXPECT_GT(snap.arena_peak_bytes, 0u);
}

TEST(EngineObservability, ShedRequestsAreCountedExactlyOnceAndTraced)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.backpressure = Backpressure::ShedOldest;
    cfg.microbatch_max = 1;
    Engine engine(cfg);

    // A gate the aligner blocks on, so the queue genuinely backs up.
    auto release = std::make_shared<std::promise<void>>();
    std::shared_future<void> gate = release->get_future().share();
    align::PairAligner blocker = [gate](const seq::SequencePair &) {
        gate.wait();
        align::AlignResult r;
        r.distance = 0;
        return r;
    };

    seq::Generator gen(43);
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(engine.submit(gen.pair(64, 0.0), blocker));
    release->set_value();
    engine.drain();

    u64 overloaded = 0, ok = 0;
    for (auto &f : futures) {
        auto res = f.get();
        if (res.ok())
            ++ok;
        else if (res.code() == StatusCode::Overloaded)
            ++overloaded;
    }
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.submitted, 8u);
    EXPECT_EQ(snap.shed, overloaded);
    EXPECT_EQ(snap.completed, ok);
    // The reconciliation invariant: everything accepted is accounted for
    // exactly once.
    EXPECT_EQ(snap.completed + snap.failed + snap.shed, snap.submitted);

    // Every shed victim still gets a Complete span with the Overloaded
    // code — its timeline ends, it does not just vanish from the trace.
    u64 shed_spans = 0;
    for (const auto &s : engine.trace().spans())
        if (s.event == TraceEvent::Complete &&
            s.code == StatusCode::Overloaded)
            ++shed_spans;
    EXPECT_EQ(shed_spans, snap.shed);
}

TEST(EngineObservability, SlowRequestThresholdLogsOneWarnLine)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.slow_request_threshold = std::chrono::nanoseconds(1); // everything
    Engine engine(cfg);

    seq::Generator gen(47);
    testing::internal::CaptureStderr();
    auto f = engine.submit(gen.pair(100, 0.05), false);
    ASSERT_TRUE(f.get().ok());
    engine.drain();
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("slow request"), std::string::npos) << err;
    EXPECT_NE(err.find("queue_wait="), std::string::npos);
    EXPECT_NE(err.find("service="), std::string::npos);
    EXPECT_NE(err.find("tier="), std::string::npos);
}

// ---------------------------------------------------------------------------
// OpenMetrics exporter.
// ---------------------------------------------------------------------------

/** Extract the value of a single-sample series like "name 12". */
double
seriesValue(const std::string &text, const std::string &name)
{
    const auto pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << "missing series " << name;
    if (pos == std::string::npos)
        return -1;
    return std::stod(text.substr(pos + name.size() + 2));
}

TEST(Exporter, RendersValidOpenMetricsText)
{
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(53);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 10; ++i)
        pairs.push_back(gen.pair(150, 0.05));
    engine.alignAll(pairs, true);

    const auto snap = engine.metrics();
    const std::string text = renderOpenMetrics(snap);

    // Structural requirements of the OpenMetrics text format.
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    EXPECT_NE(text.find("# TYPE gmx_requests_submitted counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE gmx_request_latency_seconds histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"}"), std::string::npos);
    EXPECT_NE(text.find("gmx_tier_gcups{tier=\"banded\"}"),
              std::string::npos);
    EXPECT_NE(text.find("gmx_queue_wait_seconds_bucket{tier=\""),
              std::string::npos);

    // Values round-trip from the snapshot.
    EXPECT_EQ(seriesValue(text, "gmx_requests_submitted_total"),
              static_cast<double>(snap.submitted));
    EXPECT_EQ(seriesValue(text, "gmx_requests_completed_total"),
              static_cast<double>(snap.completed));
    EXPECT_EQ(seriesValue(text, "gmx_pool_workers"),
              static_cast<double>(snap.pool_workers));

    // Histogram buckets are cumulative: the +Inf bucket of the request
    // latency histogram equals its _count.
    const auto inf = text.find(
        "gmx_request_latency_seconds_bucket{le=\"+Inf\"} ");
    ASSERT_NE(inf, std::string::npos);
    const u64 inf_count = std::stoull(
        text.substr(inf + std::string("gmx_request_latency_seconds_bucket"
                                      "{le=\"+Inf\"} ")
                              .size()));
    EXPECT_EQ(inf_count, snap.latency_count);

    // Every line is either a comment or "name[{labels}] value".
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    }
}

TEST(Exporter, LatencySumIsExportedExactlyNotReconstructed)
{
    // Regression: the exporter used to reconstruct `_sum` as
    // mean_us * count. The division-then-multiplication round-trip is
    // lossy, and these three samples are chosen so the loss crosses a
    // %.9g rendering boundary — the reconstruction prints a different
    // string than the true sum, so this test fails against the old code.
    EngineMetrics m;
    const double samples_s[] = {5.0000005e-6, 3e-7, 1e-4};
    double expect_us = 0.0;
    for (double s : samples_s) {
        m.latency.record(s);
        expect_us += s * 1e6; // the same fp operations record() performs
    }

    // The histogram and the snapshot both carry the exact running sum.
    EXPECT_EQ(m.latency.sumUs(), expect_us);
    const auto snap = m.snapshot(/*pool_workers=*/1, 0, 0);
    EXPECT_EQ(snap.latency_sum_us, expect_us);
    EXPECT_EQ(snap.latency_count, 3u);

    // The old reconstruction provably differs from the true sum, both as
    // doubles and — the part a scraper sees — at the exporter's %.9g.
    const double recon_us =
        snap.latency_mean_us * static_cast<double>(snap.latency_count);
    EXPECT_NE(recon_us, expect_us);
    const auto fmt9 = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        return std::string(buf);
    };
    ASSERT_NE(fmt9(expect_us * 1e-6), fmt9(recon_us * 1e-6))
        << "samples no longer discriminate sum from mean*count";

    const std::string text = renderOpenMetrics(snap);
    EXPECT_NE(text.find("gmx_request_latency_seconds_sum " +
                        fmt9(expect_us * 1e-6) + "\n"),
              std::string::npos)
        << text;
    EXPECT_EQ(text.find("gmx_request_latency_seconds_sum " +
                        fmt9(recon_us * 1e-6) + "\n"),
              std::string::npos)
        << "exporter still reconstructs _sum from the mean";
}

TEST(Exporter, EmptyEngineStillRendersCompleteFamilies)
{
    EngineConfig cfg;
    cfg.workers = 1;
    Engine engine(cfg);
    const std::string text = renderOpenMetrics(engine.metrics());
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    EXPECT_EQ(seriesValue(text, "gmx_requests_submitted_total"), 0.0);
    // All-zero histograms still emit their +Inf bucket, sum and count.
    EXPECT_NE(text.find("gmx_request_latency_seconds_bucket{le=\"+Inf\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("gmx_request_latency_seconds_count 0"),
              std::string::npos);
}

} // namespace
} // namespace gmx::engine
