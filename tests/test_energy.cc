/**
 * @file
 * Tests for the energy model: component accounting and the qualitative
 * ordering the paper's efficiency argument rests on.
 */

#include <gtest/gtest.h>

#include "sequence/dataset.hh"
#include "sim/energy.hh"
#include "sim/workloads.hh"

namespace gmx::sim {
namespace {

TEST(Energy, ComponentsAddUp)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.counts.alu = 1000;
    p.counts.loads = 100;
    p.counts.gmx_ac = 10;
    p.structures.push_back({"big", 4.0 * 1024 * 1024, 1, false});
    const EnergyResult e = energyPerAlignment(p, mem);
    EXPECT_GT(e.core_nj, 0);
    EXPECT_GT(e.gmx_nj, 0);
    EXPECT_GT(e.memory_nj, 0);
    EXPECT_DOUBLE_EQ(e.total_nj, e.core_nj + e.gmx_nj + e.memory_nj);
}

TEST(Energy, ScalesLinearlyWithWork)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p1, p2;
    p1.counts.alu = 1000;
    p2.counts.alu = 2000;
    EXPECT_NEAR(energyPerAlignment(p2, mem).total_nj,
                2 * energyPerAlignment(p1, mem).total_nj, 1e-9);
}

TEST(Energy, GmxUsesLessEnergyThanBaselines)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const auto ds = seq::makeDataset("e", 1000, 0.15, 2, 41);
    WorkloadOptions opts;
    opts.samples = 1;
    const double gmx =
        energyPerAlignment(profileForDataset(Algo::FullGmx, ds, opts), mem)
            .total_nj;
    for (Algo a : {Algo::FullDp, Algo::FullBpm, Algo::BandedEdlib}) {
        const double base =
            energyPerAlignment(profileForDataset(a, ds, opts), mem)
                .total_nj;
        EXPECT_GT(base, 3 * gmx) << algoName(a);
    }
}

TEST(Energy, DramDominatedKernel)
{
    // A kernel that only streams memory: DRAM energy dominates.
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.counts.alu = 10;
    p.structures.push_back({"huge", 64.0 * 1024 * 1024, 1, false});
    const EnergyResult e = energyPerAlignment(p, mem);
    EXPECT_GT(e.memory_nj, 100 * e.core_nj);
}

} // namespace
} // namespace gmx::sim
