/**
 * @file
 * Tests for Windowed(GMX).
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "gmx/windowed.hh"
#include "test_util.hh"

namespace gmx::core {
namespace {

class WindowedGmxGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(WindowedGmxGridTest, ProducesValidNearOptimalAlignments)
{
    const auto pair = test::makePair(GetParam());
    const auto res = windowedGmxAlign(pair.pattern, pair.text, 32, {96, 32});
    const auto check = align::verifyResult(pair.pattern, pair.text, res);
    ASSERT_TRUE(check.ok) << check.error;
    const i64 exact = align::nwDistance(pair.pattern, pair.text);
    EXPECT_GE(res.distance, exact);
    EXPECT_LE(res.distance, exact + std::max<i64>(8, exact / 2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowedGmxGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(WindowedGmx, MatchesWindowedDpExactly)
{
    // With identical window geometry and an exact window aligner on both
    // sides, Windowed(GMX) and Windowed(DP) commit identical distances as
    // long as in-window tracebacks pick paths of the same cost (any valid
    // optimal path gives the same cost; the committed prefixes may differ,
    // so compare the final distances only).
    seq::Generator gen(401);
    for (int rep = 0; rep < 5; ++rep) {
        const auto pair = gen.pair(600, 0.08);
        const auto gmx_res =
            windowedGmxAlign(pair.pattern, pair.text, 32, {96, 32});
        const auto dp_res =
            align::windowedDpAlign(pair.pattern, pair.text, {96, 32});
        EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, gmx_res).ok);
        // Both are corridor heuristics with the same geometry; their
        // distances should be very close (paths may differ at ties).
        EXPECT_NEAR(static_cast<double>(gmx_res.distance),
                    static_cast<double>(dp_res.distance),
                    static_cast<double>(dp_res.distance) * 0.1 + 3.0);
    }
}

TEST(WindowedGmx, PaperGeometryOnLongNoisyReads)
{
    // W = 3T, O = T with T = 32 on the 15%-error long-read workload.
    seq::Generator gen(403);
    const auto pair = gen.pair(2000, 0.15);
    const auto res = windowedGmxAlign(pair.pattern, pair.text, 32, {96, 32});
    ASSERT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok);
    const i64 exact = align::nwDistance(pair.pattern, pair.text);
    EXPECT_GE(res.distance, exact);
    // 15% error strains the corridor; it must stay within a reasonable
    // factor of optimal on mutated (structurally similar) pairs.
    EXPECT_LE(res.distance, exact * 2);
}

TEST(WindowedGmx, SingleWindowIsExact)
{
    seq::Generator gen(407);
    const auto pair = gen.pair(90, 0.1);
    const auto res = windowedGmxAlign(pair.pattern, pair.text, 32, {96, 32});
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
}

TEST(WindowedGmx, CountsAccumulateGmxInstructions)
{
    seq::Generator gen(409);
    const auto pair = gen.pair(500, 0.05);
    align::KernelCounts counts;
    KernelContext ctx(CancelToken{}, &counts);
    const auto res =
        windowedGmxAlign(pair.pattern, pair.text, 32, {96, 32}, ctx);
    ASSERT_TRUE(res.found());
    EXPECT_GT(counts.gmx_ac, 0u);
    EXPECT_GT(counts.gmx_tb, 0u);
    EXPECT_GT(counts.cells, 0u);
}

} // namespace
} // namespace gmx::core
