/**
 * @file
 * Tests for the GMX ISA unit: CSR semantics, instruction behaviour,
 * gmx.tb encoding, and the Fig. 6 worked example.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "common/logging.hh"
#include "gmx/isa.hh"
#include "sequence/generator.hh"

namespace gmx::core {
namespace {

using align::Op;

TEST(GmxUnit, RejectsBadTileSize)
{
    EXPECT_THROW(GmxUnit(1), FatalError);
    EXPECT_THROW(GmxUnit(65), FatalError);
    EXPECT_NO_THROW(GmxUnit(2));
    EXPECT_NO_THROW(GmxUnit(64));
}

TEST(GmxUnit, GmxVHMatchTileKernel)
{
    seq::Generator gen(31);
    GmxUnit unit(32);
    for (int rep = 0; rep < 20; ++rep) {
        const auto p = gen.random(32);
        const auto t = gen.random(32);
        unit.csrwPattern(p.codes().data(), 32);
        unit.csrwText(t.codes().data(), 32);
        DeltaVec dv_in, dh_in;
        for (unsigned r = 0; r < 32; ++r) {
            dv_in.set(r, static_cast<int>(gen.prng().below(3)) - 1);
            dh_in.set(r, static_cast<int>(gen.prng().below(3)) - 1);
        }
        TileInput in;
        in.pattern = p.codes().data();
        in.tp = 32;
        in.text = t.codes().data();
        in.tt = 32;
        in.dv_in = dv_in;
        in.dh_in = dh_in;
        const TileOutput expect = tileCompute(in);
        EXPECT_EQ(unit.gmxV(dv_in, dh_in), expect.dv_out);
        EXPECT_EQ(unit.gmxH(dv_in, dh_in), expect.dh_out);
    }
}

TEST(GmxUnit, PackedVariantsMatchUnpacked)
{
    seq::Generator gen(37);
    GmxUnit unit(32);
    const auto p = gen.random(32);
    const auto t = gen.random(32);
    unit.csrwPattern(p.codes().data(), 32);
    unit.csrwText(t.codes().data(), 32);
    DeltaVec dv_in = DeltaVec::ones(32);
    DeltaVec dh_in;
    dh_in.set(3, -1);
    dh_in.set(17, 1);
    const u64 rv = unit.gmxVPacked(packDelta(dv_in, 32), packDelta(dh_in, 32));
    const u64 rh = unit.gmxHPacked(packDelta(dv_in, 32), packDelta(dh_in, 32));
    EXPECT_EQ(unpackDelta(rv, 32), unit.gmxV(dv_in, dh_in));
    EXPECT_EQ(unpackDelta(rh, 32), unit.gmxH(dv_in, dh_in));
}

TEST(GmxUnit, MergedVhMatchesSplitPair)
{
    seq::Generator gen(42);
    GmxUnit unit(32);
    for (int rep = 0; rep < 10; ++rep) {
        const auto p = gen.random(32);
        const auto t = gen.random(32);
        unit.csrwPattern(p.codes().data(), 32);
        unit.csrwText(t.codes().data(), 32);
        DeltaVec dv, dh;
        for (unsigned r = 0; r < 32; ++r) {
            dv.set(r, static_cast<int>(gen.prng().below(3)) - 1);
            dh.set(r, static_cast<int>(gen.prng().below(3)) - 1);
        }
        const TileOutput merged = unit.gmxVH(dv, dh);
        EXPECT_EQ(merged.dv_out, unit.gmxV(dv, dh));
        EXPECT_EQ(merged.dh_out, unit.gmxH(dv, dh));
    }
    EXPECT_EQ(unit.counts().gmx_vh, 10u);
}

TEST(GmxUnit, InstructionCensus)
{
    seq::Generator gen(41);
    GmxUnit unit(16);
    const auto p = gen.random(16);
    const auto t = gen.random(16);
    unit.csrwPattern(p.codes().data(), 16);
    unit.csrwText(t.codes().data(), 16);
    unit.gmxV(DeltaVec::ones(16), DeltaVec::ones(16));
    unit.gmxH(DeltaVec::ones(16), DeltaVec::ones(16));
    unit.csrwPos({TracebackPos::Edge::Bottom, 15});
    unit.gmxTb(DeltaVec::ones(16), DeltaVec::ones(16));
    const auto &c = unit.counts();
    EXPECT_EQ(c.gmx_v, 1u);
    EXPECT_EQ(c.gmx_h, 1u);
    EXPECT_EQ(c.gmx_tb, 1u);
    EXPECT_EQ(c.csr_write, 3u);
    unit.resetCounts();
    EXPECT_EQ(unit.counts().gmx_v, 0u);
}

TEST(GmxUnit, Figure6WorkedExample)
{
    // Pattern "GATT" vs text "GCAT" with one 4x4 tile: distance 2 and a
    // traceback following the CCTB priority (M, D, I, X) yields "MDMIM".
    const seq::Sequence p("GATT"), t("GCAT");
    GmxUnit unit(4);
    unit.csrwPattern(p.codes().data(), 4);
    unit.csrwText(t.codes().data(), 4);
    unit.csrwPos({TracebackPos::Edge::Bottom, 3});
    const TracebackStep step =
        unit.gmxTb(DeltaVec::ones(4), DeltaVec::ones(4));
    // The walk emits ops backwards (from the bottom-right corner).
    std::string backward;
    for (Op op : step.ops)
        backward.push_back(align::opChar(op));
    EXPECT_EQ(backward, "MIMDM");
    EXPECT_EQ(step.next, NextTile::Diag); // left through the tile corner
}

TEST(GmxUnit, TracebackEncodingRoundTrip)
{
    // The gmx_lo/gmx_hi CSRs must encode the same ops the decoded
    // TracebackStep reports, with the next-tile field in the top bits.
    seq::Generator gen(43);
    GmxUnit unit(8);
    const auto p = gen.random(8);
    const auto t = gen.mutate(p, 0.3);
    if (t.size() < 8)
        return;
    unit.csrwPattern(p.codes().data(), 8);
    unit.csrwText(t.codes().data(), 8);
    unit.csrwPos({TracebackPos::Edge::Bottom, 7});
    const TracebackStep step = unit.gmxTb(DeltaVec::ones(8),
                                          DeltaVec::ones(8));
    const u64 lo = unit.csrrLo();
    const u64 hi = unit.csrrHi();
    for (size_t k = 0; k < step.ops.size(); ++k) {
        const u64 code = k < 8 ? (lo >> (2 * k)) & 3
                               : (hi >> (2 * (k - 8))) & 3;
        EXPECT_EQ(code, static_cast<u64>(step.ops[k])) << k;
    }
    EXPECT_EQ((hi >> 14) & 3, static_cast<u64>(step.next));
}

TEST(GmxUnit, TracebackFromRightEdge)
{
    // Entering a tile from the right edge (pos = Right, row r) must start
    // the walk at cell (r, tt-1).
    const seq::Sequence p("AAAA"), t("AAAA");
    GmxUnit unit(4);
    unit.csrwPattern(p.codes().data(), 4);
    unit.csrwText(t.codes().data(), 4);
    unit.csrwPos({TracebackPos::Edge::Right, 1});
    const TracebackStep step =
        unit.gmxTb(DeltaVec::ones(4), DeltaVec::ones(4));
    // All-equal characters: two diagonal matches then exit at the top
    // (rows run out before columns).
    EXPECT_EQ(step.ops.size(), 2u);
    EXPECT_EQ(step.ops[0], Op::Match);
    EXPECT_EQ(step.next, NextTile::Up);
    EXPECT_EQ(step.next_pos.edge, TracebackPos::Edge::Bottom);
    EXPECT_EQ(step.next_pos.index, 1u);
}

TEST(GmxUnit, TracebackLengthBound)
{
    // At most one op per antidiagonal: 2T-1 ops.
    seq::Generator gen(47);
    for (int rep = 0; rep < 30; ++rep) {
        GmxUnit unit(32);
        const auto p = gen.random(32);
        const auto t = gen.random(32);
        unit.csrwPattern(p.codes().data(), 32);
        unit.csrwText(t.codes().data(), 32);
        unit.csrwPos({TracebackPos::Edge::Bottom, 31});
        const TracebackStep step =
            unit.gmxTb(DeltaVec::ones(32), DeltaVec::ones(32));
        EXPECT_LE(step.ops.size(), 63u);
        EXPECT_GE(step.ops.size(), 1u);
    }
}

TEST(GmxUnit, PartialTileOperands)
{
    // Chunks shorter than T model the matrix edge tiles.
    const seq::Sequence p("GAT"), t("GC");
    GmxUnit unit(32);
    unit.csrwPattern(p.codes().data(), 3);
    unit.csrwText(t.codes().data(), 2);
    const DeltaVec dv = unit.gmxV(DeltaVec::ones(3), DeltaVec::ones(2));
    // D[i][2] for i=1..3: with pattern GAT vs text GC: D row values:
    // D[1][2]=1, D[2][2]=1, D[3][2]=2 -> dv = (1-2)=-1, 0, +1.
    EXPECT_EQ(dv.at(0), -1);
    EXPECT_EQ(dv.at(1), 0);
    EXPECT_EQ(dv.at(2), 1);
}

} // namespace
} // namespace gmx::core
