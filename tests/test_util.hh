/**
 * @file
 * Shared helpers for the test suite: deterministic random pairs and a
 * parameter grid for property-style differential tests.
 */

#ifndef GMX_TESTS_TEST_UTIL_HH
#define GMX_TESTS_TEST_UTIL_HH

#include <string>
#include <vector>

#include "sequence/generator.hh"

namespace gmx::test {

/** Length/error grid point for parameterized differential tests. */
struct PairParams
{
    size_t length;
    double error_rate;
    gmx::u64 seed;
};

inline std::string
paramName(const PairParams &p)
{
    return "len" + std::to_string(p.length) + "_err" +
           std::to_string(static_cast<int>(p.error_rate * 100)) + "_seed" +
           std::to_string(p.seed);
}

/** Standard grid used by the differential tests of every aligner. */
inline std::vector<PairParams>
standardGrid()
{
    std::vector<PairParams> grid;
    for (size_t len : {1u, 7u, 33u, 64u, 65u, 100u, 257u, 600u}) {
        for (double err : {0.0, 0.05, 0.2}) {
            grid.push_back({len, err, 1000 + len * 7 +
                                      static_cast<gmx::u64>(err * 100)});
        }
    }
    return grid;
}

/** Deterministic pair for a grid point. */
inline seq::SequencePair
makePair(const PairParams &p)
{
    seq::Generator gen(p.seed);
    return gen.pair(p.length, p.error_rate);
}

} // namespace gmx::test

#endif // GMX_TESTS_TEST_UTIL_HH
