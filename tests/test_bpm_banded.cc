/**
 * @file
 * Tests for Banded(Edlib): block-banded Myers with the k-doubling driver.
 */

#include <gtest/gtest.h>

#include "align/bpm_banded.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

class BandedGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(BandedGridTest, EdlibDistanceMatchesNw)
{
    const auto pair = test::makePair(GetParam());
    EXPECT_EQ(edlibDistance(pair.pattern, pair.text),
              nwDistance(pair.pattern, pair.text));
}

TEST_P(BandedGridTest, EdlibAlignVerifies)
{
    const auto pair = test::makePair(GetParam());
    const auto res = edlibAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    const auto check = verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandedGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(BpmBanded, ExactBlockBoundaryPatterns)
{
    // Pattern lengths straddling the 64-bit block boundary exercise the
    // band envelope's first/last-block clamps; permanent regression
    // corpus for the m=64/128 word-boundary class of bugs.
    seq::Generator gen(52);
    for (size_t n : {63u, 64u, 65u, 127u, 128u, 129u, 191u, 192u, 193u,
                     255u, 256u, 257u}) {
        const auto p = gen.random(n);
        const auto t = gen.mutate(p, 0.1);
        const i64 want = nwDistance(p, t);
        EXPECT_EQ(edlibDistance(p, t), want) << "n=" << n;
        const auto res = bpmBandedAlign(p, t, want + 1);
        ASSERT_TRUE(res.found()) << "n=" << n;
        EXPECT_EQ(res.distance, want) << "n=" << n;
        EXPECT_TRUE(verifyResult(p, t, res).ok) << "n=" << n;
    }
}

TEST(BpmBanded, SufficientKIsExact)
{
    seq::Generator gen(61);
    for (int rep = 0; rep < 8; ++rep) {
        const auto pair = gen.pair(400, 0.1);
        const i64 true_dist = nwDistance(pair.pattern, pair.text);
        const auto res =
            bpmBandedAlign(pair.pattern, pair.text, true_dist + 1);
        ASSERT_TRUE(res.found());
        EXPECT_EQ(res.distance, true_dist);
        EXPECT_TRUE(verifyResult(pair.pattern, pair.text, res).ok);
    }
}

TEST(BpmBanded, ExactAtKEqualToDistance)
{
    seq::Generator gen(67);
    const auto pair = gen.pair(300, 0.08);
    const i64 true_dist = nwDistance(pair.pattern, pair.text);
    const auto res = bpmBandedAlign(pair.pattern, pair.text, true_dist);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.distance, true_dist);
}

TEST(BpmBanded, TooSmallKReturnsNotFound)
{
    seq::Generator gen(71);
    const auto pair = gen.pair(300, 0.15);
    const i64 true_dist = nwDistance(pair.pattern, pair.text);
    ASSERT_GT(true_dist, 2);
    const auto res = bpmBandedAlign(pair.pattern, pair.text, 1);
    EXPECT_FALSE(res.found());
}

TEST(BpmBanded, LengthDifferenceExceedsK)
{
    const auto res = bpmBandedAlign(Sequence("AAAAAAAAAA"), Sequence("AA"), 3);
    EXPECT_FALSE(res.found());
}

TEST(BpmBanded, RejectsNegativeK)
{
    EXPECT_THROW(bpmBandedAlign(Sequence("A"), Sequence("A"), -1),
                 FatalError);
}

TEST(BpmBanded, EmptySequences)
{
    const auto res = bpmBandedAlign(Sequence(""), Sequence("ACG"), 5);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.distance, 3);
    EXPECT_EQ(res.cigar.str(), "DDD");
}

TEST(BpmBanded, DistanceOnlySkipsHistory)
{
    seq::Generator gen(73);
    const auto pair = gen.pair(500, 0.1);
    KernelCounts with_tb, without_tb;
    KernelContext ctx_tb(CancelToken{}, &with_tb);
    KernelContext ctx_no_tb(CancelToken{}, &without_tb);
    bpmBandedAlign(pair.pattern, pair.text, 200, true, ctx_tb);
    const auto res =
        bpmBandedAlign(pair.pattern, pair.text, 200, false, ctx_no_tb);
    ASSERT_TRUE(res.found());
    EXPECT_FALSE(res.has_cigar);
    EXPECT_LT(without_tb.stores, with_tb.stores);
}

TEST(BpmBanded, LongNoisySequences)
{
    // The paper's long-sequence configuration: 15% error.
    seq::Generator gen(79);
    const auto pair = gen.pair(3000, 0.15);
    const auto res = edlibAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    EXPECT_TRUE(verifyResult(pair.pattern, pair.text, res).ok);
}

TEST(BpmBanded, BandNarrowerThanMatrixStillExact)
{
    // Large n with small k: the band is a small fraction of the matrix,
    // exercising block drops along the diagonal.
    seq::Generator gen(83);
    const auto text = gen.random(2000);
    const auto pattern = gen.mutate(text, 0.01);
    const i64 true_dist = nwDistance(pattern, text);
    const auto res = bpmBandedAlign(pattern, text, 64);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.distance, true_dist);
    EXPECT_TRUE(verifyResult(pattern, text, res).ok);
}

} // namespace
} // namespace gmx::align
