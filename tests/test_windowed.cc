/**
 * @file
 * Tests for the windowed driver and Windowed(GenASM-CPU)/Windowed(DP).
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "align/windowed.hh"
#include "common/logging.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(Windowed, RejectsBadGeometry)
{
    const Sequence p("ACGT"), t("ACGT");
    auto fn = [](const seq::Sequence &a, const seq::Sequence &b) {
        return nwAlign(a, b);
    };
    EXPECT_THROW(windowedAlign(p, t, {0, 0}, fn), FatalError);
    EXPECT_THROW(windowedAlign(p, t, {32, 32}, fn), FatalError);
    EXPECT_THROW(windowedAlign(p, t, {32, 40}, fn), FatalError);
}

TEST(Windowed, SingleWindowIsExact)
{
    // When both sequences fit in one window the result is the window
    // aligner's exact alignment.
    seq::Generator gen(101);
    const auto pair = gen.pair(80, 0.1);
    const auto res = windowedDpAlign(pair.pattern, pair.text, {96, 32});
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    EXPECT_TRUE(verifyResult(pair.pattern, pair.text, res).ok);
}

class WindowedGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(WindowedGridTest, DpWindowsProduceValidNearOptimalAlignments)
{
    const auto pair = test::makePair(GetParam());
    const auto res = windowedDpAlign(pair.pattern, pair.text, {96, 32});
    const auto check = verifyResult(pair.pattern, pair.text, res);
    ASSERT_TRUE(check.ok) << check.error;
    const i64 exact = nwDistance(pair.pattern, pair.text);
    EXPECT_GE(res.distance, exact); // heuristic never beats optimal
    // On these workloads the corridor heuristic stays close to optimal.
    EXPECT_LE(res.distance, exact + std::max<i64>(8, exact / 2));
}

TEST_P(WindowedGridTest, GenasmCpuProducesValidAlignments)
{
    const auto &params = GetParam();
    if (params.length > 300)
        return; // Bitap windows are slow by design; keep the suite fast
    const auto pair = test::makePair(params);
    const auto res = genasmCpuAlign(pair.pattern, pair.text, {64, 24});
    const auto check = verifyResult(pair.pattern, pair.text, res);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_GE(res.distance, nwDistance(pair.pattern, pair.text));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowedGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(Windowed, LowErrorLongSequenceIsNearExact)
{
    // The windowed heuristic's home turf: low-error long alignments where
    // the path hugs the diagonal.
    seq::Generator gen(103);
    const auto text = gen.random(2000);
    const auto pattern = gen.mutate(text, 0.02);
    const auto res = windowedDpAlign(pattern, text, {96, 32});
    ASSERT_TRUE(verifyResult(pattern, text, res).ok);
    const i64 exact = nwDistance(pattern, text);
    EXPECT_LE(res.distance, exact + exact / 4 + 4);
}

TEST(Windowed, ExtremeLengthAsymmetry)
{
    // One sequence much longer than the other: windows degenerate but the
    // driver must still terminate with a valid alignment.
    seq::Generator gen(107);
    const auto p = gen.random(20);
    const auto t = gen.random(500);
    const auto res = windowedDpAlign(p, t, {96, 32});
    EXPECT_TRUE(verifyResult(p, t, res).ok);
}

TEST(Windowed, EmptyPattern)
{
    const auto res = windowedDpAlign(Sequence(""), Sequence("ACGTA"),
                                     {96, 32});
    EXPECT_EQ(res.distance, 5);
    EXPECT_TRUE(verifyResult(Sequence(""), Sequence("ACGTA"), res).ok);
}

TEST(Windowed, PaperDsaGeometry)
{
    // W=96, O=32: the configuration used for the Fig. 15 DSA comparison.
    seq::Generator gen(109);
    const auto pair = gen.pair(1000, 0.15);
    const auto res = genasmCpuAlign(pair.pattern, pair.text, {96, 32});
    EXPECT_TRUE(verifyResult(pair.pattern, pair.text, res).ok);
    EXPECT_GE(res.distance, nwDistance(pair.pattern, pair.text));
}

} // namespace
} // namespace gmx::align
