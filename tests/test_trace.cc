/**
 * @file
 * Validation of the analytic traffic classifier against the real cache
 * simulator via trace replay (the DESIGN.md §4 validation promise).
 */

#include <gtest/gtest.h>

#include "sequence/dataset.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"

namespace gmx::sim {
namespace {

TEST(TraceReplay, L1ResidentStructureStaysOnChip)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.structures.push_back({"tiny", 16 * 1024, 8, true});
    const auto replay = replayProfile(p, mem);
    // Beyond cold misses, everything hits L1; DRAM sees one footprint.
    EXPECT_EQ(replay.dram_bytes, 16u * 1024);
    EXPECT_GE(replay.l1.hits, 7u * 16 * 1024 / 64);
    // The analytic model agrees: no recurring traffic.
    const auto bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.l2_lines + bd.llc_lines + bd.dram_lines, 0.0);
}

TEST(TraceReplay, L2ResidentStructureRefetchesFromL2)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    const double bytes = 512 * 1024; // 8x L1, half of L2
    const double sweeps = 4;
    p.structures.push_back({"mid", bytes, sweeps, false});
    const auto replay = replayProfile(p, mem);
    const auto bd = classifyTraffic(p, mem);
    // Analytic: every sweep refetches from L2.
    EXPECT_EQ(bd.l2_lines, sweeps * bytes / 64);
    EXPECT_EQ(bd.dram_lines, 0.0);
    // Replay: L1 misses on (almost) every line each sweep; L2 serves all
    // but the cold sweep.
    const double lines = bytes / 64;
    EXPECT_NEAR(static_cast<double>(replay.l1.misses), sweeps * lines,
                0.05 * sweeps * lines);
    EXPECT_NEAR(static_cast<double>(replay.l2.hits), (sweeps - 1) * lines,
                0.05 * sweeps * lines);
    EXPECT_EQ(replay.dram_bytes, static_cast<u64>(bytes));
}

TEST(TraceReplay, DramStreamingStructureMatchesAnalyticTraffic)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    const double bytes = 8 * 1024 * 1024; // 8x LLC
    const double sweeps = 2;
    p.structures.push_back({"big", bytes, sweeps, false});
    const auto replay = replayProfile(p, mem);
    const auto bd = classifyTraffic(p, mem);
    // Analytic read traffic (read-only structure).
    EXPECT_EQ(bd.dram_bytes, sweeps * bytes);
    // Replay within 10% (cache boundary effects).
    EXPECT_NEAR(static_cast<double>(replay.dram_bytes), bd.dram_bytes,
                0.10 * bd.dram_bytes);
}

TEST(TraceReplay, MixedProfileAgreesWithinTolerance)
{
    // A realistic mixture shaped like Full(BPM) at 4 kbp.
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const auto ds = seq::makeDataset("t", 4000, 0.15, 1, 5);
    WorkloadOptions opts;
    opts.samples = 1;
    const auto profile = profileForDataset(Algo::FullBpm, ds, opts);
    const auto replay = replayProfile(profile, mem);
    const auto bd = classifyTraffic(profile, mem);
    // The history (4 MB) dominates; read-side DRAM traffic must agree
    // within 25% (the analytic model adds writeback bytes, the replay
    // counts fills only).
    const double analytic_fills =
        bd.dram_lines * mem.line_bytes;
    EXPECT_NEAR(static_cast<double>(replay.dram_bytes), analytic_fills,
                0.25 * analytic_fills);
}

TEST(TraceReplay, RtlConfigUsesLlcOnly)
{
    const MemSystemConfig mem = MemSystemConfig::rtlLike();
    KernelProfile p;
    p.structures.push_back({"mid", 128 * 1024, 3, false});
    const auto replay = replayProfile(p, mem);
    EXPECT_FALSE(replay.has_l2);
    EXPECT_GT(replay.llc.hits, 0u);
    const auto bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.l2_lines, 0.0);
    EXPECT_GT(bd.llc_lines, 0.0);
}

} // namespace
} // namespace gmx::sim
