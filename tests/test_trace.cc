/**
 * @file
 * Validation of the analytic traffic classifier against the real cache
 * simulator via trace replay (the DESIGN.md §4 validation promise), plus
 * concurrency stress for the engine's TraceRecorder span ring — the two
 * "trace" subsystems share a binary so the ring stress runs under the
 * ThreadSanitizer tier-1 leg alongside the replay checks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/trace.hh"
#include "sequence/dataset.hh"
#include "sim/trace.hh"
#include "sim/workloads.hh"

namespace gmx::sim {
namespace {

TEST(TraceReplay, L1ResidentStructureStaysOnChip)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.structures.push_back({"tiny", 16 * 1024, 8, true});
    const auto replay = replayProfile(p, mem);
    // Beyond cold misses, everything hits L1; DRAM sees one footprint.
    EXPECT_EQ(replay.dram_bytes, 16u * 1024);
    EXPECT_GE(replay.l1.hits, 7u * 16 * 1024 / 64);
    // The analytic model agrees: no recurring traffic.
    const auto bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.l2_lines + bd.llc_lines + bd.dram_lines, 0.0);
}

TEST(TraceReplay, L2ResidentStructureRefetchesFromL2)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    const double bytes = 512 * 1024; // 8x L1, half of L2
    const double sweeps = 4;
    p.structures.push_back({"mid", bytes, sweeps, false});
    const auto replay = replayProfile(p, mem);
    const auto bd = classifyTraffic(p, mem);
    // Analytic: every sweep refetches from L2.
    EXPECT_EQ(bd.l2_lines, sweeps * bytes / 64);
    EXPECT_EQ(bd.dram_lines, 0.0);
    // Replay: L1 misses on (almost) every line each sweep; L2 serves all
    // but the cold sweep.
    const double lines = bytes / 64;
    EXPECT_NEAR(static_cast<double>(replay.l1.misses), sweeps * lines,
                0.05 * sweeps * lines);
    EXPECT_NEAR(static_cast<double>(replay.l2.hits), (sweeps - 1) * lines,
                0.05 * sweeps * lines);
    EXPECT_EQ(replay.dram_bytes, static_cast<u64>(bytes));
}

TEST(TraceReplay, DramStreamingStructureMatchesAnalyticTraffic)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    const double bytes = 8 * 1024 * 1024; // 8x LLC
    const double sweeps = 2;
    p.structures.push_back({"big", bytes, sweeps, false});
    const auto replay = replayProfile(p, mem);
    const auto bd = classifyTraffic(p, mem);
    // Analytic read traffic (read-only structure).
    EXPECT_EQ(bd.dram_bytes, sweeps * bytes);
    // Replay within 10% (cache boundary effects).
    EXPECT_NEAR(static_cast<double>(replay.dram_bytes), bd.dram_bytes,
                0.10 * bd.dram_bytes);
}

TEST(TraceReplay, MixedProfileAgreesWithinTolerance)
{
    // A realistic mixture shaped like Full(BPM) at 4 kbp.
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const auto ds = seq::makeDataset("t", 4000, 0.15, 1, 5);
    WorkloadOptions opts;
    opts.samples = 1;
    const auto profile = profileForDataset(Algo::FullBpm, ds, opts);
    const auto replay = replayProfile(profile, mem);
    const auto bd = classifyTraffic(profile, mem);
    // The history (4 MB) dominates; read-side DRAM traffic must agree
    // within 25% (the analytic model adds writeback bytes, the replay
    // counts fills only).
    const double analytic_fills =
        bd.dram_lines * mem.line_bytes;
    EXPECT_NEAR(static_cast<double>(replay.dram_bytes), analytic_fills,
                0.25 * analytic_fills);
}

TEST(TraceReplay, RtlConfigUsesLlcOnly)
{
    const MemSystemConfig mem = MemSystemConfig::rtlLike();
    KernelProfile p;
    p.structures.push_back({"mid", 128 * 1024, 3, false});
    const auto replay = replayProfile(p, mem);
    EXPECT_FALSE(replay.has_l2);
    EXPECT_GT(replay.llc.hits, 0u);
    const auto bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.l2_lines, 0.0);
    EXPECT_GT(bd.llc_lines, 0.0);
}

} // namespace
} // namespace gmx::sim

namespace gmx::engine {
namespace {

/**
 * Regression for the slot-claim race: with an unconditional seq store, a
 * writer descheduled long enough to be lapped would stamp its stale
 * "writing" sequence over a newer ticket's slot, and a reader could then
 * accept a span whose fields mix two writers. The CAS claim makes that
 * impossible: every decoded span must be internally consistent. The
 * tiny ring plus many writers maximises lapping; TSan (tier-1 obs leg)
 * checks the ordering discipline while the assertions check integrity.
 */
TEST(TraceRecorderStress, MultiWriterWrapNeverTearsASpan)
{
    constexpr size_t kCapacity = 8; // tiny: constant lapping
    constexpr unsigned kWriters = 4;
    constexpr u64 kPerWriter = 20000;
    constexpr u64 kMagic = 0x9e3779b97f4a7c15ull;

    TraceRecorder rec(kCapacity, /*sample_every=*/1);

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (u64 i = 0; i < kPerWriter; ++i) {
                // id encodes (writer, iteration); detail is a keyed hash
                // of id, so a torn slot (fields from two writers) cannot
                // satisfy detail == id ^ kMagic.
                const u64 id = (static_cast<u64>(w + 1) << 32) | i;
                rec.record(id, TraceEvent::Enqueue,
                           static_cast<i64>(i), StatusCode::Ok,
                           id ^ kMagic);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &t : writers)
        t.join();

    // Every push either landed or was counted as a claim-failure drop.
    // dropped() sums the wrap estimate (total - capacity) with the CAS
    // claim failures, so it is at least the wrap estimate and at most
    // one extra count per push.
    const u64 total = static_cast<u64>(kWriters) * kPerWriter;
    EXPECT_EQ(rec.recorded(), total);
    EXPECT_GE(rec.dropped(), total - kCapacity);
    EXPECT_LE(rec.dropped(), 2 * total);

    // Whatever survives must be whole: id/detail pair intact, writer id
    // in range, iteration in range, time matching the iteration.
    const auto spans = rec.spans();
    EXPECT_LE(spans.size(), kCapacity);
    for (const auto &s : spans) {
        EXPECT_EQ(s.detail, s.id ^ kMagic)
            << "torn span: id=" << s.id << " detail=" << s.detail;
        const u64 writer = s.id >> 32;
        const u64 iter = s.id & 0xffffffffull;
        EXPECT_GE(writer, 1u);
        EXPECT_LE(writer, kWriters);
        EXPECT_LT(iter, kPerWriter);
        EXPECT_EQ(s.t_us, static_cast<i64>(iter));
        EXPECT_EQ(s.event, TraceEvent::Enqueue);
    }
}

/** Single-writer wrap: exact survivors, ids in order, none torn. */
TEST(TraceRecorderStress, SingleWriterWrapKeepsNewestSpans)
{
    constexpr size_t kCapacity = 8;
    TraceRecorder rec(kCapacity, 1);
    constexpr u64 kPushes = 100;
    for (u64 i = 1; i <= kPushes; ++i)
        rec.record(i, TraceEvent::Enqueue, static_cast<i64>(i));

    EXPECT_EQ(rec.recorded(), kPushes);
    EXPECT_EQ(rec.dropped(), kPushes - kCapacity);

    const auto spans = rec.spans();
    ASSERT_EQ(spans.size(), kCapacity);
    // Oldest surviving span first: 93, 94, ..., 100.
    for (size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].id, kPushes - kCapacity + 1 + i);

    // Per-request lookup round-trips through the ring.
    const auto hit = rec.spansFor(kPushes);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0].id, kPushes);
    EXPECT_TRUE(rec.spansFor(1).empty()); // overwritten long ago
    EXPECT_NE(rec.jsonFor(kPushes).find("\"found\":true"),
              std::string::npos);
    EXPECT_NE(rec.jsonFor(1).find("\"found\":false"), std::string::npos);
}

/** Concurrent readers during the writer storm decode without tearing. */
TEST(TraceRecorderStress, ConcurrentReadersSeeOnlyWholeSpans)
{
    constexpr size_t kCapacity = 16;
    constexpr u64 kMagic = 0xabcdef0123456789ull;
    TraceRecorder rec(kCapacity, 1);

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        u64 i = 0;
        while (!stop.load(std::memory_order_acquire)) {
            ++i;
            rec.record(i, TraceEvent::Dispatch, static_cast<i64>(i),
                       StatusCode::Ok, i ^ kMagic);
        }
    });

    for (int round = 0; round < 200; ++round) {
        for (const auto &s : rec.spans()) {
            ASSERT_EQ(s.detail, s.id ^ kMagic);
            ASSERT_EQ(s.t_us, static_cast<i64>(s.id));
        }
    }
    stop.store(true, std::memory_order_release);
    writer.join();
}

} // namespace
} // namespace gmx::engine
