/**
 * @file
 * Engine-level tests for the lane-packed filter tier: end-to-end
 * bit-identity of batched vs forced-scalar cascades through
 * Engine::submit, deterministic lane packing of fused micro-batches,
 * per-lane deadline semantics (expired-in-queue and mid-batch), the
 * head-of-line fusion fix, and the packing metrics.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "align/bpm.hh"
#include "align/nw.hh"
#include "engine/engine.hh"
#include "kernel/dispatch.hh"
#include "kernel/simd/bpm_simd.hh"
#include "sequence/generator.hh"

namespace gmx::engine {
namespace {

using align::AlignResult;
using Outcome = Engine::AlignOutcome;
using std::chrono::milliseconds;

/** RAII guard so a failing assertion can't leak the test override. */
struct ForceScalarGuard
{
    explicit ForceScalarGuard(int force)
    {
        kernel::setForceScalarForTest(force);
    }
    ~ForceScalarGuard() { kernel::setForceScalarForTest(-1); }
};

/**
 * The PR 8 word-boundary corpus, end-to-end: one word, one word + 1,
 * multi-block, and one row past each block boundary, at divergences
 * that exercise filter hits, banded rescues, and full-tier escalation.
 */
std::vector<seq::SequencePair>
wordBoundaryCorpus(u64 seed)
{
    seq::Generator gen(seed);
    std::vector<seq::SequencePair> pairs;
    for (size_t len : {64u, 65u, 128u, 129u, 256u, 257u})
        for (double err : {0.0, 0.02, 0.10, 0.30})
            pairs.push_back(gen.pair(len, err));
    return pairs;
}

/** Distance-only results through a fresh engine with @p mode packing. */
std::vector<Outcome>
runEngine(const std::vector<seq::SequencePair> &pairs, FilterBatching mode,
          MetricsSnapshot *snap = nullptr)
{
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.filter_batching = mode;
    Engine engine(cfg);
    auto results = engine.alignAll(pairs, /*want_cigar=*/false);
    if (snap)
        *snap = engine.metrics();
    return results;
}

TEST(EngineBatch, BatchedMatchesForcedScalarOverWordBoundaryCorpus)
{
    // The PR 8 twin tests, extended end-to-end through Engine::submit:
    // the batched engine and a forced-scalar engine must produce
    // bit-identical distances on the same corpus, and both must equal
    // the Needleman-Wunsch ground truth.
    const auto corpus = wordBoundaryCorpus(90210);

    const auto batched = runEngine(corpus, FilterBatching::On);

    ForceScalarGuard guard(1);
    const auto scalar = runEngine(corpus, FilterBatching::On);

    ASSERT_EQ(batched.size(), corpus.size());
    ASSERT_EQ(scalar.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
        ASSERT_TRUE(batched[i].ok()) << "pair " << i;
        ASSERT_TRUE(scalar[i].ok()) << "pair " << i;
        EXPECT_EQ(batched[i].value().distance, scalar[i].value().distance)
            << "pair " << i;
        EXPECT_EQ(batched[i].value().distance,
                  align::nwDistance(corpus[i].pattern, corpus[i].text))
            << "pair " << i;
    }
}

TEST(EngineBatch, MixedSizeGroupsAndPartialTailsMatchScalar)
{
    // Submission counts that force every lane-occupancy shape the packer
    // can see: singletons (no packing), 2- and 3-lane partial tails, and
    // a full quad plus tail — over mixed sizes so one group holds 1-, 2-
    // and 4-block patterns side by side.
    seq::Generator gen(4711);
    std::vector<seq::SequencePair> mixed;
    const size_t lens[] = {60, 130, 257, 100, 64, 300, 150};
    for (size_t len : lens)
        mixed.push_back(gen.pair(len, 0.05));

    for (size_t take : {1u, 2u, 3u, 5u, 7u}) {
        const std::vector<seq::SequencePair> subset(mixed.begin(),
                                                    mixed.begin() + take);
        const auto batched = runEngine(subset, FilterBatching::On);
        ForceScalarGuard guard(1);
        const auto scalar = runEngine(subset, FilterBatching::On);
        ASSERT_EQ(batched.size(), take);
        for (size_t i = 0; i < take; ++i) {
            ASSERT_TRUE(batched[i].ok()) << take << "/" << i;
            ASSERT_TRUE(scalar[i].ok()) << take << "/" << i;
            EXPECT_EQ(batched[i].value().distance,
                      scalar[i].value().distance)
                << take << "/" << i;
        }
    }
}

/**
 * Fixture that wedges a 1-worker engine's both dispatch slots behind
 * gate aligners, so requests submitted next are provably queued together
 * and fuse into one micro-batch on release. The engine member is built
 * by start() so each test picks its own config.
 */
struct BlockedEngine
{
    std::atomic<int> running{0};
    std::atomic<bool> release{false};
    std::vector<std::future<Outcome>> blockers;
    std::unique_ptr<Engine> engine;

    void start(EngineConfig cfg)
    {
        cfg.workers = 1; // maxInflightTasks() == 2
        engine = std::make_unique<Engine>(cfg);
        seq::Generator gen(1);
        const align::PairAligner gate =
            [this](const seq::SequencePair &) {
                running.fetch_add(1);
                while (!release.load())
                    std::this_thread::sleep_for(milliseconds(1));
                return AlignResult{0, {}, false};
            };
        // First blocker: wait until it is RUNNING on the lone worker.
        blockers.push_back(engine->submit(gen.pair(20, 0.0), gate));
        for (int spin = 0; running.load() < 1 && spin < 5000; ++spin)
            std::this_thread::sleep_for(milliseconds(1));
        ASSERT_EQ(running.load(), 1) << "blocker 1 stuck";
        // Second blocker: with one worker it cannot run yet, but it must
        // be DISPATCHED (slot 2 taken, queue drained) before the payload
        // is submitted, so the payload can only queue — and fuse.
        blockers.push_back(engine->submit(gen.pair(20, 0.0), gate));
        for (int spin = 0;
             engine->metrics().queue_depth > 0 && spin < 5000; ++spin)
            std::this_thread::sleep_for(milliseconds(1));
        ASSERT_EQ(engine->metrics().queue_depth, 0u) << "blocker 2 stuck";
    }

    ~BlockedEngine() { release.store(true); }

    void releaseAll()
    {
        release.store(true);
        for (auto &f : blockers)
            f.get();
    }
};

TEST(EngineBatch, FusedRequestsPackIntoLaneGroupsWithOccupancyCounters)
{
    if (kernel::forceScalar())
        GTEST_SKIP() << "GMX_FORCE_SCALAR=1: packing disabled by design";

    EngineConfig cfg;
    cfg.microbatch_max = 8;
    cfg.filter_batching = FilterBatching::On;
    BlockedEngine blocked;
    blocked.start(cfg);
    if (HasFatalFailure())
        return;

    // Seven eligible smalls queue behind the wedged slots, fuse into one
    // micro-batch, and pack as one full quad plus a 3-lane tail.
    seq::Generator gen(2024);
    std::vector<seq::SequencePair> pairs;
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 7; ++i)
        pairs.push_back(gen.pair(100, 0.05));
    for (const auto &pair : pairs) {
        SubmitOptions opts;
        opts.want_cigar = false;
        futures.push_back(blocked.engine->submit(pair, std::move(opts)));
    }
    blocked.releaseAll();

    for (size_t i = 0; i < futures.size(); ++i) {
        const auto res = futures[i].get();
        ASSERT_TRUE(res.ok()) << i;
        EXPECT_EQ(res.value().distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text))
            << i;
    }

    const auto snap = blocked.engine->metrics();
    EXPECT_EQ(snap.batched_pairs, 7u);
    EXPECT_EQ(snap.filter_batches, 2u);
    EXPECT_EQ(snap.filter_batched_pairs, 7u);
    EXPECT_EQ(snap.filter_batch_lanes[3], 1u); // one full quad
    EXPECT_EQ(snap.filter_batch_lanes[2], 1u); // one 3-lane tail
    EXPECT_EQ(snap.filter_batch_lanes[0], 0u);
    EXPECT_EQ(snap.filter_batch_lanes[1], 0u);
}

TEST(EngineBatch, ExpiredLaneIsExcludedFromPackingAndFastFails)
{
    if (kernel::forceScalar())
        GTEST_SKIP() << "GMX_FORCE_SCALAR=1: packing disabled by design";

    EngineConfig cfg;
    cfg.microbatch_max = 8;
    cfg.filter_batching = FilterBatching::On;
    BlockedEngine blocked;
    blocked.start(cfg);
    if (HasFatalFailure())
        return;

    // Four fused requests, one with a deadline that expires while the
    // blockers hold the engine: the packer must not give it a lane (its
    // siblings pack as a 3-lane group) and runOne must fast-fail it.
    seq::Generator gen(31);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 4; ++i)
        pairs.push_back(gen.pair(120, 0.04));
    std::vector<std::future<Outcome>> futures;
    for (size_t i = 0; i < pairs.size(); ++i) {
        SubmitOptions opts;
        opts.want_cigar = false;
        if (i == 1)
            opts.timeout = milliseconds(5);
        futures.push_back(blocked.engine->submit(pairs[i],
                                                 std::move(opts)));
    }
    std::this_thread::sleep_for(milliseconds(40)); // expire lane 1
    blocked.releaseAll();

    for (size_t i = 0; i < futures.size(); ++i) {
        const auto res = futures[i].get();
        if (i == 1) {
            ASSERT_FALSE(res.ok());
            EXPECT_EQ(res.status().code(), StatusCode::DeadlineExceeded);
        } else {
            ASSERT_TRUE(res.ok()) << i;
            EXPECT_EQ(res.value().distance,
                      align::nwDistance(pairs[i].pattern, pairs[i].text))
                << i;
        }
    }

    const auto snap = blocked.engine->metrics();
    EXPECT_EQ(snap.deadline_missed, 1u);
    EXPECT_EQ(snap.filter_batches, 1u);
    EXPECT_EQ(snap.filter_batched_pairs, 3u);
    EXPECT_EQ(snap.filter_batch_lanes[2], 1u);
}

TEST(EngineBatch, MidBatchDeadlineStopsOnlyThatLane)
{
    // Kernel-level per-lane cancellation: one lane's deadline expires
    // while the packed column loop is running. That lane must stop with
    // DeadlineExceeded and partial work; its fused siblings must run to
    // completion with exact distances. The text is long enough that the
    // kernel provably outlives the 3 ms budget, and the budget is long
    // enough that the lane provably survives the pre-check at column 0.
    seq::Generator gen(555);
    const auto long_pair = gen.pair(1000000, 0.02);
    std::array<seq::SequencePair, 4> pairs;
    for (auto &p : pairs) {
        auto src = gen.pair(500, 0.05);
        p.pattern = std::move(src.pattern);
        p.text = long_pair.text; // ~1 Mbp columns for every lane
    }

    std::array<i64, 4> expected{};
    for (size_t i = 0; i < pairs.size(); ++i) {
        KernelContext ctx;
        expected[i] =
            align::bpmDistance(pairs[i].pattern, pairs[i].text, ctx);
    }
    const u64 full_cells = static_cast<u64>(pairs[0].pattern.size()) *
                           static_cast<u64>(pairs[0].text.size());

    std::array<simd::BatchLane, 4> lanes{};
    for (size_t i = 0; i < pairs.size(); ++i)
        lanes[i].pair = &pairs[i];
    lanes[2].cancel = CancelToken{}.withTimeout(milliseconds(3));

    KernelContext ctx;
    simd::bpmDistanceBatchLanes({lanes.data(), lanes.size()}, ctx);

    EXPECT_FALSE(lanes[2].status.ok());
    EXPECT_EQ(lanes[2].status.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(lanes[2].distance, align::kNoAlignment);
    // Partial attribution: it ran some columns, not all of them.
    EXPECT_GT(lanes[2].counts.cells, 0u);
    EXPECT_LT(lanes[2].counts.cells, full_cells);

    for (size_t i : {0u, 1u, 3u}) {
        ASSERT_TRUE(lanes[i].status.ok()) << i;
        EXPECT_EQ(lanes[i].distance, expected[i]) << i;
        EXPECT_EQ(lanes[i].counts.cells,
                  static_cast<u64>(pairs[i].pattern.size()) *
                      static_cast<u64>(pairs[i].text.size()))
            << i;
    }
}

TEST(EngineBatch, PreCancelledLaneReportsCancelledWithZeroWork)
{
    // A token that fired before the group launched: the LaneGuard
    // pre-check must kill the lane at column 0 — zero cells, Cancelled —
    // while the other three lanes are unaffected.
    seq::Generator gen(808);
    std::array<seq::SequencePair, 4> pairs;
    for (auto &p : pairs)
        p = gen.pair(150, 0.05);

    CancelSource src;
    src.cancel();
    std::array<simd::BatchLane, 4> lanes{};
    for (size_t i = 0; i < pairs.size(); ++i)
        lanes[i].pair = &pairs[i];
    lanes[1].cancel = src.token();

    KernelContext ctx;
    simd::bpmDistanceBatchLanes({lanes.data(), lanes.size()}, ctx);

    EXPECT_EQ(lanes[1].status.code(), StatusCode::Cancelled);
    EXPECT_EQ(lanes[1].counts.cells, 0u);
    EXPECT_EQ(lanes[1].distance, align::kNoAlignment);
    for (size_t i : {0u, 2u, 3u}) {
        ASSERT_TRUE(lanes[i].status.ok()) << i;
        KernelContext scalar;
        EXPECT_EQ(lanes[i].distance,
                  align::bpmDistance(pairs[i].pattern, pairs[i].text,
                                     scalar))
            << i;
    }
}

TEST(EngineBatch, PerLaneCountsSumToAggregateAndMatchScalarCells)
{
    // Satellite 1: each lane carries its own work attribution — exactly
    // the cells the scalar kernel would report for that pair — and the
    // shared context's aggregate sink sees their sum.
    seq::Generator gen(99);
    std::array<seq::SequencePair, 4> pairs;
    for (size_t i = 0; i < pairs.size(); ++i)
        pairs[i] = gen.pair(100 + 50 * i, 0.05); // mixed sizes

    std::array<simd::BatchLane, 4> lanes{};
    for (size_t i = 0; i < pairs.size(); ++i)
        lanes[i].pair = &pairs[i];

    KernelCounts aggregate;
    ScratchArena arena;
    KernelContext ctx(CancelToken{}, &aggregate, &arena);
    simd::bpmDistanceBatchLanes({lanes.data(), lanes.size()}, ctx);

    u64 sum = 0;
    for (size_t i = 0; i < lanes.size(); ++i) {
        ASSERT_TRUE(lanes[i].status.ok()) << i;
        EXPECT_EQ(lanes[i].counts.cells,
                  static_cast<u64>(pairs[i].pattern.size()) *
                      static_cast<u64>(pairs[i].text.size()))
            << i;
        sum += lanes[i].counts.cells;
    }
    EXPECT_EQ(aggregate.cells, sum);
}

TEST(EngineBatch, LargeHeadNoLongerSuppressesFusingTheSmallRunBehindIt)
{
    // Satellite 4 regression: a large request at the batch head used to
    // disable fusion for the whole dispatch round, so the run of smalls
    // behind it paid one pool task each. The fixed dispatcher fuses the
    // smalls behind the large head without reordering: one task, four
    // batched pairs (the old gate reported zero batched pairs here,
    // because the 3-element small run was never fused at all).
    EngineConfig cfg;
    cfg.microbatch_max = 8;
    BlockedEngine blocked;
    blocked.start(cfg);
    if (HasFatalFailure())
        return;

    seq::Generator gen(7);
    std::vector<seq::SequencePair> pairs;
    pairs.push_back(gen.pair(1600, 0.05)); // 3200 bases: large head
    for (int i = 0; i < 3; ++i)
        pairs.push_back(gen.pair(150, 0.02)); // small run behind it
    std::vector<std::future<Outcome>> futures;
    for (const auto &pair : pairs) {
        SubmitOptions opts;
        opts.want_cigar = false;
        futures.push_back(blocked.engine->submit(pair, std::move(opts)));
    }
    blocked.releaseAll();

    for (size_t i = 0; i < futures.size(); ++i) {
        const auto res = futures[i].get();
        ASSERT_TRUE(res.ok()) << i;
        EXPECT_EQ(res.value().distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text))
            << i;
    }

    const auto snap = blocked.engine->metrics();
    EXPECT_EQ(snap.microbatches, 1u);
    EXPECT_EQ(snap.batched_pairs, 4u);
}

TEST(EngineBatch, PackingMetricsStayZeroWhenOffOrForcedScalar)
{
    // FilterBatching::Off and GMX_FORCE_SCALAR must both mean "the
    // per-request scalar cascade, full stop": same results, no packed
    // groups counted.
    const auto corpus = wordBoundaryCorpus(60606);

    MetricsSnapshot off_snap;
    const auto off = runEngine(corpus, FilterBatching::Off, &off_snap);
    EXPECT_EQ(off_snap.filter_batches, 0u);
    EXPECT_EQ(off_snap.filter_batched_pairs, 0u);

    ForceScalarGuard guard(1);
    MetricsSnapshot forced_snap;
    const auto forced = runEngine(corpus, FilterBatching::On, &forced_snap);
    EXPECT_EQ(forced_snap.filter_batches, 0u);
    EXPECT_EQ(forced_snap.filter_batched_pairs, 0u);

    for (size_t i = 0; i < corpus.size(); ++i) {
        ASSERT_TRUE(off[i].ok()) << i;
        ASSERT_TRUE(forced[i].ok()) << i;
        EXPECT_EQ(off[i].value().distance, forced[i].value().distance)
            << i;
    }
}

} // namespace
} // namespace gmx::engine
