/**
 * @file
 * Tests for the performance model: traffic classification, the evaluator,
 * multicore scaling, and the qualitative relationships the paper's
 * evaluation depends on (GMX >> software baselines, OoO > in-order,
 * Full(BPM) bandwidth-bound at long lengths).
 */

#include <gtest/gtest.h>

#include "sequence/dataset.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace gmx::sim {
namespace {

TEST(Classify, StructuresLandInTheRightLevels)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.structures.push_back({"tiny", 1024, 4, true});          // L1
    p.structures.push_back({"medium", 512 * 1024, 2, true});  // L2
    p.structures.push_back({"large", 8 * 1024 * 1024, 1, true}); // DRAM
    const MemBreakdown bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.l2_lines, 2.0 * 512 * 1024 / 64);
    EXPECT_EQ(bd.llc_lines, 0);
    EXPECT_EQ(bd.dram_lines, 8.0 * 1024 * 1024 / 64);
    // Written structures count read + writeback traffic.
    EXPECT_EQ(bd.dram_bytes, 2.0 * 8 * 1024 * 1024);
}

TEST(Classify, ReadOnlyStructuresPayNoWriteback)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.structures.push_back({"ro", 8.0 * 1024 * 1024, 1, false});
    const MemBreakdown bd = classifyTraffic(p, mem);
    EXPECT_EQ(bd.dram_bytes, 8.0 * 1024 * 1024);
}

TEST(Evaluate, ComputeBoundKernel)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const CoreConfig core = CoreConfig::gem5InOrder();
    KernelProfile p;
    p.counts.alu = 1000000;
    const PerfResult r = evaluate(p, core, mem);
    EXPECT_DOUBLE_EQ(r.compute_cycles, 1e6);
    EXPECT_DOUBLE_EQ(r.stall_cycles, 0);
    EXPECT_NEAR(r.seconds, 1e6 / (core.clock_ghz * 1e9), 1e-12);
}

TEST(Evaluate, GmxLatencyChargedOnInOrderOnly)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    KernelProfile p;
    p.counts.gmx_ac = 1000;
    const PerfResult in_order =
        evaluate(p, CoreConfig::gem5InOrder(), mem);
    const PerfResult ooo =
        evaluate(p, CoreConfig::gem5OutOfOrder(), mem);
    EXPECT_DOUBLE_EQ(in_order.compute_cycles, 2000.0); // latency 2 each
    EXPECT_DOUBLE_EQ(ooo.compute_cycles, 1000.0);      // pipelined II=1
}

TEST(Evaluate, BandwidthBoundKernel)
{
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const CoreConfig core = CoreConfig::gem5OutOfOrder();
    KernelProfile p;
    p.counts.alu = 1000; // negligible compute
    p.structures.push_back({"huge", 4.0 * 1024 * 1024 * 1024, 1, false});
    const PerfResult r = evaluate(p, core, mem);
    // 4 GB of sequential DRAM traffic: a single OoO core with streaming
    // MLP sustains a large fraction of the DDR4 peak, and never less
    // than the bandwidth lower bound.
    EXPECT_GE(r.seconds, 4.0 * 1024 * 1024 * 1024 / 47.8e9);
    EXPECT_LT(r.seconds, 0.35);
    EXPECT_GT(r.dram_gbps, 12.0);
}

class DatasetModelTest : public ::testing::Test
{
  protected:
    seq::Dataset short_ds = seq::makeDataset("s", 150, 0.05, 2, 7);
    seq::Dataset long_ds = seq::makeDataset("l", 3000, 0.15, 2, 9);
    MemSystemConfig mem = MemSystemConfig::gem5Like();
    CoreConfig in_order = CoreConfig::gem5InOrder();
    CoreConfig ooo = CoreConfig::gem5OutOfOrder();
};

TEST_F(DatasetModelTest, GmxOutperformsItsSoftwareCounterparts)
{
    // The core claim of Fig. 10, per family.
    WorkloadOptions opts;
    const struct
    {
        Algo baseline;
        Algo gmx;
    } families[] = {
        {Algo::FullDp, Algo::FullGmx},
        {Algo::FullBpm, Algo::FullGmx},
        {Algo::BandedEdlib, Algo::BandedGmx},
        {Algo::WindowedGenasm, Algo::WindowedGmx},
    };
    for (const auto &f : families) {
        const auto base_profile =
            profileForDataset(f.baseline, short_ds, opts);
        const auto gmx_profile = profileForDataset(f.gmx, short_ds, opts);
        const double base =
            evaluate(base_profile, in_order, mem).alignments_per_second;
        const double gmx =
            evaluate(gmx_profile, in_order, mem).alignments_per_second;
        EXPECT_GT(gmx, base * 5)
            << algoName(f.gmx) << " vs " << algoName(f.baseline);
    }
}

TEST_F(DatasetModelTest, OooSpeedupInPaperRange)
{
    // Fig. 11: 2.4x - 6.4x between gem5-InOrder and gem5-OoO.
    for (Algo algo : {Algo::FullBpm, Algo::BandedEdlib, Algo::FullGmx,
                      Algo::BandedGmx, Algo::WindowedGmx}) {
        const auto profile = profileForDataset(algo, short_ds);
        const double slow =
            evaluate(profile, in_order, mem).alignments_per_second;
        const double fast =
            evaluate(profile, ooo, mem).alignments_per_second;
        EXPECT_GT(fast / slow, 1.4) << algoName(algo);
        EXPECT_LT(fast / slow, 8.0) << algoName(algo);
    }
}

TEST_F(DatasetModelTest, InstructionReductionIsQuadraticInTileSize)
{
    // §4: instructions drop ~quadratically with T.
    WorkloadOptions t8;
    t8.tile = 8;
    WorkloadOptions t32;
    t32.tile = 32;
    const auto p8 = profileForDataset(Algo::FullGmx, short_ds, t8);
    const auto p32 = profileForDataset(Algo::FullGmx, short_ds, t32);
    const double ratio = static_cast<double>(p8.counts.gmx_ac) /
                         static_cast<double>(p32.counts.gmx_ac);
    EXPECT_NEAR(ratio, 16.0, 6.0);
}

TEST_F(DatasetModelTest, MulticoreLinearWhenComputeBound)
{
    // Fig. 12: GMX configurations scale near-linearly to 16 threads.
    const auto profile = profileForDataset(Algo::FullGmx, short_ds);
    const auto mc = evaluateMulticore(profile, ooo, mem, {1, 2, 4, 8, 16});
    EXPECT_NEAR(mc.speedup.back(), 16.0, 2.5);
}

TEST_F(DatasetModelTest, FullBpmSaturatesBandwidthOnLongSequences)
{
    // Fig. 12 bottom: Full(BPM) saturates DDR4 on long sequences while
    // Full(GMX) does not.
    const auto bpm = profileForDataset(Algo::FullBpm, long_ds);
    const auto gmx = profileForDataset(Algo::FullGmx, long_ds);
    const auto mc_bpm = evaluateMulticore(bpm, ooo, mem, {16});
    const auto mc_gmx = evaluateMulticore(gmx, ooo, mem, {16});
    EXPECT_GT(mc_bpm.aggregate_gbps[0], 0.5 * mem.dram_bw_gbps);
    EXPECT_LT(mc_gmx.aggregate_gbps[0], mc_bpm.aggregate_gbps[0]);
    // And its 16-thread speedup falls short of linear.
    const auto sp_bpm = evaluateMulticore(bpm, ooo, mem, {1, 16});
    EXPECT_LT(sp_bpm.speedup.back(), 13.0);
}

TEST_F(DatasetModelTest, MemoryFootprintReduction)
{
    // §4: Full(GMX) stores ~T-fold less than Full(BPM)'s 4nm bits.
    const auto bpm = profileForDataset(Algo::FullBpm, long_ds);
    const auto gmx = profileForDataset(Algo::FullGmx, long_ds);
    EXPECT_GT(bpm.footprintBytes(), 8 * gmx.footprintBytes());
}

TEST(Multicore, SpeedupDefinitionIsConsistent)
{
    KernelProfile p;
    p.counts.alu = 1000000;
    const auto mc =
        evaluateMulticore(p, CoreConfig::gem5OutOfOrder(),
                          MemSystemConfig::gem5Like(), {1, 2, 4});
    EXPECT_DOUBLE_EQ(mc.speedup[0], 1.0);
    EXPECT_NEAR(mc.speedup[1], 2.0, 1e-9);
    EXPECT_NEAR(mc.speedup[2], 4.0, 1e-9);
}

} // namespace
} // namespace gmx::sim
