/**
 * @file
 * Differential tests of the gate-level GMX-AC / GMX-TB arrays against the
 * algorithmic kernels (tileCompute and GmxUnit::gmxTb).
 */

#include <gtest/gtest.h>

#include "gmx/isa.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"
#include "sequence/generator.hh"

namespace gmx::hw {
namespace {

core::TileInput
randomTile(seq::Generator &gen, const seq::Sequence &p,
           const seq::Sequence &t, unsigned ts)
{
    core::TileInput in;
    in.pattern = p.codes().data();
    in.tp = ts;
    in.text = t.codes().data();
    in.tt = ts;
    for (unsigned r = 0; r < ts; ++r) {
        in.dv_in.set(r, static_cast<int>(gen.prng().below(3)) - 1);
        in.dh_in.set(r, static_cast<int>(gen.prng().below(3)) - 1);
    }
    return in;
}

TEST(GmxAcArrayTest, MatchesTileKernel)
{
    seq::Generator gen(501);
    for (unsigned ts : {2u, 4u, 8u, 16u}) {
        const GmxAcArray array(ts);
        for (int rep = 0; rep < 20; ++rep) {
            const auto p = gen.random(ts);
            const auto t = gen.random(ts);
            const auto in = randomTile(gen, p, t, ts);
            const auto hw_out = array.run(in);
            const auto sw_out = core::tileCompute(in);
            EXPECT_EQ(hw_out.dv_out, sw_out.dv_out)
                << "T=" << ts << " rep=" << rep;
            EXPECT_EQ(hw_out.dh_out, sw_out.dh_out)
                << "T=" << ts << " rep=" << rep;
        }
    }
}

TEST(GmxAcArrayTest, T32DesignPoint)
{
    const GmxAcArray array(32);
    seq::Generator gen(503);
    const auto p = gen.random(32);
    const auto t = gen.mutate(p, 0.2);
    if (t.size() < 32)
        return;
    core::TileInput in;
    in.pattern = p.codes().data();
    in.tp = 32;
    in.text = t.codes().data();
    in.tt = 32;
    in.dv_in = core::DeltaVec::ones(32);
    in.dh_in = core::DeltaVec::ones(32);
    const auto hw_out = array.run(in);
    const auto sw_out = core::tileCompute(in);
    EXPECT_EQ(hw_out.dv_out, sw_out.dv_out);
    EXPECT_EQ(hw_out.dh_out, sw_out.dh_out);
    EXPECT_EQ(array.criticalPathCells(), 63u); // 2T-1
}

TEST(GmxTbArrayTest, MatchesBehaviouralGmxTb)
{
    seq::Generator gen(507);
    for (unsigned ts : {2u, 4u, 8u}) {
        const GmxTbArray array(ts);
        for (int rep = 0; rep < 25; ++rep) {
            const auto p = gen.random(ts);
            const auto t = gen.random(ts);
            const auto in = randomTile(gen, p, t, ts);

            // Random start on the bottom or right edge.
            core::TracebackPos start;
            if (gen.prng().below(2) == 0) {
                start = {core::TracebackPos::Edge::Bottom,
                         static_cast<unsigned>(gen.prng().below(ts))};
            } else {
                start = {core::TracebackPos::Edge::Right,
                         static_cast<unsigned>(gen.prng().below(ts))};
            }

            core::GmxUnit unit(ts);
            unit.csrwPattern(in.pattern, ts);
            unit.csrwText(in.text, ts);
            unit.csrwPos(start);
            const auto behav = unit.gmxTb(in.dv_in, in.dh_in);
            const auto gate = array.run(in, start);

            ASSERT_EQ(gate.ops.size(), behav.ops.size())
                << "T=" << ts << " rep=" << rep;
            for (size_t i = 0; i < gate.ops.size(); ++i)
                EXPECT_EQ(gate.ops[i], behav.ops[i]) << i;
            EXPECT_EQ(gate.next, behav.next);
            EXPECT_EQ(gate.next_pos, behav.next_pos);
        }
    }
}

TEST(GmxTbArrayTest, T16RandomDeltas)
{
    const GmxTbArray array(16);
    seq::Generator gen(509);
    for (int rep = 0; rep < 10; ++rep) {
        const auto p = gen.random(16);
        const auto t = gen.random(16);
        const auto in = randomTile(gen, p, t, 16);
        core::GmxUnit unit(16);
        unit.csrwPattern(in.pattern, 16);
        unit.csrwText(in.text, 16);
        unit.csrwPos({core::TracebackPos::Edge::Bottom, 15});
        const auto behav = unit.gmxTb(in.dv_in, in.dh_in);
        const auto gate =
            array.run(in, {core::TracebackPos::Edge::Bottom, 15});
        EXPECT_EQ(gate.ops.size(), behav.ops.size());
        EXPECT_EQ(gate.next, behav.next);
        EXPECT_EQ(gate.next_pos, behav.next_pos);
    }
}

} // namespace
} // namespace gmx::hw
