/**
 * @file
 * Minimal blocking HTTP/1.0-style client for the MetricsServer tests:
 * connect, send one GET, read to EOF. The socket mechanics (connect,
 * deadlines, partial-write send, read-to-EOF) come from common/net.hh —
 * the same single implementation the servers use — so the tests
 * exercise the production plumbing over real sockets, exactly as a
 * scraper would.
 */

#ifndef GMX_TESTS_TEST_HTTP_UTIL_HH
#define GMX_TESTS_TEST_HTTP_UTIL_HH

#include <unistd.h>

#include <chrono>
#include <string>

#include "common/net.hh"

namespace gmx::test {

/** Parsed-enough response: status code plus the full raw text. */
struct HttpResponse
{
    int status = -1;   //!< -1: connect/read failure
    std::string raw;   //!< status line + headers + body
    std::string body;  //!< bytes after the blank line
};

/** Set a receive/send deadline so a test can never hang on a socket. */
inline void
setClientDeadline(int fd, int seconds)
{
    net::setIoDeadlines(fd, std::chrono::seconds(seconds));
}

/** Connect to 127.0.0.1:port; -1 on failure. */
inline int
connectTcp(unsigned short port, int deadline_seconds = 10)
{
    return net::connectTcp("127.0.0.1", port,
                           std::chrono::seconds(deadline_seconds));
}

/** Connect to a unix-domain socket path; -1 on failure. */
inline int
connectUnix(const std::string &path, int deadline_seconds = 10)
{
    return net::connectUnix(path, std::chrono::seconds(deadline_seconds));
}

/** Send raw bytes, tolerating partial writes. False on error. */
inline bool
sendRaw(int fd, const std::string &data)
{
    return net::sendAll(fd, data.data(), data.size()) ==
           net::IoResult::Ok;
}

/** Read until the peer closes (Connection: close responses). */
inline std::string
recvAll(int fd)
{
    return net::recvToEof(fd);
}

/** Split a raw response into status code and body. */
inline HttpResponse
parseResponse(std::string raw)
{
    HttpResponse r;
    r.raw = std::move(raw);
    if (r.raw.compare(0, 9, "HTTP/1.1 ") == 0 && r.raw.size() >= 12)
        r.status = std::stoi(r.raw.substr(9, 3));
    const size_t blank = r.raw.find("\r\n\r\n");
    if (blank != std::string::npos)
        r.body = r.raw.substr(blank + 4);
    return r;
}

/** One whole GET request against 127.0.0.1:port. */
inline HttpResponse
httpGet(unsigned short port, const std::string &target,
        const std::string &method = "GET")
{
    HttpResponse r;
    const int fd = connectTcp(port);
    if (fd < 0)
        return r;
    sendRaw(fd, method + " " + target + " HTTP/1.1\r\n"
                "Host: localhost\r\nConnection: close\r\n\r\n");
    r = parseResponse(recvAll(fd));
    ::close(fd);
    return r;
}

/** One whole GET request over a unix-domain socket. */
inline HttpResponse
httpGetUnix(const std::string &path, const std::string &target)
{
    HttpResponse r;
    const int fd = connectUnix(path);
    if (fd < 0)
        return r;
    sendRaw(fd, "GET " + target + " HTTP/1.1\r\n"
                "Host: localhost\r\nConnection: close\r\n\r\n");
    r = parseResponse(recvAll(fd));
    ::close(fd);
    return r;
}

} // namespace gmx::test

#endif // GMX_TESTS_TEST_HTTP_UTIL_HH
