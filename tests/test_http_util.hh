/**
 * @file
 * Minimal blocking HTTP/1.0-style client for the MetricsServer tests:
 * connect, send one GET, read to EOF. Deliberately dependency-free so
 * the tests exercise the server over real sockets, exactly as a scraper
 * would.
 */

#ifndef GMX_TESTS_TEST_HTTP_UTIL_HH
#define GMX_TESTS_TEST_HTTP_UTIL_HH

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace gmx::test {

/** Parsed-enough response: status code plus the full raw text. */
struct HttpResponse
{
    int status = -1;   //!< -1: connect/read failure
    std::string raw;   //!< status line + headers + body
    std::string body;  //!< bytes after the blank line
};

/** Set a receive/send deadline so a test can never hang on a socket. */
inline void
setClientDeadline(int fd, int seconds)
{
    timeval tv{};
    tv.tv_sec = seconds;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/** Connect to 127.0.0.1:port; -1 on failure. */
inline int
connectTcp(unsigned short port, int deadline_seconds = 10)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        ::close(fd);
        return -1;
    }
    setClientDeadline(fd, deadline_seconds);
    return fd;
}

/** Connect to a unix-domain socket path; -1 on failure. */
inline int
connectUnix(const std::string &path, int deadline_seconds = 10)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        ::close(fd);
        return -1;
    }
    setClientDeadline(fd, deadline_seconds);
    return fd;
}

/** Send raw bytes, tolerating partial writes. False on error. */
inline bool
sendRaw(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** Read until the peer closes (Connection: close responses). */
inline std::string
recvAll(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            out.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return out; // 0: clean close; <0: timeout or reset — either ends it
    }
}

/** Split a raw response into status code and body. */
inline HttpResponse
parseResponse(std::string raw)
{
    HttpResponse r;
    r.raw = std::move(raw);
    if (r.raw.compare(0, 9, "HTTP/1.1 ") == 0 && r.raw.size() >= 12)
        r.status = std::stoi(r.raw.substr(9, 3));
    const size_t blank = r.raw.find("\r\n\r\n");
    if (blank != std::string::npos)
        r.body = r.raw.substr(blank + 4);
    return r;
}

/** One whole GET request against 127.0.0.1:port. */
inline HttpResponse
httpGet(unsigned short port, const std::string &target,
        const std::string &method = "GET")
{
    HttpResponse r;
    const int fd = connectTcp(port);
    if (fd < 0)
        return r;
    sendRaw(fd, method + " " + target + " HTTP/1.1\r\n"
                "Host: localhost\r\nConnection: close\r\n\r\n");
    r = parseResponse(recvAll(fd));
    ::close(fd);
    return r;
}

/** One whole GET request over a unix-domain socket. */
inline HttpResponse
httpGetUnix(const std::string &path, const std::string &target)
{
    HttpResponse r;
    const int fd = connectUnix(path);
    if (fd < 0)
        return r;
    sendRaw(fd, "GET " + target + " HTTP/1.1\r\n"
                "Host: localhost\r\nConnection: close\r\n\r\n");
    r = parseResponse(recvAll(fd));
    ::close(fd);
    return r;
}

} // namespace gmx::test

#endif // GMX_TESTS_TEST_HTTP_UTIL_HH
