/**
 * @file
 * Tests for the behavioural GenASM vault model: functional correctness
 * (real verified alignments) and agreement with the analytic per-window
 * cycle estimate of hw/dsa.cc.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "hw/dsa.hh"
#include "hw/genasm_model.hh"
#include "sequence/generator.hh"

namespace gmx::hw {
namespace {

TEST(GenasmModel, ProducesValidNearOptimalAlignments)
{
    seq::Generator gen(1401);
    const GenasmVaultModel vault({96, 32});
    for (int rep = 0; rep < 4; ++rep) {
        const auto pair = gen.pair(800, 0.1);
        const auto run = vault.align(pair.pattern, pair.text);
        const auto check =
            align::verifyResult(pair.pattern, pair.text, run.result);
        ASSERT_TRUE(check.ok) << check.error;
        const i64 exact = align::nwDistance(pair.pattern, pair.text);
        EXPECT_GE(run.result.distance, exact);
        EXPECT_LE(run.result.distance, exact + exact / 2 + 8);
        EXPECT_GT(run.windows, 5u);
        EXPECT_GT(run.cycles, 0u);
    }
}

TEST(GenasmModel, CycleCountTracksAnalyticEstimate)
{
    // The measured behavioural cycles must land near dsa.cc's closed-form
    // 4W-per-window estimate (within ~40%, both directions).
    seq::Generator gen(1403);
    const auto pair = gen.pair(5000, 0.12);
    const GenasmVaultModel vault({96, 32});
    const auto run = vault.align(pair.pattern, pair.text);

    const auto pe = genasmVault(96);
    const double analytic_cycles =
        windowsPerAlignment(5000, 96, 32) * pe.cycles_per_window;
    EXPECT_GT(static_cast<double>(run.cycles), 0.6 * analytic_cycles);
    EXPECT_LT(static_cast<double>(run.cycles), 1.4 * analytic_cycles);
}

TEST(GenasmModel, CyclesScaleLinearlyWithLength)
{
    seq::Generator gen(1407);
    const GenasmVaultModel vault({96, 32});
    const auto small = vault.align(gen.pair(1000, 0.1).pattern,
                                   gen.pair(1000, 0.1).text);
    const auto large_pair = gen.pair(4000, 0.1);
    const auto large = vault.align(large_pair.pattern, large_pair.text);
    // Unrelated sequences in `small` make it a worst case; just check
    // the ~4x window-count ratio carries to cycles within slack.
    const double ratio = static_cast<double>(large.cycles) /
                         static_cast<double>(small.cycles);
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(GenasmModel, SingleWindowPair)
{
    seq::Generator gen(1409);
    const auto pair = gen.pair(80, 0.05);
    const GenasmVaultModel vault({96, 32});
    const auto run = vault.align(pair.pattern, pair.text);
    EXPECT_EQ(run.windows, 1u);
    EXPECT_EQ(run.result.distance,
              align::nwDistance(pair.pattern, pair.text));
}

} // namespace
} // namespace gmx::hw
