/**
 * @file
 * Unit tests for the common substrate: bit vectors, PRNG, stats, tables,
 * logging.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvector.hh"
#include "common/logging.hh"
#include "common/prng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace gmx {
namespace {

TEST(BitVector, StartsCleared)
{
    BitVector bv(130);
    EXPECT_EQ(bv.size(), 130u);
    EXPECT_EQ(bv.numWords(), 3u);
    EXPECT_EQ(bv.count(), 0u);
    for (size_t i = 0; i < bv.size(); ++i)
        EXPECT_FALSE(bv.get(i));
}

TEST(BitVector, SetAndGetAcrossWordBoundaries)
{
    BitVector bv(200);
    for (size_t i : {0u, 63u, 64u, 127u, 128u, 199u})
        bv.set(i);
    EXPECT_EQ(bv.count(), 6u);
    EXPECT_TRUE(bv.get(63));
    EXPECT_TRUE(bv.get(64));
    EXPECT_FALSE(bv.get(65));
    bv.set(64, false);
    EXPECT_FALSE(bv.get(64));
    EXPECT_EQ(bv.count(), 5u);
}

TEST(BitVector, FillRespectsTailBits)
{
    BitVector bv(70, true);
    EXPECT_EQ(bv.count(), 70u);
    // The last word must not carry garbage above bit 5.
    EXPECT_EQ(bv.word(1), (u64{1} << 6) - 1);
    bv.clear();
    EXPECT_EQ(bv.count(), 0u);
    bv.fill();
    EXPECT_EQ(bv.count(), 70u);
}

TEST(BitVector, WordsForMatchesCeilDivision)
{
    EXPECT_EQ(BitVector::wordsFor(0), 0u);
    EXPECT_EQ(BitVector::wordsFor(1), 1u);
    EXPECT_EQ(BitVector::wordsFor(64), 1u);
    EXPECT_EQ(BitVector::wordsFor(65), 2u);
    EXPECT_EQ(BitVector::wordsFor(128), 2u);
}

TEST(BitVector, Equality)
{
    BitVector a(100), b(100);
    EXPECT_EQ(a, b);
    a.set(42);
    EXPECT_FALSE(a == b);
    b.set(42);
    EXPECT_EQ(a, b);
}

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Prng, BelowRespectsBound)
{
    Prng rng(7);
    std::set<u64> seen;
    for (int i = 0; i < 4000; ++i) {
        const u64 v = rng.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Prng, UniformInUnitInterval)
{
    Prng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001); // sample stddev
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeoMean, MatchesHandComputedValue)
{
    GeoMean g;
    g.add(2.0);
    g.add(8.0);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.50"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(1234567LL), "1,234,567");
    EXPECT_EQ(TextTable::num(-42LL), "-42");
    EXPECT_EQ(TextTable::num(0LL), "0");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(GMX_FATAL("bad input %d", 42), FatalError);
    try {
        GMX_FATAL("bad input %d", 42);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad input 42");
    }
}

TEST(Logging, FormatHandlesLongStrings)
{
    const std::string long_str(500, 'x');
    try {
        GMX_FATAL("%s", long_str.c_str());
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()).size(), 500u);
    }
}

} // namespace
} // namespace gmx
