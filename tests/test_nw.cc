/**
 * @file
 * Tests for the Needleman-Wunsch reference aligner. Everything else is
 * differential-tested against this module, so it gets direct scrutiny:
 * hand-computed cases, recurrence invariants, and CIGAR verification.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(NwDistance, HandComputedCases)
{
    EXPECT_EQ(nwDistance(Sequence(""), Sequence("")), 0);
    EXPECT_EQ(nwDistance(Sequence("ACGT"), Sequence("ACGT")), 0);
    EXPECT_EQ(nwDistance(Sequence("ACGT"), Sequence("")), 4);
    EXPECT_EQ(nwDistance(Sequence(""), Sequence("ACGT")), 4);
    EXPECT_EQ(nwDistance(Sequence("A"), Sequence("C")), 1);
    // Paper Figure 1: GATT vs GCAT -> 2.
    EXPECT_EQ(nwDistance(Sequence("GATT"), Sequence("GCAT")), 2);
    // Classic: kitten-like DNA analogue.
    EXPECT_EQ(nwDistance(Sequence("ACGTACGT"), Sequence("AGTACGGT")), 2);
}

TEST(NwDistance, Symmetry)
{
    seq::Generator gen(11);
    for (int rep = 0; rep < 10; ++rep) {
        const auto a = gen.random(80);
        const auto b = gen.random(90);
        EXPECT_EQ(nwDistance(a, b), nwDistance(b, a));
    }
}

TEST(NwDistance, TriangleInequality)
{
    seq::Generator gen(13);
    for (int rep = 0; rep < 10; ++rep) {
        const auto a = gen.random(50);
        const auto b = gen.mutate(a, 0.2);
        const auto c = gen.mutate(b, 0.2);
        EXPECT_LE(nwDistance(a, c),
                  nwDistance(a, b) + nwDistance(b, c));
    }
}

TEST(NwDistance, BoundedByLengths)
{
    seq::Generator gen(17);
    for (int rep = 0; rep < 10; ++rep) {
        const auto p = gen.random(60);
        const auto t = gen.random(100);
        const i64 d = nwDistance(p, t);
        EXPECT_GE(d, 40); // at least the length difference
        EXPECT_LE(d, 100); // at most the longer length
    }
}

TEST(NwDistance, ErrorRateTracksInjectedErrors)
{
    seq::Generator gen(19);
    const auto text = gen.random(2000);
    const auto pattern = gen.mutate(text, 0.05);
    const i64 d = nwDistance(pattern, text);
    // Edit distance <= injected errors; close to it for low error rates.
    EXPECT_GT(d, 50);
    EXPECT_LT(d, 140);
}

TEST(NwAlign, DistanceMatchesScoreOnlyVariant)
{
    for (const auto &params : test::standardGrid()) {
        const auto pair = test::makePair(params);
        const auto res = nwAlign(pair.pattern, pair.text);
        EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text))
            << test::paramName(params);
    }
}

TEST(NwAlign, CigarVerifiesOnGrid)
{
    for (const auto &params : test::standardGrid()) {
        const auto pair = test::makePair(params);
        const auto res = nwAlign(pair.pattern, pair.text);
        const auto check = verifyResult(pair.pattern, pair.text, res);
        EXPECT_TRUE(check.ok)
            << test::paramName(params) << ": " << check.error;
    }
}

TEST(NwAlign, EmptyInputs)
{
    const auto res1 = nwAlign(Sequence(""), Sequence("ACG"));
    EXPECT_EQ(res1.distance, 3);
    EXPECT_EQ(res1.cigar.str(), "DDD");
    const auto res2 = nwAlign(Sequence("ACG"), Sequence(""));
    EXPECT_EQ(res2.distance, 3);
    EXPECT_EQ(res2.cigar.str(), "III");
    const auto res3 = nwAlign(Sequence(""), Sequence(""));
    EXPECT_EQ(res3.distance, 0);
    EXPECT_TRUE(res3.cigar.empty());
}

TEST(NwMatrixRow, MatchesKnownValues)
{
    // Row 0 is 0..m.
    const Sequence p("GATT"), t("GCAT");
    const auto row0 = nwMatrixRow(p, t, 0);
    ASSERT_EQ(row0.size(), 5u);
    for (size_t j = 0; j < row0.size(); ++j)
        EXPECT_EQ(row0[j], static_cast<i64>(j));
    // Bottom row's last element is the distance.
    const auto row4 = nwMatrixRow(p, t, 4);
    EXPECT_EQ(row4.back(), 2);
    // Paper Figure 1 score matrix row 2 (pattern prefix "GA"): 2 1 1 1 2.
    const auto row2 = nwMatrixRow(p, t, 2);
    const i64 expect[] = {2, 1, 1, 1, 2};
    for (size_t j = 0; j < 5; ++j)
        EXPECT_EQ(row2[j], expect[j]) << "col " << j;
}

TEST(NwMatrixRow, AdjacentCellPropertiesHold)
{
    // BPM's foundational property: adjacent row/column cells differ by at
    // most 1 (§2.3). Verify on a random instance.
    seq::Generator gen(23);
    const auto p = gen.random(40);
    const auto t = gen.random(45);
    std::vector<i64> prev = nwMatrixRow(p, t, 0);
    for (size_t i = 1; i <= p.size(); ++i) {
        const auto row = nwMatrixRow(p, t, i);
        for (size_t j = 0; j < row.size(); ++j) {
            EXPECT_LE(std::abs(row[j] - prev[j]), 1); // vertical delta
            if (j > 0) {
                EXPECT_LE(std::abs(row[j] - row[j - 1]), 1); // horizontal
            }
        }
        prev = row;
    }
}

} // namespace
} // namespace gmx::align
