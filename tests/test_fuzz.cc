/**
 * @file
 * Randomized stress tests: hundreds of random (length, error, tile,
 * algorithm) configurations, every result differential-checked against
 * the NW reference and every CIGAR verified. The goal is breadth — odd
 * lengths, extreme error rates, degenerate alphabets — beyond the
 * curated grids of the per-module suites.
 */

#include <gtest/gtest.h>

#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/hirschberg.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"
#include "serve/protocol.hh"

namespace gmx {
namespace {

using align::AlignResult;
using seq::Sequence;

/** Draw a random pair with occasionally-degenerate characteristics. */
seq::SequencePair
randomPair(seq::Generator &gen)
{
    const u64 kind = gen.prng().below(10);
    const size_t len = 1 + gen.prng().below(kind < 2 ? 12 : 400);
    seq::SequencePair pair;
    if (kind == 9) {
        // Unrelated sequences of independent lengths.
        pair.pattern = gen.random(1 + gen.prng().below(300));
        pair.text = gen.random(len);
    } else if (kind == 8) {
        // Low-complexity: runs of a single base with sprinkled noise.
        std::string a(len, 'A');
        pair.text = Sequence(a);
        pair.pattern = gen.mutate(pair.text, 0.1);
    } else {
        const double err = gen.prng().uniform() * 0.4;
        pair = gen.pair(len, err);
        if (pair.pattern.empty())
            pair.pattern = gen.random(1);
    }
    return pair;
}

TEST(Fuzz, AllExactAlignersAgreeWithNw)
{
    seq::Generator gen(0xF00D);
    for (int rep = 0; rep < 150; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);
        const unsigned tile =
            static_cast<unsigned>(2 + gen.prng().below(63));

        const AlignResult results[] = {
            core::fullGmxAlign(pair.pattern, pair.text, tile),
            core::bandedGmxAuto(pair.pattern, pair.text, true, 8, tile),
            align::bpmAlign(pair.pattern, pair.text),
            align::edlibAlign(pair.pattern, pair.text, true, 8),
            align::hirschbergAlign(pair.pattern, pair.text),
        };
        for (const auto &res : results) {
            ASSERT_EQ(res.distance, expect)
                << "rep=" << rep << " tile=" << tile << " n="
                << pair.pattern.size() << " m=" << pair.text.size();
            const auto check =
                align::verifyResult(pair.pattern, pair.text, res);
            ASSERT_TRUE(check.ok) << "rep=" << rep << ": " << check.error;
        }
    }
}

TEST(Fuzz, HeuristicsNeverBeatOptimalAndAlwaysVerify)
{
    seq::Generator gen(0xBEEF);
    for (int rep = 0; rep < 60; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);

        const auto windowed = core::windowedGmxAlign(
            pair.pattern, pair.text, 16,
            {48, static_cast<size_t>(8 + gen.prng().below(24))});
        ASSERT_GE(windowed.distance, expect) << rep;
        ASSERT_TRUE(
            align::verifyResult(pair.pattern, pair.text, windowed).ok)
            << rep;

        const auto genasm =
            align::genasmCpuAlign(pair.pattern, pair.text, {48, 16});
        ASSERT_GE(genasm.distance, expect) << rep;
        ASSERT_TRUE(
            align::verifyResult(pair.pattern, pair.text, genasm).ok)
            << rep;
    }
}

TEST(Fuzz, BandedVerdictsAreConsistent)
{
    // For random k: found => distance == optimal and distance <= k;
    // not-found => optimal > k (banded never falsely rejects).
    seq::Generator gen(0xCAFE);
    for (int rep = 0; rep < 80; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);
        const i64 k = static_cast<i64>(gen.prng().below(80));
        const auto gmx_res =
            core::bandedGmxAlign(pair.pattern, pair.text, k, false);
        const auto bpm_res =
            align::bpmBandedAlign(pair.pattern, pair.text, k, false);
        for (const auto &res : {gmx_res, bpm_res}) {
            if (res.found()) {
                ASSERT_EQ(res.distance, expect) << rep << " k=" << k;
                ASSERT_LE(res.distance, k);
            } else {
                ASSERT_GT(expect, k) << rep << " k=" << k;
            }
        }
    }
}

// -------------------------------------------------------------------
// Serve wire-protocol fuzz: random frames round-trip exactly; hostile
// byte streams (truncations, bit flips, garbage) produce typed errors,
// never a crash or out-of-bounds read.
// -------------------------------------------------------------------

/** Decode one whole encoded frame through the full header+body path. */
Status
decodeWhole(const std::string &wire)
{
    serve::FrameHeader h;
    if (Status s = serve::decodeHeader(wire.data(), wire.size(),
                                       serve::kDefaultMaxFrameBytes, h);
        !s.ok())
        return s;
    // Hand the decoder every byte that is actually present, not what
    // the header promised: short buffers and trailing garbage must both
    // surface as typed errors from the strict decoders.
    const char *body = wire.data() + serve::kHeaderBytes;
    const size_t len = wire.size() - serve::kHeaderBytes;
    switch (h.type) {
      case serve::FrameType::Hello: {
        serve::HelloFrame f;
        return serve::decodeHello(body, len, f);
      }
      case serve::FrameType::HelloAck: {
        serve::HelloAckFrame f;
        return serve::decodeHelloAck(body, len, f);
      }
      case serve::FrameType::AlignRequest: {
        serve::AlignRequestFrame f;
        return serve::decodeAlignRequest(body, len, f);
      }
      case serve::FrameType::AlignResponse: {
        serve::AlignResponseFrame f;
        return serve::decodeAlignResponse(body, len, f);
      }
      case serve::FrameType::Error: {
        serve::ErrorFrame f;
        return serve::decodeError(body, len, f);
      }
      case serve::FrameType::Bye:
      case serve::FrameType::ByeAck:
        return serve::decodeEmpty(h.type, len);
    }
    return Status::internal("unreachable");
}

/** One random-but-valid frame of a random type. */
std::string
randomFrame(seq::Generator &gen)
{
    auto rand_string = [&](size_t max_len) {
        std::string s(gen.prng().below(max_len + 1), '\0');
        for (char &c : s)
            c = static_cast<char>(gen.prng().below(256));
        return s;
    };
    switch (gen.prng().below(7)) {
      case 0: {
        serve::HelloFrame f;
        f.priority = static_cast<serve::Priority>(gen.prng().below(3));
        // Any bit pattern: unknown feature offers must survive decode.
        f.features = static_cast<u8>(gen.prng().below(256));
        f.client_id = rand_string(serve::kMaxClientIdBytes);
        return serve::encodeHello(f);
      }
      case 1: {
        serve::HelloAckFrame f;
        f.features = static_cast<u8>(gen.prng().below(256));
        f.max_frame_bytes = static_cast<u32>(
            serve::kHeaderBytes + gen.prng().below(1u << 24));
        return serve::encodeHelloAck(f);
      }
      case 2: {
        serve::AlignRequestFrame f;
        f.id = gen.prng().next();
        f.max_edits = static_cast<u32>(gen.prng().below(1000));
        f.want_cigar = gen.prng().below(2) == 0;
        // Half the frames carry a deadline extension (a nonzero budget);
        // the other half are v1-shaped with no trailing bytes.
        if (gen.prng().below(2) == 0)
            f.deadline_us = 1 + gen.prng().next() % (u64{1} << 40);
        f.pattern = rand_string(300);
        f.text = rand_string(300);
        return serve::encodeAlignRequest(f);
      }
      case 3: {
        serve::AlignResponseFrame f;
        f.id = gen.prng().next();
        f.code = static_cast<StatusCode>(gen.prng().below(9));
        f.has_cigar = gen.prng().below(2) == 0;
        f.cache_hit = gen.prng().below(2) == 0;
        f.distance = gen.prng().below(2) == 0
                         ? align::kNoAlignment
                         : static_cast<i64>(gen.prng().below(100000));
        f.message = rand_string(64);
        f.cigar = rand_string(200);
        return serve::encodeAlignResponse(f);
      }
      case 4: {
        serve::ErrorFrame f;
        f.code = static_cast<StatusCode>(gen.prng().below(9));
        f.message = rand_string(64);
        return serve::encodeError(f);
      }
      case 5:
        return serve::encodeBye();
      default:
        return serve::encodeByeAck();
    }
}

TEST(Fuzz, ServeProtocolRandomFramesRoundTrip)
{
    seq::Generator gen(0x5EAF);
    for (int rep = 0; rep < 400; ++rep) {
        const std::string wire = randomFrame(gen);
        ASSERT_TRUE(decodeWhole(wire).ok()) << "rep=" << rep;
    }

    // Spot-check field fidelity on the richest frame type.
    serve::AlignRequestFrame in;
    in.id = 0xDEADBEEFCAFEF00Dull;
    in.max_edits = 0xFFFFFFFFu;
    in.want_cigar = false;
    in.deadline_us = 0xFFFFFFFFFFFFFFFFull;
    in.pattern = std::string(1000, 'G');
    in.text = "A";
    const std::string wire = serve::encodeAlignRequest(in);
    serve::FrameHeader h;
    ASSERT_TRUE(serve::decodeHeader(wire.data(), wire.size(),
                                    serve::kDefaultMaxFrameBytes, h)
                    .ok());
    serve::AlignRequestFrame out;
    ASSERT_TRUE(serve::decodeAlignRequest(wire.data() + serve::kHeaderBytes,
                                          h.payload_len, out)
                    .ok());
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.max_edits, in.max_edits);
    EXPECT_EQ(out.deadline_us, in.deadline_us);
    EXPECT_EQ(out.pattern, in.pattern);
    EXPECT_EQ(out.text, in.text);
}

TEST(Fuzz, ServeProtocolHostileBytesNeverCrash)
{
    seq::Generator gen(0xD15EA5E);
    int mutated_ok = 0, mutated_err = 0;
    for (int rep = 0; rep < 400; ++rep) {
        const std::string wire = randomFrame(gen);

        // Strict truncation: every prefix shorter than the whole frame
        // is an error (the decoder demands exact consumption).
        const size_t cut = gen.prng().below(wire.size());
        ASSERT_FALSE(decodeWhole(wire.substr(0, cut)).ok())
            << "rep=" << rep << " cut=" << cut;

        // Trailing garbage after the payload is an error too.
        ASSERT_FALSE(decodeWhole(wire + 'x').ok()) << "rep=" << rep;

        // A single flipped byte must never crash; it may decode (a
        // mutation inside a string field is legal) or fail typed.
        std::string bent = wire;
        bent[gen.prng().below(bent.size())] ^=
            static_cast<char>(1 + gen.prng().below(255));
        decodeWhole(bent).ok() ? ++mutated_ok : ++mutated_err;

        // Pure garbage of random length: must not crash; only byte
        // salads that accidentally spell the magic can get past the
        // header check.
        std::string junk(gen.prng().below(64), '\0');
        for (char &c : junk)
            c = static_cast<char>(gen.prng().below(256));
        (void)decodeWhole(junk);
    }
    // Flips hit the magic/type/length machinery often enough that both
    // outcomes must be observed — proves the harness exercises both.
    EXPECT_GT(mutated_err, 0);
}

} // namespace
} // namespace gmx
