/**
 * @file
 * Randomized stress tests: hundreds of random (length, error, tile,
 * algorithm) configurations, every result differential-checked against
 * the NW reference and every CIGAR verified. The goal is breadth — odd
 * lengths, extreme error rates, degenerate alphabets — beyond the
 * curated grids of the per-module suites.
 */

#include <gtest/gtest.h>

#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/hirschberg.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"

namespace gmx {
namespace {

using align::AlignResult;
using seq::Sequence;

/** Draw a random pair with occasionally-degenerate characteristics. */
seq::SequencePair
randomPair(seq::Generator &gen)
{
    const u64 kind = gen.prng().below(10);
    const size_t len = 1 + gen.prng().below(kind < 2 ? 12 : 400);
    seq::SequencePair pair;
    if (kind == 9) {
        // Unrelated sequences of independent lengths.
        pair.pattern = gen.random(1 + gen.prng().below(300));
        pair.text = gen.random(len);
    } else if (kind == 8) {
        // Low-complexity: runs of a single base with sprinkled noise.
        std::string a(len, 'A');
        pair.text = Sequence(a);
        pair.pattern = gen.mutate(pair.text, 0.1);
    } else {
        const double err = gen.prng().uniform() * 0.4;
        pair = gen.pair(len, err);
        if (pair.pattern.empty())
            pair.pattern = gen.random(1);
    }
    return pair;
}

TEST(Fuzz, AllExactAlignersAgreeWithNw)
{
    seq::Generator gen(0xF00D);
    for (int rep = 0; rep < 150; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);
        const unsigned tile =
            static_cast<unsigned>(2 + gen.prng().below(63));

        const AlignResult results[] = {
            core::fullGmxAlign(pair.pattern, pair.text, tile),
            core::bandedGmxAuto(pair.pattern, pair.text, true, 8, tile),
            align::bpmAlign(pair.pattern, pair.text),
            align::edlibAlign(pair.pattern, pair.text, true, 8),
            align::hirschbergAlign(pair.pattern, pair.text),
        };
        for (const auto &res : results) {
            ASSERT_EQ(res.distance, expect)
                << "rep=" << rep << " tile=" << tile << " n="
                << pair.pattern.size() << " m=" << pair.text.size();
            const auto check =
                align::verifyResult(pair.pattern, pair.text, res);
            ASSERT_TRUE(check.ok) << "rep=" << rep << ": " << check.error;
        }
    }
}

TEST(Fuzz, HeuristicsNeverBeatOptimalAndAlwaysVerify)
{
    seq::Generator gen(0xBEEF);
    for (int rep = 0; rep < 60; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);

        const auto windowed = core::windowedGmxAlign(
            pair.pattern, pair.text, 16,
            {48, static_cast<size_t>(8 + gen.prng().below(24))});
        ASSERT_GE(windowed.distance, expect) << rep;
        ASSERT_TRUE(
            align::verifyResult(pair.pattern, pair.text, windowed).ok)
            << rep;

        const auto genasm =
            align::genasmCpuAlign(pair.pattern, pair.text, {48, 16});
        ASSERT_GE(genasm.distance, expect) << rep;
        ASSERT_TRUE(
            align::verifyResult(pair.pattern, pair.text, genasm).ok)
            << rep;
    }
}

TEST(Fuzz, BandedVerdictsAreConsistent)
{
    // For random k: found => distance == optimal and distance <= k;
    // not-found => optimal > k (banded never falsely rejects).
    seq::Generator gen(0xCAFE);
    for (int rep = 0; rep < 80; ++rep) {
        const auto pair = randomPair(gen);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);
        const i64 k = static_cast<i64>(gen.prng().below(80));
        const auto gmx_res =
            core::bandedGmxAlign(pair.pattern, pair.text, k, false);
        const auto bpm_res =
            align::bpmBandedAlign(pair.pattern, pair.text, k, false);
        for (const auto &res : {gmx_res, bpm_res}) {
            if (res.found()) {
                ASSERT_EQ(res.distance, expect) << rep << " k=" << k;
                ASSERT_LE(res.distance, k);
            } else {
                ASSERT_GT(expect, k) << rep << " k=" << k;
            }
        }
    }
}

} // namespace
} // namespace gmx
