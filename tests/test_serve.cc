/**
 * @file
 * AlignServer tests over real sockets: protocol round-trips, TCP and
 * unix-socket batch correctness against nwAlign, the dedup cache
 * (hits, coalescing, fewer engine submissions than wire requests),
 * per-client quotas, priority shed ordering under a deterministically
 * blocked engine, graceful shutdown with a batch in flight, and
 * protocol-error handling. Runs under TSan in scripts/tier1.sh.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "align/nw.hh"
#include "common/net.hh"
#include "engine/engine.hh"
#include "sequence/generator.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "serve/router.hh"
#include "serve/server.hh"

namespace gmx::serve {
namespace {

/** Poll @p cond up to ~2s; true when it became true. */
bool
eventually(const std::function<bool()> &cond)
{
    for (int i = 0; i < 400; ++i) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/** Engines + started server with test-friendly defaults. */
struct Harness
{
    explicit Harness(AlignServerConfig scfg = {}, unsigned num_engines = 1,
                     engine::EngineConfig ecfg = {})
    {
        if (ecfg.workers == 0)
            ecfg.workers = 2;
        for (unsigned i = 0; i < num_engines; ++i)
            engines.push_back(std::make_unique<engine::Engine>(ecfg));
        std::vector<engine::Engine *> raw;
        for (auto &e : engines)
            raw.push_back(e.get());
        scfg.port = 0; // always ephemeral in tests
        server = std::make_unique<AlignServer>(raw, scfg);
        const Status s = server->start();
        EXPECT_TRUE(s.ok()) << s.toString();
    }

    ClientConfig clientConfig(const std::string &id = "test",
                              Priority prio = Priority::Normal) const
    {
        ClientConfig c;
        c.port = server->port();
        c.client_id = id;
        c.priority = prio;
        return c;
    }

    std::vector<std::unique_ptr<engine::Engine>> engines;
    std::unique_ptr<AlignServer> server;
};

// -------------------------------------------------------------------
// Protocol round-trips.
// -------------------------------------------------------------------

TEST(ServeProtocol, EveryFrameTypeRoundTrips)
{
    {
        HelloFrame in{Priority::High, "mapper-7"};
        const std::string wire = encodeHello(in);
        FrameHeader h;
        ASSERT_TRUE(decodeHeader(wire.data(), wire.size(),
                                 kDefaultMaxFrameBytes, h)
                        .ok());
        EXPECT_EQ(h.type, FrameType::Hello);
        HelloFrame out;
        ASSERT_TRUE(decodeHello(wire.data() + kHeaderBytes, h.payload_len,
                                out)
                        .ok());
        EXPECT_EQ(out.priority, Priority::High);
        EXPECT_EQ(out.client_id, "mapper-7");
    }
    {
        HelloAckFrame in{kVersion, 65536};
        const std::string wire = encodeHelloAck(in);
        HelloAckFrame out;
        ASSERT_TRUE(decodeHelloAck(wire.data() + kHeaderBytes,
                                   wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.max_frame_bytes, 65536u);
    }
    {
        AlignRequestFrame in;
        in.id = 42;
        in.max_edits = 7;
        in.want_cigar = true;
        in.pattern = "ACGTACGT";
        in.text = "ACGGACGT";
        const std::string wire = encodeAlignRequest(in);
        AlignRequestFrame out;
        ASSERT_TRUE(decodeAlignRequest(wire.data() + kHeaderBytes,
                                       wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.id, 42u);
        EXPECT_EQ(out.max_edits, 7u);
        EXPECT_TRUE(out.want_cigar);
        EXPECT_EQ(out.pattern, in.pattern);
        EXPECT_EQ(out.text, in.text);
    }
    {
        AlignResponseFrame in;
        in.id = 42;
        in.code = StatusCode::Ok;
        in.has_cigar = true;
        in.cache_hit = true;
        in.distance = 1;
        in.cigar = "MMMXMMMM";
        const std::string wire = encodeAlignResponse(in);
        AlignResponseFrame out;
        ASSERT_TRUE(decodeAlignResponse(wire.data() + kHeaderBytes,
                                        wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.id, 42u);
        EXPECT_EQ(out.code, StatusCode::Ok);
        EXPECT_TRUE(out.has_cigar);
        EXPECT_TRUE(out.cache_hit);
        EXPECT_EQ(out.distance, 1);
        EXPECT_EQ(out.cigar, "MMMXMMMM");
    }
    {
        // The no-alignment sentinel survives the -1 wire encoding.
        AlignResponseFrame in;
        in.distance = align::kNoAlignment;
        const std::string wire = encodeAlignResponse(in);
        AlignResponseFrame out;
        ASSERT_TRUE(decodeAlignResponse(wire.data() + kHeaderBytes,
                                        wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.distance, align::kNoAlignment);
    }
    {
        ErrorFrame in{StatusCode::Overloaded, "go away"};
        const std::string wire = encodeError(in);
        ErrorFrame out;
        ASSERT_TRUE(decodeError(wire.data() + kHeaderBytes,
                                wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.code, StatusCode::Overloaded);
        EXPECT_EQ(out.message, "go away");
    }
    EXPECT_TRUE(decodeEmpty(FrameType::Bye,
                            encodeBye().size() - kHeaderBytes)
                    .ok());
    EXPECT_FALSE(decodeEmpty(FrameType::ByeAck, 1).ok());
}

TEST(ServeProtocol, HeaderRejectsGarbage)
{
    const std::string good = encodeBye();
    FrameHeader h;

    std::string bad = good;
    bad[0] ^= 0x5a; // magic
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[4] = 9; // version
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[5] = 99; // frame type
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[6] = 1; // reserved bits
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    // Payload over the negotiated cap.
    bad = good;
    bad[8] = static_cast<char>(0xff);
    bad[9] = static_cast<char>(0xff);
    EXPECT_FALSE(decodeHeader(bad.data(), bad.size(), 1024, h).ok());

    EXPECT_FALSE(decodeHeader(good.data(), kHeaderBytes - 1,
                              kDefaultMaxFrameBytes, h)
                     .ok());
}

// -------------------------------------------------------------------
// End-to-end correctness.
// -------------------------------------------------------------------

TEST(AlignServer, TcpBatchMatchesNwAlign)
{
    Harness h;
    AlignClient client(h.clientConfig("mapper"));
    ASSERT_TRUE(client.connect().ok());
    EXPECT_EQ(client.maxFrameBytes(), kDefaultMaxFrameBytes);

    seq::Generator gen(4242);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.push_back(gen.pair(120 + i, i % 2 ? 0.02 : 0.15));

    const auto results = client.alignBatch(pairs, true);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        const align::AlignResult ref =
            align::nwAlign(pairs[i].pattern, pairs[i].text);
        EXPECT_EQ(results[i]->distance, ref.distance) << "pair " << i;
        ASSERT_TRUE(results[i]->has_cigar);
        // The cigar must be a genuine traceback for THIS pair: right
        // lengths, and its op count equals the reported distance.
        EXPECT_EQ(results[i]->cigar.patternLength(),
                  pairs[i].pattern.size());
        EXPECT_EQ(results[i]->cigar.textLength(), pairs[i].text.size());
        EXPECT_EQ(static_cast<i64>(results[i]->cigar.editDistance()),
                  results[i]->distance);
    }
    EXPECT_TRUE(client.bye().ok());

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.requests, pairs.size());
    EXPECT_EQ(snap.responses_ok, pairs.size());
    EXPECT_EQ(snap.responses_failed, 0u);
    EXPECT_EQ(snap.pending, 0u);
    ASSERT_EQ(snap.clients.size(), 1u);
    EXPECT_EQ(snap.clients[0].id, "mapper");
    EXPECT_EQ(snap.clients[0].completed, pairs.size());
}

TEST(AlignServer, UnixSocketBatchMatchesNwAlign)
{
    AlignServerConfig scfg;
    scfg.unix_path = "/tmp/gmx_serve_test_" + std::to_string(::getpid()) +
                     ".sock";
    Harness h(scfg);

    ClientConfig ccfg;
    ccfg.unix_path = scfg.unix_path;
    ccfg.client_id = "unix-mapper";
    AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(515);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.push_back(gen.pair(200, 0.08));

    const auto results = client.alignBatch(pairs, false);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwAlign(pairs[i].pattern, pairs[i].text).distance);
        EXPECT_FALSE(results[i]->has_cigar);
    }
    EXPECT_TRUE(client.bye().ok());
    h.server->stop();
    // stop() unlinked the socket path.
    EXPECT_NE(::access(scfg.unix_path.c_str(), F_OK), 0);
}

TEST(AlignServer, MaxEditsIsAPostFilter)
{
    Harness h;
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(99);
    const seq::SequencePair pair = gen.pair(300, 0.2);
    const i64 truth = align::nwAlign(pair.pattern, pair.text).distance;
    ASSERT_GT(truth, 1);

    auto strict = client.alignBatch({pair}, true, 1);
    ASSERT_TRUE(strict[0].ok());
    EXPECT_FALSE(strict[0]->found());
    EXPECT_FALSE(strict[0]->has_cigar);

    auto loose =
        client.alignBatch({pair}, true, static_cast<u32>(truth));
    ASSERT_TRUE(loose[0].ok());
    EXPECT_EQ(loose[0]->distance, truth);
    EXPECT_TRUE(loose[0]->has_cigar);
}

// -------------------------------------------------------------------
// Dedup cache.
// -------------------------------------------------------------------

TEST(AlignServer, HotKeyBurstHitsTheCache)
{
    Harness h;
    AlignClient client(h.clientConfig("hot"));
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(7);
    const seq::SequencePair hot = gen.pair(400, 0.1);
    constexpr size_t kRepeats = 16;
    std::vector<seq::SequencePair> pairs(kRepeats, hot);

    const auto results = client.alignBatch(pairs, true);
    const i64 truth = align::nwAlign(hot.pattern, hot.text).distance;
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok()) << r.status().toString();
        EXPECT_EQ(r->distance, truth);
    }

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.requests, kRepeats);
    EXPECT_GT(snap.cache_hits + snap.cache_coalesced, 0u);
    EXPECT_GE(snap.cache_entries, 1u);
    // The point of the cache: far fewer engine submissions than wire
    // requests (duplicates were answered without kernel work).
    EXPECT_LT(h.engines[0]->metrics().submitted, kRepeats);
    EXPECT_GT(client.cacheHits(), 0u);
}

TEST(AlignServer, DifferentOptionsAreDifferentCacheKeys)
{
    Harness h;
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(606);
    const seq::SequencePair pair = gen.pair(150, 0.05);
    (void)client.alignBatch({pair}, true, 0);
    (void)client.alignBatch({pair}, false, 0); // different want_cigar
    (void)client.alignBatch({pair}, true, 3);  // different max_edits

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.cache_misses, 3u);
    EXPECT_EQ(snap.cache_entries, 3u);
}

TEST(AlignServer, ConcurrentDuplicatesCoalesce)
{
    // Single worker + a deliberately blocked engine: the first request
    // for the hot key is guaranteed still in flight when the duplicates
    // arrive, so they MUST coalesce (join the same future) rather than
    // resubmit.
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    Harness h({}, 1, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(11);
    const seq::SequencePair blocker_pair = gen.pair(50, 0.0);
    auto blocked = h.engines[0]->submit(
        blocker_pair, align::PairAligner([open](const seq::SequencePair &) {
            open.wait();
            return align::AlignResult{};
        }));

    AlignClient client(h.clientConfig("dup"));
    ASSERT_TRUE(client.connect().ok());
    const seq::SequencePair hot = gen.pair(200, 0.05);
    constexpr size_t kRepeats = 8;

    // Stream the duplicates raw (no reads yet — responses can't arrive
    // while the engine is gated anyway).
    for (size_t i = 0; i < kRepeats; ++i) {
        AlignRequestFrame req;
        req.id = i;
        req.want_cigar = true;
        req.pattern = hot.pattern.str();
        req.text = hot.text.str();
        ASSERT_TRUE(client.sendRequest(req).ok());
    }
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().requests.load(std::memory_order_relaxed) ==
               kRepeats;
    }));

    const ServeSnapshot mid = h.server->serveSnapshot();
    EXPECT_EQ(mid.cache_misses, 1u);
    EXPECT_EQ(mid.cache_hits + mid.cache_coalesced, kRepeats - 1);
    EXPECT_GT(mid.cache_coalesced, 0u);

    gate.set_value();
    const i64 truth = align::nwAlign(hot.pattern, hot.text).distance;
    for (size_t i = 0; i < kRepeats; ++i) {
        AlignResponseFrame resp;
        ASSERT_TRUE(client.readResponse(resp).ok());
        EXPECT_EQ(resp.code, StatusCode::Ok);
        EXPECT_EQ(resp.distance, truth);
    }
    ASSERT_TRUE(blocked.get().ok());
    // Exactly one engine submission (plus the blocker) for 8 requests.
    EXPECT_EQ(h.engines[0]->metrics().submitted, 2u);
}

// -------------------------------------------------------------------
// Quotas and priority shedding.
// -------------------------------------------------------------------

TEST(QuotaRegistry, TokenBucketRefillsDeterministically)
{
    QuotaConfig qc;
    qc.tokens_per_sec = 2.0;
    qc.burst = 3.0;
    QuotaRegistry quota(qc);

    // A new client spends its full burst, then is throttled.
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_FALSE(quota.admit("a", 100.0));
    // Half a second refills one token (2/s).
    EXPECT_TRUE(quota.admit("a", 100.5));
    EXPECT_FALSE(quota.admit("a", 100.5));
    // A backwards clock refills nothing (and must not crash).
    EXPECT_FALSE(quota.admit("a", 99.0));
    // Refill caps at the burst.
    EXPECT_TRUE(quota.admit("a", 1000.0));
    // Other clients have their own bucket.
    EXPECT_TRUE(quota.admit("b", 1000.0));

    const auto snap = quota.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "a");
    EXPECT_EQ(snap[0].second.admitted, 5u);
    EXPECT_EQ(snap[0].second.throttled, 3u);

    // Disabled quotas admit everything.
    QuotaRegistry off{QuotaConfig{}};
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(off.admit("x", 0.0));
}

TEST(AlignServer, QuotaThrottlesChattyClient)
{
    AlignServerConfig scfg;
    scfg.quota.tokens_per_sec = 0.001; // effectively no refill in-test
    scfg.quota.burst = 4;
    Harness h(scfg);

    AlignClient client(h.clientConfig("chatty"));
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(13);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 10; ++i)
        pairs.push_back(gen.pair(100, 0.05));

    const auto results = client.alignBatch(pairs, false);
    size_t ok = 0, throttled = 0;
    for (const auto &r : results) {
        if (r.ok())
            ++ok;
        else if (r.status().code() == StatusCode::Overloaded)
            ++throttled;
    }
    EXPECT_EQ(ok, 4u);
    EXPECT_EQ(throttled, 6u);

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.quota_throttled, 6u);
    ASSERT_EQ(snap.clients.size(), 1u);
    EXPECT_EQ(snap.clients[0].throttled, 6u);
}

TEST(AlignServer, LowPriorityShedsBeforeHigh)
{
    // One worker, blocked by a gated custom aligner, makes "pending"
    // fully deterministic: serve-path requests pile up and cannot
    // complete until the gate opens.
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    AlignServerConfig scfg;
    scfg.pending_cap = 4; // watermarks: low 2, normal 3, high 4
    Harness h(scfg, 1, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(17);
    auto blocked = h.engines[0]->submit(
        gen.pair(50, 0.0),
        align::PairAligner([open](const seq::SequencePair &) {
            open.wait();
            return align::AlignResult{};
        }));

    // Fill pending to 3 with distinct requests from a HIGH-priority
    // filler (its watermark is the full cap, so none of these shed).
    AlignClient filler(h.clientConfig("filler", Priority::High));
    ASSERT_TRUE(filler.connect().ok());
    for (u64 i = 0; i < 3; ++i) {
        const seq::SequencePair p = gen.pair(80, 0.05);
        AlignRequestFrame req;
        req.id = i;
        req.pattern = p.pattern.str();
        req.text = p.text.str();
        ASSERT_TRUE(filler.sendRequest(req).ok());
    }
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().pending.load(std::memory_order_relaxed) ==
               3;
    }));

    // pending=3: >= low watermark (2) and >= normal (3), < high (4).
    AlignClient low(h.clientConfig("low", Priority::Low));
    ASSERT_TRUE(low.connect().ok());
    auto low_res = low.alignBatch({gen.pair(80, 0.05)}, false);
    ASSERT_FALSE(low_res[0].ok());
    EXPECT_EQ(low_res[0].status().code(), StatusCode::Overloaded);

    AlignClient normal(h.clientConfig("normal", Priority::Normal));
    ASSERT_TRUE(normal.connect().ok());
    auto normal_res = normal.alignBatch({gen.pair(80, 0.05)}, false);
    ASSERT_FALSE(normal_res[0].ok());
    EXPECT_EQ(normal_res[0].status().code(), StatusCode::Overloaded);

    // High priority is still admitted at pending=3; release the gate so
    // its (and the fillers') alignments actually run.
    AlignClient high(h.clientConfig("vip", Priority::High));
    ASSERT_TRUE(high.connect().ok());
    std::thread opener([&] {
        eventually([&] {
            return h.server->metrics().pending.load(
                       std::memory_order_relaxed) == 4;
        });
        gate.set_value();
    });
    auto high_res = high.alignBatch({gen.pair(80, 0.05)}, false);
    opener.join();
    ASSERT_TRUE(high_res[0].ok()) << high_res[0].status().toString();
    ASSERT_TRUE(blocked.get().ok());

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.shed_by_priority[static_cast<unsigned>(Priority::Low)],
              1u);
    EXPECT_EQ(
        snap.shed_by_priority[static_cast<unsigned>(Priority::Normal)], 1u);
    EXPECT_EQ(snap.shed_by_priority[static_cast<unsigned>(Priority::High)],
              0u);
}

// -------------------------------------------------------------------
// Shard routing.
// -------------------------------------------------------------------

TEST(ShardRouter, BalancesByOutstandingLoadAndSettlesOnComplete)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    engine::Engine e0(ecfg), e1(ecfg);
    ServeMetrics metrics;
    RouterConfig rcfg;
    rcfg.cache_capacity = 0; // isolate routing from dedup
    ShardRouter router({&e0, &e1}, rcfg, &metrics);

    seq::Generator gen(19);
    std::vector<Ticket> tickets;
    for (int i = 0; i < 8; ++i)
        tickets.push_back(router.submit(gen.pair(100, 0.05), false, 0));

    // With equal-sized requests and no completions, the min-load pick
    // alternates: 4 requests per engine.
    auto stats = router.shardStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].routed, 4u);
    EXPECT_EQ(stats[1].routed, 4u);
    EXPECT_EQ(router.outstanding(), 8u);

    for (auto &t : tickets) {
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, true);
    }
    EXPECT_EQ(router.outstanding(), 0u);
    stats = router.shardStats();
    EXPECT_EQ(stats[0].outstanding_bytes, 0u);
    EXPECT_EQ(stats[1].outstanding_bytes, 0u);
}

TEST(AlignServer, MultiEngineServingSpreadsLoad)
{
    // Gate every engine's lone worker so no request can complete while
    // the batch is being routed: outstanding load only grows, and the
    // least-loaded choice provably balances the shards. (Ungated, a
    // writer that drains as fast as the reader routes leaves every
    // decision a tie, which always picks shard 0.)
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    Harness h({}, 3, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(23);
    for (auto &e : h.engines) {
        (void)e->submit(gen.pair(40, 0.0),
                        align::PairAligner([open](const seq::SequencePair &) {
                            open.wait();
                            return align::AlignResult{};
                        }));
    }

    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 30; ++i)
        pairs.push_back(gen.pair(150, 0.1));

    std::thread batch_thread([&] {
        const auto results = client.alignBatch(pairs, false);
        for (const auto &r : results)
            EXPECT_TRUE(r.ok());
    });
    // All 30 route while the engines are gated...
    ASSERT_TRUE(eventually([&] {
        u64 total = 0;
        for (const auto &s : h.server->serveSnapshot().shards)
            total += s.routed;
        return total == 30;
    }));
    const ServeSnapshot snap = h.server->serveSnapshot();
    gate.set_value();
    batch_thread.join();

    // ...and with loads frozen during routing, the spread is near-even:
    // a shard can lag the leaders by at most one request's weight.
    ASSERT_EQ(snap.shards.size(), 3u);
    u64 total = 0;
    for (const auto &s : snap.shards) {
        EXPECT_GE(s.routed, 9u) << "load spread is lopsided";
        total += s.routed;
    }
    EXPECT_EQ(total, 30u);
}

// -------------------------------------------------------------------
// Failure paths and lifecycle.
// -------------------------------------------------------------------

TEST(AlignServer, ValidationRejectsWithTypedStatusAndKeepsConnection)
{
    AlignServerConfig scfg;
    scfg.limits.reject_non_acgt = true;
    Harness h(scfg);
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    AlignRequestFrame bad;
    bad.id = 1;
    bad.pattern = ""; // empty pattern: InvalidInput
    bad.text = "ACGT";
    ASSERT_TRUE(client.sendRequest(bad).ok());
    AlignResponseFrame resp;
    ASSERT_TRUE(client.readResponse(resp).ok());
    EXPECT_EQ(resp.id, 1u);
    EXPECT_EQ(resp.code, StatusCode::InvalidInput);

    bad.id = 2;
    bad.pattern = "ACGTNNNN"; // non-ACGT with reject_non_acgt
    ASSERT_TRUE(client.sendRequest(bad).ok());
    ASSERT_TRUE(client.readResponse(resp).ok());
    EXPECT_EQ(resp.id, 2u);
    EXPECT_EQ(resp.code, StatusCode::InvalidInput);

    // The connection survived request-level rejections.
    seq::Generator gen(29);
    auto good = client.alignBatch({gen.pair(100, 0.05)}, false);
    ASSERT_TRUE(good[0].ok());
    // And rejects never touched an engine or the cache.
    EXPECT_EQ(h.engines[0]->metrics().submitted, 1u);

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.responses_failed, 2u);
    EXPECT_EQ(snap.cache_misses, 1u);
}

TEST(AlignServer, ProtocolGarbageGetsTypedErrorNeverCrashes)
{
    Harness h;

    // Garbage instead of a Hello: typed error, connection closed.
    {
        int fd = net::connectTcp("127.0.0.1", h.server->port(),
                                 std::chrono::milliseconds(2000));
        ASSERT_GE(fd, 0);
        const std::string junk = "this is definitely not a gmx frame!!";
        ASSERT_EQ(net::sendAll(fd, junk.data(), junk.size()),
                  net::IoResult::Ok);
        char hdr[kHeaderBytes];
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        FrameHeader fh;
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        EXPECT_EQ(fh.type, FrameType::Error);
        ::close(fd);
    }

    // A legal handshake followed by an unexpected frame type.
    {
        int fd = net::connectTcp("127.0.0.1", h.server->port(),
                                 std::chrono::milliseconds(2000));
        ASSERT_GE(fd, 0);
        const std::string hello = encodeHello({Priority::Normal, "rogue"});
        ASSERT_EQ(net::sendAll(fd, hello.data(), hello.size()),
                  net::IoResult::Ok);
        char hdr[kHeaderBytes];
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        FrameHeader fh;
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        ASSERT_EQ(fh.type, FrameType::HelloAck);
        std::string payload(fh.payload_len, '\0');
        ASSERT_EQ(net::recvExact(fd, payload.data(), payload.size()),
                  net::IoResult::Ok);

        // A HelloAck is a server->client frame; sending one is illegal.
        const std::string ack = encodeHelloAck({});
        ASSERT_EQ(net::sendAll(fd, ack.data(), ack.size()),
                  net::IoResult::Ok);
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        EXPECT_EQ(fh.type, FrameType::Error);
        ::close(fd);
    }

    ASSERT_TRUE(eventually([&] {
        return h.server->serveSnapshot().protocol_errors >= 2;
    }));

    // The server is still healthy for well-behaved clients.
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(31);
    auto ok = client.alignBatch({gen.pair(100, 0.05)}, false);
    ASSERT_TRUE(ok[0].ok());
}

TEST(AlignServer, ConnectionCapRefusesWithTypedError)
{
    AlignServerConfig scfg;
    scfg.max_connections = 1;
    scfg.handler_threads = 1;
    Harness h(scfg);

    AlignClient first(h.clientConfig("one"));
    ASSERT_TRUE(first.connect().ok());

    AlignClient second(h.clientConfig("two"));
    const Status s = second.connect();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Overloaded);
    EXPECT_EQ(h.server->serveSnapshot().connections_refused, 1u);

    // Releasing the first slot lets a new client in.
    EXPECT_TRUE(first.bye().ok());
    ASSERT_TRUE(eventually(
        [&] { return second.connected() || second.connect().ok(); }));
}

TEST(AlignServer, GracefulStopDrainsInFlightBatch)
{
    Harness h;
    AlignClient client(h.clientConfig("drainer"));
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(37);
    constexpr size_t kBatch = 12;
    std::vector<seq::SequencePair> pairs;
    for (size_t i = 0; i < kBatch; ++i) {
        pairs.push_back(gen.pair(300, 0.1));
        AlignRequestFrame req;
        req.id = i;
        req.want_cigar = false;
        req.pattern = pairs[i].pattern.str();
        req.text = pairs[i].text.str();
        ASSERT_TRUE(client.sendRequest(req).ok());
    }
    // Every request is accepted server-side, then stop() races the
    // engine: all 12 must still be answered before the socket closes.
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().requests.load(
                   std::memory_order_relaxed) == kBatch;
    }));
    std::thread stopper([&] { h.server->stop(); });

    size_t answered = 0;
    for (size_t i = 0; i < kBatch; ++i) {
        AlignResponseFrame resp;
        if (!client.readResponse(resp).ok())
            break;
        EXPECT_EQ(resp.code, StatusCode::Ok);
        EXPECT_EQ(resp.distance,
                  align::nwAlign(pairs[resp.id].pattern,
                                 pairs[resp.id].text)
                      .distance);
        ++answered;
    }
    stopper.join();
    EXPECT_EQ(answered, kBatch);
    EXPECT_FALSE(h.server->running());
    EXPECT_EQ(h.server->serveSnapshot().pending, 0u);
}

TEST(AlignServer, SnapshotRendersJsonAndOpenMetrics)
{
    Harness h;
    AlignClient client(h.clientConfig("obs"));
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(41);
    const seq::SequencePair p = gen.pair(100, 0.05);
    (void)client.alignBatch({p, p}, false); // one miss, one hit

    const ServeSnapshot snap = h.server->serveSnapshot();
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"requests\":2"), std::string::npos);
    EXPECT_NE(json.find("\"clients\":[{\"id\":\"obs\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cache\":{"), std::string::npos);

    const std::string om = renderServeOpenMetrics(snap);
    EXPECT_NE(om.find("gmx_serve_requests_total 2"), std::string::npos);
    EXPECT_NE(om.find("gmx_serve_shed_total{priority=\"low\"}"),
              std::string::npos);
    EXPECT_NE(om.find("gmx_serve_client_requests_total{client=\"obs\"} 2"),
              std::string::npos);
    EXPECT_NE(om.find("gmx_serve_shard_routed_total{shard=\"0\"}"),
              std::string::npos);
    EXPECT_EQ(om.find("# EOF"), std::string::npos);
    EXPECT_GT(snap.cacheHitRate(), 0.0);
}

} // namespace
} // namespace gmx::serve
