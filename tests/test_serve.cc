/**
 * @file
 * AlignServer tests over real sockets: protocol round-trips, TCP and
 * unix-socket batch correctness against nwAlign, the dedup cache
 * (hits, coalescing, fewer engine submissions than wire requests),
 * per-client quotas, priority shed ordering under a deterministically
 * blocked engine, graceful shutdown with a batch in flight, and
 * protocol-error handling. Runs under TSan in scripts/tier1.sh.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "align/nw.hh"
#include "common/net.hh"
#include "engine/engine.hh"
#include "sequence/generator.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "serve/router.hh"
#include "serve/server.hh"

namespace gmx::serve {
namespace {

/** Poll @p cond up to ~2s; true when it became true. */
bool
eventually(const std::function<bool()> &cond)
{
    for (int i = 0; i < 400; ++i) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/** Engines + started server with test-friendly defaults. */
struct Harness
{
    explicit Harness(AlignServerConfig scfg = {}, unsigned num_engines = 1,
                     engine::EngineConfig ecfg = {})
    {
        if (ecfg.workers == 0)
            ecfg.workers = 2;
        for (unsigned i = 0; i < num_engines; ++i)
            engines.push_back(std::make_unique<engine::Engine>(ecfg));
        std::vector<engine::Engine *> raw;
        for (auto &e : engines)
            raw.push_back(e.get());
        scfg.port = 0; // always ephemeral in tests
        server = std::make_unique<AlignServer>(raw, scfg);
        const Status s = server->start();
        EXPECT_TRUE(s.ok()) << s.toString();
    }

    ClientConfig clientConfig(const std::string &id = "test",
                              Priority prio = Priority::Normal) const
    {
        ClientConfig c;
        c.port = server->port();
        c.client_id = id;
        c.priority = prio;
        return c;
    }

    std::vector<std::unique_ptr<engine::Engine>> engines;
    std::unique_ptr<AlignServer> server;
};

// -------------------------------------------------------------------
// Protocol round-trips.
// -------------------------------------------------------------------

TEST(ServeProtocol, EveryFrameTypeRoundTrips)
{
    {
        HelloFrame in{Priority::High, kSupportedFeatures, "mapper-7"};
        const std::string wire = encodeHello(in);
        FrameHeader h;
        ASSERT_TRUE(decodeHeader(wire.data(), wire.size(),
                                 kDefaultMaxFrameBytes, h)
                        .ok());
        EXPECT_EQ(h.type, FrameType::Hello);
        HelloFrame out;
        ASSERT_TRUE(decodeHello(wire.data() + kHeaderBytes, h.payload_len,
                                out)
                        .ok());
        EXPECT_EQ(out.priority, Priority::High);
        EXPECT_EQ(out.features, kSupportedFeatures);
        EXPECT_EQ(out.client_id, "mapper-7");
    }
    {
        HelloAckFrame in{kVersion, kFeatureDeadline, 65536};
        const std::string wire = encodeHelloAck(in);
        HelloAckFrame out;
        ASSERT_TRUE(decodeHelloAck(wire.data() + kHeaderBytes,
                                   wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.features, kFeatureDeadline);
        EXPECT_EQ(out.max_frame_bytes, 65536u);
    }
    {
        AlignRequestFrame in;
        in.id = 42;
        in.max_edits = 7;
        in.want_cigar = true;
        in.pattern = "ACGTACGT";
        in.text = "ACGGACGT";
        const std::string wire = encodeAlignRequest(in);
        AlignRequestFrame out;
        ASSERT_TRUE(decodeAlignRequest(wire.data() + kHeaderBytes,
                                       wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.id, 42u);
        EXPECT_EQ(out.max_edits, 7u);
        EXPECT_TRUE(out.want_cigar);
        EXPECT_EQ(out.pattern, in.pattern);
        EXPECT_EQ(out.text, in.text);
    }
    {
        AlignResponseFrame in;
        in.id = 42;
        in.code = StatusCode::Ok;
        in.has_cigar = true;
        in.cache_hit = true;
        in.distance = 1;
        in.cigar = "MMMXMMMM";
        const std::string wire = encodeAlignResponse(in);
        AlignResponseFrame out;
        ASSERT_TRUE(decodeAlignResponse(wire.data() + kHeaderBytes,
                                        wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.id, 42u);
        EXPECT_EQ(out.code, StatusCode::Ok);
        EXPECT_TRUE(out.has_cigar);
        EXPECT_TRUE(out.cache_hit);
        EXPECT_EQ(out.distance, 1);
        EXPECT_EQ(out.cigar, "MMMXMMMM");
    }
    {
        // The no-alignment sentinel survives the -1 wire encoding.
        AlignResponseFrame in;
        in.distance = align::kNoAlignment;
        const std::string wire = encodeAlignResponse(in);
        AlignResponseFrame out;
        ASSERT_TRUE(decodeAlignResponse(wire.data() + kHeaderBytes,
                                        wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.distance, align::kNoAlignment);
    }
    {
        ErrorFrame in{StatusCode::Overloaded, "go away"};
        const std::string wire = encodeError(in);
        ErrorFrame out;
        ASSERT_TRUE(decodeError(wire.data() + kHeaderBytes,
                                wire.size() - kHeaderBytes, out)
                        .ok());
        EXPECT_EQ(out.code, StatusCode::Overloaded);
        EXPECT_EQ(out.message, "go away");
    }
    EXPECT_TRUE(decodeEmpty(FrameType::Bye,
                            encodeBye().size() - kHeaderBytes)
                    .ok());
    EXPECT_FALSE(decodeEmpty(FrameType::ByeAck, 1).ok());
}

TEST(ServeProtocol, HeaderRejectsGarbage)
{
    const std::string good = encodeBye();
    FrameHeader h;

    std::string bad = good;
    bad[0] ^= 0x5a; // magic
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[4] = 9; // version
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[5] = 99; // frame type
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    bad = good;
    bad[6] = 1; // reserved bits
    EXPECT_FALSE(
        decodeHeader(bad.data(), bad.size(), kDefaultMaxFrameBytes, h).ok());

    // Payload over the negotiated cap.
    bad = good;
    bad[8] = static_cast<char>(0xff);
    bad[9] = static_cast<char>(0xff);
    EXPECT_FALSE(decodeHeader(bad.data(), bad.size(), 1024, h).ok());

    EXPECT_FALSE(decodeHeader(good.data(), kHeaderBytes - 1,
                              kDefaultMaxFrameBytes, h)
                     .ok());
}

// -------------------------------------------------------------------
// End-to-end correctness.
// -------------------------------------------------------------------

TEST(AlignServer, TcpBatchMatchesNwAlign)
{
    Harness h;
    AlignClient client(h.clientConfig("mapper"));
    ASSERT_TRUE(client.connect().ok());
    EXPECT_EQ(client.maxFrameBytes(), kDefaultMaxFrameBytes);

    seq::Generator gen(4242);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.push_back(gen.pair(120 + i, i % 2 ? 0.02 : 0.15));

    const auto results = client.alignBatch(pairs, true);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        const align::AlignResult ref =
            align::nwAlign(pairs[i].pattern, pairs[i].text);
        EXPECT_EQ(results[i]->distance, ref.distance) << "pair " << i;
        ASSERT_TRUE(results[i]->has_cigar);
        // The cigar must be a genuine traceback for THIS pair: right
        // lengths, and its op count equals the reported distance.
        EXPECT_EQ(results[i]->cigar.patternLength(),
                  pairs[i].pattern.size());
        EXPECT_EQ(results[i]->cigar.textLength(), pairs[i].text.size());
        EXPECT_EQ(static_cast<i64>(results[i]->cigar.editDistance()),
                  results[i]->distance);
    }
    EXPECT_TRUE(client.bye().ok());

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.requests, pairs.size());
    EXPECT_EQ(snap.responses_ok, pairs.size());
    EXPECT_EQ(snap.responses_failed, 0u);
    EXPECT_EQ(snap.pending, 0u);
    ASSERT_EQ(snap.clients.size(), 1u);
    EXPECT_EQ(snap.clients[0].id, "mapper");
    EXPECT_EQ(snap.clients[0].completed, pairs.size());
}

TEST(AlignServer, UnixSocketBatchMatchesNwAlign)
{
    AlignServerConfig scfg;
    scfg.unix_path = "/tmp/gmx_serve_test_" + std::to_string(::getpid()) +
                     ".sock";
    Harness h(scfg);

    ClientConfig ccfg;
    ccfg.unix_path = scfg.unix_path;
    ccfg.client_id = "unix-mapper";
    AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(515);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.push_back(gen.pair(200, 0.08));

    const auto results = client.alignBatch(pairs, false);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwAlign(pairs[i].pattern, pairs[i].text).distance);
        EXPECT_FALSE(results[i]->has_cigar);
    }
    EXPECT_TRUE(client.bye().ok());
    h.server->stop();
    // stop() unlinked the socket path.
    EXPECT_NE(::access(scfg.unix_path.c_str(), F_OK), 0);
}

TEST(AlignServer, MaxEditsIsAPostFilter)
{
    Harness h;
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(99);
    const seq::SequencePair pair = gen.pair(300, 0.2);
    const i64 truth = align::nwAlign(pair.pattern, pair.text).distance;
    ASSERT_GT(truth, 1);

    auto strict = client.alignBatch({pair}, true, 1);
    ASSERT_TRUE(strict[0].ok());
    EXPECT_FALSE(strict[0]->found());
    EXPECT_FALSE(strict[0]->has_cigar);

    auto loose =
        client.alignBatch({pair}, true, static_cast<u32>(truth));
    ASSERT_TRUE(loose[0].ok());
    EXPECT_EQ(loose[0]->distance, truth);
    EXPECT_TRUE(loose[0]->has_cigar);
}

// -------------------------------------------------------------------
// Dedup cache.
// -------------------------------------------------------------------

TEST(AlignServer, HotKeyBurstHitsTheCache)
{
    Harness h;
    AlignClient client(h.clientConfig("hot"));
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(7);
    const seq::SequencePair hot = gen.pair(400, 0.1);
    constexpr size_t kRepeats = 16;
    std::vector<seq::SequencePair> pairs(kRepeats, hot);

    const auto results = client.alignBatch(pairs, true);
    const i64 truth = align::nwAlign(hot.pattern, hot.text).distance;
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok()) << r.status().toString();
        EXPECT_EQ(r->distance, truth);
    }

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.requests, kRepeats);
    EXPECT_GT(snap.cache_hits + snap.cache_coalesced, 0u);
    EXPECT_GE(snap.cache_entries, 1u);
    // The point of the cache: far fewer engine submissions than wire
    // requests (duplicates were answered without kernel work).
    EXPECT_LT(h.engines[0]->metrics().submitted, kRepeats);
    EXPECT_GT(client.cacheHits(), 0u);
}

TEST(AlignServer, DifferentOptionsAreDifferentCacheKeys)
{
    Harness h;
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(606);
    const seq::SequencePair pair = gen.pair(150, 0.05);
    (void)client.alignBatch({pair}, true, 0);
    (void)client.alignBatch({pair}, false, 0); // different want_cigar
    (void)client.alignBatch({pair}, true, 3);  // different max_edits

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.cache_misses, 3u);
    EXPECT_EQ(snap.cache_entries, 3u);
}

TEST(AlignServer, ConcurrentDuplicatesCoalesce)
{
    // Single worker + a deliberately blocked engine: the first request
    // for the hot key is guaranteed still in flight when the duplicates
    // arrive, so they MUST coalesce (join the same future) rather than
    // resubmit.
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    Harness h({}, 1, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(11);
    const seq::SequencePair blocker_pair = gen.pair(50, 0.0);
    auto blocked = h.engines[0]->submit(
        blocker_pair, align::PairAligner([open](const seq::SequencePair &) {
            open.wait();
            return align::AlignResult{};
        }));

    AlignClient client(h.clientConfig("dup"));
    ASSERT_TRUE(client.connect().ok());
    const seq::SequencePair hot = gen.pair(200, 0.05);
    constexpr size_t kRepeats = 8;

    // Stream the duplicates raw (no reads yet — responses can't arrive
    // while the engine is gated anyway).
    for (size_t i = 0; i < kRepeats; ++i) {
        AlignRequestFrame req;
        req.id = i;
        req.want_cigar = true;
        req.pattern = hot.pattern.str();
        req.text = hot.text.str();
        ASSERT_TRUE(client.sendRequest(req).ok());
    }
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().requests.load(std::memory_order_relaxed) ==
               kRepeats;
    }));

    const ServeSnapshot mid = h.server->serveSnapshot();
    EXPECT_EQ(mid.cache_misses, 1u);
    EXPECT_EQ(mid.cache_hits + mid.cache_coalesced, kRepeats - 1);
    EXPECT_GT(mid.cache_coalesced, 0u);

    gate.set_value();
    const i64 truth = align::nwAlign(hot.pattern, hot.text).distance;
    for (size_t i = 0; i < kRepeats; ++i) {
        AlignResponseFrame resp;
        ASSERT_TRUE(client.readResponse(resp).ok());
        EXPECT_EQ(resp.code, StatusCode::Ok);
        EXPECT_EQ(resp.distance, truth);
    }
    ASSERT_TRUE(blocked.get().ok());
    // Exactly one engine submission (plus the blocker) for 8 requests.
    EXPECT_EQ(h.engines[0]->metrics().submitted, 2u);
}

// -------------------------------------------------------------------
// Quotas and priority shedding.
// -------------------------------------------------------------------

TEST(QuotaRegistry, TokenBucketRefillsDeterministically)
{
    QuotaConfig qc;
    qc.tokens_per_sec = 2.0;
    qc.burst = 3.0;
    QuotaRegistry quota(qc);

    // A new client spends its full burst, then is throttled.
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_TRUE(quota.admit("a", 100.0));
    EXPECT_FALSE(quota.admit("a", 100.0));
    // Half a second refills one token (2/s).
    EXPECT_TRUE(quota.admit("a", 100.5));
    EXPECT_FALSE(quota.admit("a", 100.5));
    // A backwards clock refills nothing (and must not crash).
    EXPECT_FALSE(quota.admit("a", 99.0));
    // Refill caps at the burst.
    EXPECT_TRUE(quota.admit("a", 1000.0));
    // Other clients have their own bucket.
    EXPECT_TRUE(quota.admit("b", 1000.0));

    const auto snap = quota.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "a");
    EXPECT_EQ(snap[0].second.admitted, 5u);
    EXPECT_EQ(snap[0].second.throttled, 3u);

    // Disabled quotas admit everything.
    QuotaRegistry off{QuotaConfig{}};
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(off.admit("x", 0.0));
}

TEST(AlignServer, QuotaThrottlesChattyClient)
{
    AlignServerConfig scfg;
    scfg.quota.tokens_per_sec = 0.001; // effectively no refill in-test
    scfg.quota.burst = 4;
    Harness h(scfg);

    AlignClient client(h.clientConfig("chatty"));
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(13);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 10; ++i)
        pairs.push_back(gen.pair(100, 0.05));

    const auto results = client.alignBatch(pairs, false);
    size_t ok = 0, throttled = 0;
    for (const auto &r : results) {
        if (r.ok())
            ++ok;
        else if (r.status().code() == StatusCode::Overloaded)
            ++throttled;
    }
    EXPECT_EQ(ok, 4u);
    EXPECT_EQ(throttled, 6u);

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.quota_throttled, 6u);
    ASSERT_EQ(snap.clients.size(), 1u);
    EXPECT_EQ(snap.clients[0].throttled, 6u);
}

TEST(AlignServer, LowPriorityShedsBeforeHigh)
{
    // One worker, blocked by a gated custom aligner, makes "pending"
    // fully deterministic: serve-path requests pile up and cannot
    // complete until the gate opens.
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    AlignServerConfig scfg;
    scfg.pending_cap = 4; // watermarks: low 2, normal 3, high 4
    Harness h(scfg, 1, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(17);
    auto blocked = h.engines[0]->submit(
        gen.pair(50, 0.0),
        align::PairAligner([open](const seq::SequencePair &) {
            open.wait();
            return align::AlignResult{};
        }));

    // Fill pending to 3 with distinct requests from a HIGH-priority
    // filler (its watermark is the full cap, so none of these shed).
    AlignClient filler(h.clientConfig("filler", Priority::High));
    ASSERT_TRUE(filler.connect().ok());
    for (u64 i = 0; i < 3; ++i) {
        const seq::SequencePair p = gen.pair(80, 0.05);
        AlignRequestFrame req;
        req.id = i;
        req.pattern = p.pattern.str();
        req.text = p.text.str();
        ASSERT_TRUE(filler.sendRequest(req).ok());
    }
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().pending.load(std::memory_order_relaxed) ==
               3;
    }));

    // pending=3: >= low watermark (2) and >= normal (3), < high (4).
    AlignClient low(h.clientConfig("low", Priority::Low));
    ASSERT_TRUE(low.connect().ok());
    auto low_res = low.alignBatch({gen.pair(80, 0.05)}, false);
    ASSERT_FALSE(low_res[0].ok());
    EXPECT_EQ(low_res[0].status().code(), StatusCode::Overloaded);

    AlignClient normal(h.clientConfig("normal", Priority::Normal));
    ASSERT_TRUE(normal.connect().ok());
    auto normal_res = normal.alignBatch({gen.pair(80, 0.05)}, false);
    ASSERT_FALSE(normal_res[0].ok());
    EXPECT_EQ(normal_res[0].status().code(), StatusCode::Overloaded);

    // High priority is still admitted at pending=3; release the gate so
    // its (and the fillers') alignments actually run.
    AlignClient high(h.clientConfig("vip", Priority::High));
    ASSERT_TRUE(high.connect().ok());
    std::thread opener([&] {
        eventually([&] {
            return h.server->metrics().pending.load(
                       std::memory_order_relaxed) == 4;
        });
        gate.set_value();
    });
    auto high_res = high.alignBatch({gen.pair(80, 0.05)}, false);
    opener.join();
    ASSERT_TRUE(high_res[0].ok()) << high_res[0].status().toString();
    ASSERT_TRUE(blocked.get().ok());

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.shed_by_priority[static_cast<unsigned>(Priority::Low)],
              1u);
    EXPECT_EQ(
        snap.shed_by_priority[static_cast<unsigned>(Priority::Normal)], 1u);
    EXPECT_EQ(snap.shed_by_priority[static_cast<unsigned>(Priority::High)],
              0u);
}

// -------------------------------------------------------------------
// Shard routing.
// -------------------------------------------------------------------

TEST(ShardRouter, BalancesByOutstandingLoadAndSettlesOnComplete)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    engine::Engine e0(ecfg), e1(ecfg);
    ServeMetrics metrics;
    RouterConfig rcfg;
    rcfg.cache_capacity = 0; // isolate routing from dedup
    ShardRouter router({&e0, &e1}, rcfg, &metrics);

    seq::Generator gen(19);
    std::vector<Ticket> tickets;
    for (int i = 0; i < 8; ++i)
        tickets.push_back(router.submit(gen.pair(100, 0.05), false, 0));

    // With equal-sized requests and no completions, the min-load pick
    // alternates: 4 requests per engine.
    auto stats = router.shardStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].routed, 4u);
    EXPECT_EQ(stats[1].routed, 4u);
    EXPECT_EQ(router.outstanding(), 8u);

    for (auto &t : tickets) {
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, StatusCode::Ok);
    }
    EXPECT_EQ(router.outstanding(), 0u);
    stats = router.shardStats();
    EXPECT_EQ(stats[0].outstanding_bytes, 0u);
    EXPECT_EQ(stats[1].outstanding_bytes, 0u);
}

TEST(AlignServer, MultiEngineServingSpreadsLoad)
{
    // Gate every engine's lone worker so no request can complete while
    // the batch is being routed: outstanding load only grows, and the
    // least-loaded choice provably balances the shards. (Ungated, a
    // writer that drains as fast as the reader routes leaves every
    // decision a tie, which always picks shard 0.)
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    Harness h({}, 3, ecfg);

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    seq::Generator gen(23);
    for (auto &e : h.engines) {
        (void)e->submit(gen.pair(40, 0.0),
                        align::PairAligner([open](const seq::SequencePair &) {
                            open.wait();
                            return align::AlignResult{};
                        }));
    }

    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 30; ++i)
        pairs.push_back(gen.pair(150, 0.1));

    std::thread batch_thread([&] {
        const auto results = client.alignBatch(pairs, false);
        for (const auto &r : results)
            EXPECT_TRUE(r.ok());
    });
    // All 30 route while the engines are gated...
    ASSERT_TRUE(eventually([&] {
        u64 total = 0;
        for (const auto &s : h.server->serveSnapshot().shards)
            total += s.routed;
        return total == 30;
    }));
    const ServeSnapshot snap = h.server->serveSnapshot();
    gate.set_value();
    batch_thread.join();

    // ...and with loads frozen during routing, the spread is near-even:
    // a shard can lag the leaders by at most one request's weight.
    ASSERT_EQ(snap.shards.size(), 3u);
    u64 total = 0;
    for (const auto &s : snap.shards) {
        EXPECT_GE(s.routed, 9u) << "load spread is lopsided";
        total += s.routed;
    }
    EXPECT_EQ(total, 30u);
}

// -------------------------------------------------------------------
// Failure paths and lifecycle.
// -------------------------------------------------------------------

TEST(AlignServer, ValidationRejectsWithTypedStatusAndKeepsConnection)
{
    AlignServerConfig scfg;
    scfg.limits.reject_non_acgt = true;
    Harness h(scfg);
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());

    AlignRequestFrame bad;
    bad.id = 1;
    bad.pattern = ""; // empty pattern: InvalidInput
    bad.text = "ACGT";
    ASSERT_TRUE(client.sendRequest(bad).ok());
    AlignResponseFrame resp;
    ASSERT_TRUE(client.readResponse(resp).ok());
    EXPECT_EQ(resp.id, 1u);
    EXPECT_EQ(resp.code, StatusCode::InvalidInput);

    bad.id = 2;
    bad.pattern = "ACGTNNNN"; // non-ACGT with reject_non_acgt
    ASSERT_TRUE(client.sendRequest(bad).ok());
    ASSERT_TRUE(client.readResponse(resp).ok());
    EXPECT_EQ(resp.id, 2u);
    EXPECT_EQ(resp.code, StatusCode::InvalidInput);

    // The connection survived request-level rejections.
    seq::Generator gen(29);
    auto good = client.alignBatch({gen.pair(100, 0.05)}, false);
    ASSERT_TRUE(good[0].ok());
    // And rejects never touched an engine or the cache.
    EXPECT_EQ(h.engines[0]->metrics().submitted, 1u);

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.responses_failed, 2u);
    EXPECT_EQ(snap.cache_misses, 1u);
}

TEST(AlignServer, ProtocolGarbageGetsTypedErrorNeverCrashes)
{
    Harness h;

    // Garbage instead of a Hello: typed error, connection closed.
    {
        int fd = net::connectTcp("127.0.0.1", h.server->port(),
                                 std::chrono::milliseconds(2000));
        ASSERT_GE(fd, 0);
        const std::string junk = "this is definitely not a gmx frame!!";
        ASSERT_EQ(net::sendAll(fd, junk.data(), junk.size()),
                  net::IoResult::Ok);
        char hdr[kHeaderBytes];
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        FrameHeader fh;
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        EXPECT_EQ(fh.type, FrameType::Error);
        ::close(fd);
    }

    // A legal handshake followed by an unexpected frame type.
    {
        int fd = net::connectTcp("127.0.0.1", h.server->port(),
                                 std::chrono::milliseconds(2000));
        ASSERT_GE(fd, 0);
        const std::string hello =
            encodeHello({Priority::Normal, 0, "rogue"});
        ASSERT_EQ(net::sendAll(fd, hello.data(), hello.size()),
                  net::IoResult::Ok);
        char hdr[kHeaderBytes];
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        FrameHeader fh;
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        ASSERT_EQ(fh.type, FrameType::HelloAck);
        std::string payload(fh.payload_len, '\0');
        ASSERT_EQ(net::recvExact(fd, payload.data(), payload.size()),
                  net::IoResult::Ok);

        // A HelloAck is a server->client frame; sending one is illegal.
        const std::string ack = encodeHelloAck({});
        ASSERT_EQ(net::sendAll(fd, ack.data(), ack.size()),
                  net::IoResult::Ok);
        ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
        ASSERT_TRUE(
            decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
        EXPECT_EQ(fh.type, FrameType::Error);
        ::close(fd);
    }

    ASSERT_TRUE(eventually([&] {
        return h.server->serveSnapshot().protocol_errors >= 2;
    }));

    // The server is still healthy for well-behaved clients.
    AlignClient client(h.clientConfig());
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(31);
    auto ok = client.alignBatch({gen.pair(100, 0.05)}, false);
    ASSERT_TRUE(ok[0].ok());
}

TEST(AlignServer, ConnectionCapRefusesWithTypedError)
{
    AlignServerConfig scfg;
    scfg.max_connections = 1;
    scfg.handler_threads = 1;
    Harness h(scfg);

    AlignClient first(h.clientConfig("one"));
    ASSERT_TRUE(first.connect().ok());

    AlignClient second(h.clientConfig("two"));
    const Status s = second.connect();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::Overloaded);
    EXPECT_EQ(h.server->serveSnapshot().connections_refused, 1u);

    // Releasing the first slot lets a new client in.
    EXPECT_TRUE(first.bye().ok());
    ASSERT_TRUE(eventually(
        [&] { return second.connected() || second.connect().ok(); }));
}

TEST(AlignServer, GracefulStopDrainsInFlightBatch)
{
    Harness h;
    AlignClient client(h.clientConfig("drainer"));
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(37);
    constexpr size_t kBatch = 12;
    std::vector<seq::SequencePair> pairs;
    for (size_t i = 0; i < kBatch; ++i) {
        pairs.push_back(gen.pair(300, 0.1));
        AlignRequestFrame req;
        req.id = i;
        req.want_cigar = false;
        req.pattern = pairs[i].pattern.str();
        req.text = pairs[i].text.str();
        ASSERT_TRUE(client.sendRequest(req).ok());
    }
    // Every request is accepted server-side, then stop() races the
    // engine: all 12 must still be answered before the socket closes.
    ASSERT_TRUE(eventually([&] {
        return h.server->metrics().requests.load(
                   std::memory_order_relaxed) == kBatch;
    }));
    std::thread stopper([&] { h.server->stop(); });

    size_t answered = 0;
    for (size_t i = 0; i < kBatch; ++i) {
        AlignResponseFrame resp;
        if (!client.readResponse(resp).ok())
            break;
        EXPECT_EQ(resp.code, StatusCode::Ok);
        EXPECT_EQ(resp.distance,
                  align::nwAlign(pairs[resp.id].pattern,
                                 pairs[resp.id].text)
                      .distance);
        ++answered;
    }
    stopper.join();
    EXPECT_EQ(answered, kBatch);
    EXPECT_FALSE(h.server->running());
    EXPECT_EQ(h.server->serveSnapshot().pending, 0u);
}

TEST(AlignServer, SnapshotRendersJsonAndOpenMetrics)
{
    Harness h;
    AlignClient client(h.clientConfig("obs"));
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(41);
    const seq::SequencePair p = gen.pair(100, 0.05);
    (void)client.alignBatch({p, p}, false); // one miss, one hit

    const ServeSnapshot snap = h.server->serveSnapshot();
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"requests\":2"), std::string::npos);
    EXPECT_NE(json.find("\"clients\":[{\"id\":\"obs\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cache\":{"), std::string::npos);

    const std::string om = renderServeOpenMetrics(snap);
    EXPECT_NE(om.find("gmx_serve_requests_total 2"), std::string::npos);
    EXPECT_NE(om.find("gmx_serve_shed_total{priority=\"low\"}"),
              std::string::npos);
    EXPECT_NE(om.find("gmx_serve_client_requests_total{client=\"obs\"} 2"),
              std::string::npos);
    EXPECT_NE(om.find("gmx_serve_shard_routed_total{shard=\"0\"}"),
              std::string::npos);
    EXPECT_EQ(om.find("# EOF"), std::string::npos);
    EXPECT_GT(snap.cacheHitRate(), 0.0);
}

// -------------------------------------------------------------------
// Deadline propagation.
// -------------------------------------------------------------------

TEST(ServeProtocol, DeadlineExtensionRoundTripsAndStaysGated)
{
    AlignRequestFrame in;
    in.id = 9;
    in.want_cigar = false;
    in.pattern = "ACGT";
    in.text = "ACGA";

    // No deadline: no flags set, no trailing bytes — a v1-shaped frame.
    const std::string plain = encodeAlignRequest(in);
    AlignRequestFrame out;
    ASSERT_TRUE(decodeAlignRequest(plain.data() + kHeaderBytes,
                                   plain.size() - kHeaderBytes, out)
                    .ok());
    EXPECT_EQ(out.deadline_us, 0u);

    // With a deadline: exactly one trailing u64, faithfully recovered.
    in.deadline_us = 1234567;
    const std::string timed = encodeAlignRequest(in);
    EXPECT_EQ(timed.size(), plain.size() + 8);
    ASSERT_TRUE(decodeAlignRequest(timed.data() + kHeaderBytes,
                                   timed.size() - kHeaderBytes, out)
                    .ok());
    EXPECT_EQ(out.deadline_us, 1234567u);

    // Unknown flag bits are a hard reject, not a silent skip.
    std::string tampered = plain;
    tampered[kHeaderBytes + 13] = 2;
    EXPECT_FALSE(decodeAlignRequest(tampered.data() + kHeaderBytes,
                                    tampered.size() - kHeaderBytes, out)
                     .ok());

    // Deadline flag with the trailing budget missing: truncated, reject.
    std::string cut = timed.substr(0, timed.size() - 8);
    cut[8] = static_cast<char>(cut.size() - kHeaderBytes); // fix len
    EXPECT_FALSE(decodeAlignRequest(cut.data() + kHeaderBytes,
                                    cut.size() - kHeaderBytes, out)
                     .ok());
}

TEST(AlignServer, DeadlineFeatureIsNegotiated)
{
    Harness h;
    AlignClient client(h.clientConfig("negotiator"));
    ASSERT_TRUE(client.connect().ok());
    EXPECT_EQ(client.serverFeatures() & kFeatureDeadline,
              kFeatureDeadline);

    // A v1-style peer that offers nothing gets nothing echoed, and its
    // requests still work — the extension never rides uninvited.
    int fd = net::connectTcp("127.0.0.1", h.server->port(),
                             std::chrono::milliseconds(2000));
    ASSERT_GE(fd, 0);
    const std::string hello = encodeHello({Priority::Normal, 0, "v1"});
    ASSERT_EQ(net::sendAll(fd, hello.data(), hello.size()),
              net::IoResult::Ok);
    char hdr[kHeaderBytes];
    ASSERT_EQ(net::recvExact(fd, hdr, kHeaderBytes), net::IoResult::Ok);
    FrameHeader fh;
    ASSERT_TRUE(
        decodeHeader(hdr, kHeaderBytes, kDefaultMaxFrameBytes, fh).ok());
    ASSERT_EQ(fh.type, FrameType::HelloAck);
    std::string payload(fh.payload_len, '\0');
    ASSERT_EQ(net::recvExact(fd, payload.data(), payload.size()),
              net::IoResult::Ok);
    HelloAckFrame ack;
    ASSERT_TRUE(decodeHelloAck(payload.data(), payload.size(), ack).ok());
    EXPECT_EQ(ack.features, 0u);
    ::close(fd);
}

TEST(AlignServer, DeadlineCancelsLongKernelMidFlight)
{
    // A pair big and noisy enough that the cascade escalates to the
    // full-matrix tier, where an uninterrupted run takes far longer
    // than the budget: the response must come back DeadlineExceeded via
    // the engine's cooperative cancel gate, not hang until completion.
    Harness h;
    AlignClient client(h.clientConfig("impatient"));
    ASSERT_TRUE(client.connect().ok());
    ASSERT_NE(client.serverFeatures() & kFeatureDeadline, 0);

    seq::Generator gen(271);
    const seq::SequencePair huge = gen.pair(12000, 0.35);

    BatchOptions opts;
    opts.want_cigar = false;
    opts.deadline = std::chrono::milliseconds(100);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = client.alignBatch({huge}, opts);
    const auto elapsed = std::chrono::steady_clock::now() - t0;

    ASSERT_EQ(results.size(), 1u);
    ASSERT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].status().code(), StatusCode::DeadlineExceeded);
    // The kernel was entered and then stopped early (not refused at the
    // door, not run to completion).
    EXPECT_EQ(h.engines[0]->metrics().submitted, 1u);
    EXPECT_GE(h.engines[0]->metrics().deadline_missed, 1u);
    EXPECT_LT(elapsed, std::chrono::seconds(30));

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.deadline_requests, 1u);
    EXPECT_EQ(snap.deadline_refused, 0u);
    EXPECT_GE(snap.deadline_budget_us, 100000u);
}

// -------------------------------------------------------------------
// Client retries.
// -------------------------------------------------------------------

TEST(AlignClient, RetryCompletesPartialBatchAfterThrottle)
{
    // Quota burst 4 with a fast refill: the first attempt resolves 4
    // pairs and leaves 4 throttled (Overloaded — retryable); backoff
    // retries must finish the rest without resubmitting resolved slots.
    AlignServerConfig scfg;
    scfg.quota.tokens_per_sec = 200.0;
    scfg.quota.burst = 4;
    Harness h(scfg);

    AlignClient client(h.clientConfig("retrier"));
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(43);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 8; ++i)
        pairs.push_back(gen.pair(80, 0.05));

    BatchOptions opts;
    opts.want_cigar = false;
    opts.retry.max_attempts = 20;
    opts.retry.initial_backoff = std::chrono::milliseconds(20);
    opts.retry.max_backoff = std::chrono::milliseconds(100);
    const auto results = client.alignBatch(pairs, opts);
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwAlign(pairs[i].pattern, pairs[i].text).distance);
    }
    ASSERT_GE(client.attempts().size(), 2u);
    EXPECT_EQ(client.attempts()[0].resolved, 4u);
    EXPECT_EQ(client.attempts()[0].retryable, 4u);
    size_t resolved_total = 0;
    for (const AttemptLog &a : client.attempts())
        resolved_total += a.resolved;
    EXPECT_EQ(resolved_total, pairs.size());
}

TEST(AlignClient, InvalidInputIsNeverRetried)
{
    Harness h;
    AlignClient client(h.clientConfig("strict"));
    ASSERT_TRUE(client.connect().ok());

    seq::Generator gen(47);
    std::vector<seq::SequencePair> pairs;
    pairs.push_back(gen.pair(60, 0.05));
    pairs.push_back({seq::Sequence(""), seq::Sequence("ACGT")});

    BatchOptions opts;
    opts.want_cigar = false;
    opts.retry.max_attempts = 5;
    opts.retry.initial_backoff = std::chrono::milliseconds(1);
    const auto results = client.alignBatch(pairs, opts);
    ASSERT_TRUE(results[0].ok());
    ASSERT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].status().code(), StatusCode::InvalidInput);
    // The malformed pair was final on the first attempt: no retries ran
    // and the server saw each pair exactly once.
    EXPECT_EQ(client.attempts().size(), 1u);
    EXPECT_EQ(h.server->serveSnapshot().requests, pairs.size());
}

TEST(AlignClient, RetryIdempotencyUnderRandomConnectionCuts)
{
    // Fuzz-style: a seeded hook kills the connection at pseudo-random
    // frame boundaries mid-batch. Every pair must still resolve exactly
    // once with the correct distance, and the dedup cache must absorb
    // resubmissions of work the server already did (no duplicate
    // kernel submissions beyond the unique pair count).
    Harness h;
    seq::Generator gen(53);
    constexpr size_t kPairs = 30;
    std::vector<seq::SequencePair> pairs;
    for (size_t i = 0; i < kPairs; ++i)
        pairs.push_back(gen.pair(90, 0.08));

    ClientConfig ccfg = h.clientConfig("cutter");
    ccfg.window = 2;
    // Drop after 4..11 requests on each connection, re-seeded per cut.
    u64 rng = 0xfeedfacecafebeefull;
    u64 next_cut = 4 + (rng % 8);
    ccfg.chaos_drop = [&rng, &next_cut](u64 sent) {
        if (sent < next_cut)
            return false;
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        next_cut = 4 + (rng >> 33) % 8;
        return true;
    };
    AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());

    BatchOptions opts;
    opts.want_cigar = false;
    opts.retry.max_attempts = 40;
    opts.retry.initial_backoff = std::chrono::milliseconds(1);
    opts.retry.max_backoff = std::chrono::milliseconds(4);
    const auto results = client.alignBatch(pairs, opts);

    size_t resolved_total = 0, cut_attempts = 0;
    for (const AttemptLog &a : client.attempts()) {
        resolved_total += a.resolved;
        if (!a.failure.ok())
            ++cut_attempts;
    }
    EXPECT_EQ(resolved_total, kPairs) << "a pair resolved != once";
    EXPECT_GT(cut_attempts, 0u) << "the chaos hook never fired";
    for (size_t i = 0; i < kPairs; ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwAlign(pairs[i].pattern, pairs[i].text).distance);
    }
    // Dedup holds the line on duplicate submissions across retries.
    EXPECT_LE(h.engines[0]->metrics().submitted, kPairs);
    // Every request the server accepted was answered (ledger balance),
    // even the ones whose responses died with a cut connection.
    ASSERT_TRUE(eventually([&] {
        const ServeSnapshot s = h.server->serveSnapshot();
        return s.requests > 0 &&
               s.requests == s.responses_ok + s.responses_failed;
    }));
}

// -------------------------------------------------------------------
// Circuit breaker.
// -------------------------------------------------------------------

TEST(ShardRouter, BreakerOpensRoutesAroundProbesAndRecovers)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    engine::Engine e0(ecfg), e1(ecfg);
    ServeMetrics metrics;
    RouterConfig rcfg;
    rcfg.cache_capacity = 0;
    rcfg.breaker_window = 8;
    rcfg.breaker_min_samples = 4;
    rcfg.breaker_open_ratio = 0.5;
    rcfg.breaker_cooldown = std::chrono::milliseconds(50);
    ShardRouter router({&e0, &e1}, rcfg, &metrics);

    seq::Generator gen(59);
    // Fail every completion that landed on shard 0; shard 1 is healthy.
    // (The breaker judges the codes the caller reports, so the test
    // drives the window deterministically.)
    size_t shard0_fails = 0;
    for (int i = 0; i < 10 && router.breakerState(0) == BreakerState::Closed;
         ++i) {
        Ticket t = router.submit(gen.pair(60, 0.05), false, 0);
        ASSERT_TRUE(t.future.get().ok());
        if (t.shard == 0) {
            router.complete(t, StatusCode::Internal);
            ++shard0_fails;
        } else {
            router.complete(t, StatusCode::Ok);
        }
    }
    ASSERT_EQ(router.breakerState(0), BreakerState::Open);
    ASSERT_GE(shard0_fails, rcfg.breaker_min_samples);
    EXPECT_GE(metrics.breaker_opens.load(std::memory_order_relaxed), 1u);

    // Open: every submit routes to the healthy shard, none to shard 0.
    for (int i = 0; i < 6; ++i) {
        Ticket t = router.submit(gen.pair(60, 0.05), false, 0);
        EXPECT_EQ(t.shard, 1u);
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, StatusCode::Ok);
    }

    // After the cooldown, exactly one probe is admitted back to shard 0
    // while the breaker is half-open; its success closes the breaker.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    Ticket probe = router.submit(gen.pair(60, 0.05), false, 0);
    EXPECT_TRUE(probe.probe);
    EXPECT_EQ(probe.shard, 0u);
    EXPECT_EQ(router.breakerState(0), BreakerState::HalfOpen);
    // While the probe is in flight, shard 0 admits nothing else.
    Ticket bystander = router.submit(gen.pair(60, 0.05), false, 0);
    EXPECT_EQ(bystander.shard, 1u);
    ASSERT_TRUE(bystander.future.get().ok());
    router.complete(bystander, StatusCode::Ok);

    ASSERT_TRUE(probe.future.get().ok());
    router.complete(probe, StatusCode::Ok);
    EXPECT_EQ(router.breakerState(0), BreakerState::Closed);

    const auto stats = router.shardStats();
    EXPECT_EQ(stats[0].breaker_opens, 1u);
    EXPECT_EQ(stats[0].breaker_probes, 1u);
}

TEST(ShardRouter, AllShardsOpenYieldsTypedUnavailable)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    engine::Engine e0(ecfg);
    ServeMetrics metrics;
    RouterConfig rcfg;
    rcfg.cache_capacity = 0;
    rcfg.breaker_window = 4;
    rcfg.breaker_min_samples = 2;
    rcfg.breaker_open_ratio = 0.5;
    rcfg.breaker_cooldown = std::chrono::seconds(30); // stays open
    ShardRouter router({&e0}, rcfg, &metrics);

    seq::Generator gen(61);
    for (int i = 0; i < 2; ++i) {
        Ticket t = router.submit(gen.pair(60, 0.05), false, 0);
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, StatusCode::EngineStopped);
    }
    ASSERT_EQ(router.breakerState(0), BreakerState::Open);

    Ticket refused = router.submit(gen.pair(60, 0.05), false, 0);
    EXPECT_FALSE(refused.owner);
    const auto outcome = refused.future.get();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::Unavailable);
    EXPECT_GE(metrics.breaker_rejected.load(std::memory_order_relaxed),
              1u);
    // complete() on a refused ticket is a harmless no-op.
    router.complete(refused, StatusCode::Unavailable);
    EXPECT_EQ(router.outstanding(), 0u);
}

TEST(ShardRouter, BreakerTripDrainsTheSickShardsCacheEntries)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    engine::Engine e0(ecfg), e1(ecfg);
    ServeMetrics metrics;
    RouterConfig rcfg;
    rcfg.breaker_window = 4;
    rcfg.breaker_min_samples = 2;
    rcfg.breaker_open_ratio = 0.5;
    rcfg.breaker_cooldown = std::chrono::seconds(30);
    ShardRouter router({&e0, &e1}, rcfg, &metrics);

    seq::Generator gen(67);
    // Seed the cache with successful results on both shards.
    std::vector<Ticket> seeded;
    std::vector<seq::SequencePair> seeded_pairs;
    for (int i = 0; i < 6; ++i) {
        seeded_pairs.push_back(gen.pair(60, 0.05));
        seeded.push_back(router.submit(seeded_pairs.back(), false, 0));
    }
    size_t on_shard0 = 0;
    for (auto &t : seeded) {
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, StatusCode::Ok);
        if (t.shard == 0)
            ++on_shard0;
    }
    ASSERT_GT(on_shard0, 0u);
    ASSERT_EQ(router.cacheEntries(), seeded.size());

    // Trip shard 0: its cached entries must be ejected (a sick shard's
    // results are suspect), the healthy shard's must survive.
    for (int i = 0; i < 4 && router.breakerState(0) == BreakerState::Closed;
         ++i) {
        Ticket t = router.submit(gen.pair(70, 0.1), false, 0);
        ASSERT_TRUE(t.future.get().ok());
        router.complete(t, t.shard == 0 ? StatusCode::Internal
                                        : StatusCode::Ok);
    }
    ASSERT_EQ(router.breakerState(0), BreakerState::Open);
    EXPECT_GE(metrics.cache_drained.load(std::memory_order_relaxed),
              on_shard0);
    EXPECT_LT(router.cacheEntries(), seeded.size() + 4);
    // A re-request of a drained pair is a miss, not a poisoned hit.
    const u64 misses_before =
        metrics.cache_misses.load(std::memory_order_relaxed);
    Ticket again = router.submit(seeded_pairs[0], false, 0);
    EXPECT_FALSE(again.cache_hit || again.coalesced ||
                 metrics.cache_misses.load(std::memory_order_relaxed) ==
                     misses_before);
    ASSERT_TRUE(again.future.get().ok());
    router.complete(again, StatusCode::Ok);
}

// -------------------------------------------------------------------
// Brownout.
// -------------------------------------------------------------------

TEST(AlignServer, BrownoutShedsLowThenNormalOnQueueWait)
{
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    AlignServerConfig scfg;
    scfg.brownout_low = std::chrono::milliseconds(20);
    scfg.brownout_normal = std::chrono::milliseconds(200);
    scfg.brownout_alpha = 1.0; // EWMA == last sample: deterministic
    Harness h(scfg, 1, ecfg);

    seq::Generator gen(71);
    auto slowRequest = [&](std::chrono::milliseconds hold) {
        // Gate the lone worker, push one High request through it, and
        // hold the gate long enough that its observed queue wait is at
        // least `hold` — a deterministic lower bound on the EWMA.
        std::promise<void> gate;
        std::shared_future<void> open = gate.get_future().share();
        std::promise<void> started;
        auto blocked = h.engines[0]->submit(
            gen.pair(40, 0.0),
            align::PairAligner([open, &started](const seq::SequencePair &) {
                started.set_value();
                open.wait();
                return align::AlignResult{};
            }));
        // The pool steals in no particular order: only once the blocker
        // is RUNNING is the vip request guaranteed to wait behind it.
        started.get_future().wait();
        AlignClient vip(h.clientConfig("vip", Priority::High));
        ASSERT_TRUE(vip.connect().ok());
        std::thread opener([&] {
            eventually([&] {
                return h.server->metrics().pending.load(
                           std::memory_order_relaxed) >= 1;
            });
            std::this_thread::sleep_for(hold);
            gate.set_value();
        });
        auto res = vip.alignBatch({gen.pair(60, 0.05)}, false);
        opener.join();
        ASSERT_TRUE(res[0].ok()) << res[0].status().toString();
        ASSERT_TRUE(blocked.get().ok());
    };

    // Level 0: everything admitted.
    AlignClient low(h.clientConfig("low", Priority::Low));
    ASSERT_TRUE(low.connect().ok());
    ASSERT_TRUE(low.alignBatch({gen.pair(60, 0.05)}, false)[0].ok());

    // One slow response past brownout_low: level 1, Low sheds, Normal
    // still admitted.
    slowRequest(std::chrono::milliseconds(40));
    ASSERT_GE(h.server->metrics().queue_wait_ewma_us.load(
                  std::memory_order_relaxed),
              20000u);
    auto low_res = low.alignBatch({gen.pair(60, 0.05)}, false);
    ASSERT_FALSE(low_res[0].ok());
    EXPECT_EQ(low_res[0].status().code(), StatusCode::Overloaded);
    AlignClient normal(h.clientConfig("norm", Priority::Normal));
    ASSERT_TRUE(normal.connect().ok());
    ASSERT_TRUE(normal.alignBatch({gen.pair(60, 0.05)}, false)[0].ok());

    // Past brownout_normal: level 2, Normal sheds too, High still in.
    slowRequest(std::chrono::milliseconds(250));
    auto normal_res = normal.alignBatch({gen.pair(60, 0.05)}, false);
    ASSERT_FALSE(normal_res[0].ok());
    EXPECT_EQ(normal_res[0].status().code(), StatusCode::Overloaded);
    AlignClient vip2(h.clientConfig("vip2", Priority::High));
    ASSERT_TRUE(vip2.connect().ok());
    ASSERT_TRUE(vip2.alignBatch({gen.pair(60, 0.05)}, false)[0].ok());

    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_EQ(snap.brownout_shed[static_cast<unsigned>(Priority::Low)],
              1u);
    EXPECT_EQ(snap.brownout_shed[static_cast<unsigned>(Priority::Normal)],
              1u);
    EXPECT_EQ(snap.brownout_shed[static_cast<unsigned>(Priority::High)],
              0u);
    EXPECT_GE(snap.brownout_level, 2u);
}

// -------------------------------------------------------------------
// End-to-end: a wedged shard cannot take the service down.
// -------------------------------------------------------------------

TEST(AlignServer, WedgedShardBreakerOpensAndBatchSurvives)
{
    // Shard 0 is force-wedged: its lone worker and its whole (tiny)
    // queue are pinned by gated jobs, and Reject backpressure makes
    // every routed request fail fast with Overloaded. The breaker must
    // open within its rolling window, traffic must fail over to the
    // healthy shard, and a 1k-request batch must complete with >= 99%
    // success and zero hangs.
    engine::EngineConfig ecfg;
    ecfg.workers = 1;
    ecfg.queue_capacity = 2;
    ecfg.backpressure = engine::Backpressure::Reject;
    AlignServerConfig scfg;
    scfg.pending_cap = 0; // isolate the breaker from watermark shed
    scfg.router.cache_capacity = 0;
    scfg.router.breaker_window = 8;
    scfg.router.breaker_min_samples = 2;
    scfg.router.breaker_open_ratio = 0.5;
    scfg.router.breaker_cooldown = std::chrono::seconds(60); // stays open
    Harness h(scfg, 2, ecfg);

    // Wedge shard 0. The dispatcher runs up to 2 pool tasks per worker
    // before throttling, so the wedge is: gated job A running (wait for
    // its started signal), gated job B dispatched behind it (wait for
    // the queue to drain), then gated jobs C and D parked in the queue,
    // filling it. Only then does every routed request bounce — anything
    // sloppier leaves a queue slot that swallows a client request into
    // a forever-blocked future.
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    seq::Generator gen(73);
    std::vector<std::future<engine::Engine::AlignOutcome>> wedged;
    wedged.push_back(h.engines[0]->submit(
        gen.pair(40, 0.0),
        align::PairAligner([open, &started](const seq::SequencePair &) {
            started.set_value();
            open.wait();
            return align::AlignResult{};
        })));
    started.get_future().wait();
    for (int i = 0; i < 3; ++i) {
        wedged.push_back(h.engines[0]->submit(
            gen.pair(40, 0.0),
            align::PairAligner([open](const seq::SequencePair &) {
                open.wait();
                return align::AlignResult{};
            })));
        if (i == 0)
            ASSERT_TRUE(eventually([&] {
                return h.engines[0]->metrics().queue_depth == 0;
            }));
    }
    ASSERT_EQ(h.engines[0]->metrics().queue_depth, 2u);

    constexpr size_t kBatch = 1000;
    std::vector<seq::SequencePair> pairs;
    pairs.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i)
        pairs.push_back(gen.pair(60, 0.05));

    // Window 2: the lone healthy worker (queue cap 2) can always absorb
    // the in-flight load, so only the wedged shard ever rejects.
    ClientConfig ccfg = h.clientConfig("survivor");
    ccfg.window = 2;
    AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());
    BatchOptions opts;
    opts.want_cigar = false;
    opts.retry.max_attempts = 4;
    opts.retry.initial_backoff = std::chrono::milliseconds(1);
    opts.retry.max_backoff = std::chrono::milliseconds(8);
    const auto results = client.alignBatch(pairs, opts);

    size_t ok = 0;
    for (size_t i = 0; i < kBatch; ++i)
        if (results[i].ok() && results[i]->found())
            ++ok;
    EXPECT_GE(ok, (kBatch * 99) / 100)
        << "too many client-visible failures";

    // Ledger balances once the last in-flight responses are written.
    const bool balanced = eventually([&] {
        const ServeSnapshot s = h.server->serveSnapshot();
        return s.requests == s.responses_ok + s.responses_failed;
    });
    {
        const ServeSnapshot s = h.server->serveSnapshot();
        ASSERT_TRUE(balanced)
            << "requests=" << s.requests << " ok=" << s.responses_ok
            << " failed=" << s.responses_failed << " pending=" << s.pending
            << " throttled=" << s.quota_throttled;
    }
    const ServeSnapshot snap = h.server->serveSnapshot();
    EXPECT_GE(snap.breaker_opens, 1u);
    ASSERT_EQ(snap.shards.size(), 2u);
    EXPECT_EQ(snap.shards[0].breaker_state,
              static_cast<u8>(BreakerState::Open));
    // The healthy shard carried (nearly) everything.
    EXPECT_GE(snap.shards[1].routed, (kBatch * 95) / 100);

    gate.set_value();
    for (auto &w : wedged)
        (void)w.get();
}

} // namespace
} // namespace gmx::serve
