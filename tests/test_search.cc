/**
 * @file
 * Tests for approximate pattern search: the GMX semi-global search is
 * differential-tested against the Myers search oracle, and the oracle
 * itself against a scalar semi-global DP.
 */

#include <gtest/gtest.h>

#include <string>

#include "align/myers_search.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "gmx/search.hh"
#include "sequence/generator.hh"

namespace gmx {
namespace {

using align::SearchHit;
using core::SearchOptions;
using seq::Sequence;

/** Scalar semi-global DP oracle: D[n][j] for every text position. */
std::vector<i64>
scalarBottomRow(const Sequence &pattern, const Sequence &text)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    std::vector<i64> col(n + 1);
    std::vector<i64> bottom(m);
    for (size_t i = 0; i <= n; ++i)
        col[i] = static_cast<i64>(i);
    for (size_t j = 1; j <= m; ++j) {
        i64 diag = col[0];
        col[0] = 0; // semi-global top boundary
        for (size_t i = 1; i <= n; ++i) {
            const i64 up = col[i];
            const i64 eq =
                pattern.at(i - 1) == text.at(j - 1) ? 0 : 1;
            col[i] = std::min({up + 1, col[i - 1] + 1, diag + eq});
            diag = up;
        }
        bottom[j - 1] = col[n];
    }
    return bottom;
}

std::vector<SearchHit>
scalarHits(const Sequence &pattern, const Sequence &text, i64 k)
{
    const auto bottom = scalarBottomRow(pattern, text);
    std::vector<SearchHit> hits;
    size_t j = 0;
    while (j < bottom.size()) {
        if (bottom[j] > k) {
            ++j;
            continue;
        }
        size_t best = j, end = j;
        while (end < bottom.size() && bottom[end] <= k) {
            if (bottom[end] < bottom[best])
                best = end;
            ++end;
        }
        hits.push_back({best + 1, bottom[best]});
        j = end;
    }
    return hits;
}

TEST(MyersSearch, MatchesScalarOracle)
{
    seq::Generator gen(601);
    for (size_t n : {5u, 20u, 64u, 65u, 130u}) {
        const auto pattern = gen.random(n);
        // Build a text with two planted occurrences.
        const auto left = gen.random(150);
        const auto mid = gen.random(100);
        const auto occ1 = gen.mutate(pattern, 0.05);
        const auto occ2 = gen.mutate(pattern, 0.10);
        const Sequence text(left.str() + occ1.str() + mid.str() +
                            occ2.str());
        const i64 k = std::max<i64>(2, static_cast<i64>(n) / 4);
        EXPECT_EQ(align::myersSearch(pattern, text, k),
                  scalarHits(pattern, text, k))
            << "n=" << n;
    }
}

TEST(GmxSearch, MatchesMyersSearch)
{
    seq::Generator gen(603);
    for (size_t n : {8u, 33u, 64u, 100u, 200u}) {
        const auto pattern = gen.random(n);
        const auto noise1 = gen.random(300);
        const auto noise2 = gen.random(200);
        const auto occ = gen.mutate(pattern, 0.08);
        const Sequence text(noise1.str() + occ.str() + noise2.str());
        const i64 k = std::max<i64>(2, static_cast<i64>(n) / 5);

        SearchOptions opts;
        opts.max_distance = k;
        opts.with_alignment = false;
        const auto gmx_hits = core::searchGmx(pattern, text, opts);
        const auto oracle = align::myersSearch(pattern, text, k);
        ASSERT_EQ(gmx_hits.size(), oracle.size()) << "n=" << n;
        for (size_t i = 0; i < oracle.size(); ++i) {
            EXPECT_EQ(gmx_hits[i].end, oracle[i].end);
            EXPECT_EQ(gmx_hits[i].distance, oracle[i].distance);
        }
    }
}

TEST(GmxSearch, FindsPlantedOccurrencesWithAlignment)
{
    seq::Generator gen(605);
    const auto pattern = gen.random(80);
    const auto occ = gen.mutate(pattern, 0.05);
    const auto left = gen.random(500);
    const auto right = gen.random(400);
    const Sequence text(left.str() + occ.str() + right.str());

    SearchOptions opts;
    opts.max_distance = 12;
    const auto hits = core::searchGmx(pattern, text, opts);
    ASSERT_GE(hits.size(), 1u);

    bool found_planted = false;
    for (const auto &h : hits) {
        // Every reported occurrence must verify: the window's global edit
        // distance equals the reported distance and the CIGAR is valid.
        const Sequence window =
            text.substr(h.begin, h.end - h.begin);
        EXPECT_EQ(align::nwDistance(pattern, window), h.distance);
        const auto check = align::verifyCigar(pattern, window, h.cigar);
        EXPECT_TRUE(check.ok) << check.error;
        EXPECT_EQ(check.edit_distance, h.distance);
        if (h.begin >= left.size() - 12 && h.begin <= left.size() + 12)
            found_planted = true;
    }
    EXPECT_TRUE(found_planted);
}

TEST(GmxSearch, ExactMatchHasZeroDistance)
{
    seq::Generator gen(607);
    const auto pattern = gen.random(40);
    const auto pad = gen.random(200);
    const Sequence text(pad.str() + pattern.str() + pad.str());
    SearchOptions opts;
    opts.max_distance = 0;
    const auto hits = core::searchGmx(pattern, text, opts);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].distance, 0);
    EXPECT_EQ(hits[0].begin, pad.size());
    EXPECT_EQ(hits[0].end, pad.size() + pattern.size());
    EXPECT_EQ(hits[0].cigar.editDistance(), 0u);
}

TEST(GmxSearch, NoSpuriousHitsInRandomText)
{
    // A 60 bp pattern at k=3 in unrelated random text: hits are
    // overwhelmingly unlikely.
    seq::Generator gen(609);
    const auto pattern = gen.random(60);
    const auto text = gen.random(5000);
    SearchOptions opts;
    opts.max_distance = 3;
    opts.with_alignment = false;
    EXPECT_TRUE(core::searchGmx(pattern, text, opts).empty());
}

TEST(GmxSearch, ByteAlphabet)
{
    // ASCII search (the paper's "any alphabet size" point): find a word
    // with one typo in a sentence.
    const std::string text =
        "the quick brown fox jumps over the lazy dog and the quikc brown "
        "cat naps";
    SearchOptions opts;
    opts.max_distance = 2;
    opts.with_alignment = false;
    const auto hits = core::searchGmxBytes("quick", text, opts);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].distance, 0); // "quick"
    EXPECT_EQ(hits[0].end, 9u);
    // Semi-global: the best occurrence in the "quikc" region is the
    // substring "quik" (one deletion from "quick").
    EXPECT_EQ(hits[1].distance, 1);
    // A DNA-coded search of the same strings would collapse the alphabet
    // to 2 bits and find spurious matches; bytes must not.
    const auto strict = core::searchGmxBytes("zebra", text, opts);
    EXPECT_TRUE(strict.empty());
}

TEST(GmxSearch, AllOccurrencesModeReportsRuns)
{
    seq::Generator gen(611);
    const auto pattern = gen.random(30);
    const auto pad = gen.random(100);
    const Sequence text(pad.str() + pattern.str() + pad.str());
    SearchOptions opts;
    opts.max_distance = 2;
    opts.with_alignment = false;
    opts.best_per_run = false;
    const auto hits = core::searchGmx(pattern, text, opts);
    // The run around the exact match contains several end positions
    // (ending 1-2 characters early/late costs <= 2 edits).
    EXPECT_GE(hits.size(), 3u);
}

TEST(GmxSearch, RejectsDegenerateBudget)
{
    EXPECT_THROW(
        core::searchGmx(Sequence("ACG"), Sequence("ACGT"), {3, false, 32,
                                                            true}),
        FatalError);
    EXPECT_THROW(align::myersSearch(Sequence("ACG"), Sequence("ACGT"), 3),
                 FatalError);
}

TEST(GmxSearch, TileSizeInvariance)
{
    seq::Generator gen(613);
    const auto pattern = gen.random(70);
    const auto occ = gen.mutate(pattern, 0.1);
    const auto pad = gen.random(300);
    const Sequence text(pad.str() + occ.str() + pad.str());
    SearchOptions base;
    base.max_distance = 14;
    base.with_alignment = false;
    const auto ref = core::searchGmx(pattern, text, base);
    for (unsigned t : {4u, 8u, 16u, 64u}) {
        SearchOptions opts = base;
        opts.tile = t;
        const auto hits = core::searchGmx(pattern, text, opts);
        ASSERT_EQ(hits.size(), ref.size()) << "T=" << t;
        for (size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].end, ref[i].end) << "T=" << t;
            EXPECT_EQ(hits[i].distance, ref[i].distance) << "T=" << t;
        }
    }
}

} // namespace
} // namespace gmx
