/**
 * @file
 * Tests for the set-associative cache simulator and the hierarchy.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/cache.hh"

namespace gmx::sim {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false)); // same line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 2 sets, 64B lines: lines mapping to set 0 are multiples of
    // 128.
    Cache c(256, 2, 64);
    EXPECT_FALSE(c.access(0, false));
    EXPECT_FALSE(c.access(128, false));
    EXPECT_TRUE(c.access(0, false)); // touch 0: now 128 is LRU
    EXPECT_FALSE(c.access(256, false)); // evicts 128
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(128, false)); // was evicted
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(256, 2, 64);
    c.access(0, true); // dirty
    c.access(128, false);
    c.access(256, false); // evicts 0 (dirty) -> writeback
    c.access(384, false); // evicts 128 (clean) -> no writeback
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.probe(0x40));
    c.access(0x40, false);
    const u64 misses = c.stats().misses;
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_EQ(c.stats().misses, misses);
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(0, 2, 64), FatalError);
    EXPECT_THROW(Cache(1000, 3, 64), FatalError); // non-pow2 sets
    EXPECT_THROW(Cache(1024, 2, 48), FatalError); // non-pow2 line
}

TEST(Cache, StreamingWorkingSetLargerThanCacheAlwaysMisses)
{
    Cache c(4096, 4, 64);
    // Two sequential sweeps over 64 KB: every line misses every sweep.
    for (int sweep = 0; sweep < 2; ++sweep)
        for (u64 a = 0; a < 65536; a += 64)
            c.access(a, false);
    EXPECT_EQ(c.stats().misses, 2048u);
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, ResidentWorkingSetHitsAfterWarmup)
{
    Cache c(65536, 8, 64);
    for (int sweep = 0; sweep < 3; ++sweep)
        for (u64 a = 0; a < 32768; a += 64)
            c.access(a, false);
    EXPECT_EQ(c.stats().misses, 512u); // cold only
    EXPECT_EQ(c.stats().hits, 1024u);
}

TEST(MemHierarchy, LatenciesFollowLevels)
{
    const MemSystemConfig cfg = MemSystemConfig::gem5Like();
    MemHierarchy mh(cfg);
    // Cold: DRAM latency.
    EXPECT_EQ(mh.access(0x10000, 8, false), cfg.dram_latency_cycles);
    // Warm: L1 hit.
    EXPECT_EQ(mh.access(0x10000, 8, false), cfg.l1.latency_cycles);
    EXPECT_EQ(mh.dramBytes(), 64u);
}

TEST(MemHierarchy, RtlConfigSkipsL2)
{
    const MemSystemConfig cfg = MemSystemConfig::rtlLike();
    MemHierarchy mh(cfg);
    EXPECT_EQ(mh.access(0x0, 8, false), cfg.dram_latency_cycles);
    EXPECT_EQ(mh.access(0x0, 8, false), cfg.l1.latency_cycles);
    EXPECT_EQ(mh.l2Stats(), nullptr);
}

TEST(MemHierarchy, MultiLineAccessTouchesEachLine)
{
    const MemSystemConfig cfg = MemSystemConfig::gem5Like();
    MemHierarchy mh(cfg);
    mh.access(0x100, 128, false); // two lines
    EXPECT_EQ(mh.l1Stats().accesses, 2u);
}

TEST(MemHierarchy, EvictedFromL1HitsInL2)
{
    const MemSystemConfig cfg = MemSystemConfig::gem5Like();
    MemHierarchy mh(cfg);
    // Stream 256 KB (4x L1, inside L2), then revisit the start: L2 hit.
    for (u64 a = 0; a < 256 * 1024; a += 64)
        mh.access(a, 8, false);
    const unsigned lat = mh.access(0, 8, false);
    EXPECT_EQ(lat, cfg.l2.latency_cycles);
}

} // namespace
} // namespace gmx::sim
