/**
 * @file
 * Tests for the netlist framework and the GMXD/CCAC/CCTB netlists.
 */

#include <gtest/gtest.h>

#include "gmx/delta.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"
#include "hw/netlist.hh"

namespace gmx::hw {
namespace {

TEST(Netlist, BasicGatesEvaluate)
{
    Netlist nl;
    const Wire a = nl.addInput("a");
    const Wire b = nl.addInput("b");
    nl.markOutput(nl.addGate(GateOp::And, a, b), "and");
    nl.markOutput(nl.addGate(GateOp::Or, a, b), "or");
    nl.markOutput(nl.addGate(GateOp::Xor, a, b), "xor");
    nl.markOutput(nl.addNot(a), "not_a");
    nl.markOutput(nl.addGate(GateOp::Nand, a, b), "nand");
    nl.markOutput(nl.addGate(GateOp::Nor, a, b), "nor");
    nl.markOutput(nl.addGate(GateOp::Xnor, a, b), "xnor");

    for (bool va : {false, true}) {
        for (bool vb : {false, true}) {
            const auto out = nl.eval({va, vb});
            EXPECT_EQ(out[0], va && vb);
            EXPECT_EQ(out[1], va || vb);
            EXPECT_EQ(out[2], va != vb);
            EXPECT_EQ(out[3], !va);
            EXPECT_EQ(out[4], !(va && vb));
            EXPECT_EQ(out[5], !(va || vb));
            EXPECT_EQ(out[6], va == vb);
        }
    }
}

TEST(Netlist, ConstantsAndCounts)
{
    Netlist nl;
    const Wire a = nl.addInput("a");
    const Wire c1 = nl.const1();
    const Wire g = nl.addGate(GateOp::And, a, c1);
    nl.markOutput(g, "out");
    nl.markOutput(nl.const0(), "zero");
    EXPECT_EQ(nl.gateCount(), 1u); // inputs/constants are not physical
    EXPECT_EQ(nl.eval({true})[0], true);
    EXPECT_EQ(nl.eval({true})[1], false);
}

TEST(Netlist, DepthCountsLevels)
{
    Netlist nl;
    const Wire a = nl.addInput("a");
    Wire w = a;
    for (int i = 0; i < 5; ++i)
        w = nl.addNot(w);
    nl.markOutput(w, "out");
    EXPECT_EQ(nl.depth(), 5u);
}

TEST(GmxDeltaNetlist, MatchesFunctionOnAllInputs)
{
    const Netlist nl = buildGmxDeltaNetlist();
    EXPECT_EQ(nl.gateCount(), 6u); // the paper's small-gate-count claim
    for (int a : {-1, 0, 1}) {
        for (int b : {-1, 0, 1}) {
            for (bool eq : {false, true}) {
                const auto out =
                    nl.eval({a > 0, a < 0, b > 0, b < 0, eq});
                bool ep = false, em = false;
                core::gmxDeltaBits(a > 0, a < 0, b > 0, b < 0, eq, ep, em);
                EXPECT_EQ(out[0], ep) << a << " " << b << " " << eq;
                EXPECT_EQ(out[1], em) << a << " " << b << " " << eq;
            }
        }
    }
}

TEST(CcacNetlist, ComputesBothDeltas)
{
    const Netlist nl = buildCcacNetlist();
    // All 4x4 char pairs x 9 delta combinations.
    for (int p = 0; p < 4; ++p) {
        for (int t = 0; t < 4; ++t) {
            for (int dv : {-1, 0, 1}) {
                for (int dh : {-1, 0, 1}) {
                    const auto out = nl.eval(
                        {static_cast<bool>(p & 1),
                         static_cast<bool>((p >> 1) & 1),
                         static_cast<bool>(t & 1),
                         static_cast<bool>((t >> 1) & 1), dv > 0, dv < 0,
                         dh > 0, dh < 0});
                    const bool eq = p == t;
                    const int dv_exp = core::gmxDeltaArith(dv, dh, eq);
                    const int dh_exp = core::gmxDeltaArith(dh, dv, eq);
                    EXPECT_EQ(out[0], dv_exp > 0);
                    EXPECT_EQ(out[1], dv_exp < 0);
                    EXPECT_EQ(out[2], dh_exp > 0);
                    EXPECT_EQ(out[3], dh_exp < 0);
                }
            }
        }
    }
}

TEST(CctbNetlist, PriorityTable)
{
    const Netlist nl = buildCctbNetlist();
    // inputs: eq, dv+, dh+, enable. Outputs: op0, op1, diag, left, up.
    struct Case
    {
        bool eq, dvp, dhp;
        align::Op op;
    };
    const Case cases[] = {
        {true, true, true, align::Op::Match},     // eq wins over all
        {false, false, true, align::Op::Deletion},
        {false, true, true, align::Op::Deletion}, // D beats I
        {false, true, false, align::Op::Insertion},
        {false, false, false, align::Op::Mismatch},
    };
    for (const auto &c : cases) {
        const auto out = nl.eval({c.eq, c.dvp, c.dhp, true});
        const int code = (out[0] ? 1 : 0) | (out[1] ? 2 : 0);
        EXPECT_EQ(static_cast<align::Op>(code), c.op);
        // Exactly one enable fires.
        EXPECT_EQ(static_cast<int>(out[2]) + out[3] + out[4], 1);
    }
    // Disabled cell: everything quiet.
    const auto out = nl.eval({true, true, true, false});
    for (size_t i = 0; i < 5; ++i)
        EXPECT_FALSE(out[i]);
}

TEST(ModuleStats, CellCountsScaleQuadratically)
{
    const auto s8 = GmxAcArray(8).stats();
    const auto s16 = GmxAcArray(16).stats();
    // Area ~ T^2 (paper §6.3), depth ~ 2T-1.
    EXPECT_NEAR(static_cast<double>(s16.gates) / s8.gates, 4.0, 0.2);
    EXPECT_NEAR(static_cast<double>(s16.depth) / s8.depth, 2.0, 0.3);
}

} // namespace
} // namespace gmx::hw
