/**
 * @file
 * Capstone regression: the paper's abstract-level claims, asserted
 * against this reproduction's models in one place. If a refactor bends
 * any headline result out of shape, this suite names it directly.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "hw/asic.hh"
#include "hw/dsa.hh"
#include "sequence/dataset.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace gmx {
namespace {

using namespace gmx::sim;

class PaperClaims : public ::testing::Test
{
  protected:
    static const KernelProfile &
    profileOf(Algo algo, const seq::Dataset &ds)
    {
        static std::map<std::pair<int, const seq::Dataset *>,
                        KernelProfile>
            cache;
        const auto key = std::make_pair(static_cast<int>(algo), &ds);
        auto it = cache.find(key);
        if (it == cache.end()) {
            WorkloadOptions opts;
            opts.samples = 1;
            it = cache.emplace(key, profileForDataset(algo, ds, opts))
                     .first;
        }
        return it->second;
    }

    static const seq::Dataset &
    shortSet()
    {
        static const auto ds = seq::makeDataset("s", 200, 0.05, 2, 4242);
        return ds;
    }

    static const seq::Dataset &
    longSet()
    {
        static const auto ds = seq::makeDataset("l", 5000, 0.15, 1, 4243);
        return ds;
    }
};

TEST_F(PaperClaims, SpeedupsOverSoftwareInThePaperBand)
{
    // Abstract: "speed-ups from 25-265x" over widely-used software
    // (Fig. 10's per-family range is wider; the abstract band covers the
    // BPM-class baselines). Check Full(GMX) vs Full(BPM) sits inside a
    // generous version of that band at both scales.
    const CoreConfig core = CoreConfig::gem5InOrder();
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    for (const auto *ds : {&shortSet(), &longSet()}) {
        const double gmx =
            evaluate(profileOf(Algo::FullGmx, *ds), core, mem)
                .alignments_per_second;
        const double bpm =
            evaluate(profileOf(Algo::FullBpm, *ds), core, mem)
                .alignments_per_second;
        EXPECT_GT(gmx / bpm, 10.0) << ds->name;
        EXPECT_LT(gmx / bpm, 300.0) << ds->name;
    }
}

TEST_F(PaperClaims, AreaAndPowerSignOff)
{
    // Abstract: 0.0216 mm2 (1.7% of the SoC), 8.47 mW.
    const auto rep = hw::gmxAsicReport(32, 1.0);
    EXPECT_NEAR(rep.total_area_mm2, 0.0216, 0.004);
    EXPECT_NEAR(rep.total_power_mw, 8.47, 1.7);
    const auto soc = hw::socReport();
    EXPECT_NEAR(soc.gmx_area_fraction, 0.017, 0.005);
}

TEST_F(PaperClaims, SixteenFoldMemoryFootprintReduction)
{
    // Abstract: "16x memory footprint reduction" (vs the BPM-class
    // storage at T=32 the edge matrix is even smaller; check >= 8x).
    const auto &bpm = profileOf(Algo::FullBpm, longSet());
    const auto &gmx = profileOf(Algo::FullGmx, longSet());
    EXPECT_GE(bpm.footprintBytes() / gmx.footprintBytes(), 8.0);
}

TEST_F(PaperClaims, GcupsLeadershipAndThroughputPerArea)
{
    // Table 2: 1024 PGCUPS/PE tops the survey; abstract: 0.35-0.52x
    // throughput/area of DSAs for the whole core (checked loosely: the
    // GMX unit alone beats every surveyed PE on GCUPS).
    const double gmx_gcups = hw::gmxPeakGcups(32, 1.0);
    for (const auto &row : hw::table2SurveyRows())
        EXPECT_GT(gmx_gcups, row.pgcups_per_pe) << row.study;
}

TEST_F(PaperClaims, DsaComparisonOrdering)
{
    // §7.4: per PE, Core+GMX > GenASM vault > Darwin GACT on the
    // windowed workload.
    const CoreConfig core = CoreConfig::rtlInOrder();
    const MemSystemConfig mem = MemSystemConfig::rtlLike();
    const double gmx =
        evaluate(profileOf(Algo::WindowedGmx, longSet()), core, mem)
            .alignments_per_second;
    const double genasm = hw::alignmentsPerSecond(
        hw::genasmVault(96), longSet().length, 96, 32);
    const double darwin = hw::alignmentsPerSecond(
        hw::darwinGact(96), longSet().length, 96, 32);
    EXPECT_GT(gmx, genasm);
    EXPECT_GT(genasm, darwin);
}

TEST_F(PaperClaims, BandwidthScalingStory)
{
    // Abstract: "demand significantly less memory bandwidth ... enabling
    // GMX to scale in multicore processors". At 16 threads on the long
    // set, Full(BPM) saturates DDR4 while Windowed(GMX) does not.
    const CoreConfig core = CoreConfig::gem5OutOfOrder();
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const auto bpm = evaluateMulticore(profileOf(Algo::FullBpm, longSet()),
                                       core, mem, {16});
    const auto win = evaluateMulticore(
        profileOf(Algo::WindowedGmx, longSet()), core, mem, {16});
    EXPECT_GT(bpm.aggregate_gbps[0], 0.6 * mem.dram_bw_gbps);
    EXPECT_LT(win.aggregate_gbps[0], 0.2 * mem.dram_bw_gbps);
    EXPECT_NEAR(win.speedup[0], 16.0, 1.5);
    EXPECT_LT(bpm.speedup[0], 12.0);
}

} // namespace
} // namespace gmx
