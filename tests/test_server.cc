/**
 * @file
 * MetricsServer tests over real sockets: every endpoint, the connection
 * cap, oversized and slow clients, concurrent scrapes during a live
 * workload, unix-domain serving, and graceful shutdown with connections
 * in flight. Runs under AddressSanitizer in scripts/tier1.sh, which is
 * what makes "no leaked threads/fds" an enforced property rather than a
 * comment.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/server.hh"
#include "engine/trace.hh"
#include "sequence/generator.hh"
#include "test_http_util.hh"

namespace gmx::engine {
namespace {

using gmx::test::HttpResponse;
using gmx::test::httpGet;

/** Engine + started server with test-friendly defaults. */
struct Harness
{
    explicit Harness(EngineConfig ecfg = {}, ServerConfig scfg = {})
        : engine(patch(ecfg))
    {
        scfg.port = 0; // always ephemeral in tests
        server = std::make_unique<MetricsServer>(engine, scfg);
        const Status s = server->start();
        EXPECT_TRUE(s.ok()) << s.toString();
    }

    static EngineConfig patch(EngineConfig cfg)
    {
        if (cfg.workers == 0)
            cfg.workers = 2;
        return cfg;
    }

    u16 port() const { return server->port(); }

    Engine engine;
    std::unique_ptr<MetricsServer> server;
};

/** Drive a small mixed workload through the engine. */
void
runTraffic(Engine &engine, int pairs = 16, u64 seed = 9001)
{
    seq::Generator gen(seed);
    std::vector<seq::SequencePair> work;
    for (int i = 0; i < pairs; ++i)
        work.push_back(gen.pair(150, i % 3 ? 0.05 : 0.2));
    const auto results = engine.alignAll(work, false);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok()) << r.status().toString();
}

TEST(MetricsServer, MetricsEndpointRoundTripsTheSnapshot)
{
    Harness h;
    runTraffic(h.engine, 20);

    const HttpResponse r = httpGet(h.port(), "/metrics");
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.raw.find("Content-Type: application/openmetrics-text"),
              std::string::npos);
    ASSERT_GE(r.body.size(), 6u);
    EXPECT_EQ(r.body.substr(r.body.size() - 6), "# EOF\n");

    // The scrape carries the same counters as the snapshot API. Scrape
    // after traffic has fully drained, so both views are quiescent.
    const auto snap = h.engine.metrics();
    EXPECT_NE(r.body.find("gmx_requests_submitted_total " +
                          std::to_string(snap.submitted)),
              std::string::npos);
    EXPECT_NE(r.body.find("gmx_requests_completed_total " +
                          std::to_string(snap.completed)),
              std::string::npos);

    // And /vars serves exactly MetricsSnapshot::toJson of the same state.
    const HttpResponse vars = httpGet(h.port(), "/vars");
    ASSERT_EQ(vars.status, 200);
    EXPECT_NE(vars.raw.find("Content-Type: application/json"),
              std::string::npos);
    EXPECT_EQ(vars.body, h.engine.metrics().toJson());
}

TEST(MetricsServer, HealthzUnknownPathAndMethodHandling)
{
    Harness h;
    const HttpResponse health = httpGet(h.port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    EXPECT_EQ(httpGet(h.port(), "/nope").status, 404);
    const HttpResponse post = httpGet(h.port(), "/metrics", "POST");
    EXPECT_EQ(post.status, 405);
    EXPECT_NE(post.raw.find("Allow: GET"), std::string::npos);

    const int fd = gmx::test::connectTcp(h.port());
    ASSERT_GE(fd, 0);
    gmx::test::sendRaw(fd, "not an http request at all\r\n\r\n");
    EXPECT_EQ(gmx::test::parseResponse(gmx::test::recvAll(fd)).status, 400);
    ::close(fd);
}

TEST(MetricsServer, TraceLookupHitAndMiss)
{
    EngineConfig cfg;
    cfg.trace_sample_every = 1;
    Harness h(cfg);
    runTraffic(h.engine, 8);

    // Every request id 1..8 was sampled; id 1 must be present.
    const HttpResponse hit = httpGet(h.port(), "/trace?id=1");
    ASSERT_EQ(hit.status, 200);
    EXPECT_NE(hit.body.find("\"found\":true"), std::string::npos);
    EXPECT_NE(hit.body.find("\"event\":\"enqueue\""), std::string::npos);
    EXPECT_NE(hit.body.find("\"event\":\"complete\""), std::string::npos);

    const HttpResponse miss = httpGet(h.port(), "/trace?id=999999");
    EXPECT_EQ(miss.status, 404);
    EXPECT_NE(miss.body.find("\"found\":false"), std::string::npos);

    EXPECT_EQ(httpGet(h.port(), "/trace?id=banana").status, 400);
    EXPECT_EQ(httpGet(h.port(), "/trace?id=").status, 400);

    // The full dump carries both the ring and the slow-exemplar store.
    const HttpResponse all = httpGet(h.port(), "/trace");
    ASSERT_EQ(all.status, 200);
    EXPECT_NE(all.body.find("\"ring\":{"), std::string::npos);
    EXPECT_NE(all.body.find("\"slow\":{"), std::string::npos);
    EXPECT_NE(all.body.find("\"by_tier\""), std::string::npos);
}

TEST(MetricsServer, SlowRequestExemplarsAppearInTraceDump)
{
    EngineConfig cfg;
    cfg.slow_request_threshold = std::chrono::nanoseconds(1); // everything
    Harness h(cfg);
    testing::internal::CaptureStderr(); // swallow the warn lines
    runTraffic(h.engine, 6);
    (void)testing::internal::GetCapturedStderr();

    EXPECT_GT(h.engine.slowRequests().noted(), 0u);
    const HttpResponse all = httpGet(h.port(), "/trace");
    ASSERT_EQ(all.status, 200);
    EXPECT_NE(all.body.find("\"total_us\":"), std::string::npos);
    EXPECT_NE(all.body.find("\"queue_wait_us\":"), std::string::npos);
}

TEST(MetricsServer, ConnectionCapAnswers503)
{
    ServerConfig scfg;
    scfg.max_connections = 1;
    scfg.handler_threads = 1;
    scfg.io_timeout = std::chrono::milliseconds(3000);
    Harness h({}, scfg);

    // Occupy the single slot with a connection that sends nothing; the
    // handler blocks in recv until its deadline.
    const int hog = gmx::test::connectTcp(h.port());
    ASSERT_GE(hog, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const HttpResponse refused = httpGet(h.port(), "/healthz");
    EXPECT_EQ(refused.status, 503);
    EXPECT_GE(h.server->refused(), 1u);
    ::close(hog);

    // The slot frees once the hog is gone; service resumes.
    HttpResponse ok;
    for (int attempt = 0; attempt < 50; ++attempt) {
        ok = httpGet(h.port(), "/healthz");
        if (ok.status == 200)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    EXPECT_EQ(ok.status, 200);
}

TEST(MetricsServer, OversizedRequestAnswers431)
{
    ServerConfig scfg;
    scfg.max_request_bytes = 512;
    Harness h({}, scfg);

    const int fd = gmx::test::connectTcp(h.port());
    ASSERT_GE(fd, 0);
    std::string huge = "GET /metrics HTTP/1.1\r\n";
    huge += "X-Padding: " + std::string(4096, 'x') + "\r\n\r\n";
    gmx::test::sendRaw(fd, huge);
    EXPECT_EQ(gmx::test::parseResponse(gmx::test::recvAll(fd)).status, 431);
    ::close(fd);
}

TEST(MetricsServer, SlowClientTimesOutWith408)
{
    ServerConfig scfg;
    scfg.io_timeout = std::chrono::milliseconds(200);
    Harness h({}, scfg);

    const int fd = gmx::test::connectTcp(h.port());
    ASSERT_GE(fd, 0);
    // Half a request, then silence: the server must give up after its
    // read deadline, answer 408, and close — not hold the handler.
    gmx::test::sendRaw(fd, "GET /metr");
    const auto t0 = std::chrono::steady_clock::now();
    const HttpResponse r = gmx::test::parseResponse(gmx::test::recvAll(fd));
    const auto waited = std::chrono::steady_clock::now() - t0;
    ::close(fd);
    EXPECT_EQ(r.status, 408);
    EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(MetricsServer, ConcurrentScrapesDuringLiveWorkload)
{
    EngineConfig ecfg;
    ecfg.trace_sample_every = 2;
    ServerConfig scfg;
    scfg.handler_threads = 2;
    Harness h(ecfg, scfg);

    std::atomic<bool> done{false};
    std::atomic<int> bad{0};
    std::vector<std::thread> scrapers;
    const char *targets[] = {"/metrics", "/vars", "/trace", "/healthz"};
    for (int i = 0; i < 3; ++i) {
        scrapers.emplace_back([&, i] {
            int t = i;
            while (!done.load()) {
                const HttpResponse r =
                    httpGet(h.port(), targets[t++ % 4]);
                // 503 is an acceptable answer under the cap; anything
                // else must be a well-formed 200.
                if (r.status != 200 && r.status != 503)
                    bad.fetch_add(1);
                if (r.status == 200 &&
                    r.raw.find("Content-Length:") == std::string::npos)
                    bad.fetch_add(1);
            }
        });
    }

    runTraffic(h.engine, 40, 777);
    done.store(true);
    for (auto &t : scrapers)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    // A final scrape after the workload is complete and consistent.
    const HttpResponse r = httpGet(h.port(), "/metrics");
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("gmx_requests_completed_total 40"),
              std::string::npos);
}

TEST(MetricsServer, UnixDomainSocketServesMetrics)
{
    ServerConfig scfg;
    scfg.unix_path = testing::TempDir() + "gmx_metrics_test.sock";
    ::unlink(scfg.unix_path.c_str()); // a crashed prior run may leak one
    Harness h({}, scfg);
    runTraffic(h.engine, 4);

    const HttpResponse r =
        gmx::test::httpGetUnix(scfg.unix_path, "/metrics");
    ASSERT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("# EOF\n"), std::string::npos);

    // stop() removes the socket file.
    h.server->stop();
    EXPECT_NE(::access(scfg.unix_path.c_str(), F_OK), 0);
}

TEST(MetricsServer, GracefulShutdownWithInflightConnections)
{
    ServerConfig scfg;
    scfg.io_timeout = std::chrono::milliseconds(300);
    scfg.handler_threads = 2;
    Harness h({}, scfg);

    // Two idle connections occupying handlers mid-read, plus one queued.
    std::vector<int> idle;
    for (int i = 0; i < 3; ++i) {
        const int fd = gmx::test::connectTcp(h.port());
        ASSERT_GE(fd, 0);
        idle.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // stop() must unblock accept, let the handlers time the idlers out,
    // and join everything — bounded by the io deadline, enforced by the
    // test's own runtime (and by ASan for fd/thread leaks).
    const auto t0 = std::chrono::steady_clock::now();
    h.server->stop();
    const auto took = std::chrono::steady_clock::now() - t0;
    EXPECT_FALSE(h.server->running());
    EXPECT_LT(took, std::chrono::seconds(10));
    for (int fd : idle)
        ::close(fd);

    // stop() is idempotent, and a stopped server refuses nothing new —
    // the port is simply closed.
    h.server->stop();
    EXPECT_EQ(gmx::test::connectTcp(h.port()), -1);

    // The engine outlives its server and still works.
    runTraffic(h.engine, 2);
}

TEST(MetricsServer, RestartAfterStopServesAgain)
{
    Harness h;
    runTraffic(h.engine, 2);
    ASSERT_EQ(httpGet(h.port(), "/healthz").status, 200);
    h.server->stop();

    ServerConfig scfg;
    scfg.port = 0;
    MetricsServer again(h.engine, scfg);
    ASSERT_TRUE(again.start().ok());
    EXPECT_EQ(httpGet(again.port(), "/healthz").status, 200);
    again.stop();
}

TEST(MetricsServer, StartFailsCleanlyWhenPortIsTaken)
{
    Harness h;
    ServerConfig scfg;
    scfg.port = h.port(); // already bound by the harness server
    MetricsServer clash(h.engine, scfg);
    const Status s = clash.start();
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(clash.running());
    // The failed server holds nothing; destroying it must be a no-op.
}

} // namespace
} // namespace gmx::engine
