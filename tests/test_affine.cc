/**
 * @file
 * Tests for the gap-affine aligners (exact Gotoh, banded, local SW).
 */

#include <gtest/gtest.h>

#include "align/affine.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

const AffinePenalties kPen = AffinePenalties::minimap2();

TEST(AffineScore, HandComputedCases)
{
    EXPECT_EQ(affineScore(Sequence("ACGT"), Sequence("ACGT"), kPen), 8);
    EXPECT_EQ(affineScore(Sequence("ACGT"), Sequence("AGGT"), kPen),
              6 - 4); // 3 matches, 1 mismatch
    // Single deletion: 4 matches minus one gap of length 1.
    EXPECT_EQ(affineScore(Sequence("ACGT"), Sequence("ACGGT"), kPen),
              8 - 6);
    // Empty vs empty.
    EXPECT_EQ(affineScore(Sequence(""), Sequence(""), kPen), 0);
    // Pure gap: -(open + len*extend).
    EXPECT_EQ(affineScore(Sequence(""), Sequence("ACG"), kPen), -(4 + 3 * 2));
}

TEST(AffineScore, PrefersOneLongGapOverTwoShort)
{
    // Affine scoring must merge gaps: aligning AAAA vs AATTAA.
    // One 2-gap costs open+2*ext = 8; two 1-gaps would cost 12.
    const i64 s = affineScore(Sequence("AAAA"), Sequence("AATTAA"), kPen);
    EXPECT_EQ(s, 4 * 2 - (4 + 2 * 2));
}

TEST(AffineAlign, ScoreMatchesScoreOnly)
{
    for (const auto &params : test::standardGrid()) {
        if (params.length > 300)
            continue; // keep the O(nm) traceback matrix small
        const auto pair = test::makePair(params);
        const auto res = affineAlign(pair.pattern, pair.text, kPen);
        EXPECT_EQ(res.score, affineScore(pair.pattern, pair.text, kPen))
            << test::paramName(params);
    }
}

TEST(AffineAlign, CigarConsistentAndRescoresToReportedScore)
{
    for (const auto &params : test::standardGrid()) {
        if (params.length > 300)
            continue;
        const auto pair = test::makePair(params);
        const auto res = affineAlign(pair.pattern, pair.text, kPen);
        const auto check = verifyCigar(pair.pattern, pair.text, res.cigar);
        ASSERT_TRUE(check.ok)
            << test::paramName(params) << ": " << check.error;
        EXPECT_EQ(affineScoreOfCigar(res.cigar, kPen), res.score)
            << test::paramName(params);
    }
}

TEST(AffineBanded, WideBandMatchesExact)
{
    for (const auto &params : test::standardGrid()) {
        if (params.length > 300)
            continue;
        const auto pair = test::makePair(params);
        const i64 band = static_cast<i64>(
            std::max(pair.pattern.size(), pair.text.size()));
        const auto banded =
            affineAlignBanded(pair.pattern, pair.text, kPen, band);
        const i64 exact = affineScore(pair.pattern, pair.text, kPen);
        ASSERT_TRUE(banded.has_cigar) << test::paramName(params);
        EXPECT_EQ(banded.score, exact) << test::paramName(params);
        EXPECT_TRUE(verifyCigar(pair.pattern, pair.text, banded.cigar).ok);
    }
}

TEST(AffineBanded, NarrowBandNeverBeatsExact)
{
    seq::Generator gen(31);
    for (int rep = 0; rep < 8; ++rep) {
        const auto pair = gen.pair(200, 0.1);
        const auto banded =
            affineAlignBanded(pair.pattern, pair.text, kPen, 8);
        if (!banded.has_cigar)
            continue; // band could not connect the corners
        const i64 exact = affineScore(pair.pattern, pair.text, kPen);
        EXPECT_LE(banded.score, exact);
        EXPECT_TRUE(verifyCigar(pair.pattern, pair.text, banded.cigar).ok);
        EXPECT_EQ(affineScoreOfCigar(banded.cigar, kPen), banded.score);
    }
}

TEST(AffineBanded, BandTooNarrowForLengthDifference)
{
    const auto res = affineAlignBanded(Sequence("AAAAAAAAAA"), Sequence("AA"),
                                       kPen, 3);
    EXPECT_FALSE(res.has_cigar); // |n - m| = 8 > band
}

TEST(Sw, FindsEmbeddedLocalMatch)
{
    seq::Generator gen(37);
    const auto core = gen.random(60);
    // Embed the core inside unrelated flanks of text; pattern is the core
    // plus small flanks of its own.
    const auto t_left = gen.random(100);
    const auto t_right = gen.random(80);
    const Sequence text(t_left.str() + core.str() + t_right.str());
    const Sequence pattern(core.str());

    const auto res = swAlign(pattern, text, kPen);
    EXPECT_GE(res.score, 2 * 50); // most of the core matches
    // The located window must overlap the embedded region.
    EXPECT_LT(res.text_begin, t_left.size() + core.size());
    EXPECT_GT(res.text_end, t_left.size());
    // Local cigar aligns the sub-regions.
    const auto sub_p =
        pattern.substr(res.pattern_begin, res.pattern_end - res.pattern_begin);
    const auto sub_t =
        text.substr(res.text_begin, res.text_end - res.text_begin);
    EXPECT_TRUE(verifyCigar(sub_p, sub_t, res.cigar).ok);
}

TEST(Sw, ScoreIsNonNegativeAndZeroForDisjointAlphabets)
{
    // Pattern all-A vs text all-T: no positive-scoring local alignment.
    const auto res = swAlign(Sequence(std::string(50, 'A')),
                             Sequence(std::string(50, 'T')), kPen);
    EXPECT_EQ(res.score, 0);
    EXPECT_TRUE(res.cigar.empty());
}

TEST(Sw, LocalScoreAtLeastGlobalScore)
{
    seq::Generator gen(41);
    for (int rep = 0; rep < 6; ++rep) {
        const auto pair = gen.pair(120, 0.1);
        const auto local = swAlign(pair.pattern, pair.text, kPen);
        const i64 global = affineScore(pair.pattern, pair.text, kPen);
        EXPECT_GE(local.score, std::max<i64>(global, 0));
    }
}

} // namespace
} // namespace gmx::align
