/**
 * @file
 * Tests for Banded(GMX).
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "gmx/banded.hh"
#include "test_util.hh"

namespace gmx::core {
namespace {

using seq::Sequence;

class BandedGmxGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(BandedGmxGridTest, AutoDistanceMatchesNw)
{
    const auto pair = test::makePair(GetParam());
    const auto res = bandedGmxAuto(pair.pattern, pair.text, false);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
}

TEST_P(BandedGmxGridTest, AutoAlignVerifies)
{
    const auto pair = test::makePair(GetParam());
    const auto res = bandedGmxAuto(pair.pattern, pair.text, true);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
    const auto check = align::verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandedGmxGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(BandedGmx, SufficientKIsExact)
{
    seq::Generator gen(301);
    for (int rep = 0; rep < 6; ++rep) {
        const auto pair = gen.pair(500, 0.1);
        const i64 true_dist = align::nwDistance(pair.pattern, pair.text);
        const auto res =
            bandedGmxAlign(pair.pattern, pair.text, true_dist + 1);
        ASSERT_TRUE(res.found());
        EXPECT_EQ(res.distance, true_dist);
        EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok);
    }
}

TEST(BandedGmx, TooSmallKReturnsNotFound)
{
    seq::Generator gen(303);
    const auto pair = gen.pair(400, 0.15);
    const i64 true_dist = align::nwDistance(pair.pattern, pair.text);
    ASSERT_GT(true_dist, 4);
    EXPECT_FALSE(bandedGmxAlign(pair.pattern, pair.text, 2).found());
}

TEST(BandedGmx, LengthDifferenceExceedsK)
{
    EXPECT_FALSE(
        bandedGmxAlign(Sequence("AAAAAAAAAA"), Sequence("AA"), 3).found());
}

TEST(BandedGmx, RejectsNegativeK)
{
    EXPECT_THROW(bandedGmxAlign(Sequence("A"), Sequence("A"), -1),
                 FatalError);
}

TEST(BandedGmx, EmptySequences)
{
    const auto res = bandedGmxAlign(Sequence(""), Sequence("ACG"), 5);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.distance, 3);
    EXPECT_EQ(res.cigar.str(), "DDD");
}

TEST(BandedGmx, DistanceOnlyUsesRollingStorage)
{
    // want_cigar=false must produce the same distance (the megabase
    // configuration) and report no CIGAR.
    seq::Generator gen(307);
    const auto pair = gen.pair(1500, 0.1);
    const auto with = bandedGmxAlign(pair.pattern, pair.text, 400, true);
    const auto without = bandedGmxAlign(pair.pattern, pair.text, 400, false);
    ASSERT_TRUE(with.found());
    ASSERT_TRUE(without.found());
    EXPECT_EQ(with.distance, without.distance);
    EXPECT_FALSE(without.has_cigar);
}

TEST(BandedGmx, NarrowBandComputesFarFewerCells)
{
    // The band's purpose: m*B/T^2 tiles instead of n*m/T^2.
    seq::Generator gen(309);
    const auto text = gen.random(4000);
    const auto pattern = gen.mutate(text, 0.01);
    align::KernelCounts banded_counts, full_like;
    KernelContext banded_ctx(CancelToken{}, &banded_counts);
    KernelContext full_ctx(CancelToken{}, &full_like);
    const auto res = bandedGmxAlign(pattern, text, 128, false, 32,
                                    /*enforce_bound=*/true, banded_ctx);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.distance, align::nwDistance(pattern, text));
    const auto wide = bandedGmxAlign(pattern, text, 4000, false, 32,
                                     /*enforce_bound=*/true, full_ctx);
    ASSERT_TRUE(wide.found());
    EXPECT_LT(banded_counts.cells * 5, full_like.cells);
}

TEST(BandedGmx, FixedBandHeuristicNeverBeatsOptimal)
{
    // enforce_bound = false: the fixed-band regime returns the envelope
    // distance even when it exceeds k (an overestimate by construction).
    seq::Generator gen(317);
    for (int rep = 0; rep < 5; ++rep) {
        const auto pair = gen.pair(600, 0.15);
        const i64 exact = align::nwDistance(pair.pattern, pair.text);
        const auto res = bandedGmxAlign(pair.pattern, pair.text, 16, false,
                                        32, /*enforce_bound=*/false);
        ASSERT_TRUE(res.found());
        EXPECT_GE(res.distance, exact);
    }
    // With a generous band the heuristic is exact.
    const auto pair = gen.pair(400, 0.05);
    const auto res = bandedGmxAlign(pair.pattern, pair.text, 400, false, 32,
                                    /*enforce_bound=*/false);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
}

TEST(BandedGmx, TileSizeSweep)
{
    seq::Generator gen(311);
    const auto pair = gen.pair(300, 0.1);
    const i64 expect = align::nwDistance(pair.pattern, pair.text);
    for (unsigned tile : {4u, 8u, 16u, 32u, 64u}) {
        const auto res = bandedGmxAuto(pair.pattern, pair.text, true, 64,
                                       tile);
        EXPECT_EQ(res.distance, expect) << "T=" << tile;
        EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok)
            << "T=" << tile;
    }
}

TEST(BandedGmx, HighErrorLongSequence)
{
    seq::Generator gen(313);
    const auto pair = gen.pair(3000, 0.15);
    const auto res = bandedGmxAuto(pair.pattern, pair.text, true);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
    EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok);
}

} // namespace
} // namespace gmx::core
