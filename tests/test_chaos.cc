/**
 * @file
 * Chaos tests: the engine under deterministic fault injection.
 *
 * Compiled only when GMX_FAULT_INJECTION is ON (see tests/CMakeLists.txt);
 * the harness in src/engine/faults.hh is armed per test and injects
 * allocation failures, worker stalls, spurious queue-full signals, and
 * spurious task errors on a seeded, reproducible schedule. The invariants
 * under every fault mix: no deadlock, every future becomes ready with a
 * typed Status, metrics stay consistent, and the engine shuts down clean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "align/nw.hh"
#include "common/status.hh"
#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/faults.hh"
#include "engine/server.hh"
#include "engine/trace.hh"
#include "sequence/dataset.hh"
#include "serve/client.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"
#include "test_http_util.hh"

namespace gmx::engine {
namespace {

using Outcome = Engine::AlignOutcome;
using std::chrono::milliseconds;

/** Every chaos test leaves the global harness disarmed. */
class Chaos : public ::testing::Test
{
  protected:
    void TearDown() override { faults::disarm(); }

    /** Wait generously; a future that never readies is a deadlock. */
    static Outcome mustGet(std::future<Outcome> &f)
    {
        const auto state = f.wait_for(std::chrono::seconds(60));
        EXPECT_EQ(state, std::future_status::ready)
            << "future not fulfilled: engine deadlocked or leaked it";
        if (state != std::future_status::ready)
            return Outcome(Status::internal("future never became ready"));
        return f.get();
    }
};

TEST_F(Chaos, InjectionScheduleIsDeterministic)
{
    faults::Plan plan;
    plan.seed = 42;
    plan.with(faults::Point::TaskError, 0.3);

    std::vector<bool> first;
    faults::arm(plan);
    for (int i = 0; i < 1000; ++i)
        first.push_back(faults::shouldInject(faults::Point::TaskError));
    const u64 injected = faults::injectedCount(faults::Point::TaskError);
    EXPECT_EQ(faults::callCount(faults::Point::TaskError), 1000u);
    // ~300 expected; bound loosely, the point is nonzero and non-total.
    EXPECT_GT(injected, 200u);
    EXPECT_LT(injected, 400u);

    // Re-arming the same plan replays the identical decision sequence.
    faults::arm(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(faults::shouldInject(faults::Point::TaskError), first[i])
            << "decision " << i << " diverged under the same seed";
    }

    // A different seed draws a different schedule.
    plan.seed = 43;
    faults::arm(plan);
    std::vector<bool> other;
    for (int i = 0; i < 1000; ++i)
        other.push_back(faults::shouldInject(faults::Point::TaskError));
    EXPECT_NE(first, other);
}

TEST_F(Chaos, TaskErrorSurfacesTypedInternalStatus)
{
    faults::arm(faults::Plan{}.with(faults::Point::TaskError, 1.0));
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(101);
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(engine.submit(gen.pair(100, 0.05), false));
    for (auto &f : futures) {
        auto res = mustGet(f);
        ASSERT_FALSE(res.ok());
        EXPECT_EQ(res.code(), StatusCode::Internal);
    }
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.failed, 16u);
    EXPECT_EQ(snap.completed, 0u);
}

TEST_F(Chaos, AllocFailSurfacesResourceExhausted)
{
    faults::arm(faults::Plan{}.with(faults::Point::AllocFail, 1.0));
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(103);
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(engine.submit(gen.pair(100, 0.05), false));
    for (auto &f : futures)
        EXPECT_EQ(mustGet(f).code(), StatusCode::ResourceExhausted);
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.resource_rejected, 12u);
    EXPECT_EQ(snap.failed, 12u);
}

TEST_F(Chaos, WorkerStallsNeverDeadlockThePipeline)
{
    faults::Plan plan;
    plan.with(faults::Point::WorkerStall, 0.5);
    plan.stall_duration = std::chrono::microseconds(1000);
    faults::arm(plan);

    EngineConfig cfg;
    cfg.workers = 3;
    Engine engine(cfg);
    seq::Generator gen(107);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 50; ++i)
        pairs.push_back(gen.pair(120, 0.05));
    const auto results = engine.alignAll(pairs, false);
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text));
    }
    EXPECT_GT(faults::injectedCount(faults::Point::WorkerStall), 0u);
}

TEST_F(Chaos, SpuriousQueueFullEngagesRejectPolicy)
{
    faults::arm(faults::Plan{}.with(faults::Point::QueueFull, 1.0));
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.backpressure = Backpressure::Reject;
    Engine engine(cfg);
    seq::Generator gen(109);
    for (int i = 0; i < 8; ++i) {
        auto f = engine.submit(gen.pair(60, 0.0), false);
        EXPECT_EQ(mustGet(f).code(), StatusCode::Overloaded);
    }
    EXPECT_EQ(engine.metrics().rejected, 8u);
    EXPECT_EQ(engine.metrics().submitted, 0u);

    // Disarmed, the same engine serves traffic again: the spurious
    // signal was load-shedding, not corruption.
    faults::disarm();
    auto ok = engine.submit(gen.pair(60, 0.0), false);
    EXPECT_TRUE(mustGet(ok).ok());
}

TEST_F(Chaos, SeededStormHundredIterationsNoDeadlockNoLeakedFutures)
{
    // The acceptance storm: 100 seeded iterations of mixed faults over a
    // small engine. Every accepted future must become ready with a typed
    // Status, the metrics must reconcile, and shutdown must be clean.
    seq::Generator gen(211);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 24; ++i)
        pairs.push_back(gen.pair(90, 0.08));

    for (u64 seed = 1; seed <= 100; ++seed) {
        faults::Plan plan;
        plan.seed = seed;
        plan.with(faults::Point::TaskError, 0.15)
            .with(faults::Point::AllocFail, 0.10)
            .with(faults::Point::QueueFull, 0.20)
            .with(faults::Point::WorkerStall, 0.10);
        plan.stall_duration = std::chrono::microseconds(200);
        faults::arm(plan);

        EngineConfig cfg;
        cfg.workers = 2;
        cfg.queue_capacity = 8;
        cfg.backpressure = (seed % 2) ? Backpressure::ShedOldest
                                      : Backpressure::Reject;
        cfg.microbatch_max = 4;
        // Storm with lane packing armed: packed filter groups must keep
        // the completed/failed/shed ledger exact under injected faults.
        cfg.filter_batching = FilterBatching::On;
        std::vector<std::future<Outcome>> futures;
        {
            Engine engine(cfg);
            for (const auto &pair : pairs) {
                SubmitOptions opts;
                opts.want_cigar = false;
                if (pair.pattern.size() % 3 == 0)
                    opts.timeout = milliseconds(50);
                futures.push_back(engine.submit(pair, std::move(opts)));
            }
            const auto snap = engine.metrics();
            // Everything that entered the queue is accounted for exactly
            // once: completed, failed, or shed. Rejected never entered.
            engine.drain();
            const auto done = engine.metrics();
            EXPECT_EQ(done.completed + done.failed + done.shed,
                      done.submitted)
                << "seed=" << seed;
            (void)snap;

            // The trace tells the same story as the counters: every
            // accepted request leaves exactly one Enqueue and exactly one
            // Complete span, whichever fault path it died on.
            u64 enq = 0, complete = 0;
            for (const auto &s : engine.trace().spans()) {
                if (s.event == TraceEvent::Enqueue)
                    ++enq;
                else if (s.event == TraceEvent::Complete)
                    ++complete;
            }
            EXPECT_EQ(engine.trace().dropped(), 0u) << "seed=" << seed;
            EXPECT_EQ(enq, done.submitted) << "seed=" << seed;
            EXPECT_EQ(complete, done.submitted) << "seed=" << seed;

            // And the exporter renders it all without tripping over any
            // fault-injected counter mix.
            const std::string text = renderOpenMetrics(done);
            ASSERT_GE(text.size(), 6u);
            EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n")
                << "seed=" << seed;
            // Engine destructor: graceful stop under armed faults.
        }
        for (size_t i = 0; i < futures.size(); ++i) {
            auto res = mustGet(futures[i]);
            if (res.ok()) {
                EXPECT_EQ(res->distance,
                          align::nwDistance(pairs[i].pattern,
                                            pairs[i].text))
                    << "seed=" << seed << " pair=" << i;
            } else {
                // Failures must carry a typed, expected code.
                const StatusCode c = res.code();
                EXPECT_TRUE(c == StatusCode::Internal ||
                            c == StatusCode::ResourceExhausted ||
                            c == StatusCode::Overloaded ||
                            c == StatusCode::DeadlineExceeded ||
                            c == StatusCode::EngineStopped)
                    << "seed=" << seed << " pair=" << i << " code="
                    << statusCodeName(c);
            }
        }
    }
}

/**
 * Structural check of one /metrics body: ends with the OpenMetrics EOF
 * marker, the request-latency buckets are cumulative (non-decreasing),
 * and the +Inf bucket equals _count. Returns a failure description, or
 * empty when the scrape is well-formed.
 */
std::string
checkScrapeBody(const std::string &body)
{
    if (body.size() < 6 || body.substr(body.size() - 6) != "# EOF\n")
        return "missing '# EOF' trailer";

    u64 prev = 0;
    u64 inf = 0;
    bool saw_inf = false;
    std::istringstream lines(body);
    std::string line;
    const std::string bucket_prefix = "gmx_request_latency_seconds_bucket{";
    while (std::getline(lines, line)) {
        if (line.compare(0, bucket_prefix.size(), bucket_prefix) != 0)
            continue;
        const auto space = line.rfind(' ');
        if (space == std::string::npos)
            return "bucket line without a value: " + line;
        const u64 v = std::stoull(line.substr(space + 1));
        if (v < prev)
            return "buckets not cumulative: " + line;
        prev = v;
        if (line.find("le=\"+Inf\"") != std::string::npos) {
            inf = v;
            saw_inf = true;
        }
    }
    if (!saw_inf)
        return "no +Inf bucket";

    const std::string count_key = "\ngmx_request_latency_seconds_count ";
    const auto cpos = body.find(count_key);
    if (cpos == std::string::npos)
        return "no _count series";
    const u64 count = std::stoull(body.substr(cpos + count_key.size()));
    if (inf != count)
        return "+Inf bucket " + std::to_string(inf) + " != _count " +
               std::to_string(count);
    return {};
}

TEST_F(Chaos, ScrapeStormKeepsMetricsParseableUnderFaults)
{
    // Satellite acceptance: storm /metrics while seeded faults hit both
    // the engine (task errors, stalls, spurious queue-full) and the
    // server (the same QueueFull point forces 503s at accept, TaskError
    // forces 500s on render). Whatever mix a seed draws, every 200
    // response must be a complete, internally consistent OpenMetrics
    // document — a scraper never sees a torn or truncated exposition.
    seq::Generator gen(431);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 16; ++i)
        pairs.push_back(gen.pair(90, 0.08));

    u64 scrapes_ok = 0, scrapes_refused = 0, scrapes_errored = 0;
    for (u64 seed = 1; seed <= 12; ++seed) {
        EngineConfig cfg;
        cfg.workers = 2;
        cfg.queue_capacity = 8;
        cfg.backpressure = Backpressure::ShedOldest;
        Engine engine(cfg);

        ServerConfig scfg;
        scfg.port = 0;
        scfg.handler_threads = 2;
        MetricsServer server(engine, scfg);
        ASSERT_TRUE(server.start().ok()) << "seed=" << seed;
        const u16 port = server.port();

        // Arm AFTER the server is up so start() itself is clean; the
        // accept loop and handlers then run armed.
        faults::Plan plan;
        plan.seed = seed;
        plan.with(faults::Point::TaskError, 0.15)
            .with(faults::Point::QueueFull, 0.20)
            .with(faults::Point::WorkerStall, 0.10);
        plan.stall_duration = std::chrono::microseconds(200);
        faults::arm(plan);

        std::atomic<bool> done{false};
        std::vector<std::string> failures;
        std::thread scraper([&] {
            while (!done.load()) {
                const auto r = gmx::test::httpGet(port, "/metrics");
                if (r.status == 200) {
                    const std::string why = checkScrapeBody(r.body);
                    if (!why.empty())
                        failures.push_back(why);
                    ++scrapes_ok;
                } else if (r.status == 503) {
                    ++scrapes_refused; // connection cap or injected
                } else if (r.status == 500) {
                    ++scrapes_errored; // injected render failure
                } else {
                    failures.push_back("unexpected status " +
                                       std::to_string(r.status));
                }
            }
        });

        std::vector<std::future<Outcome>> futures;
        for (const auto &pair : pairs)
            futures.push_back(engine.submit(pair, false));
        for (auto &f : futures)
            (void)mustGet(f);

        done.store(true);
        scraper.join();
        faults::disarm();

        for (const auto &why : failures)
            ADD_FAILURE() << "seed=" << seed << ": " << why;

        // One disarmed scrape per seed: the final document reconciles
        // with the engine's own snapshot.
        const auto r = gmx::test::httpGet(port, "/metrics");
        ASSERT_EQ(r.status, 200) << "seed=" << seed;
        EXPECT_EQ(checkScrapeBody(r.body), "") << "seed=" << seed;
        server.stop();
    }

    // The storm exercised the well-formed path; refusals and injected
    // errors are expected but must not be the whole story.
    EXPECT_GT(scrapes_ok, 0u);
    std::printf("scrape storm: ok=%llu refused=%llu errored=%llu\n",
                static_cast<unsigned long long>(scrapes_ok),
                static_cast<unsigned long long>(scrapes_refused),
                static_cast<unsigned long long>(scrapes_errored));
}

TEST_F(Chaos, AlignServerStormShedsButNeverWedges)
{
    // Satellite acceptance: hammer the alignment front door while the
    // harness injects accept failures, oversized-frame verdicts, slow
    // client sends, worker stalls, spurious queue-full, and task errors
    // — and a scraper reads /metrics (engine families + spliced
    // gmx_serve_* families) the whole time. Clients may be refused,
    // throttled, shed, or cut off mid-batch; every outcome must be a
    // typed Status, the exposition must never tear, and once the storm
    // passes the same server must serve correct alignments again.
    seq::Generator gen(977);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 8; ++i)
        pairs.push_back(gen.pair(80, 0.05));

    std::vector<std::unique_ptr<Engine>> engines;
    for (int e = 0; e < 2; ++e) {
        EngineConfig cfg;
        cfg.workers = 2;
        cfg.queue_capacity = 16;
        cfg.backpressure = Backpressure::Reject;
        engines.push_back(std::make_unique<Engine>(cfg));
    }

    serve::AlignServerConfig acfg;
    acfg.port = 0;
    acfg.handler_threads = 4;
    acfg.max_connections = 16;
    acfg.pending_cap = 8; // small on purpose: the storm should shed
    acfg.io_timeout = std::chrono::milliseconds(2000);
    acfg.quota.tokens_per_sec = 400;
    acfg.quota.burst = 16;
    serve::AlignServer aserver({engines[0].get(), engines[1].get()},
                               acfg);
    ASSERT_TRUE(aserver.start().ok());

    ServerConfig scfg;
    scfg.port = 0;
    scfg.handler_threads = 2;
    scfg.extra_metrics = [&aserver] {
        return serve::renderServeOpenMetrics(aserver.serveSnapshot());
    };
    MetricsServer mserver(*engines[0], scfg);
    ASSERT_TRUE(mserver.start().ok());

    // Arm after both servers are up so start() itself is clean.
    faults::Plan plan;
    plan.seed = 53;
    plan.with(faults::Point::AcceptFail, 0.25)
        .with(faults::Point::FrameTooLarge, 0.02)
        .with(faults::Point::SlowClient, 0.25)
        .with(faults::Point::WorkerStall, 0.25)
        .with(faults::Point::QueueFull, 0.10)
        .with(faults::Point::TaskError, 0.10);
    plan.stall_duration = std::chrono::microseconds(300);
    faults::arm(plan);

    std::atomic<bool> done{false};
    std::atomic<u64> batch_ok{0}, batch_failed{0}, connects_failed{0};
    std::vector<std::string> scrape_failures;

    std::thread scraper([&] {
        bool saw_serve_family = false;
        while (!done.load()) {
            const auto r = gmx::test::httpGet(mserver.port(), "/metrics");
            if (r.status == 200) {
                const std::string why = checkScrapeBody(r.body);
                if (!why.empty())
                    scrape_failures.push_back(why);
                if (r.body.find("gmx_serve_requests_total") !=
                    std::string::npos)
                    saw_serve_family = true;
            } else if (r.status != 503 && r.status != 500) {
                scrape_failures.push_back("unexpected status " +
                                          std::to_string(r.status));
            }
        }
        if (!saw_serve_family)
            scrape_failures.push_back(
                "no 200 scrape carried gmx_serve_requests_total");
    });

    const serve::Priority prios[3] = {serve::Priority::Low,
                                      serve::Priority::Normal,
                                      serve::Priority::High};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            for (int round = 0; round < 30; ++round) {
                serve::ClientConfig ccfg;
                ccfg.port = aserver.port();
                ccfg.client_id = "storm-" + std::to_string(t);
                ccfg.priority = prios[t];
                ccfg.io_timeout = std::chrono::milliseconds(4000);
                serve::AlignClient client(ccfg);
                if (!client.connect().ok()) {
                    // Refused at the cap, accept-failed, or cut off
                    // mid-handshake — all legitimate under the storm.
                    ++connects_failed;
                    continue;
                }
                const auto results =
                    client.alignBatch(pairs, (round % 2) == 0);
                for (const auto &res : results) {
                    if (res.ok())
                        ++batch_ok;
                    else
                        ++batch_failed;
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();
    done.store(true);
    scraper.join();
    faults::disarm();

    for (const auto &why : scrape_failures)
        ADD_FAILURE() << why;

    // The storm must actually have exercised the serve fault points.
    EXPECT_GT(faults::injectedCount(faults::Point::AcceptFail), 0u);
    EXPECT_GT(faults::injectedCount(faults::Point::SlowClient), 0u);
    EXPECT_GT(batch_ok.load() + batch_failed.load() +
                  connects_failed.load(),
              0u);

    // Quiesce: writers drain every queued response even for dead
    // connections, so pending settles to zero and the ledger closes —
    // every received request produced exactly one response.
    serve::ServeSnapshot snap;
    for (int i = 0; i < 1000; ++i) {
        snap = aserver.serveSnapshot();
        if (snap.pending == 0 &&
            snap.requests == snap.responses_ok + snap.responses_failed)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(snap.pending, 0u);
    EXPECT_EQ(snap.requests, snap.responses_ok + snap.responses_failed);
    EXPECT_GT(snap.frames_in, 0u);

    // Disarmed, the same server answers correctly: the storm shed load,
    // it did not corrupt state.
    serve::ClientConfig ccfg;
    ccfg.port = aserver.port();
    ccfg.client_id = "after-the-storm";
    // High priority: a full-cap batch at Normal could legitimately trip
    // the 3/4 admission watermark; High admits up to the whole cap.
    ccfg.priority = serve::Priority::High;
    serve::AlignClient after(ccfg);
    ASSERT_TRUE(after.connect().ok());
    const auto results = after.alignBatch(pairs, true);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text));
    }

    // One final disarmed scrape renders both metric namespaces whole.
    const auto r = gmx::test::httpGet(mserver.port(), "/metrics");
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(checkScrapeBody(r.body), "");
    EXPECT_NE(r.body.find("gmx_serve_requests_total"), std::string::npos);

    std::printf("align storm: ok=%llu failed=%llu connects_failed=%llu "
                "shed=%llu throttled=%llu refused=%llu proto_errors=%llu\n",
                static_cast<unsigned long long>(batch_ok.load()),
                static_cast<unsigned long long>(batch_failed.load()),
                static_cast<unsigned long long>(connects_failed.load()),
                static_cast<unsigned long long>(
                    snap.shed_by_priority[0] + snap.shed_by_priority[1] +
                    snap.shed_by_priority[2]),
                static_cast<unsigned long long>(snap.quota_throttled),
                static_cast<unsigned long long>(snap.connections_refused),
                static_cast<unsigned long long>(snap.protocol_errors));
    mserver.stop();
    aserver.stop();
}

TEST_F(Chaos, WatchdogForceClosesStuckConnections)
{
    // A connection whose writer is parked on a response future that
    // never resolves (the lone dispatch lane is gated shut) makes no
    // progress while holding inflight work. With watchdog_multiple set,
    // the watchdog must force-close it instead of letting it squat on a
    // connection slot forever — and the ledger must still balance once
    // the gate opens and the writer drains onto the dead socket.
    EngineConfig cfg;
    cfg.workers = 1;
    Engine engine(cfg);
    serve::AlignServerConfig acfg;
    acfg.port = 0;
    acfg.io_timeout = std::chrono::milliseconds(100);
    acfg.watchdog_multiple = 2; // stuck after 200ms without progress
    serve::AlignServer server({&engine}, acfg);
    ASSERT_TRUE(server.start().ok());

    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> started;
    seq::Generator gen(83);
    auto blocked = engine.submit(
        gen.pair(40, 0.0),
        align::PairAligner([open, &started](const seq::SequencePair &) {
            started.set_value();
            open.wait();
            return align::AlignResult{};
        }));
    started.get_future().wait();

    serve::ClientConfig ccfg;
    ccfg.port = server.port();
    ccfg.client_id = "stuck";
    serve::AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());
    const seq::SequencePair pair = gen.pair(60, 0.05);
    serve::AlignRequestFrame req;
    req.id = 1;
    req.want_cigar = false;
    req.pattern = pair.pattern.str();
    req.text = pair.text.str();
    ASSERT_TRUE(client.sendRequest(req).ok());

    bool killed = false;
    for (int i = 0; i < 800 && !killed; ++i) {
        killed = server.serveSnapshot().watchdog_kills >= 1;
        if (!killed)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(killed) << "watchdog never fired on a stuck connection";
    // The client side observes the force-close, not a hang.
    serve::AlignResponseFrame resp;
    EXPECT_FALSE(client.readResponse(resp).ok());

    gate.set_value();
    ASSERT_TRUE(mustGet(blocked).ok());
    serve::ServeSnapshot snap;
    for (int i = 0; i < 1000; ++i) {
        snap = server.serveSnapshot();
        if (snap.pending == 0 &&
            snap.requests == snap.responses_ok + snap.responses_failed)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(snap.pending, 0u);
    EXPECT_EQ(snap.requests, snap.responses_ok + snap.responses_failed);
    EXPECT_GE(snap.watchdog_kills, 1u);

    // The server itself is healthy: a fresh connection aligns fine.
    serve::AlignClient after(ccfg);
    ASSERT_TRUE(after.connect().ok());
    const auto results = after.alignBatch({pair}, false);
    ASSERT_TRUE(results[0].ok()) << results[0].status().toString();
    server.stop();
}

TEST_F(Chaos, ClockSkewRefusesExpiredDeadlinesBeforeAnyKernel)
{
    // A +10 s skew on the server's observed pre-submit spend makes every
    // budget look exhausted on arrival: the request must be refused with
    // DeadlineExceeded at the door — deadline_refused counts it, and the
    // engine's submitted counter proves no kernel ever ran.
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    serve::AlignServerConfig acfg;
    acfg.port = 0;
    serve::AlignServer server({&engine}, acfg);
    ASSERT_TRUE(server.start().ok());

    faults::Plan plan;
    plan.with(faults::Point::ClockSkew, 1.0);
    plan.skew = std::chrono::microseconds(10000000);
    faults::arm(plan);

    serve::ClientConfig ccfg;
    ccfg.port = server.port();
    ccfg.client_id = "skewed";
    serve::AlignClient client(ccfg);
    ASSERT_TRUE(client.connect().ok());
    seq::Generator gen(89);
    const seq::SequencePair pair = gen.pair(80, 0.05);

    serve::BatchOptions opts;
    opts.want_cigar = false;
    opts.deadline = std::chrono::seconds(1); // far less than the skew
    const auto refused = client.alignBatch({pair}, opts);
    ASSERT_FALSE(refused[0].ok());
    EXPECT_EQ(refused[0].status().code(), StatusCode::DeadlineExceeded);

    serve::ServeSnapshot snap = server.serveSnapshot();
    EXPECT_EQ(snap.deadline_requests, 1u);
    EXPECT_EQ(snap.deadline_refused, 1u);
    EXPECT_EQ(engine.metrics().submitted, 0u)
        << "an already-expired request reached a kernel";

    // Skew gone, the identical request sails through the same server.
    faults::disarm();
    const auto ok = client.alignBatch({pair}, opts);
    ASSERT_TRUE(ok[0].ok()) << ok[0].status().toString();
    EXPECT_EQ(ok[0]->distance,
              align::nwDistance(pair.pattern, pair.text));
    server.stop();
}

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GMX_CHAOS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GMX_CHAOS_SANITIZED 1
#endif
#endif

TEST_F(Chaos, ResilienceStormBreakersOpenRecoverAndLedgersBalance)
{
    // Satellite acceptance: 100 seeded iterations of ShardWedge (a sick
    // shard pins its worker per request), SlowClient (server write
    // stalls), AcceptFail (refused dials), and RetryStorm (the client's
    // own transport cut at frame boundaries). Per seed: every pair gets
    // a typed outcome, the serve ledger closes, and after disarm the
    // same server serves a fully-correct batch (breakers that opened
    // must probe shut again). Across the storm: every fault point fired
    // and at least one breaker actually opened.
#ifdef GMX_CHAOS_SANITIZED
    constexpr u64 kSeeds = 20; // sanitizer runs: same shape, less bulk
#else
    constexpr u64 kSeeds = 100;
#endif
    seq::Generator gen(149);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 6; ++i)
        pairs.push_back(gen.pair(70, 0.06));

    u64 total_opens = 0, total_shed = 0, storm_failures = 0;
    u64 wedge_hits = 0, slow_hits = 0, accept_hits = 0, cut_hits = 0;
    for (u64 seed = 1; seed <= kSeeds; ++seed) {
        std::vector<std::unique_ptr<Engine>> engines;
        for (int e = 0; e < 2; ++e) {
            EngineConfig cfg;
            cfg.workers = 1;
            cfg.queue_capacity = 8;
            cfg.backpressure = Backpressure::Reject;
            engines.push_back(std::make_unique<Engine>(cfg));
        }
        serve::AlignServerConfig acfg;
        acfg.port = 0;
        acfg.handler_threads = 2;
        acfg.io_timeout = std::chrono::milliseconds(1000);
        acfg.pending_cap = 16;
        acfg.quota.tokens_per_sec = 5000;
        acfg.quota.burst = 64;
        acfg.router.breaker_window = 8;
        acfg.router.breaker_min_samples = 3;
        acfg.router.breaker_open_ratio = 0.5;
        acfg.router.breaker_cooldown = std::chrono::milliseconds(25);
        acfg.router.breaker_slow = std::chrono::milliseconds(2);
        serve::AlignServer server(
            {engines[0].get(), engines[1].get()}, acfg);
        ASSERT_TRUE(server.start().ok()) << "seed=" << seed;

        faults::Plan plan;
        plan.seed = seed;
        plan.with(faults::Point::ShardWedge, 0.15)
            .with(faults::Point::SlowClient, 0.15)
            .with(faults::Point::AcceptFail, 0.20)
            .with(faults::Point::RetryStorm, 0.05);
        plan.wedge_duration = std::chrono::microseconds(6000);
        plan.stall_duration = std::chrono::microseconds(500);
        faults::arm(plan);

        serve::ClientConfig ccfg;
        ccfg.port = server.port();
        ccfg.client_id = "storm-" + std::to_string(seed);
        ccfg.io_timeout = std::chrono::milliseconds(2000);
        serve::AlignClient client(ccfg);
        Status dial;
        for (int tries = 0; tries < 10; ++tries) {
            dial = client.connect();
            if (dial.ok())
                break;
        }
        ASSERT_TRUE(dial.ok())
            << "seed=" << seed << ": " << dial.toString();

        serve::BatchOptions opts;
        opts.want_cigar = false;
        opts.retry.max_attempts = 4;
        opts.retry.initial_backoff = std::chrono::milliseconds(1);
        opts.retry.max_backoff = std::chrono::milliseconds(4);
        opts.retry.seed = seed;
        const auto results = client.alignBatch(pairs, opts);
        for (size_t i = 0; i < pairs.size(); ++i) {
            if (results[i].ok()) {
                EXPECT_EQ(results[i]->distance,
                          align::nwDistance(pairs[i].pattern,
                                            pairs[i].text))
                    << "seed=" << seed << " pair=" << i;
            } else {
                ++storm_failures; // legitimate under the storm, but typed
                const StatusCode c = results[i].status().code();
                EXPECT_NE(c, StatusCode::InvalidInput)
                    << "seed=" << seed << " pair=" << i
                    << ": valid input rejected as malformed";
            }
        }

        wedge_hits += faults::injectedCount(faults::Point::ShardWedge);
        slow_hits += faults::injectedCount(faults::Point::SlowClient);
        accept_hits += faults::injectedCount(faults::Point::AcceptFail);
        cut_hits += faults::injectedCount(faults::Point::RetryStorm);
        faults::disarm();

        // Quiesce: the ledger closes even for connections the storm cut.
        serve::ServeSnapshot snap;
        bool balanced = false;
        for (int i = 0; i < 1000 && !balanced; ++i) {
            snap = server.serveSnapshot();
            balanced =
                snap.pending == 0 &&
                snap.requests == snap.responses_ok + snap.responses_failed;
            if (!balanced)
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        EXPECT_TRUE(balanced)
            << "seed=" << seed << " requests=" << snap.requests
            << " ok=" << snap.responses_ok
            << " failed=" << snap.responses_failed
            << " pending=" << snap.pending;
        total_opens += snap.breaker_opens;
        for (const u64 s : snap.brownout_shed)
            total_shed += s;
        total_shed += snap.shed_by_priority[0] + snap.shed_by_priority[1] +
                      snap.shed_by_priority[2];

        // Recovery: past the cooldown, a fresh disarmed client must get
        // a perfect batch — any opened breaker probes closed again.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        serve::ClientConfig rcfg = ccfg;
        rcfg.client_id = "recovery-" + std::to_string(seed);
        serve::AlignClient recovery(rcfg);
        ASSERT_TRUE(recovery.connect().ok()) << "seed=" << seed;
        serve::BatchOptions ropts;
        ropts.want_cigar = false;
        ropts.retry.max_attempts = 6;
        ropts.retry.initial_backoff = std::chrono::milliseconds(1);
        const auto healed = recovery.alignBatch(pairs, ropts);
        for (size_t i = 0; i < pairs.size(); ++i) {
            ASSERT_TRUE(healed[i].ok())
                << "seed=" << seed << " pair=" << i << ": "
                << healed[i].status().toString();
            EXPECT_EQ(healed[i]->distance,
                      align::nwDistance(pairs[i].pattern, pairs[i].text))
                << "seed=" << seed << " pair=" << i;
        }

        // Every 10th seed, scrape the spliced exposition and insist it
        // parses whole.
        if (seed % 10 == 0) {
            ServerConfig mcfg;
            mcfg.port = 0;
            mcfg.handler_threads = 1;
            mcfg.extra_metrics = [&server] {
                return serve::renderServeOpenMetrics(
                    server.serveSnapshot());
            };
            MetricsServer mserver(*engines[0], mcfg);
            ASSERT_TRUE(mserver.start().ok()) << "seed=" << seed;
            const auto r = gmx::test::httpGet(mserver.port(), "/metrics");
            ASSERT_EQ(r.status, 200) << "seed=" << seed;
            EXPECT_EQ(checkScrapeBody(r.body), "") << "seed=" << seed;
            EXPECT_NE(r.body.find("gmx_serve_breaker_opens"),
                      std::string::npos)
                << "seed=" << seed;
            mserver.stop();
        }
        server.stop();
    }

    // The storm must actually have exercised every new fault point, and
    // the wedges must have tripped at least one breaker somewhere.
    EXPECT_GT(wedge_hits, 0u);
    EXPECT_GT(slow_hits, 0u);
    EXPECT_GT(accept_hits, 0u);
    EXPECT_GT(cut_hits, 0u);
    EXPECT_GT(total_opens, 0u) << "no breaker ever opened in the storm";
    std::printf("resilience storm: seeds=%llu opens=%llu shed=%llu "
                "failures=%llu wedges=%llu slow=%llu accept=%llu "
                "cuts=%llu\n",
                static_cast<unsigned long long>(kSeeds),
                static_cast<unsigned long long>(total_opens),
                static_cast<unsigned long long>(total_shed),
                static_cast<unsigned long long>(storm_failures),
                static_cast<unsigned long long>(wedge_hits),
                static_cast<unsigned long long>(slow_hits),
                static_cast<unsigned long long>(accept_hits),
                static_cast<unsigned long long>(cut_hits));
}

} // namespace
} // namespace gmx::engine
