/**
 * @file
 * Tests for the RV64-like simulator with the GMX extension: assembler,
 * core semantics, the packed CSR protocol, and the Algorithm-1 program
 * end to end against the NW reference.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "gmx/full.hh"
#include "isa_sim/programs.hh"
#include "sequence/generator.hh"

namespace gmx::isa_sim {
namespace {

Cpu
runSource(const std::string &src, size_t mem = 0x10000)
{
    Cpu cpu(mem);
    cpu.loadProgram(assemble(src));
    EXPECT_TRUE(cpu.run());
    return cpu;
}

TEST(Assembler, ParsesRegistersAndAbiNames)
{
    EXPECT_EQ(parseRegister("zero"), 0);
    EXPECT_EQ(parseRegister("x0"), 0);
    EXPECT_EQ(parseRegister("a0"), 10);
    EXPECT_EQ(parseRegister("t6"), 31);
    EXPECT_EQ(parseRegister("s11"), 27);
    EXPECT_THROW(parseRegister("q7"), FatalError);
    EXPECT_THROW(parseRegister("x32"), FatalError);
}

TEST(Assembler, RejectsMalformedLines)
{
    EXPECT_THROW(assemble("frobnicate a0, a1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("add a0, a1\nhalt\n"), FatalError); // arity
    EXPECT_THROW(assemble("beq a0, a1, nowhere\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("ld a0, a1\nhalt\n"), FatalError); // not imm(reg)
    EXPECT_THROW(assemble("csrw bogus_csr, a0\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("x: addi a0, a0, 1\nx: halt\n"), FatalError);
}

TEST(Assembler, LabelsAndComments)
{
    const Program p = assemble(R"(
# leading comment
start:  li a0, 5     # load
loop:   addi a0, a0, -1
        bne a0, zero, loop
        halt
)");
    EXPECT_EQ(p.code.size(), 4u);
    EXPECT_EQ(p.code[2].imm, 1); // loop label resolves to index 1
}

TEST(Cpu, ArithmeticAndLogic)
{
    const Cpu cpu = runSource(R"(
        li   a0, 21
        slli a1, a0, 1      # 42
        srli a2, a1, 3      # 5
        add  a3, a1, a2     # 47
        sub  a4, a3, a0     # 26
        xori a5, a4, 3      # 25
        andi a6, a5, 0x18   # 24
        ori  a7, a6, 1      # 25
        li   t0, 0xff
        cpop t1, t0         # 8
        halt
)");
    EXPECT_EQ(cpu.reg(11), 42u);
    EXPECT_EQ(cpu.reg(12), 5u);
    EXPECT_EQ(cpu.reg(13), 47u);
    EXPECT_EQ(cpu.reg(14), 26u);
    EXPECT_EQ(cpu.reg(15), 25u);
    EXPECT_EQ(cpu.reg(16), 24u);
    EXPECT_EQ(cpu.reg(17), 25u);
    EXPECT_EQ(cpu.reg(6), 8u);
}

TEST(Cpu, ZeroRegisterIsHardwired)
{
    const Cpu cpu = runSource(R"(
        li   zero, 99
        mv   a0, zero
        halt
)");
    EXPECT_EQ(cpu.reg(10), 0u);
}

TEST(Cpu, LoadsAndStores)
{
    const Cpu cpu = runSource(R"(
        li  a0, 0x100
        li  a1, 0x1122334455667788
        sd  a1, 0(a0)
        ld  a2, 0(a0)
        lbu a3, 1(a0)      # little-endian second byte
        li  a4, 0x7f
        sb  a4, 8(a0)
        lbu a5, 8(a0)
        halt
)");
    EXPECT_EQ(cpu.reg(12), 0x1122334455667788ull);
    EXPECT_EQ(cpu.reg(13), 0x77u);
    EXPECT_EQ(cpu.reg(15), 0x7fu);
}

TEST(Cpu, BranchesAndLoops)
{
    // Sum 1..10 with a loop.
    const Cpu cpu = runSource(R"(
        li a0, 0
        li a1, 1
        li a2, 11
loop:   bge a1, a2, out
        add a0, a0, a1
        addi a1, a1, 1
        j loop
out:    halt
)");
    EXPECT_EQ(cpu.reg(10), 55u);
    EXPECT_GT(cpu.stats().branches, 10u);
}

TEST(Cpu, FaultsAreReported)
{
    {
        Cpu cpu(0x100);
        cpu.loadProgram(assemble("ld a0, 0x200(zero)\nhalt\n"));
        EXPECT_THROW(cpu.run(), FatalError);
    }
    {
        Cpu cpu(0x1000);
        cpu.loadProgram(assemble("ld a0, 3(zero)\nhalt\n")); // misaligned
        EXPECT_THROW(cpu.run(), FatalError);
    }
    {
        // Run off the end of the program.
        Cpu cpu(0x1000);
        cpu.loadProgram(assemble("addi a0, a0, 1\n"));
        EXPECT_THROW(cpu.run(), FatalError);
    }
}

TEST(Cpu, RunawayGuardStopsInfiniteLoops)
{
    CpuConfig cfg;
    cfg.max_instructions = 1000;
    Cpu cpu(0x1000, 32, cfg);
    cpu.loadProgram(assemble("loop: j loop\n"));
    EXPECT_FALSE(cpu.run());
}

TEST(Cpu, GmxInstructionTiming)
{
    // gmx.v/gmx.h cost the 2-cycle AC latency; csrw is 1 cycle.
    seq::Generator gen(801);
    const auto p = gen.random(32);
    const auto t = gen.random(32);
    const auto pw = packSequenceWords(p);
    const auto tw = packSequenceWords(t);
    Cpu cpu(0x1000);
    cpu.loadProgram(assemble(R"(
        csrw gmx_pattern, a0
        csrw gmx_text, a1
        gmx.v a2, a3, a4
        gmx.h a5, a3, a4
        halt
)"));
    cpu.setReg(10, pw[0]);
    cpu.setReg(11, tw[0]);
    cpu.setReg(13, 0x5555555555555555ull); // +1 deltas
    cpu.setReg(14, 0x5555555555555555ull);
    ASSERT_TRUE(cpu.run());
    EXPECT_EQ(cpu.stats().gmx_ops, 2u);
    EXPECT_EQ(cpu.stats().cycles, 5u + 2u); // 5 instr + 2 extra latency
}

class ProgramGridTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(ProgramGridTest, Algorithm1ProgramMatchesNw)
{
    const auto [n, m] = GetParam();
    seq::Generator gen(900 + n + m);
    const auto text = gen.random(m);
    seq::Generator gen2(901 + n);
    const auto pattern = n == m ? gen.mutate(text, 0.1) : gen2.random(n);
    // Clamp the mutated pattern to exactly n (multiples of 32 required).
    std::string ps = pattern.str();
    ps.resize(n, 'A');
    const seq::Sequence p_fixed(ps);

    const auto res = runFullGmxDistanceProgram(p_fixed, text);
    EXPECT_EQ(res.distance, align::nwDistance(p_fixed, text));
    EXPECT_GT(res.stats.gmx_ops, 0u);
    EXPECT_GT(res.stats.cycles, res.stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProgramGridTest,
    ::testing::Values(std::make_pair(32u, 32u), std::make_pair(32u, 96u),
                      std::make_pair(96u, 32u), std::make_pair(128u, 128u),
                      std::make_pair(256u, 224u)),
    [](const auto &info) {
        return "n" + std::to_string(info.param.first) + "_m" +
               std::to_string(info.param.second);
    });

TEST(Programs, InstructionCountTracksAlgorithm1)
{
    // Per tile: 2 gmx + 2 csrw + 3 ld + 1 sd + loop overhead; the total
    // must scale with gr * gc.
    seq::Generator gen(907);
    const auto a = gen.random(128);
    const auto b = gen.random(128);
    const auto res = runFullGmxDistanceProgram(a, b);
    const u64 tiles = 4 * 4;
    EXPECT_EQ(res.stats.gmx_ops, 2 * tiles);
    EXPECT_LT(res.stats.instructions, 40 * tiles + 200);
}

class AlignProgramTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(AlignProgramTest, Algorithm2ProgramProducesVerifiedAlignments)
{
    const auto [n, m] = GetParam();
    seq::Generator gen(950 + n + m);
    const auto text = gen.random(m);
    std::string ps = gen.mutate(text, 0.12).str();
    ps.resize(n, 'C');
    const seq::Sequence pattern(ps);

    const auto run = runFullGmxAlignProgram(pattern, text);
    const i64 expect = align::nwDistance(pattern, text);
    EXPECT_EQ(run.result.distance, expect);
    const auto check =
        gmx::align::verifyResult(pattern, text, run.result);
    EXPECT_TRUE(check.ok) << check.error;
    // The program's CIGAR equals the C++ driver's (same priorities all
    // the way down).
    const auto sw = core::fullGmxAlign(pattern, text, 32);
    EXPECT_EQ(run.result.cigar, sw.cigar);
    EXPECT_GT(run.tb_steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AlignProgramTest,
    ::testing::Values(std::make_pair(32u, 32u), std::make_pair(64u, 96u),
                      std::make_pair(160u, 128u),
                      std::make_pair(256u, 256u)),
    [](const auto &info) {
        return "n" + std::to_string(info.param.first) + "_m" +
               std::to_string(info.param.second);
    });

TEST(Programs, AlignProgramRejectsBadLengths)
{
    seq::Generator gen(961);
    EXPECT_THROW(runFullGmxAlignProgram(gen.random(33), gen.random(64)),
                 FatalError);
    EXPECT_THROW(runFullGmxAlignProgram(seq::Sequence(""), gen.random(64)),
                 FatalError);
}

TEST(Programs, TracebackProgramDecodesOps)
{
    // One-tile traceback through the CSR protocol, cross-checked against
    // the GmxUnit's decoded step.
    seq::Generator gen(911);
    const auto p = gen.random(32);
    const auto t = gen.mutate(p, 0.1);
    if (t.size() < 32)
        return;
    const auto pw = packSequenceWords(p);
    const auto tw = packSequenceWords(seq::Sequence(t.str().substr(0, 32)));

    Cpu cpu(0x1000);
    cpu.loadProgram(assemble(tileTracebackSource()));
    const u64 ones = 0x5555555555555555ull;
    cpu.setReg(10, pw[0]);
    cpu.setReg(11, tw[0]);
    cpu.setReg(12, ones);
    cpu.setReg(13, ones);
    cpu.setReg(14, u64{1} << 31); // bottom-right corner
    ASSERT_TRUE(cpu.run());

    core::GmxUnit unit(32);
    unit.csrwPatternPacked(pw[0]);
    unit.csrwTextPacked(tw[0]);
    unit.csrwPosPacked(u64{1} << 31);
    const auto step = unit.gmxTb(core::unpackDelta(ones, 32),
                                 core::unpackDelta(ones, 32));
    EXPECT_EQ(cpu.reg(10), unit.csrrLo());
    EXPECT_EQ(cpu.reg(11), unit.csrrHi());
    // The returned position matches the decoded next_pos.
    core::GmxUnit probe(32);
    probe.csrwPos(step.next_pos);
    EXPECT_EQ(cpu.reg(12), probe.csrrPosPacked());
}

} // namespace
} // namespace gmx::isa_sim
