/**
 * @file
 * Streaming Windowed(GMX) suite: the WindowStepper's O(window) traversal
 * must be bit-identical to the monolithic windowedGmxAlign — same
 * distance, same canonical CIGAR, seam runs coalesced — and the engine
 * must route long-class pairs to the streamed tier under the same
 * default memory budget that serves short-read traffic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "engine/engine.hh"
#include "gmx/windowed.hh"
#include "kernel/registry.hh"
#include "sequence/generator.hh"

namespace gmx {
namespace {

using align::CigarRun;
using align::Op;

/** Drain windowedGmxStream into the collected reverse-order run list. */
std::vector<CigarRun>
streamRuns(const seq::SequencePair &pair, const align::WindowedParams &params,
           i64 *distance_out = nullptr)
{
    std::vector<CigarRun> runs;
    KernelContext ctx;
    const i64 d = core::windowedGmxStream(
        pair.pattern, pair.text, 32, params,
        [&runs](Op op, u64 len) { runs.push_back({op, len}); }, ctx);
    if (distance_out)
        *distance_out = d;
    return runs;
}

/** Expand reverse-commit-order runs into a forward CIGAR. */
align::Cigar
expandRuns(const std::vector<CigarRun> &runs)
{
    std::vector<Op> ops;
    for (size_t i = runs.size(); i-- > 0;)
        ops.insert(ops.end(), static_cast<size_t>(runs[i].len), runs[i].op);
    return align::Cigar(std::move(ops));
}

/** Structural-variant pair: a deletion block and an insertion block on
 *  top of point errors, the long-read shapes that stress window seams. */
seq::SequencePair
structuralPair(seq::Generator &gen, size_t len, size_t sv)
{
    const seq::Sequence text = gen.random(len);
    std::string p = text.str();
    p.erase(len / 3, sv); // deletion of sv bases
    std::string ins;
    for (size_t i = 0; i < sv / 2; ++i)
        ins.push_back("ACGT"[gen.prng().below(4)]);
    p.insert(p.size() / 2, ins); // unrelated insertion
    return {seq::Sequence(std::move(p)), text};
}

// ------------------------------------------------- core equivalence

TEST(WindowedStream, BitIdenticalToMonolithicOverRandomCorpus)
{
    // Lengths straddle the window geometry's seams: W-1 / W / W+1 and
    // 2W-O +/- 1 are exactly where the boundary run-splitting bug the
    // seam coalescing fixes would appear.
    seq::Generator gen(9001);
    const align::WindowedParams params{96, 32};
    for (const size_t len : {95u, 96u, 97u, 159u, 160u, 161u, 500u, 1337u}) {
        for (const double err : {0.0, 0.05, 0.15}) {
            const auto pair = gen.pair(len, err);
            const auto mono =
                core::windowedGmxAlign(pair.pattern, pair.text, 32, params);
            i64 streamed_distance = -1;
            const auto runs = streamRuns(pair, params, &streamed_distance);
            EXPECT_EQ(streamed_distance, mono.distance)
                << "len=" << len << " err=" << err;
            EXPECT_EQ(expandRuns(runs).str(), mono.cigar.str())
                << "len=" << len << " err=" << err;
        }
    }
}

TEST(WindowedStream, BitIdenticalOnStructuralVariants)
{
    seq::Generator gen(9002);
    const align::WindowedParams params{96, 32};
    for (const size_t sv : {40u, 96u, 200u}) {
        const auto pair = structuralPair(gen, 3000, sv);
        const auto mono =
            core::windowedGmxAlign(pair.pattern, pair.text, 32, params);
        i64 streamed_distance = -1;
        const auto runs = streamRuns(pair, params, &streamed_distance);
        EXPECT_EQ(streamed_distance, mono.distance) << "sv=" << sv;
        EXPECT_EQ(expandRuns(runs).str(), mono.cigar.str()) << "sv=" << sv;
        const auto v =
            align::verifyResult(pair.pattern, pair.text, mono);
        EXPECT_TRUE(v.ok) << v.error;
    }
}

TEST(WindowedStream, SeamRunsAreCoalesced)
{
    // The canonical-CIGAR property: no two adjacent sealed runs carry
    // the same op, so a match run crossing a window boundary streams as
    // one run instead of a split 3M + 5M.
    seq::Generator gen(9003);
    const align::WindowedParams params{96, 32};
    for (const double err : {0.0, 0.02, 0.15}) {
        const auto pair = gen.pair(2000, err);
        const auto runs = streamRuns(pair, params);
        ASSERT_FALSE(runs.empty());
        for (size_t i = 1; i < runs.size(); ++i)
            EXPECT_NE(runs[i].op, runs[i - 1].op)
                << "err=" << err << " adjacent runs " << i - 1 << "," << i
                << " share an op: seam not coalesced";
        for (const CigarRun &run : runs)
            EXPECT_GT(run.len, 0u);
    }
}

TEST(WindowedStream, PerfectMatchStreamsAsOneRunAtExactSeamLengths)
{
    // A perfect match of exactly 2W - O spans two full windows whose
    // commit boundary falls mid-run; the holdback must merge them.
    seq::Generator gen(9004);
    const align::WindowedParams params{96, 32};
    for (const size_t len : {160u, 96u, 224u}) {
        const seq::Sequence text = gen.random(len);
        const seq::SequencePair pair{text, text};
        i64 d = -1;
        const auto runs = streamRuns(pair, params, &d);
        EXPECT_EQ(d, 0);
        ASSERT_EQ(runs.size(), 1u) << "len=" << len;
        EXPECT_EQ(runs[0].op, Op::Match);
        EXPECT_EQ(runs[0].len, len);
    }
}

TEST(WindowedStream, ConvergedFastPathIsBitIdenticalToDisabled)
{
    // DENT-style discard of byte-identical windows must be a pure
    // shortcut: identical distance and CIGAR with the flag on or off.
    seq::Generator gen(9005);
    for (const double err : {0.0, 0.005, 0.08}) {
        const auto pair = gen.pair(4000, err);
        align::WindowedParams on{96, 32};
        on.converged_fast_path = true;
        align::WindowedParams off{96, 32};
        off.converged_fast_path = false;
        const auto fast =
            core::windowedGmxAlign(pair.pattern, pair.text, 32, on);
        const auto slow =
            core::windowedGmxAlign(pair.pattern, pair.text, 32, off);
        EXPECT_EQ(fast.distance, slow.distance) << "err=" << err;
        EXPECT_EQ(fast.cigar.str(), slow.cigar.str()) << "err=" << err;
    }
}

TEST(WindowedStream, StepperExposesProgressAndDiscardsConvergedWindows)
{
    seq::Generator gen(9006);
    const auto pair = gen.pair(4000, 0.01);
    align::WindowedParams params{96, 32};
    KernelContext ctx;
    const align::WindowAligner window_fn =
        [&ctx](const seq::Sequence &p, const seq::Sequence &t) {
            return core::fullGmxAlign(p, t, 32, ctx);
        };
    align::WindowStepper stepper(pair.pattern, pair.text, params, window_fn,
                                 ctx);
    EXPECT_FALSE(stepper.done());
    u64 sealed_ops = 0;
    while (!stepper.done()) {
        stepper.step();
        for (const CigarRun &run : stepper.runs())
            sealed_ops += run.len;
    }
    // Every committed op was sealed (final flush included), progress
    // covered both sequences, and at 1% error most windows are
    // byte-identical — the fast path must be doing real work.
    EXPECT_EQ(sealed_ops, stepper.committedOps());
    EXPECT_GE(stepper.committedOps(),
              std::max(pair.pattern.size(), pair.text.size()));
    EXPECT_GT(stepper.windows(), 4000u / 96u);
    EXPECT_GT(stepper.fastWindows(), 0u);
    EXPECT_LT(stepper.fastWindows(), stepper.windows());
    const auto mono =
        core::windowedGmxAlign(pair.pattern, pair.text, 32, params);
    EXPECT_EQ(static_cast<i64>(stepper.distance()), mono.distance);
}

TEST(WindowedStream, NullSinkStreamsDistanceOnly)
{
    seq::Generator gen(9007);
    const auto pair = gen.pair(2500, 0.1);
    const align::WindowedParams params{96, 32};
    KernelContext ctx;
    const i64 d = core::windowedGmxStream(pair.pattern, pair.text, 32,
                                          params, nullptr, ctx);
    EXPECT_EQ(
        d, core::windowedGmxAlign(pair.pattern, pair.text, 32, params)
               .distance);
}

TEST(WindowedStream, InvalidGeometryIsFatal)
{
    seq::Generator gen(9008);
    const auto pair = gen.pair(100, 0.05);
    EXPECT_THROW(
        core::windowedGmxAlign(pair.pattern, pair.text, 32, {0, 0}),
        FatalError);
    EXPECT_THROW(
        core::windowedGmxAlign(pair.pattern, pair.text, 32, {32, 32}),
        FatalError);
}

// ----------------------------------------------- length-class validation

TEST(WindowedStream, ValidatePairHonoursLengthClass)
{
    seq::Generator gen(9009);
    const auto pair = gen.pair(2000, 0.02);
    align::InputLimits limits;
    limits.max_pair_bases = 1000;
    limits.max_length_skew = 1; // hostile to long reads on purpose
    // Short class: both short limits bind.
    EXPECT_EQ(align::validatePair(pair, limits).code(),
              StatusCode::InvalidInput);
    // Long class: exempt from the short length/skew limits.
    EXPECT_TRUE(
        align::validatePair(pair, limits, align::LengthClass::Long).ok());
    // ... but bound by its own cap.
    limits.max_long_pair_bases = 3000;
    EXPECT_EQ(align::validatePair(pair, limits, align::LengthClass::Long)
                  .code(),
              StatusCode::InvalidInput);
}

TEST(WindowedStream, KernelLengthCapsRejectOversizedPairs)
{
    const auto &reg = kernel::AlignerRegistry::instance();
    const auto &full = reg.require("gmx-full");
    ASSERT_GT(full.max_len, 0u);
    EXPECT_FALSE(full.streaming);
    EXPECT_TRUE(kernel::checkKernelLength(full, 1000, 1000).ok());
    EXPECT_EQ(kernel::checkKernelLength(full, full.max_len + 1, 10).code(),
              StatusCode::InvalidInput);

    const auto &stream = reg.require("gmx-windowed-stream");
    EXPECT_TRUE(stream.streaming);
    EXPECT_EQ(stream.max_len, 0u);
    EXPECT_TRUE(
        kernel::checkKernelLength(stream, 10'000'000, 10'000'000).ok());
    // The streaming contract: the estimator ignores the pair lengths.
    kernel::KernelParams params;
    EXPECT_EQ(stream.scratch_bytes(10'000, 10'000, params),
              stream.scratch_bytes(1'000'000, 1'000'000, params));
}

// ----------------------------------------------------- engine routing

using engine::Engine;
using engine::EngineConfig;
using engine::Tier;

TEST(WindowedStreamEngine, LongClassRoutesToStreamedTier)
{
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.cascade.long_threshold = 2048;
    Engine engine(cfg);
    seq::Generator gen(9101);
    const auto pair = gen.pair(4000, 0.1);

    auto f = engine.submit(pair, /*want_cigar=*/true);
    auto res = f.get();
    ASSERT_TRUE(res.ok()) << res.status().message();
    // Bit-identical to the monolithic windowed aligner at the cascade's
    // long geometry.
    const auto mono = core::windowedGmxAlign(
        pair.pattern, pair.text, cfg.cascade.tile,
        {cfg.cascade.long_window, cfg.cascade.long_overlap});
    EXPECT_EQ(res->distance, mono.distance);
    EXPECT_EQ(res->cigar.str(), mono.cigar.str());

    const auto snap = engine.metrics();
    EXPECT_EQ(snap.tier_hits[static_cast<unsigned>(Tier::Streamed)], 1u);
}

TEST(WindowedStreamEngine, MixedTrafficServedUnderOneBudget)
{
    // The acceptance scenario: one engine, one default-sized memory
    // budget, 150 bp short reads and a long-class pair in flight
    // together. The long pair's O(window) reservation must admit it
    // where a Full(GMX) estimate would have demanded gigabytes.
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.cascade.long_threshold = 2048;
    cfg.memory_budget_bytes = 2 * 1024 * 1024;
    Engine engine(cfg);
    seq::Generator gen(9102);

    const auto long_pair = gen.pair(50000, 0.02);
    std::vector<seq::SequencePair> shorts;
    for (int i = 0; i < 16; ++i)
        shorts.push_back(gen.pair(150, 0.05));

    auto long_f = engine.submit(long_pair, /*want_cigar=*/true);
    std::vector<std::future<Engine::AlignOutcome>> short_fs;
    for (const auto &p : shorts)
        short_fs.push_back(engine.submit(p, /*want_cigar=*/false));

    auto long_res = long_f.get();
    ASSERT_TRUE(long_res.ok()) << long_res.status().message();
    const auto mono = core::windowedGmxAlign(
        long_pair.pattern, long_pair.text, cfg.cascade.tile,
        {cfg.cascade.long_window, cfg.cascade.long_overlap});
    EXPECT_EQ(long_res->distance, mono.distance);
    EXPECT_EQ(long_res->cigar.str(), mono.cigar.str());

    for (size_t i = 0; i < short_fs.size(); ++i) {
        auto s = short_fs[i].get();
        ASSERT_TRUE(s.ok()) << i;
        EXPECT_EQ(s->distance, align::nwDistance(shorts[i].pattern,
                                                 shorts[i].text));
    }

    const auto snap = engine.metrics();
    EXPECT_EQ(snap.tier_hits[static_cast<unsigned>(Tier::Streamed)], 1u);
    EXPECT_EQ(snap.resource_rejected, 0u);
    EXPECT_EQ(snap.downgraded, 0u);
}

TEST(WindowedStreamEngine, LongPairsBypassShortLimitsAtSubmit)
{
    EngineConfig cfg;
    cfg.cascade.long_threshold = 2048;
    cfg.limits.max_pair_bases = 4096; // binds short-class pairs only
    Engine engine(cfg);
    seq::Generator gen(9103);

    // 6000-base pair, over the short cap but routed long: admitted.
    auto ok = engine.submit(gen.pair(3000, 0.05), /*want_cigar=*/false);
    EXPECT_TRUE(ok.get().ok());

    // Same engine with the long class off: the same pair is short-class
    // and the cap fires.
    EngineConfig strict = cfg;
    strict.cascade.long_threshold = 0;
    Engine strict_engine(strict);
    auto rejected =
        strict_engine.submit(gen.pair(3000, 0.05), /*want_cigar=*/false);
    EXPECT_EQ(rejected.get().code(), StatusCode::InvalidInput);
}

TEST(WindowedStreamEngine, NonStreamingRouteRejectsOversizedPairsTyped)
{
    // With the long class disabled, an Mbp-scale pair is short-class and
    // must be refused up front by the route's per-kernel length caps —
    // a typed InvalidInput, not a budget blowup or a quadratic kernel.
    EngineConfig cfg;
    cfg.cascade.long_threshold = 0;
    Engine engine(cfg);
    seq::Generator gen(9104);
    const seq::Sequence big = gen.random(300000);

    auto f = engine.submit(seq::SequencePair{big, big},
                           /*want_cigar=*/false);
    auto res = f.get();
    EXPECT_EQ(res.code(), StatusCode::InvalidInput);
    EXPECT_EQ(engine.metrics().invalid, 1u);

    // The same pair with long-class routing on is admitted and served.
    EngineConfig routed;
    routed.cascade.long_threshold = 64 * 1024;
    Engine long_engine(routed);
    auto ok = long_engine.submit(seq::SequencePair{big, big},
                                 /*want_cigar=*/false);
    auto served = ok.get();
    ASSERT_TRUE(served.ok()) << served.status().message();
    EXPECT_EQ(served->distance, 0);
}

} // namespace
} // namespace gmx
