/**
 * @file
 * Registry-driven kernel equivalence suite.
 *
 * Because every kernel is reached through its AlignerDescriptor, this
 * suite is the "adding a kernel" checklist in executable form: register
 * a descriptor and it is automatically held to the reference semantics —
 * exact kernels must reproduce nwAlign's distance on a random plus
 * adversarial corpus, traceback results must verify as valid paths of
 * the reported cost, and kernels sharing a cigar_contract must produce
 * bit-identical CIGARs.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "align/batch.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "kernel/registry.hh"
#include "sequence/generator.hh"

namespace gmx::kernel {
namespace {

/** Random pairs across the regimes plus adversarial shapes. */
std::vector<seq::SequencePair>
corpus()
{
    std::vector<seq::SequencePair> pairs;
    seq::Generator gen(20240817);
    // Lengths straddle the 64-bit word boundaries (64/65, 128/129) and
    // the 256-bit SIMD granule boundary (256/257) so every kernel's
    // block-chaining seams are exercised.
    for (double err : {0.0, 0.01, 0.1, 0.3})
        for (size_t len : {1u, 7u, 64u, 65u, 128u, 129u, 256u, 257u, 300u})
            pairs.push_back(gen.pair(len, err));

    auto add = [&pairs](const char *p, const char *t) {
        pairs.push_back({seq::Sequence(p), seq::Sequence(t)});
    };
    add("", "");
    add("", "ACGTACGT");
    add("ACGTACGT", "");
    add("A", "A");
    add("A", "C");
    add("AAAAAAAAAA", "CCCCCCCCCC");         // all-mismatch
    add("A", "AAAAAAAAAAAAAAAAAAAAAAAAAAAA"); // extreme skew
    add("ACACACACACACACAC", "CACACACACACACACA"); // shifted repeat
    add("AAAAAAAACCCCCCCC", "AAAACCCC");     // homopolymer blocks
    // 200:1 skew exercises banded envelopes wider than one sequence.
    pairs.push_back({gen.random(1), gen.random(200)});
    pairs.push_back({gen.random(200), gen.random(1)});
    return pairs;
}

TEST(Registry, BuiltinsArePresentAndLookupsWork)
{
    const auto &reg = AlignerRegistry::instance();
    EXPECT_GE(reg.all().size(), 8u);
    for (const char *name :
         {"nw", "hirschberg", "bpm", "bpm-banded", "bitap", "gmx-full",
          "gmx-banded", "gmx-windowed"}) {
        const AlignerDescriptor *d = reg.find(name);
        ASSERT_NE(d, nullptr) << name;
        EXPECT_STREQ(d->name, name);
        EXPECT_NE(d->run, nullptr);
        EXPECT_NE(d->scratch_bytes, nullptr);
        EXPECT_GT(d->scratch_bytes(300, 300, {}), 0u);
    }
    EXPECT_EQ(reg.find("no-such-kernel"), nullptr);
    EXPECT_THROW(reg.require("no-such-kernel"), FatalError);
}

TEST(Registry, ExactKernelsReproduceNwDistanceOverCorpus)
{
    const auto &reg = AlignerRegistry::instance();
    for (const auto &pair : corpus()) {
        const auto expect = align::nwAlign(pair.pattern, pair.text);
        for (const AlignerDescriptor *d : reg.tracebackCapable()) {
            KernelContext ctx;
            KernelParams params; // k = -1: banded kernels find k themselves
            const auto res = d->run(pair, params, ctx);
            ASSERT_TRUE(res.found())
                << d->name << " n=" << pair.pattern.size()
                << " m=" << pair.text.size();
            if (d->exact) {
                EXPECT_EQ(res.distance, expect.distance)
                    << d->name << " n=" << pair.pattern.size()
                    << " m=" << pair.text.size();
            } else {
                // Heuristics may overshoot but never beat the optimum.
                EXPECT_GE(res.distance, expect.distance) << d->name;
            }
            ASSERT_TRUE(res.has_cigar) << d->name;
            const auto v =
                align::verifyResult(pair.pattern, pair.text, res);
            EXPECT_TRUE(v.ok) << d->name << ": " << v.error;
        }
    }
}

TEST(Registry, SharedCigarContractsProduceIdenticalCigars)
{
    const auto &reg = AlignerRegistry::instance();
    std::map<std::string, std::vector<const AlignerDescriptor *>> groups;
    for (const AlignerDescriptor &d : reg.all())
        if (d.cigar_contract && d.supports_traceback)
            groups[d.cigar_contract].push_back(&d);
    // The GMX tile-traceback contract must bind at least full + banded.
    ASSERT_GE(groups["gmx-tb"].size(), 2u);

    for (const auto &pair : corpus()) {
        for (const auto &[contract, members] : groups) {
            if (members.size() < 2)
                continue;
            std::string reference;
            for (size_t i = 0; i < members.size(); ++i) {
                KernelContext ctx;
                const auto res = members[i]->run(pair, {}, ctx);
                ASSERT_TRUE(res.found() && res.has_cigar)
                    << members[i]->name;
                if (i == 0)
                    reference = res.cigar.str();
                else
                    EXPECT_EQ(res.cigar.str(), reference)
                        << contract << ": " << members[i]->name << " vs "
                        << members[0]->name
                        << " n=" << pair.pattern.size()
                        << " m=" << pair.text.size();
            }
        }
    }
}

TEST(Registry, Avx2VariantsMatchScalarTwinBitExactly)
{
    // The dispatcher substitutes *-avx2 names for their scalar twins, so
    // the swap must be invisible: same distances, byte-identical CIGARs,
    // on implicit and explicit error bounds alike.
    const auto &reg = AlignerRegistry::instance();
    struct Twin
    {
        const char *scalar;
        const char *simd;
    };
    for (const Twin t : {Twin{"bpm", "bpm-avx2"},
                         Twin{"bpm-banded", "bpm-banded-avx2"},
                         Twin{"gmx-full", "gmx-full-avx2"}}) {
        const AlignerDescriptor *s = reg.find(t.scalar);
        const AlignerDescriptor *v = reg.find(t.simd);
        ASSERT_NE(s, nullptr) << t.scalar;
        if (!v)
            GTEST_SKIP() << "AVX2 build without AVX2 host; SIMD "
                            "variants not registered";
        for (const auto &pair : corpus()) {
            for (const bool want_cigar : {false, true}) {
                for (const i64 k : {i64{-1}, i64{8}}) {
                    if (k >= 0 && !v->banded)
                        continue;
                    KernelParams params;
                    params.want_cigar = want_cigar;
                    params.k = k;
                    params.enforce_bound = k >= 0;
                    KernelContext sctx, vctx;
                    const auto sres = s->run(pair, params, sctx);
                    const auto vres = v->run(pair, params, vctx);
                    ASSERT_EQ(vres.found(), sres.found())
                        << t.simd << " n=" << pair.pattern.size()
                        << " m=" << pair.text.size() << " k=" << k;
                    if (!sres.found())
                        continue;
                    EXPECT_EQ(vres.distance, sres.distance)
                        << t.simd << " n=" << pair.pattern.size()
                        << " m=" << pair.text.size() << " k=" << k;
                    ASSERT_EQ(vres.has_cigar, sres.has_cigar) << t.simd;
                    if (sres.has_cigar) {
                        EXPECT_EQ(vres.cigar.str(), sres.cigar.str())
                            << t.simd << " n=" << pair.pattern.size()
                            << " m=" << pair.text.size() << " k=" << k;
                    }
                }
            }
        }
    }
}

TEST(Registry, ExplicitBandHonoursEnforceBound)
{
    // Banded kernels with an explicit k and enforce_bound must report
    // kNoAlignment when the true distance exceeds the budget.
    const auto &reg = AlignerRegistry::instance();
    seq::SequencePair far{seq::Sequence("AAAAAAAAAAAAAAAA"),
                          seq::Sequence("CCCCCCCCCCCCCCCC")};
    for (const AlignerDescriptor &d : reg.all()) {
        if (!d.banded)
            continue;
        KernelContext ctx;
        KernelParams params;
        params.k = 2; // true distance is 16
        params.enforce_bound = true;
        const auto res = d.run(far, params, ctx);
        EXPECT_FALSE(res.found()) << d.name;
    }
}

TEST(Registry, MakeAlignerRunsThroughBatchAlign)
{
    seq::Generator gen(515);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 64; ++i)
        pairs.push_back(gen.pair(120, 0.05));

    const auto results =
        align::batchAlign(pairs, makeAligner("gmx-full"), /*threads=*/4);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(results[i].distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text));
        EXPECT_TRUE(align::verifyResult(pairs[i].pattern, pairs[i].text,
                                        results[i])
                        .ok);
    }

    // Distance-only parameters flow through to the descriptor.
    KernelParams dist_only;
    dist_only.want_cigar = false;
    const auto d = makeAligner("bpm", dist_only)(pairs[0]);
    EXPECT_EQ(d.distance,
              align::nwDistance(pairs[0].pattern, pairs[0].text));
    EXPECT_FALSE(d.has_cigar);

    EXPECT_THROW(makeAligner("definitely-not-registered"), FatalError);
}

} // namespace
} // namespace gmx::kernel
