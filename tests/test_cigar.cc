/**
 * @file
 * Unit tests for CIGAR handling and alignment verification.
 */

#include <gtest/gtest.h>

#include "align/cigar.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "sequence/sequence.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(Cigar, OpCharRoundTrip)
{
    for (Op op : {Op::Match, Op::Mismatch, Op::Insertion, Op::Deletion})
        EXPECT_EQ(opFromChar(opChar(op)), op);
    EXPECT_THROW(opFromChar('Z'), FatalError);
}

TEST(Cigar, FromStringAndBack)
{
    const Cigar c = Cigar::fromString("MMXIDM");
    EXPECT_EQ(c.size(), 6u);
    EXPECT_EQ(c.str(), "MMXIDM");
    EXPECT_EQ(c.compressed(), "2M1X1I1D1M");
}

TEST(Cigar, LengthAccounting)
{
    // Paper Figure 1 example: pattern GATT vs text GCAT, alignment MDMMI.
    const Cigar c = Cigar::fromString("MDMMI");
    EXPECT_EQ(c.patternLength(), 4u); // G A T T
    EXPECT_EQ(c.textLength(), 4u);    // G C A T
    EXPECT_EQ(c.editDistance(), 2u);  // one D + one I
}

TEST(Cigar, PushRunsAndAppend)
{
    Cigar c;
    c.push(Op::Match, 3);
    c.push(Op::Deletion);
    Cigar d = Cigar::fromString("II");
    c.append(d);
    EXPECT_EQ(c.str(), "MMMDII");
    c.reverse();
    EXPECT_EQ(c.str(), "IIDMMM");
}

TEST(Verify, AcceptsPaperFigure1Alignment)
{
    const Sequence pattern("GATT");
    const Sequence text("GCAT");
    const auto res = verifyCigar(pattern, text, Cigar::fromString("MDMMI"));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.edit_distance, 2);
}

TEST(Verify, RejectsWrongMatchFlag)
{
    const Sequence pattern("GATT");
    const Sequence text("GCAT");
    // Second op claims a match where pattern A != text C.
    const auto res = verifyCigar(pattern, text, Cigar::fromString("MMMMI"));
    EXPECT_FALSE(res.ok);
    // And an X on equal characters is also rejected.
    const auto res2 = verifyCigar(pattern, text, Cigar::fromString("XDMMI"));
    EXPECT_FALSE(res2.ok);
}

TEST(Verify, RejectsIncompleteConsumption)
{
    const Sequence pattern("GATT");
    const Sequence text("GCAT");
    EXPECT_FALSE(verifyCigar(pattern, text, Cigar::fromString("MDMM")).ok);
    EXPECT_FALSE(verifyCigar(pattern, text, Cigar::fromString("MDMMII")).ok);
}

TEST(Verify, RejectsOverrun)
{
    const Sequence pattern("GA");
    const Sequence text("G");
    EXPECT_FALSE(verifyCigar(pattern, text, Cigar::fromString("MMD")).ok);
}

TEST(Verify, ResultDistanceMustMatchCigar)
{
    const Sequence pattern("GATT");
    const Sequence text("GCAT");
    AlignResult r;
    r.distance = 3; // wrong: cigar implies 2
    r.cigar = Cigar::fromString("MDMMI");
    r.has_cigar = true;
    EXPECT_FALSE(verifyResult(pattern, text, r).ok);
    r.distance = 2;
    EXPECT_TRUE(verifyResult(pattern, text, r).ok);
}

TEST(Verify, EmptySequences)
{
    const auto res = verifyCigar(Sequence(""), Sequence(""), Cigar());
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.edit_distance, 0);
}

TEST(AffineRescore, MatchesHandComputedScores)
{
    AffinePenalties pen{2, 4, 4, 2};
    // 3 matches: +6.
    EXPECT_EQ(affineScoreOfCigar(Cigar::fromString("MMM"), pen), 6);
    // 2 matches + mismatch: +4 - 4 = 0.
    EXPECT_EQ(affineScoreOfCigar(Cigar::fromString("MXM"), pen), 0);
    // Gap of length 2: -(4 + 2*2) = -8, plus 2 matches.
    EXPECT_EQ(affineScoreOfCigar(Cigar::fromString("MDDM"), pen), 4 - 8);
    // Two separate gaps pay gap_open twice; I and D runs are distinct gaps.
    EXPECT_EQ(affineScoreOfCigar(Cigar::fromString("MDIM"), pen),
              4 - 6 - 6);
}

} // namespace
} // namespace gmx::align
