/**
 * @file
 * Tests for Full(GMX): differential against NW across the grid and across
 * tile sizes, CIGAR verification, memory/instruction accounting.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "gmx/full.hh"
#include "test_util.hh"

namespace gmx::core {
namespace {

using seq::Sequence;

TEST(FullGmx, PaperFigure6EndToEnd)
{
    const Sequence p("GATT"), t("GCAT");
    for (unsigned tile : {2u, 4u}) {
        EXPECT_EQ(fullGmxDistance(p, t, tile), 2) << "T=" << tile;
        const auto res = fullGmxAlign(p, t, tile);
        EXPECT_EQ(res.distance, 2);
        const auto check = align::verifyResult(p, t, res);
        EXPECT_TRUE(check.ok) << check.error;
    }
    // With T=2 the traceback crosses tiles exactly as Fig. 6 steps 4-6.
    const auto res = fullGmxAlign(p, t, 2);
    EXPECT_EQ(res.cigar.str(), "MDMIM");
}

class FullGmxGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(FullGmxGridTest, DistanceMatchesNwAtT32)
{
    const auto pair = test::makePair(GetParam());
    EXPECT_EQ(fullGmxDistance(pair.pattern, pair.text, 32),
              align::nwDistance(pair.pattern, pair.text));
}

TEST_P(FullGmxGridTest, AlignMatchesNwAndVerifiesAtT32)
{
    const auto pair = test::makePair(GetParam());
    const auto res = fullGmxAlign(pair.pattern, pair.text, 32);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
    const auto check = align::verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FullGmxGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(FullGmx, AllTileSizesAgree)
{
    // Tile size must not change results — including odd sizes and T=64.
    seq::Generator gen(201);
    for (int rep = 0; rep < 4; ++rep) {
        const auto pair = gen.pair(150, 0.1);
        const i64 expect = align::nwDistance(pair.pattern, pair.text);
        for (unsigned tile : {2u, 3u, 5u, 8u, 16u, 31u, 32u, 64u}) {
            EXPECT_EQ(fullGmxDistance(pair.pattern, pair.text, tile), expect)
                << "T=" << tile;
            const auto res = fullGmxAlign(pair.pattern, pair.text, tile);
            EXPECT_EQ(res.distance, expect) << "T=" << tile;
            EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok)
                << "T=" << tile;
        }
    }
}

TEST(FullGmx, NonMultipleLengthsExercisePartialTiles)
{
    seq::Generator gen(203);
    for (size_t n : {31u, 33u, 63u, 65u, 95u, 97u}) {
        const auto p = gen.random(n);
        const auto t = gen.mutate(p, 0.1);
        const i64 expect = align::nwDistance(p, t);
        EXPECT_EQ(fullGmxDistance(p, t, 32), expect) << n;
        const auto res = fullGmxAlign(p, t, 32);
        EXPECT_EQ(res.distance, expect) << n;
        EXPECT_TRUE(align::verifyResult(p, t, res).ok) << n;
    }
}

TEST(FullGmx, EmptySequences)
{
    EXPECT_EQ(fullGmxDistance(Sequence(""), Sequence("ACG")), 3);
    EXPECT_EQ(fullGmxDistance(Sequence("ACG"), Sequence("")), 3);
    const auto res = fullGmxAlign(Sequence("ACG"), Sequence(""));
    EXPECT_EQ(res.cigar.str(), "III");
}

TEST(FullGmx, InstructionCountsMatchAlgorithm1)
{
    // For an n x m matrix with full tiles: n/T * m/T tiles, two gmx.*
    // instructions each — the quadratic instruction reduction of §4.
    seq::Generator gen(207);
    const auto p = gen.random(320);
    const auto t = gen.random(320);
    align::KernelCounts counts;
    KernelContext ctx(CancelToken{}, &counts);
    fullGmxDistance(p, t, 32, ctx);
    const u64 tiles = 10 * 10;
    EXPECT_EQ(counts.gmx_ac, 2 * tiles);
    EXPECT_EQ(counts.cells, 320u * 320u);
    // One gmx_text csrw per tile column + one gmx_pattern per tile.
    EXPECT_EQ(counts.csr, 10u + tiles);
    EXPECT_EQ(counts.gmx_tb, 0u);

    align::KernelCounts tb_counts;
    KernelContext tb_ctx(CancelToken{}, &tb_counts);
    fullGmxAlign(p, t, 32, tb_ctx);
    EXPECT_GT(tb_counts.gmx_tb, 0u);
    // Tile-wise traceback touches at most the tiles on the path.
    EXPECT_LE(tb_counts.gmx_tb, 2 * 10u + 1);
}

TEST(FullGmx, LongNoisySequences)
{
    // The paper's long-sequence regime (15% error).
    seq::Generator gen(209);
    const auto pair = gen.pair(2000, 0.15);
    const i64 expect = align::nwDistance(pair.pattern, pair.text);
    EXPECT_EQ(fullGmxDistance(pair.pattern, pair.text, 32), expect);
    const auto res = fullGmxAlign(pair.pattern, pair.text, 32);
    EXPECT_EQ(res.distance, expect);
    EXPECT_TRUE(align::verifyResult(pair.pattern, pair.text, res).ok);
}

TEST(FullGmx, CigarFollowsCctbPriority)
{
    // The GMX-TB priority (M, D, I, X) is deterministic: identical inputs
    // must give identical CIGARs across tile sizes whenever the tile walk
    // makes the same local decisions. We check determinism per tile size.
    seq::Generator gen(211);
    const auto pair = gen.pair(200, 0.1);
    const auto a = fullGmxAlign(pair.pattern, pair.text, 32);
    const auto b = fullGmxAlign(pair.pattern, pair.text, 32);
    EXPECT_EQ(a.cigar, b.cigar);
}

} // namespace
} // namespace gmx::core
