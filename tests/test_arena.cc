/**
 * @file
 * ScratchArena regression suite: pointer-stable reuse across reset(),
 * frame rewinds, allocator-traffic accounting, and the contract between
 * each kernel's measured arena peak and its registry scratch estimator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "align/bpm.hh"
#include "align/nw.hh"
#include "kernel/arena.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"
#include "sequence/generator.hh"

namespace gmx {
namespace {

TEST(ScratchArena, ResetReusesIdenticalPointersWithNoNewBlocks)
{
    ScratchArena arena;
    // Warm-up request: spans several growth blocks.
    auto carve = [&arena] {
        std::vector<void *> ptrs;
        ptrs.push_back(arena.rowsUninit<i64>(1000).data());
        ptrs.push_back(arena.rowsUninit<u8>(3000).data());
        ptrs.push_back(arena.rowsUninit<u64>(5000).data());
        return ptrs;
    };
    carve();
    // The first reset coalesces the growth blocks into one block sized to
    // the peak; the request that follows is the steady-state baseline.
    arena.reset();
    const auto first = carve();
    const u64 warm_allocs = arena.blockAllocs();
    EXPECT_GE(warm_allocs, 1u);

    // Steady state: every identical request reuses the exact same
    // pointers and performs zero upstream allocations (the property the
    // engine's short-pair hot path depends on).
    for (int request = 0; request < 10; ++request) {
        arena.reset();
        EXPECT_EQ(arena.liveBytes(), 0u);
        const auto again = carve();
        ASSERT_EQ(again.size(), first.size());
        for (size_t i = 0; i < first.size(); ++i)
            EXPECT_EQ(again[i], first[i]) << "allocation " << i;
        EXPECT_EQ(arena.blockAllocs(), warm_allocs);
    }
}

TEST(ScratchArena, RowsAreZeroedAndRowsUninitAreWritable)
{
    ScratchArena arena;
    auto dirty = arena.rowsUninit<u64>(256);
    for (auto &w : dirty)
        w = ~0ull;
    arena.reset();
    // The zeroing variant must scrub whatever the last request left.
    auto clean = arena.rows<u64>(256);
    for (u64 w : clean)
        ASSERT_EQ(w, 0u);
}

TEST(ScratchArena, FrameRewindReclaimsScratchButKeepsPeak)
{
    ScratchArena arena;
    auto outer = arena.rowsUninit<u64>(100);
    outer[0] = 42;
    const size_t live_before = arena.liveBytes();
    void *inner_ptr = nullptr;
    {
        ScratchArena::Frame frame(arena);
        auto inner = arena.rowsUninit<u64>(10000);
        inner_ptr = inner.data();
        EXPECT_GT(arena.liveBytes(), live_before);
    }
    EXPECT_EQ(arena.liveBytes(), live_before);
    EXPECT_EQ(outer[0], 42u); // outer scratch untouched by the rewind
    EXPECT_GE(arena.peakBytes(), live_before + 10000 * sizeof(u64));
    // The next draw reuses the rewound region.
    EXPECT_EQ(arena.rowsUninit<u64>(10000).data(), inner_ptr);
}

TEST(ScratchArena, KernelPeakStaysWithinRegistryEstimate)
{
    // The contract the budget layer admits against: for every registered
    // kernel, measured arena peak <= scratch_bytes(n, m) (admission never
    // under-reserves), and the estimate is not wildly conservative
    // (<= 4x peak + 16 KiB of documented slack for alignment rounding,
    // partial tiles, and k-doubling retries that rewind).
    seq::Generator gen(90210);
    const auto pair = gen.pair(1500, 0.08);
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();

    for (const kernel::AlignerDescriptor &d :
         kernel::AlignerRegistry::instance().all()) {
        for (const bool want_cigar : {true, false}) {
            if (!want_cigar && !d.supports_distance_only)
                continue;
            kernel::KernelParams params;
            params.want_cigar = want_cigar;
            if (d.banded)
                params.k = 256; // generous: true distance ~120
            ScratchArena arena;
            KernelContext ctx(CancelToken{}, nullptr, &arena);
            const auto res = d.run(pair, params, ctx);
            ASSERT_TRUE(res.found()) << d.name;
            const size_t peak = arena.peakBytes();
            const size_t estimate = d.scratch_bytes(n, m, params);
            EXPECT_GT(peak, 0u) << d.name;
            EXPECT_LE(peak, estimate)
                << d.name << " want_cigar=" << want_cigar
                << ": kernel outgrew its admission estimate";
            EXPECT_LE(estimate, 4 * peak + 16 * 1024)
                << d.name << " want_cigar=" << want_cigar
                << ": estimator is wildly conservative";
        }
    }
}

TEST(ScratchArena, KernelEstimatesHoldAtWordBoundarySizes)
{
    // Same admission contract at the sizes where padded SIMD layouts
    // round up hardest: one word, one 256-bit granule, and one row past
    // the granule. Only the under-reservation direction is checked here —
    // at tiny n the fixed slack terms legitimately dominate the peak.
    seq::Generator gen(31337);
    for (size_t len : {64u, 256u, 257u}) {
        const auto pair = gen.pair(len, 0.05);
        for (const kernel::AlignerDescriptor &d :
             kernel::AlignerRegistry::instance().all()) {
            kernel::KernelParams params;
            if (d.banded)
                params.k = 64;
            ScratchArena arena;
            KernelContext ctx(CancelToken{}, nullptr, &arena);
            const auto res = d.run(pair, params, ctx);
            ASSERT_TRUE(res.found()) << d.name << " len=" << len;
            EXPECT_LE(arena.peakBytes(),
                      d.scratch_bytes(pair.pattern.size(),
                                      pair.text.size(), params))
                << d.name << " len=" << len
                << ": kernel outgrew its admission estimate";
        }
    }
}

TEST(ScratchArena, StreamedWindowedPeakIsLengthIndependent)
{
    // The O(window) contract the long length class is built on: the
    // streaming windowed kernel's measured arena peak must be the same
    // for a 10 kbp, 100 kbp, and 1 Mbp pair — one window's footprint,
    // rewound per step — and stay under its length-blind estimator.
    // Low error keeps the run fast (byte-identical windows take the
    // converged fast path) while still forcing real window frames.
    const kernel::AlignerDescriptor &d =
        kernel::AlignerRegistry::instance().require("gmx-windowed-stream");
    kernel::KernelParams params;
    params.want_cigar = false;
    std::vector<size_t> peaks;
    for (const size_t len : {10'000u, 100'000u, 1'000'000u}) {
        seq::Generator gen(777); // same seed: shared error structure
        const auto pair = gen.pair(len, 0.001);
        ScratchArena arena;
        KernelContext ctx(CancelToken{}, nullptr, &arena);
        const auto res = d.run(pair, params, ctx);
        ASSERT_TRUE(res.found()) << len;
        EXPECT_GT(res.distance, 0) << len;
        peaks.push_back(arena.peakBytes());
        EXPECT_GT(peaks.back(), 0u) << len;
        EXPECT_LE(peaks.back(),
                  d.scratch_bytes(pair.pattern.size(), pair.text.size(),
                                  params))
            << len;
    }
    EXPECT_EQ(peaks[0], peaks[1])
        << "streamed peak grew from 10 kbp to 100 kbp";
    EXPECT_EQ(peaks[1], peaks[2])
        << "streamed peak grew from 100 kbp to 1 Mbp";
}

TEST(ScratchArena, BatchEntryEstimateCoversGroupPeak)
{
    // The engine reserves bpmBatchScratchBytes(max_pattern) ONCE for a
    // whole packed group (per-lane reservations would double-count the
    // shared scratch). The admission contract for that entry point: the
    // group's measured arena peak never exceeds the single estimate, and
    // the estimate is not grossly padded (est <= 4*peak + 16 KiB).
    seq::Generator gen(1212);
    std::vector<seq::SequencePair> pairs;
    size_t max_pattern = 0;
    for (size_t len : {300u, 64u, 257u, 150u}) {
        pairs.push_back(gen.pair(len, 0.05));
        max_pattern = std::max(max_pattern, pairs.back().pattern.size());
    }

    auto run_lanes = [](std::vector<seq::SequencePair> &ps,
                        ScratchArena &arena) {
        std::vector<simd::BatchLane> lanes(ps.size());
        for (size_t i = 0; i < ps.size(); ++i)
            lanes[i].pair = &ps[i];
        KernelContext ctx(CancelToken{}, nullptr, &arena);
        simd::bpmDistanceBatchLanes({lanes.data(), lanes.size()}, ctx);
        return lanes;
    };

    // Full quad: the packed path keeps lane state in registers/stack, so
    // a zero arena peak is legal — the estimate's fixed slack term keeps
    // the upper-bound check meaningful without demanding arena traffic.
    {
        ScratchArena arena;
        const auto lanes = run_lanes(pairs, arena);
        const size_t est = simd::bpmBatchScratchBytes(max_pattern);
        EXPECT_GE(est, arena.peakBytes());
        EXPECT_LE(est, 4 * arena.peakBytes() + 16 * 1024);
        for (size_t i = 0; i < lanes.size(); ++i) {
            ASSERT_TRUE(lanes[i].status.ok()) << i;
            KernelContext scalar;
            EXPECT_EQ(lanes[i].distance,
                      align::bpmDistance(pairs[i].pattern, pairs[i].text,
                                         scalar))
                << i;
        }
    }

    // 3-lane partial tail: the scalar fallback lanes do carve arena
    // frames; they rewind between lanes so the group peak is one lane's
    // worth, still under the same single-group estimate.
    {
        std::vector<seq::SequencePair> tail(pairs.begin(),
                                            pairs.begin() + 3);
        ScratchArena arena;
        const auto lanes = run_lanes(tail, arena);
        EXPECT_GT(arena.peakBytes(), 0u);
        const size_t est = simd::bpmBatchScratchBytes(max_pattern);
        EXPECT_GE(est, arena.peakBytes());
        EXPECT_LE(est, 4 * arena.peakBytes() + 16 * 1024);
        for (size_t i = 0; i < lanes.size(); ++i)
            ASSERT_TRUE(lanes[i].status.ok()) << i;
    }
}

TEST(ScratchArena, ContextOwnsFallbackArenaForStandaloneCallers)
{
    // A default context carries its own arena, so convenience overloads
    // work with zero setup; counts and result are unaffected.
    seq::Generator gen(11);
    const auto pair = gen.pair(200, 0.05);
    KernelContext ctx;
    const auto res = align::nwAlign(pair.pattern, pair.text, ctx);
    EXPECT_EQ(res.distance, align::nwDistance(pair.pattern, pair.text));
    EXPECT_GT(ctx.arena().peakBytes(), 0u);
}

#ifdef GMX_ARENA_ASAN
TEST(ScratchArenaAsanDeathTest, UseAfterResetTripsAsan)
{
    // Reset re-poisons the arena's blocks, so a stale span from the
    // previous request faults immediately instead of silently reading
    // another request's scratch.
    EXPECT_DEATH(
        {
            ScratchArena arena;
            auto row = arena.rowsUninit<u64>(64);
            row[0] = 1;
            arena.reset();
            row[1] = 2; // stale handle: poisoned memory
        },
        "use-after-poison");
}
#endif

} // namespace
} // namespace gmx
