/**
 * @file
 * Tests for the batch alignment API and the matrix view helpers.
 */

#include <gtest/gtest.h>

#include "align/batch.hh"
#include "align/matrix_view.hh"
#include "align/nw.hh"
#include "common/logging.hh"
#include "gmx/full.hh"
#include "sequence/dataset.hh"

namespace gmx::align {
namespace {

TEST(Batch, MatchesSequentialResultsInOrder)
{
    const auto ds = seq::makeDataset("b", 300, 0.08, 20, 1301);
    const PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    const auto parallel = batchAlign(ds.pairs, aligner, 4);
    ASSERT_EQ(parallel.size(), ds.pairs.size());
    for (size_t i = 0; i < ds.pairs.size(); ++i) {
        EXPECT_EQ(parallel[i].distance,
                  nwDistance(ds.pairs[i].pattern, ds.pairs[i].text))
            << i;
        EXPECT_EQ(parallel[i].cigar,
                  aligner(ds.pairs[i]).cigar)
            << i;
    }
}

TEST(Batch, EmptyBatchAndSingleThread)
{
    const PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    EXPECT_TRUE(batchAlign({}, aligner, 4).empty());
    const auto ds = seq::makeDataset("b1", 100, 0.05, 3, 1303);
    const auto one = batchAlign(ds.pairs, aligner, 1);
    EXPECT_EQ(one.size(), 3u);
}

TEST(Batch, PropagatesWorkerExceptions)
{
    const auto ds = seq::makeDataset("b2", 50, 0.05, 8, 1307);
    const PairAligner bomb = [](const seq::SequencePair &) -> AlignResult {
        GMX_FATAL("boom");
    };
    EXPECT_THROW(batchAlign(ds.pairs, bomb, 3), FatalError);
    EXPECT_THROW(batchAlign(ds.pairs, PairAligner(), 3), FatalError);
}

TEST(MatrixView, RendersPaperFigure1)
{
    const seq::Sequence p("GATT"), t("GCAT");
    const auto res = nwAlign(p, t);
    const std::string view = renderDpMatrix(p, t, &res.cigar);
    // The matrix contains the known corner value and path markers.
    EXPECT_NE(view.find("2*"), std::string::npos);
    EXPECT_NE(view.find("G"), std::string::npos);
    // 5 rows of cells + header.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(view.begin(), view.end(), '\n')),
              6u);
}

TEST(MatrixView, DeltaMatrixUsesBpmAlphabet)
{
    const seq::Sequence p("GATT"), t("GCAT");
    const std::string dv = renderDeltaMatrix(p, t, true);
    const std::string dh = renderDeltaMatrix(p, t, false);
    for (char c : {'+', '-'}) {
        EXPECT_NE(dv.find(c), std::string::npos);
        EXPECT_NE(dh.find(c), std::string::npos);
    }
    // Column 0 of dv is always '+' (D[i][0] = i).
    EXPECT_NE(dv.find("G    +"), std::string::npos);
}

} // namespace
} // namespace gmx::align
