/**
 * @file
 * Tests for the batch alignment API and the matrix view helpers.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "align/batch.hh"
#include "align/matrix_view.hh"
#include "align/nw.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "gmx/full.hh"
#include "sequence/dataset.hh"

namespace gmx::align {
namespace {

TEST(Batch, MatchesSequentialResultsInOrder)
{
    const auto ds = seq::makeDataset("b", 300, 0.08, 20, 1301);
    const PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    const auto parallel = batchAlign(ds.pairs, aligner, 4);
    ASSERT_EQ(parallel.size(), ds.pairs.size());
    for (size_t i = 0; i < ds.pairs.size(); ++i) {
        EXPECT_EQ(parallel[i].distance,
                  nwDistance(ds.pairs[i].pattern, ds.pairs[i].text))
            << i;
        EXPECT_EQ(parallel[i].cigar,
                  aligner(ds.pairs[i]).cigar)
            << i;
    }
}

TEST(Batch, EmptyBatchAndSingleThread)
{
    const PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    EXPECT_TRUE(batchAlign({}, aligner, 4).empty());
    const auto ds = seq::makeDataset("b1", 100, 0.05, 3, 1303);
    const auto one = batchAlign(ds.pairs, aligner, 1);
    EXPECT_EQ(one.size(), 3u);
}

TEST(Batch, PropagatesWorkerExceptions)
{
    const auto ds = seq::makeDataset("b2", 50, 0.05, 8, 1307);
    const PairAligner bomb = [](const seq::SequencePair &) -> AlignResult {
        GMX_FATAL("boom");
    };
    EXPECT_THROW(batchAlign(ds.pairs, bomb, 3), FatalError);
    EXPECT_THROW(batchAlign(ds.pairs, PairAligner(), 3), FatalError);
}

TEST(Validation, RejectsEmptySequences)
{
    InputLimits limits;
    const seq::SequencePair empty_p{seq::Sequence(""), seq::Sequence("ACGT")};
    const seq::SequencePair empty_t{seq::Sequence("ACGT"), seq::Sequence("")};
    EXPECT_EQ(validatePair(empty_p, limits).code(),
              StatusCode::InvalidInput);
    EXPECT_EQ(validatePair(empty_t, limits).code(),
              StatusCode::InvalidInput);
    limits.reject_empty = false;
    EXPECT_TRUE(validatePair(empty_p, limits).ok());
}

TEST(Validation, RejectsNonAcgtOnlyWhenConfigured)
{
    const seq::SequencePair dirty{seq::Sequence("ACGTNACGT"),
                                  seq::Sequence("ACGT")};
    InputLimits lax;
    EXPECT_TRUE(validatePair(dirty, lax).ok());
    InputLimits strict;
    strict.reject_non_acgt = true;
    EXPECT_EQ(validatePair(dirty, strict).code(), StatusCode::InvalidInput);
    // Lower-case ACGT is case folding, not corruption.
    const seq::SequencePair lower{seq::Sequence("acgt"),
                                  seq::Sequence("ACGT")};
    EXPECT_TRUE(validatePair(lower, strict).ok());
}

TEST(Validation, RejectsOversizedAndSkewedPairs)
{
    seq::Generator gen(2029);
    InputLimits limits;
    limits.max_pair_bases = 100;
    EXPECT_EQ(validatePair(gen.pair(80, 0.0), limits).code(),
              StatusCode::InvalidInput);
    EXPECT_TRUE(validatePair(gen.pair(40, 0.0), limits).ok());

    InputLimits skew;
    skew.max_length_skew = 5;
    const auto text = gen.random(60);
    const seq::SequencePair skewed{text.substr(0, 30), text};
    EXPECT_EQ(validatePair(skewed, skew).code(), StatusCode::InvalidInput);
}

TEST(Validation, BatchAlignRejectsBeforeAnyWorkRuns)
{
    std::atomic<int> calls{0};
    const PairAligner counting = [&calls](const seq::SequencePair &p) {
        calls.fetch_add(1);
        return core::fullGmxAlign(p.pattern, p.text);
    };
    seq::Generator gen(2031);
    std::vector<seq::SequencePair> pairs;
    pairs.push_back(gen.pair(50, 0.05));
    pairs.push_back({seq::Sequence(""), seq::Sequence("ACGT")});
    try {
        batchAlign(pairs, counting, 2);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::InvalidInput);
        // The message names the offending pair index.
        EXPECT_NE(e.status().message().find("pair 1"), std::string::npos);
    }
    EXPECT_EQ(calls.load(), 0); // validation precedes all alignment work
}

TEST(MatrixView, RendersPaperFigure1)
{
    const seq::Sequence p("GATT"), t("GCAT");
    const auto res = nwAlign(p, t);
    const std::string view = renderDpMatrix(p, t, &res.cigar);
    // The matrix contains the known corner value and path markers.
    EXPECT_NE(view.find("2*"), std::string::npos);
    EXPECT_NE(view.find("G"), std::string::npos);
    // 5 rows of cells + header.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(view.begin(), view.end(), '\n')),
              6u);
}

TEST(MatrixView, DeltaMatrixUsesBpmAlphabet)
{
    const seq::Sequence p("GATT"), t("GCAT");
    const std::string dv = renderDeltaMatrix(p, t, true);
    const std::string dh = renderDeltaMatrix(p, t, false);
    for (char c : {'+', '-'}) {
        EXPECT_NE(dv.find(c), std::string::npos);
        EXPECT_NE(dh.find(c), std::string::npos);
    }
    // Column 0 of dv is always '+' (D[i][0] = i).
    EXPECT_NE(dv.find("G    +"), std::string::npos);
}

} // namespace
} // namespace gmx::align
