/**
 * @file
 * Tests for the GMX-Tile kernel: bit-parallel vs scalar cross-check, and
 * both against deltas extracted from the NW reference matrix.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "gmx/tile.hh"
#include "sequence/generator.hh"

namespace gmx::core {
namespace {

/** Tile inputs/expected outputs extracted from the NW matrix of a pair. */
struct NwTileOracle
{
    std::vector<std::vector<i64>> d; // full DP matrix (n+1) x (m+1)

    NwTileOracle(const seq::Sequence &p, const seq::Sequence &t)
    {
        for (size_t i = 0; i <= p.size(); ++i)
            d.push_back(align::nwMatrixRow(p, t, i));
    }

    /** dv of cell (i, j), 1-based. */
    int dv(size_t i, size_t j) const
    {
        return static_cast<int>(d[i][j] - d[i - 1][j]);
    }

    int dh(size_t i, size_t j) const
    {
        return static_cast<int>(d[i][j] - d[i][j - 1]);
    }

    /** Build the TileInput for the tile at rows [i0+1..i0+tp], cols
     * [j0+1..j0+tt]. */
    TileInput
    input(const seq::Sequence &p, const seq::Sequence &t, size_t i0,
          size_t j0, unsigned tp, unsigned tt) const
    {
        TileInput in;
        in.pattern = p.codes().data() + i0;
        in.tp = tp;
        in.text = t.codes().data() + j0;
        in.tt = tt;
        for (unsigned r = 0; r < tp; ++r)
            in.dv_in.set(r, dv(i0 + 1 + r, j0));
        for (unsigned c = 0; c < tt; ++c)
            in.dh_in.set(c, dh(i0, j0 + 1 + c));
        return in;
    }
};

// dv(i, 0) = +1 and dh(0, j) = +1 boundaries are implicit in the oracle
// because D[i][0] = i and D[0][j] = j.

TEST(Tile, ScalarMatchesNwOracleOnWholeMatrixTiles)
{
    seq::Generator gen(11);
    for (unsigned t : {2u, 4u, 8u, 16u, 32u}) {
        const auto p = gen.random(t);
        const auto txt = gen.mutate(p, 0.2);
        if (txt.size() < t || txt.empty())
            continue;
        NwTileOracle oracle(p, txt);
        const TileInput in = oracle.input(p, txt, 0, 0, t,
                                          std::min<unsigned>(
                                              t, static_cast<unsigned>(
                                                     txt.size())));
        const TileOutput out = tileComputeScalar(in);
        for (unsigned r = 0; r < in.tp; ++r)
            EXPECT_EQ(out.dv_out.at(r), oracle.dv(1 + r, in.tt)) << r;
        for (unsigned c = 0; c < in.tt; ++c)
            EXPECT_EQ(out.dh_out.at(c), oracle.dh(in.tp, 1 + c)) << c;
    }
}

TEST(Tile, BitParallelMatchesScalarOnRandomTiles)
{
    seq::Generator gen(13);
    for (int rep = 0; rep < 200; ++rep) {
        const unsigned tp = 1 + static_cast<unsigned>(gen.prng().below(64));
        const unsigned tt = 1 + static_cast<unsigned>(gen.prng().below(64));
        const auto p = gen.random(tp);
        const auto t = gen.random(tt);
        TileInput in;
        in.pattern = p.codes().data();
        in.tp = tp;
        in.text = t.codes().data();
        in.tt = tt;
        // Random but *consistent* edge deltas come from a real DP matrix;
        // purely random deltas can encode impossible boundaries. Use a
        // random prefix context to generate feasible edges.
        for (unsigned r = 0; r < tp; ++r)
            in.dv_in.set(r, static_cast<int>(gen.prng().below(3)) - 1);
        for (unsigned c = 0; c < tt; ++c)
            in.dh_in.set(c, static_cast<int>(gen.prng().below(3)) - 1);
        const TileOutput a = tileCompute(in);
        const TileOutput b = tileComputeScalar(in);
        EXPECT_EQ(a.dv_out, b.dv_out) << "tp=" << tp << " tt=" << tt;
        EXPECT_EQ(a.dh_out, b.dh_out) << "tp=" << tp << " tt=" << tt;
    }
}

TEST(Tile, InteriorTilesOfRealMatrix)
{
    // Every interior tile of a 96x96 matrix, checked against the oracle,
    // for several tile sizes including non-powers of two.
    seq::Generator gen(17);
    const auto p = gen.random(96);
    const auto t = gen.mutate(p, 0.15);
    NwTileOracle oracle(p, t);
    for (unsigned ts : {2u, 3u, 5u, 8u, 16u, 32u}) {
        for (size_t i0 = 0; i0 + ts <= p.size(); i0 += ts) {
            for (size_t j0 = 0; j0 + ts <= t.size(); j0 += ts) {
                const TileInput in = oracle.input(p, t, i0, j0, ts, ts);
                const TileOutput out = tileCompute(in);
                for (unsigned r = 0; r < ts; ++r) {
                    ASSERT_EQ(out.dv_out.at(r), oracle.dv(i0 + 1 + r,
                                                          j0 + ts))
                        << "ts=" << ts << " i0=" << i0 << " j0=" << j0;
                }
                for (unsigned c = 0; c < ts; ++c) {
                    ASSERT_EQ(out.dh_out.at(c), oracle.dh(i0 + ts,
                                                          j0 + 1 + c))
                        << "ts=" << ts << " i0=" << i0 << " j0=" << j0;
                }
            }
        }
    }
}

TEST(Tile, InteriorDeltasMatchOracle)
{
    seq::Generator gen(19);
    const auto p = gen.random(32);
    const auto t = gen.mutate(p, 0.2);
    if (t.size() < 32)
        return;
    NwTileOracle oracle(p, t);
    const TileInput in = oracle.input(p, t, 0, 0, 32, 32);
    const TileInterior interior = tileInterior(in);
    for (unsigned r = 0; r < 32; ++r) {
        for (unsigned c = 0; c < 32; ++c) {
            EXPECT_EQ(interior.dvAt(r, c), oracle.dv(r + 1, c + 1));
            EXPECT_EQ(interior.dhAt(r, c), oracle.dh(r + 1, c + 1));
        }
    }
}

TEST(Tile, PaperFigure6Deltas)
{
    // The worked example of Fig. 6: pattern "GATT", text "GCAT", one 4x4
    // tile with boundary inputs. The resulting bottom-row dh must sum to
    // distance - n... D[4][4] = 4 + sum(dh row 4) => sum = -2.
    const seq::Sequence p("GATT"), t("GCAT");
    TileInput in;
    in.pattern = p.codes().data();
    in.tp = 4;
    in.text = t.codes().data();
    in.tt = 4;
    in.dv_in = DeltaVec::ones(4);
    in.dh_in = DeltaVec::ones(4);
    const TileOutput out = tileCompute(in);
    EXPECT_EQ(4 + out.dh_out.sum(4), 2); // the known edit distance
    // Right edge: D[i][4] for i=1..4 is 3,2,1,2 -> dv = -1? no:
    // dv(i,4) = D[i][4] - D[i-1][4]: 3-4=-1, 2-3=-1, 1-2=-1, 2-1=+1.
    EXPECT_EQ(out.dv_out.at(0), -1);
    EXPECT_EQ(out.dv_out.at(1), -1);
    EXPECT_EQ(out.dv_out.at(2), -1);
    EXPECT_EQ(out.dv_out.at(3), 1);
}

TEST(Tile, SingleCellTile)
{
    const seq::Sequence p("A"), t("A");
    TileInput in;
    in.pattern = p.codes().data();
    in.tp = 1;
    in.text = t.codes().data();
    in.tt = 1;
    in.dv_in = DeltaVec::ones(1);
    in.dh_in = DeltaVec::ones(1);
    const TileOutput out = tileCompute(in);
    // D[1][1] = 0: dv = 0 - 1 = -1, dh = -1.
    EXPECT_EQ(out.dv_out.at(0), -1);
    EXPECT_EQ(out.dh_out.at(0), -1);
}

TEST(Tile, FullWordTile)
{
    // T = 64 uses every bit of the word including the sign bit.
    seq::Generator gen(23);
    const auto p = gen.random(64);
    const auto t = gen.mutate(p, 0.1);
    if (t.size() < 64)
        return;
    NwTileOracle oracle(p, t);
    const TileInput in = oracle.input(p, t, 0, 0, 64, 64);
    const TileOutput fast = tileCompute(in);
    const TileOutput ref = tileComputeScalar(in);
    EXPECT_EQ(fast.dv_out, ref.dv_out);
    EXPECT_EQ(fast.dh_out, ref.dh_out);
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(fast.dv_out.at(r), oracle.dv(1 + r, 64));
}

} // namespace
} // namespace gmx::core
