/**
 * @file
 * Tests for Hirschberg's linear-space aligner.
 */

#include <gtest/gtest.h>

#include "align/hirschberg.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

class HirschbergGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(HirschbergGridTest, DistanceMatchesNwAndVerifies)
{
    const auto pair = test::makePair(GetParam());
    const auto res = hirschbergAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    const auto check = verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HirschbergGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(Hirschberg, EmptyAndDegenerateInputs)
{
    EXPECT_EQ(hirschbergAlign(Sequence(""), Sequence("")).distance, 0);
    const auto del = hirschbergAlign(Sequence(""), Sequence("ACGT"));
    EXPECT_EQ(del.cigar.str(), "DDDD");
    const auto ins = hirschbergAlign(Sequence("ACGT"), Sequence(""));
    EXPECT_EQ(ins.cigar.str(), "IIII");
    const auto one = hirschbergAlign(Sequence("A"), Sequence("ACGT"));
    EXPECT_EQ(one.distance, 3);
    EXPECT_TRUE(verifyResult(Sequence("A"), Sequence("ACGT"), one).ok);
}

TEST(Hirschberg, LongNoisyPair)
{
    seq::Generator gen(1201);
    const auto pair = gen.pair(3000, 0.15);
    const auto res = hirschbergAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    EXPECT_TRUE(verifyResult(pair.pattern, pair.text, res).ok);
}

TEST(Hirschberg, ComputeIsRoughlyTwiceTheMatrix)
{
    // Linear memory costs ~2x the cell computations (the classic trade).
    seq::Generator gen(1203);
    const auto pair = gen.pair(800, 0.1);
    KernelCounts counts;
    KernelContext ctx(CancelToken{}, &counts);
    hirschbergAlign(pair.pattern, pair.text, ctx);
    const double cells = static_cast<double>(pair.pattern.size()) *
                         static_cast<double>(pair.text.size());
    EXPECT_GT(static_cast<double>(counts.cells), 1.5 * cells);
    EXPECT_LT(static_cast<double>(counts.cells), 2.6 * cells);
}

} // namespace
} // namespace gmx::align
