/**
 * @file
 * Tests for Full(BPM): Myers' blocked bit-parallel aligner, differential
 * against the NW reference across the parameter grid.
 */

#include <gtest/gtest.h>

#include "align/bpm.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(BpmDistance, HandComputedCases)
{
    EXPECT_EQ(bpmDistance(Sequence("GATT"), Sequence("GCAT")), 2);
    EXPECT_EQ(bpmDistance(Sequence("ACGT"), Sequence("ACGT")), 0);
    EXPECT_EQ(bpmDistance(Sequence("A"), Sequence("T")), 1);
    EXPECT_EQ(bpmDistance(Sequence(""), Sequence("ACGT")), 4);
    EXPECT_EQ(bpmDistance(Sequence("ACGT"), Sequence("")), 4);
}

class BpmGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(BpmGridTest, DistanceMatchesNw)
{
    const auto pair = test::makePair(GetParam());
    EXPECT_EQ(bpmDistance(pair.pattern, pair.text),
              nwDistance(pair.pattern, pair.text));
}

TEST_P(BpmGridTest, AlignMatchesNwAndVerifies)
{
    const auto pair = test::makePair(GetParam());
    const auto res = bpmAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    const auto check = verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BpmGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(Bpm, ExactBlockBoundaryPatterns)
{
    // Pattern lengths straddling the 64-bit block boundary are the classic
    // failure mode of blocked Myers implementations.
    seq::Generator gen(51);
    for (size_t n : {63u, 64u, 65u, 127u, 128u, 129u, 191u, 192u, 193u}) {
        const auto p = gen.random(n);
        const auto t = gen.mutate(p, 0.1);
        EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t)) << "n=" << n;
        const auto res = bpmAlign(p, t);
        EXPECT_EQ(res.distance, nwDistance(p, t)) << "n=" << n;
        EXPECT_TRUE(verifyResult(p, t, res).ok) << "n=" << n;
    }
}

TEST(Bpm, HighErrorRate)
{
    // BPM is error-agnostic (unlike Bitap): random unrelated sequences.
    seq::Generator gen(53);
    const auto p = gen.random(500);
    const auto t = gen.random(480);
    EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t));
}

TEST(Bpm, AsymmetricLengths)
{
    seq::Generator gen(57);
    const auto p = gen.random(40);
    const auto t = gen.random(700);
    EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t));
    const auto res = bpmAlign(p, t);
    EXPECT_TRUE(verifyResult(p, t, res).ok);
}

TEST(Bpm, CountsAreAccumulated)
{
    seq::Generator gen(59);
    const auto pair = gen.pair(200, 0.05);
    KernelCounts counts;
    KernelContext ctx(CancelToken{}, &counts);
    bpmDistance(pair.pattern, pair.text, ctx);
    // 200x~200 cells; block count = ceil(n/64), ~17 ALU ops per block/char.
    EXPECT_GT(counts.cells, 30000u);
    EXPECT_GT(counts.alu, counts.cells / 64 * 17 / 2);
    EXPECT_GT(counts.loads, 0u);
    EXPECT_GT(counts.stores, 0u);
    EXPECT_EQ(counts.gmx_ac, 0u);

    KernelCounts align_counts;
    KernelContext align_ctx(CancelToken{}, &align_counts);
    bpmAlign(pair.pattern, pair.text, align_ctx);
    // The traceback variant writes the column history: more stores.
    EXPECT_GT(align_counts.stores, counts.stores);
}

} // namespace
} // namespace gmx::align
