/**
 * @file
 * Tests for Full(BPM): Myers' blocked bit-parallel aligner, differential
 * against the NW reference across the parameter grid.
 */

#include <gtest/gtest.h>

#include <vector>

#include "align/bpm.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "kernel/arena.hh"
#include "kernel/simd/bpm_simd.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(BpmDistance, HandComputedCases)
{
    EXPECT_EQ(bpmDistance(Sequence("GATT"), Sequence("GCAT")), 2);
    EXPECT_EQ(bpmDistance(Sequence("ACGT"), Sequence("ACGT")), 0);
    EXPECT_EQ(bpmDistance(Sequence("A"), Sequence("T")), 1);
    EXPECT_EQ(bpmDistance(Sequence(""), Sequence("ACGT")), 4);
    EXPECT_EQ(bpmDistance(Sequence("ACGT"), Sequence("")), 4);
}

class BpmGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(BpmGridTest, DistanceMatchesNw)
{
    const auto pair = test::makePair(GetParam());
    EXPECT_EQ(bpmDistance(pair.pattern, pair.text),
              nwDistance(pair.pattern, pair.text));
}

TEST_P(BpmGridTest, AlignMatchesNwAndVerifies)
{
    const auto pair = test::makePair(GetParam());
    const auto res = bpmAlign(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    const auto check = verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BpmGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(Bpm, ExactBlockBoundaryPatterns)
{
    // Pattern lengths straddling the 64-bit block boundary are the classic
    // failure mode of blocked Myers implementations.
    seq::Generator gen(51);
    for (size_t n : {63u, 64u, 65u, 127u, 128u, 129u, 191u, 192u, 193u,
                     255u, 256u, 257u}) {
        const auto p = gen.random(n);
        const auto t = gen.mutate(p, 0.1);
        EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t)) << "n=" << n;
        const auto res = bpmAlign(p, t);
        EXPECT_EQ(res.distance, nwDistance(p, t)) << "n=" << n;
        EXPECT_TRUE(verifyResult(p, t, res).ok) << "n=" << n;
    }
}

TEST(Bpm, HighErrorRate)
{
    // BPM is error-agnostic (unlike Bitap): random unrelated sequences.
    seq::Generator gen(53);
    const auto p = gen.random(500);
    const auto t = gen.random(480);
    EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t));
}

TEST(Bpm, AsymmetricLengths)
{
    seq::Generator gen(57);
    const auto p = gen.random(40);
    const auto t = gen.random(700);
    EXPECT_EQ(bpmDistance(p, t), nwDistance(p, t));
    const auto res = bpmAlign(p, t);
    EXPECT_TRUE(verifyResult(p, t, res).ok);
}

TEST(Bpm, PeqMemoAvoidsRebuildAcrossRetries)
{
    // The cascade retries tiers on the same pattern; a PeqMemo on the
    // context must serve the second attempt from cache without changing
    // the answer.
    seq::Generator gen(61);
    const auto pair = gen.pair(150, 0.05);
    PeqMemo memo;
    ScratchArena arena;
    KernelContext ctx(CancelToken{}, nullptr, &arena);
    ctx.setPeqMemo(&memo);
    const i64 d1 = bpmDistance(pair.pattern, pair.text, ctx);
    const i64 d2 = bpmDistance(pair.pattern, pair.text, ctx);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, nwDistance(pair.pattern, pair.text));
    EXPECT_EQ(memo.builds, 1u);
    EXPECT_GE(memo.hits, 1u);

    // A different pattern invalidates the memo instead of serving stale
    // masks.
    const auto other = gen.pair(150, 0.05);
    EXPECT_EQ(bpmDistance(other.pattern, other.text, ctx),
              nwDistance(other.pattern, other.text));
    EXPECT_EQ(memo.builds, 2u);
}

TEST(Bpm, InterPairBatchMatchesScalarAcrossWidths)
{
    // The batched distance path packs four pairs per vector with
    // per-lane multi-block recurrences; every width class — single
    // block, block-boundary straddlers, the full kBatchMaxPattern, and
    // over-long fallback pairs — must reproduce the scalar distances.
    seq::Generator gen(67);
    std::vector<seq::SequencePair> pairs;
    for (size_t n : {1u, 3u, 60u, 63u, 64u, 65u, 127u, 128u, 129u, 150u,
                     191u, 192u, 193u, 255u, 256u, 257u, 300u, 511u, 512u,
                     600u})
        for (double err : {0.05, 0.3})
            pairs.push_back(gen.pair(n, err));
    // Mixed-width groups: shuffle so single groups of four span block
    // counts (the per-block rsh/sel masks must freeze each lane's score
    // at its own final row, not the widest lane's).
    std::vector<seq::SequencePair> mixed;
    for (size_t i = 0; i < pairs.size(); ++i)
        mixed.push_back(pairs[(i * 13) % pairs.size()]);
    for (const auto &p : mixed)
        pairs.push_back(p);
    // Short texts against wide patterns, and empty-text fallback.
    pairs.push_back({gen.random(150), gen.random(4)});
    pairs.push_back({gen.random(300), gen.random(7)});
    pairs.push_back({gen.random(100), seq::Sequence("")});
    // Non-multiple-of-four tail exercises the scalar remainder.
    pairs.push_back(gen.pair(70, 0.1));

    std::vector<i64> out(pairs.size(), -999);
    KernelContext ctx;
    simd::bpmDistanceBatch4(pairs, out, ctx);
    for (size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(out[i], bpmDistance(pairs[i].pattern, pairs[i].text))
            << "pair " << i << " n=" << pairs[i].pattern.size()
            << " m=" << pairs[i].text.size();
}

TEST(Bpm, CountsAreAccumulated)
{
    seq::Generator gen(59);
    const auto pair = gen.pair(200, 0.05);
    KernelCounts counts;
    KernelContext ctx(CancelToken{}, &counts);
    bpmDistance(pair.pattern, pair.text, ctx);
    // 200x~200 cells; block count = ceil(n/64), ~17 ALU ops per block/char.
    EXPECT_GT(counts.cells, 30000u);
    EXPECT_GT(counts.alu, counts.cells / 64 * 17 / 2);
    EXPECT_GT(counts.loads, 0u);
    EXPECT_GT(counts.stores, 0u);
    EXPECT_EQ(counts.gmx_ac, 0u);

    KernelCounts align_counts;
    KernelContext align_ctx(CancelToken{}, &align_counts);
    bpmAlign(pair.pattern, pair.text, align_ctx);
    // The traceback variant writes the column history: more stores.
    EXPECT_GT(align_counts.stores, counts.stores);
}

} // namespace
} // namespace gmx::align
