/**
 * @file
 * Runtime SIMD dispatch tests: name resolution, the GMX_FORCE_SCALAR
 * test seam, and end-to-end bit-identity of the cascade under dispatched
 * vs forced-scalar kernel selection.
 */

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "engine/cascade.hh"
#include "kernel/dispatch.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"
#include "sequence/generator.hh"

namespace gmx::kernel {
namespace {

/** RAII guard so a failing assertion can't leak the test override. */
struct ForceScalarGuard
{
    explicit ForceScalarGuard(int force) { setForceScalarForTest(force); }
    ~ForceScalarGuard() { setForceScalarForTest(-1); }
};

TEST(Dispatch, ForcedScalarPinsEveryTwinToItsScalarName)
{
    ForceScalarGuard guard(1);
    EXPECT_FALSE(simdDispatchEnabled());
    // Scalar names stay, and explicit *-avx2 requests map back down.
    for (const char *name : {"bpm", "bpm-banded", "gmx-full"})
        EXPECT_EQ(dispatchKernel(name), std::string_view(name));
    EXPECT_EQ(dispatchKernel("bpm-avx2"), "bpm");
    EXPECT_EQ(dispatchKernel("bpm-banded-avx2"), "bpm-banded");
    EXPECT_EQ(dispatchKernel("gmx-full-avx2"), "gmx-full");
    // Names without a twin pass through untouched.
    EXPECT_EQ(dispatchKernel("nw"), "nw");
    EXPECT_EQ(dispatchKernel("bitap"), "bitap");
    EXPECT_EQ(dispatchKernel("no-such-kernel"), "no-such-kernel");
}

TEST(Dispatch, SimdEligibleResolvesTwinsBothWays)
{
    ForceScalarGuard guard(0);
    if (!simdDispatchEnabled())
        GTEST_SKIP() << "no AVX2 in this build/CPU";
    // Eligibility implies the variants really are registered.
    const auto &reg = AlignerRegistry::instance();
    ASSERT_NE(reg.find("bpm-avx2"), nullptr);
    EXPECT_EQ(dispatchKernel("bpm"), "bpm-avx2");
    EXPECT_EQ(dispatchKernel("bpm-banded"), "bpm-banded-avx2");
    EXPECT_EQ(dispatchKernel("gmx-full"), "gmx-full-avx2");
    // Explicit SIMD names are honoured as-is.
    EXPECT_EQ(dispatchKernel("gmx-full-avx2"), "gmx-full-avx2");
    // Untwinned kernels never get rewritten.
    EXPECT_EQ(dispatchKernel("hirschberg"), "hirschberg");
}

TEST(Dispatch, DispatchedNamesAlwaysResolveInRegistry)
{
    // Whatever dispatch picks must be runnable — under both overrides.
    const auto &reg = AlignerRegistry::instance();
    for (const int force : {0, 1}) {
        ForceScalarGuard guard(force);
        for (const char *name : {"bpm", "bpm-banded", "gmx-full",
                                 "bpm-avx2", "gmx-full-avx2"}) {
            const std::string_view resolved = dispatchKernel(name);
            EXPECT_NE(reg.find(resolved), nullptr)
                << name << " -> " << resolved << " force=" << force;
        }
    }
}

TEST(Dispatch, CascadeIsBitIdenticalUnderForcedScalar)
{
    // The acceptance property: GMX_FORCE_SCALAR=1 must be invisible in
    // results — same distances, byte-identical CIGARs — across pairs
    // that exercise all three tiers.
    seq::Generator gen(20250807);
    std::vector<seq::SequencePair> pairs;
    for (double err : {0.01, 0.1, 0.4})
        for (size_t len : {40u, 150u, 300u, 800u})
            pairs.push_back(gen.pair(len, err));

    engine::CascadeConfig config;
    for (const auto &pair : pairs) {
        for (const bool want_cigar : {false, true}) {
            setForceScalarForTest(0);
            const auto dispatched =
                engine::cascadeAlign(pair, config, want_cigar);
            setForceScalarForTest(1);
            const auto scalar =
                engine::cascadeAlign(pair, config, want_cigar);
            setForceScalarForTest(-1);
            EXPECT_EQ(dispatched.result.distance, scalar.result.distance)
                << "n=" << pair.pattern.size();
            ASSERT_EQ(dispatched.result.has_cigar, scalar.result.has_cigar);
            if (scalar.result.has_cigar) {
                EXPECT_EQ(dispatched.result.cigar.str(),
                          scalar.result.cigar.str())
                    << "n=" << pair.pattern.size();
            }
        }
    }
}

TEST(Dispatch, ReportsConsistentCapabilityBits)
{
    // simdDispatchEnabled() is the conjunction of its three inputs.
    ForceScalarGuard guard(-1);
    const bool expect = simd::builtWithAvx2() && cpuHasAvx2() &&
                        !forceScalar();
    EXPECT_EQ(simdDispatchEnabled(), expect);
}

} // namespace
} // namespace gmx::kernel
