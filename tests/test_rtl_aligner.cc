/**
 * @file
 * End-to-end gate-level integration: whole alignments computed purely on
 * the GMX-AC/GMX-TB netlists must match the NW reference — the closest
 * software analogue of running the RTL through its verification suite.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "gmx/full.hh"
#include "hw/rtl_aligner.hh"
#include "sequence/generator.hh"

namespace gmx::hw {
namespace {

TEST(RtlAligner, DistanceMatchesNw)
{
    seq::Generator gen(701);
    RtlAligner rtl(8);
    for (int rep = 0; rep < 6; ++rep) {
        const auto text = gen.random(64);
        auto pattern = gen.mutate(text, 0.15);
        // Pad/trim the mutated pattern to a multiple of T.
        while (pattern.size() % 8 != 0)
            pattern = seq::Sequence(pattern.str() + "A");
        EXPECT_EQ(rtl.distance(pattern, text),
                  align::nwDistance(pattern, text))
            << "rep=" << rep;
    }
}

TEST(RtlAligner, FullAlignmentsVerify)
{
    seq::Generator gen(703);
    RtlAligner rtl(8);
    for (int rep = 0; rep < 5; ++rep) {
        const auto pattern = gen.random(48);
        const auto text = gen.random(56);
        const auto res = rtl.align(pattern, text);
        EXPECT_EQ(res.distance, align::nwDistance(pattern, text));
        const auto check = align::verifyResult(pattern, text, res);
        EXPECT_TRUE(check.ok) << check.error;
    }
}

TEST(RtlAligner, MatchesSoftwareFullGmxCigar)
{
    // Same priority rules end to end: the netlist traceback must produce
    // the identical CIGAR to the functional GmxUnit path.
    seq::Generator gen(707);
    RtlAligner rtl(8);
    const auto pattern = gen.random(40);
    const auto text = gen.random(40);
    const auto hw_res = rtl.align(pattern, text);
    const auto sw_res = gmx::core::fullGmxAlign(pattern, text, 8);
    EXPECT_EQ(hw_res.distance, sw_res.distance);
    EXPECT_EQ(hw_res.cigar, sw_res.cigar);
}

TEST(RtlAligner, LargerTileSize)
{
    seq::Generator gen(709);
    RtlAligner rtl(16);
    const auto text = gen.random(48);
    const auto pattern = gen.random(32);
    const auto res = rtl.align(pattern, text);
    EXPECT_EQ(res.distance, align::nwDistance(pattern, text));
    EXPECT_TRUE(align::verifyResult(pattern, text, res).ok);
}

TEST(RtlAligner, RejectsNonMultipleLengths)
{
    RtlAligner rtl(8);
    seq::Generator gen(711);
    const auto ok = gen.random(16);
    const auto bad = gen.random(13);
    EXPECT_THROW(rtl.distance(bad, ok), FatalError);
    EXPECT_THROW(rtl.distance(ok, bad), FatalError);
    EXPECT_THROW(rtl.align(seq::Sequence(""), ok), FatalError);
}

} // namespace
} // namespace gmx::hw
