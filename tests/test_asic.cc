/**
 * @file
 * Tests for the segmentation, area/power, and DSA models: the paper's
 * 22nm design point must be reproduced, and the scaling laws of §6.3
 * must hold.
 */

#include <gtest/gtest.h>

#include "hw/asic.hh"
#include "hw/dsa.hh"
#include "hw/segmentation.hh"

namespace gmx::hw {
namespace {

TEST(Segmentation, PaperDesignPointT32At1GHz)
{
    // Paper §7: T=32 at 1 GHz -> GMX-AC 2 cycles, GMX-TB 6 cycles.
    const auto ac = segmentGmxAc(32, 1.0);
    const auto tb = segmentGmxTb(32, 1.0);
    EXPECT_EQ(ac.stages, 2u);
    EXPECT_EQ(tb.stages, 6u);
    EXPECT_GE(ac.max_frequency_ghz, 1.0);
    EXPECT_GE(tb.max_frequency_ghz, 1.0);
}

TEST(Segmentation, SingleStageBelowCriticalFrequency)
{
    // At a low enough clock the array needs no segmentation at all.
    const auto ac = segmentGmxAc(32, 0.2);
    EXPECT_EQ(ac.stages, 1u);
    EXPECT_EQ(ac.seg_register_bits, 0u);
}

TEST(Segmentation, LatencyScalesLinearlyWithT)
{
    // Critical path ~ (2T-1) * Cd (paper §6.3).
    const auto t16 = segmentGmxAc(16, 1.0);
    const auto t64 = segmentGmxAc(64, 1.0);
    EXPECT_NEAR(t64.critical_path_ns / t16.critical_path_ns, 4.0, 0.6);
    EXPECT_GT(t64.stages, t16.stages);
}

TEST(Segmentation, CellDelaysAreSubNanosecond)
{
    EXPECT_GT(ccacDelayNs(), 0.0);
    EXPECT_LT(ccacDelayNs(), 0.2);
    EXPECT_GT(cctbDelayNs(), 0.0);
}

TEST(Asic, PaperAreaAndPower)
{
    // Paper Fig. 13: GMX-AC 0.008 mm2, GMX-TB 0.0108 mm2, total
    // 0.0216 mm2, 8.47 mW. The model must land within ~20%.
    const auto rep = gmxAsicReport(32, 1.0);
    EXPECT_NEAR(rep.ac.area_mm2, 0.008, 0.0016);
    EXPECT_NEAR(rep.tb.area_mm2, 0.0108, 0.0022);
    EXPECT_NEAR(rep.total_area_mm2, 0.0216, 0.004);
    EXPECT_NEAR(rep.total_power_mw, 8.47, 1.7);
    EXPECT_EQ(rep.ac_cycles, 2u);
    EXPECT_EQ(rep.tb_cycles, 6u);
}

TEST(Asic, AreaScalesQuadraticallyWithT)
{
    const auto t16 = gmxAsicReport(16, 1.0);
    const auto t32 = gmxAsicReport(32, 1.0);
    EXPECT_NEAR(t32.ac.area_mm2 / t16.ac.area_mm2, 4.0, 0.8);
}

TEST(Asic, SocFractionsMatchPaper)
{
    // GMX is 1.7% of SoC area and 2.1% of SoC power.
    const auto soc = socReport();
    EXPECT_NEAR(soc.gmx_area_fraction, 0.017, 0.005);
    EXPECT_NEAR(soc.gmx_power_fraction, 0.021, 0.007);
    EXPECT_NEAR(soc.total_area_mm2, 1.27, 0.15);
}

TEST(Dsa, GmxPeakGcupsMatchesTable2)
{
    // T=32 at 1 GHz computes 1024 DP-elements per cycle -> 1024 GCUPS.
    EXPECT_DOUBLE_EQ(gmxPeakGcups(32, 1.0), 1024.0);
    EXPECT_DOUBLE_EQ(gmxPeakGcups(16, 2.0), 512.0);
}

TEST(Dsa, WindowCountsMatchDriverGeometry)
{
    EXPECT_DOUBLE_EQ(windowsPerAlignment(96, 96, 32), 1.0);
    EXPECT_DOUBLE_EQ(windowsPerAlignment(96 + 64, 96, 32), 2.0);
    EXPECT_DOUBLE_EQ(windowsPerAlignment(10000, 96, 32), 1.0 + 155.0);
}

TEST(Dsa, GenasmFasterThanDarwinPerPe)
{
    // Fig. 15's ordering: GenASM vault beats Darwin GACT per PE on the
    // windowed edit-distance workload.
    const auto genasm = genasmVault(96);
    const auto darwin = darwinGact(96);
    const double g = alignmentsPerSecond(genasm, 10000, 96, 32);
    const double d = alignmentsPerSecond(darwin, 10000, 96, 32);
    EXPECT_GT(g, d);
    EXPECT_GT(g / d, 2.0);
}

TEST(Dsa, SurveyRowsArePresent)
{
    const auto rows = table2SurveyRows();
    EXPECT_GE(rows.size(), 10u);
    bool found_genasm = false;
    for (const auto &r : rows) {
        if (r.study.find("GenASM") != std::string::npos) {
            found_genasm = true;
            EXPECT_DOUBLE_EQ(r.pgcups_per_pe, 64.0);
        }
    }
    EXPECT_TRUE(found_genasm);
}

} // namespace
} // namespace gmx::hw
