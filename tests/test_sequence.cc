/**
 * @file
 * Unit tests for the sequence substrate: alphabet coding, sequences,
 * generators/mutators, datasets, FASTA and pair-file I/O.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sequence/alphabet.hh"
#include "sequence/dataset.hh"
#include "sequence/fasta.hh"
#include "sequence/generator.hh"
#include "sequence/sequence.hh"

namespace gmx::seq {
namespace {

TEST(Alphabet, RoundTrip)
{
    for (char c : {'A', 'C', 'G', 'T'})
        EXPECT_EQ(decodeBase(encodeBase(c)), c);
    EXPECT_EQ(encodeBase('a'), encodeBase('A'));
    EXPECT_EQ(decodeBase(encodeBase('N')), 'A'); // non-ACGT normalizes to A
}

TEST(Alphabet, Complement)
{
    EXPECT_EQ(complementCode(encodeBase('A')), encodeBase('T'));
    EXPECT_EQ(complementCode(encodeBase('C')), encodeBase('G'));
    EXPECT_EQ(complementCode(encodeBase('G')), encodeBase('C'));
    EXPECT_EQ(complementCode(encodeBase('T')), encodeBase('A'));
}

TEST(Sequence, AsciiAndCodesAgree)
{
    Sequence s("ACGTacgt");
    EXPECT_EQ(s.size(), 8u);
    EXPECT_EQ(s.str(), "ACGTACGT"); // normalized to uppercase
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_EQ(decodeBase(s.code(i)), s.at(i));
}

TEST(Sequence, FromCodes)
{
    Sequence s(std::vector<u8>{0, 1, 2, 3});
    EXPECT_EQ(s.str(), "ACGT");
}

TEST(Sequence, Substr)
{
    Sequence s("ACGTACGT");
    EXPECT_EQ(s.substr(2, 3).str(), "GTA");
    EXPECT_EQ(s.substr(6, 100).str(), "GT"); // clamped
    EXPECT_TRUE(s.substr(100, 5).empty());
}

TEST(Sequence, ReverseComplement)
{
    Sequence s("AACGT");
    EXPECT_EQ(s.reverseComplement().str(), "ACGTT");
    EXPECT_EQ(s.reverseComplement().reverseComplement(), s);
}

TEST(Generator, RandomSequenceLengthAndAlphabet)
{
    Generator gen(1);
    const Sequence s = gen.random(1000);
    EXPECT_EQ(s.size(), 1000u);
    size_t counts[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < s.size(); ++i)
        ++counts[s.code(i)];
    for (size_t c = 0; c < 4; ++c)
        EXPECT_GT(counts[c], 150u); // roughly uniform
}

TEST(Generator, ZeroErrorRateIsIdentity)
{
    Generator gen(2);
    const Sequence s = gen.random(500);
    EXPECT_EQ(gen.mutate(s, 0.0), s);
}

TEST(Generator, MutationRateIsRespected)
{
    Generator gen(3);
    const Sequence s = gen.random(20000);
    const Sequence mut = gen.mutate(s, 0.10);
    // Length change is bounded (insertions and deletions mostly cancel).
    EXPECT_NEAR(static_cast<double>(mut.size()), 20000.0, 500.0);
    // Hamming-style spot check: the sequences must differ substantially.
    size_t diff = 0;
    const size_t overlap = std::min(s.size(), mut.size());
    for (size_t i = 0; i < overlap; ++i)
        diff += s.at(i) != mut.at(i);
    EXPECT_GT(diff, 500u);
}

TEST(Generator, SubstitutionOnlyProfileKeepsLength)
{
    Generator gen(4);
    const Sequence s = gen.random(5000);
    ErrorProfile subs_only{1.0, 0.0, 0.0};
    const Sequence mut = gen.mutate(s, 0.2, subs_only);
    ASSERT_EQ(mut.size(), s.size());
    size_t diff = 0;
    for (size_t i = 0; i < s.size(); ++i)
        diff += s.at(i) != mut.at(i);
    // Every injected substitution changes the base.
    EXPECT_NEAR(static_cast<double>(diff), 1000.0, 150.0);
}

TEST(Generator, PairHasMutatedPattern)
{
    Generator gen(5);
    const SequencePair p = gen.pair(300, 0.05);
    EXPECT_EQ(p.text.size(), 300u);
    EXPECT_NEAR(static_cast<double>(p.pattern.size()), 300.0, 40.0);
}

TEST(Dataset, ShortDatasetsMatchPaperParameters)
{
    const auto sets = shortDatasets(3);
    ASSERT_EQ(sets.size(), 5u);
    const size_t lens[] = {100, 150, 200, 250, 300};
    for (size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(sets[i].length, lens[i]);
        EXPECT_DOUBLE_EQ(sets[i].error_rate, 0.05);
        EXPECT_EQ(sets[i].pairs.size(), 3u);
        for (const auto &p : sets[i].pairs)
            EXPECT_EQ(p.text.size(), lens[i]);
    }
}

TEST(Dataset, LongDatasetsMatchPaperParameters)
{
    const auto sets = longDatasets(2);
    ASSERT_EQ(sets.size(), 10u);
    for (size_t i = 0; i < sets.size(); ++i) {
        EXPECT_EQ(sets[i].length, (i + 1) * 1000);
        EXPECT_DOUBLE_EQ(sets[i].error_rate, 0.15);
    }
    const auto capped = longDatasets(2, 43, 4000);
    EXPECT_EQ(capped.size(), 4u);
}

TEST(Dataset, Deterministic)
{
    const auto a = makeDataset("x", 200, 0.05, 4, 7);
    const auto b = makeDataset("x", 200, 0.05, 4, 7);
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (size_t i = 0; i < a.pairs.size(); ++i) {
        EXPECT_EQ(a.pairs[i].text, b.pairs[i].text);
        EXPECT_EQ(a.pairs[i].pattern, b.pairs[i].pattern);
    }
}

TEST(Dataset, TotalBases)
{
    const auto ds = makeDataset("x", 100, 0.0, 5, 1);
    EXPECT_EQ(ds.totalTextBases(), 500u);
    EXPECT_EQ(ds.totalPatternBases(), 500u); // zero error: same length
}

TEST(Fasta, RoundTrip)
{
    std::vector<FastaRecord> recs = {
        {"read1", Sequence("ACGTACGTAC")},
        {"read2 with description", Sequence(std::string(150, 'G'))},
    };
    std::stringstream ss;
    writeFasta(ss, recs);
    const auto back = readFasta(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "read1");
    EXPECT_EQ(back[0].sequence, recs[0].sequence);
    EXPECT_EQ(back[1].sequence.size(), 150u); // line wrapping reassembled
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    std::stringstream ss("ACGT\n>late\nACGT\n");
    EXPECT_THROW(readFasta(ss), FatalError);
}

TEST(SeqPairs, RoundTrip)
{
    const auto ds = makeDataset("x", 50, 0.1, 3, 9);
    std::stringstream ss;
    writeSeqPairs(ss, ds.pairs);
    const auto back = readSeqPairs(ss);
    ASSERT_EQ(back.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(back[i].pattern, ds.pairs[i].pattern);
        EXPECT_EQ(back[i].text, ds.pairs[i].text);
    }
}

TEST(Fastq, RoundTrip)
{
    std::vector<FastqRecord> recs = {
        {"r1", Sequence("ACGT"), "IIII"},
        {"r2", Sequence("GGGTTT"), "ABCDEF"},
    };
    std::stringstream ss;
    writeFastq(ss, recs);
    const auto back = readFastq(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "r1");
    EXPECT_EQ(back[0].sequence.str(), "ACGT");
    EXPECT_EQ(back[1].quality, "ABCDEF");
    // Phred+33: 'I' = 40.
    EXPECT_DOUBLE_EQ(back[0].meanPhred(), 40.0);
}

TEST(Fastq, RejectsMalformedRecords)
{
    {
        std::stringstream ss("ACGT\n"); // missing '@'
        EXPECT_THROW(readFastq(ss), FatalError);
    }
    {
        std::stringstream ss("@r1\nACGT\n+\nII\n"); // length mismatch
        EXPECT_THROW(readFastq(ss), FatalError);
    }
    {
        std::stringstream ss("@r1\nACGT\n"); // truncated
        EXPECT_THROW(readFastq(ss), FatalError);
    }
    {
        std::stringstream ss("@r1\nACGT\nIIII\nIIII\n"); // missing '+'
        EXPECT_THROW(readFastq(ss), FatalError);
    }
}

TEST(Fasta, FileRoundTrip)
{
    const std::string path = "/tmp/gmx_test_roundtrip.fa";
    {
        std::ofstream out(path);
        writeFasta(out, {{"chr1", Sequence(std::string(100, 'A') +
                                           std::string(50, 'C'))}});
    }
    const auto recs = readFastaFile(path);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].sequence.size(), 150u);
    EXPECT_THROW(readFastaFile("/tmp/does_not_exist_gmx.fa"), FatalError);
}

TEST(SeqPairs, RejectsMalformedFiles)
{
    {
        std::stringstream ss(">AB\n>CD\n");
        EXPECT_THROW(readSeqPairs(ss), FatalError);
    }
    {
        std::stringstream ss("<AB\n");
        EXPECT_THROW(readSeqPairs(ss), FatalError);
    }
    {
        std::stringstream ss(">AB\n");
        EXPECT_THROW(readSeqPairs(ss), FatalError);
    }
    {
        std::stringstream ss("AB\n");
        EXPECT_THROW(readSeqPairs(ss), FatalError);
    }
}

} // namespace
} // namespace gmx::seq
