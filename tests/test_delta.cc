/**
 * @file
 * Tests for the delta encoding and the GMXD function: the boolean form is
 * exhaustively checked against the arithmetic Eq. 2, mirroring the paper's
 * own brute-force verification of its 18 input combinations.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "gmx/delta.hh"
#include "sequence/generator.hh"

namespace gmx::core {
namespace {

TEST(GmxDelta, BooleanFormMatchesEq2OnAll18Inputs)
{
    for (int a : {-1, 0, 1}) {
        for (int b : {-1, 0, 1}) {
            for (bool eq : {false, true}) {
                const int expected = gmxDeltaArith(a, b, eq);
                bool out_p = false, out_m = false;
                gmxDeltaBits(a > 0, a < 0, b > 0, b < 0, eq, out_p, out_m);
                const int got = out_p ? 1 : out_m ? -1 : 0;
                EXPECT_EQ(got, expected)
                    << "a=" << a << " b=" << b << " eq=" << eq;
                EXPECT_FALSE(out_p && out_m);
            }
        }
    }
}

TEST(GmxDelta, Eq2MatchesDirectDpRecurrence)
{
    // GMXD must reproduce the delta transformation of the scalar DP: for
    // random cell neighbourhoods, compare against recomputed distances.
    for (int dv_in : {-1, 0, 1}) {
        for (int dh_in : {-1, 0, 1}) {
            for (int eq : {0, 1}) {
                // Build explicit cell values around (i, j):
                //   D[i-1][j-1] = x; D[i][j-1] = x + dv_in;
                //   D[i-1][j] = x + dh_in.
                const int x = 10;
                const int left = x + dv_in;
                const int up = x + dh_in;
                const int here = std::min({up + 1, left + 1, x + (1 - eq)});
                const int dv_expect = here - up;
                const int dh_expect = here - left;
                EXPECT_EQ(gmxDeltaArith(dv_in, dh_in, eq == 1), dv_expect);
                EXPECT_EQ(gmxDeltaArith(dh_in, dv_in, eq == 1), dh_expect);
            }
        }
    }
}

TEST(DeltaVec, SetAtRoundTrip)
{
    DeltaVec v;
    v.set(0, 1);
    v.set(1, -1);
    v.set(2, 0);
    v.set(63, 1);
    EXPECT_EQ(v.at(0), 1);
    EXPECT_EQ(v.at(1), -1);
    EXPECT_EQ(v.at(2), 0);
    EXPECT_EQ(v.at(63), 1);
    v.set(0, -1); // overwrite
    EXPECT_EQ(v.at(0), -1);
}

TEST(DeltaVec, OnesAndSum)
{
    const DeltaVec v = DeltaVec::ones(32);
    EXPECT_EQ(v.sum(32), 32);
    EXPECT_EQ(v.sum(10), 10);
    DeltaVec w;
    w.set(0, 1);
    w.set(1, -1);
    w.set(5, -1);
    EXPECT_EQ(w.sum(32), -1);
}

TEST(DeltaVec, FromToInts)
{
    const std::vector<int> vals = {1, -1, 0, 0, 1, -1, 1};
    const DeltaVec v = DeltaVec::fromInts(vals);
    EXPECT_EQ(v.toInts(7), vals);
}

TEST(DeltaVec, LaneMask)
{
    EXPECT_EQ(DeltaVec::laneMask(1), 1u);
    EXPECT_EQ(DeltaVec::laneMask(32), 0xffffffffull);
    EXPECT_EQ(DeltaVec::laneMask(64), ~u64{0});
}

TEST(PackDelta, RoundTripAllLaneValues)
{
    seq::Generator gen(1);
    for (int rep = 0; rep < 50; ++rep) {
        DeltaVec v;
        for (unsigned r = 0; r < 32; ++r)
            v.set(r, static_cast<int>(gen.prng().below(3)) - 1);
        EXPECT_EQ(unpackDelta(packDelta(v, 32), 32), v);
    }
}

TEST(PackDelta, LayoutMatchesSpec)
{
    // Lane r occupies bits [2r, 2r+1]: plus in the low bit.
    DeltaVec v;
    v.set(0, 1);
    v.set(1, -1);
    v.set(3, 1);
    const u64 reg = packDelta(v, 4);
    EXPECT_EQ(reg, (u64{1} << 0) | (u64{2} << 2) | (u64{1} << 6));
}

TEST(DeltaEncoding, MatchesNwMatrixDeltas)
{
    // Encode the vertical deltas of a real DP column and check the
    // round-trip against the NW matrix (paper Fig. 2's encoding).
    seq::Generator gen(2);
    const auto p = gen.random(40);
    const auto t = gen.random(40);
    std::vector<i64> prev = align::nwMatrixRow(p, t, 0);
    for (size_t i = 1; i <= p.size(); ++i) {
        const auto row = align::nwMatrixRow(p, t, i);
        DeltaVec dv;
        for (size_t j = 0; j < row.size() && j < 64; ++j)
            dv.set(static_cast<unsigned>(j),
                   static_cast<int>(row[j] - prev[j]));
        for (size_t j = 0; j < row.size() && j < 64; ++j)
            EXPECT_EQ(dv.at(static_cast<unsigned>(j)), row[j] - prev[j]);
        prev = row;
    }
}

} // namespace
} // namespace gmx::core
