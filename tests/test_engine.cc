/**
 * @file
 * Tests for the alignment engine subsystem: the work-stealing pool, the
 * bounded submission queue with its backpressure policies, the adaptive
 * cascade, micro-batching, metrics, graceful shutdown — and the
 * robustness layer: typed Status results, input validation, per-request
 * deadlines, cooperative cancellation, and the memory-budget gate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "align/batch.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "engine/budget.hh"
#include "engine/cascade.hh"
#include "engine/engine.hh"
#include "engine/pool.hh"
#include "gmx/full.hh"
#include "sequence/dataset.hh"

namespace gmx::engine {
namespace {

using align::AlignResult;
using Outcome = Engine::AlignOutcome;
using std::chrono::milliseconds;

// ---------------------------------------------------------------- pool

TEST(Pool, ExecutesEverySubmittedTask)
{
    WorkStealingPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.shutdown();
    EXPECT_EQ(sum.load(), 5050);
    const auto stats = pool.stats();
    EXPECT_EQ(stats.submitted, 100u);
    EXPECT_EQ(stats.executed, 100u);
}

TEST(Pool, ShutdownDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    {
        WorkStealingPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(milliseconds(1));
                ran.fetch_add(1);
            });
        }
        // Destructor must finish all 50, not abandon the queue.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(Pool, ResolveWorkersClampsToAtLeastOne)
{
    EXPECT_GE(WorkStealingPool::resolveWorkers(0), 1u);
    EXPECT_EQ(WorkStealingPool::resolveWorkers(7), 7u);
}

TEST(Pool, RejectsSubmitAfterShutdown)
{
    WorkStealingPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), FatalError);
}

TEST(Pool, TrySubmitReturnsFalseAfterShutdown)
{
    WorkStealingPool pool(1);
    EXPECT_TRUE(pool.trySubmit([] {}));
    pool.shutdown();
    EXPECT_FALSE(pool.trySubmit([] {}));
}

TEST(Pool, StealsWhenOneWorkerIsPinned)
{
    // Pin worker deques with a blocker, then flood tasks: with 4 workers
    // fed round-robin, idle workers must steal from loaded deques.
    WorkStealingPool pool(4);
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    for (int i = 0; i < 2; ++i) {
        pool.submit([&release] {
            while (!release.load())
                std::this_thread::sleep_for(milliseconds(1));
        });
    }
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    // Wait for the flood to finish while two workers are still blocked.
    for (int spin = 0; spin < 5000 && ran.load() < 200; ++spin)
        std::this_thread::sleep_for(milliseconds(1));
    EXPECT_EQ(ran.load(), 200);
    EXPECT_GT(pool.stats().steals, 0u);
    release.store(true);
    pool.shutdown();
}

// ------------------------------------------------------------- cascade

TEST(Cascade, TiersAgreeWithNwGroundTruth)
{
    // Mixed divergence: low error hits the filter band, medium the
    // banded tier, high escalates to Full(GMX).
    seq::Generator gen(4242);
    CascadeConfig cfg;
    std::array<u64, kTierCount> seen{};
    for (double err : {0.01, 0.05, 0.12, 0.30, 0.45}) {
        for (int rep = 0; rep < 4; ++rep) {
            const auto pair = gen.pair(300, err);
            const auto outcome = cascadeAlign(pair, cfg, false);
            EXPECT_EQ(outcome.result.distance,
                      align::nwDistance(pair.pattern, pair.text))
                << "err=" << err << " rep=" << rep;
            ++seen[static_cast<unsigned>(outcome.tier)];
        }
    }
    // The mixed workload must actually exercise the escalation path.
    EXPECT_GT(seen[static_cast<unsigned>(Tier::Filter)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(Tier::Banded)] +
                  seen[static_cast<unsigned>(Tier::Full)],
              0u);
}

TEST(Cascade, CigarsIdenticalToFullGmx)
{
    seq::Generator gen(515);
    CascadeConfig cfg;
    for (double err : {0.02, 0.10, 0.25}) {
        for (int rep = 0; rep < 3; ++rep) {
            const auto pair = gen.pair(260, err);
            const auto outcome = cascadeAlign(pair, cfg, true);
            const auto full = core::fullGmxAlign(pair.pattern, pair.text);
            EXPECT_EQ(outcome.result.distance, full.distance);
            EXPECT_EQ(outcome.result.cigar, full.cigar)
                << "tier=" << tierName(outcome.tier) << " err=" << err;
            const auto check = align::verifyResult(pair.pattern, pair.text,
                                                   outcome.result);
            EXPECT_TRUE(check.ok) << check.error;
        }
    }
}

TEST(Cascade, HandlesEmptyAndSkewedPairs)
{
    CascadeConfig cfg;
    seq::SequencePair empty_pattern{seq::Sequence(""),
                                    seq::Sequence("ACGTACGT")};
    auto out = cascadeAlign(empty_pattern, cfg, true);
    EXPECT_EQ(out.result.distance, 8);
    EXPECT_EQ(out.tier, Tier::Full);

    // Length skew larger than the default budget must still be exact.
    seq::Generator gen(99);
    const auto text = gen.random(400);
    seq::SequencePair skewed{text.substr(0, 120), text};
    auto skew_out = cascadeAlign(skewed, cfg, false);
    EXPECT_EQ(skew_out.result.distance,
              align::nwDistance(skewed.pattern, skewed.text));
}

TEST(Cascade, DisabledRoutesEverythingFull)
{
    seq::Generator gen(7);
    CascadeConfig cfg;
    cfg.enabled = false;
    const auto pair = gen.pair(150, 0.01);
    EXPECT_EQ(cascadeAlign(pair, cfg, false).tier, Tier::Full);
}

TEST(Cascade, ExpiredTokenUnwindsWithDeadlineExceeded)
{
    seq::Generator gen(606);
    const auto pair = gen.pair(4000, 0.35);
    const CancelToken expired =
        CancelToken{}.withDeadline(CancelToken::Clock::now());
    try {
        cascadeAlign(pair, CascadeConfig{}, true, expired);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), StatusCode::DeadlineExceeded);
    }
}

// -------------------------------------------------------------- engine

TEST(Engine, OrderedResultsUnderConcurrency)
{
    const auto ds = seq::makeDataset("eng", 220, 0.08, 40, 2026);
    EngineConfig cfg;
    cfg.workers = 4;
    Engine engine(cfg);
    const auto results = engine.alignAll(ds.pairs, true);
    ASSERT_EQ(results.size(), ds.pairs.size());
    for (size_t i = 0; i < ds.pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwDistance(ds.pairs[i].pattern, ds.pairs[i].text))
            << i;
        EXPECT_TRUE(results[i]->has_cigar);
    }
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.submitted, ds.pairs.size());
    EXPECT_EQ(snap.completed, ds.pairs.size());
    EXPECT_EQ(snap.queue_depth, 0u);
}

TEST(Engine, CustomAlignerAndTypedFailure)
{
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(11);
    const auto pair = gen.pair(100, 0.05);

    auto good = engine.submit(
        pair, align::PairAligner([](const seq::SequencePair &p) {
            return core::fullGmxAlign(p.pattern, p.text);
        }));
    auto good_res = good.get();
    ASSERT_TRUE(good_res.ok());
    EXPECT_EQ(good_res->distance,
              align::nwDistance(pair.pattern, pair.text));

    // A FatalError inside an aligner becomes InvalidInput; an arbitrary
    // exception becomes Internal. Neither ever escapes the future.
    auto bad = engine.submit(
        pair, align::PairAligner([](const seq::SequencePair &) -> AlignResult {
            GMX_FATAL("engine bomb");
        }));
    auto bad_res = bad.get();
    ASSERT_FALSE(bad_res.ok());
    EXPECT_EQ(bad_res.code(), StatusCode::InvalidInput);

    auto ugly = engine.submit(
        pair, align::PairAligner([](const seq::SequencePair &) -> AlignResult {
            throw std::runtime_error("spurious");
        }));
    EXPECT_EQ(ugly.get().code(), StatusCode::Internal);
    EXPECT_EQ(engine.metrics().failed, 2u);
}

TEST(Engine, BlockPolicyIsLossless)
{
    // Tiny queue + slow aligner: submitters must block, never drop.
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 2;
    cfg.backpressure = Backpressure::Block;
    cfg.microbatch_max = 1;
    Engine engine(cfg);
    const align::PairAligner slow = [](const seq::SequencePair &) {
        std::this_thread::sleep_for(milliseconds(2));
        return AlignResult{0, {}, false};
    };
    seq::Generator gen(13);
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 30; ++i)
        futures.push_back(engine.submit(gen.pair(20, 0.0), slow));
    for (auto &f : futures) {
        auto res = f.get();
        ASSERT_TRUE(res.ok());
        EXPECT_EQ(res->distance, 0);
    }
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.completed, 30u);
    EXPECT_EQ(snap.rejected, 0u);
    EXPECT_EQ(snap.shed, 0u);
}

TEST(Engine, RejectPolicyFailsFastWithOverloaded)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.backpressure = Backpressure::Reject;
    cfg.microbatch_max = 1;
    Engine engine(cfg);

    // Stall the single worker so the queue genuinely fills.
    std::atomic<bool> release{false};
    const align::PairAligner gate = [&release](const seq::SequencePair &) {
        while (!release.load())
            std::this_thread::sleep_for(milliseconds(1));
        return AlignResult{0, {}, false};
    };
    seq::Generator gen(17);
    std::vector<std::future<Outcome>> futures;
    size_t rejections = 0;
    for (int i = 0; i < 20; ++i) {
        auto f = engine.submit(gen.pair(20, 0.0), gate);
        // A rejected request's future is ready immediately.
        if (f.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
            auto res = f.get();
            if (!res.ok()) {
                EXPECT_EQ(res.code(), StatusCode::Overloaded);
                ++rejections;
                continue;
            }
        }
        futures.push_back(std::move(f));
    }
    EXPECT_GT(rejections, 0u);
    release.store(true);
    for (auto &f : futures) {
        auto res = f.get();
        ASSERT_TRUE(res.ok());
        EXPECT_EQ(res->distance, 0);
    }
    EXPECT_EQ(engine.metrics().rejected, rejections);
}

TEST(Engine, ShedOldestDropsTheOldestRequest)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    cfg.backpressure = Backpressure::ShedOldest;
    cfg.microbatch_max = 1;
    Engine engine(cfg);

    std::atomic<bool> release{false};
    const align::PairAligner gate = [&release](const seq::SequencePair &) {
        while (!release.load())
            std::this_thread::sleep_for(milliseconds(1));
        return AlignResult{0, {}, false};
    };
    seq::Generator gen(19);
    std::vector<std::future<Outcome>> futures;
    for (int i = 0; i < 12; ++i)
        futures.push_back(engine.submit(gen.pair(20, 0.0), gate));
    release.store(true);

    size_t shed = 0, served = 0;
    bool last_served = false;
    for (size_t i = 0; i < futures.size(); ++i) {
        auto res = futures[i].get();
        if (res.ok()) {
            ++served;
            last_served = i + 1 == futures.size();
        } else {
            EXPECT_EQ(res.code(), StatusCode::Overloaded);
            ++shed;
        }
    }
    EXPECT_GT(shed, 0u);
    EXPECT_GT(served, 0u);
    EXPECT_EQ(shed + served, 12u);
    EXPECT_EQ(engine.metrics().shed, shed);
    // The newest submission must survive shedding (oldest goes first).
    EXPECT_TRUE(last_served);
}

TEST(Engine, MicrobatchesSmallRequests)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.microbatch_max = 8;
    cfg.microbatch_bases = 4096;
    Engine engine(cfg);
    seq::Generator gen(23);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 64; ++i)
        pairs.push_back(gen.pair(60, 0.05));
    // Burst-submit, then drain: with a single worker the queue backs up,
    // so the dispatcher has runs of small requests available to fuse.
    const auto results = engine.alignAll(pairs, false);
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok());
        EXPECT_EQ(results[i]->distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text));
    }
    const auto snap = engine.metrics();
    EXPECT_GT(snap.microbatches, 0u);
    EXPECT_GT(snap.batched_pairs, snap.microbatches);
}

TEST(Engine, GracefulStopFulfillsInFlightWork)
{
    std::vector<std::future<Outcome>> futures;
    const auto ds = seq::makeDataset("stop", 200, 0.10, 24, 31);
    {
        EngineConfig cfg;
        cfg.workers = 2;
        Engine engine(cfg);
        for (const auto &pair : ds.pairs)
            futures.push_back(engine.submit(pair, true));
        // Destructor stops the engine with most requests still queued.
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        const auto res = futures[i].get(); // must not hang or throw
        ASSERT_TRUE(res.ok());
        EXPECT_EQ(res->distance,
                  align::nwDistance(ds.pairs[i].pattern, ds.pairs[i].text));
    }
}

TEST(Engine, SubmitAfterStopReturnsEngineStopped)
{
    Engine engine(EngineConfig{});
    engine.stop();
    seq::Generator gen(37);
    auto f = engine.submit(gen.pair(50, 0.0), true);
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().code(), StatusCode::EngineStopped);
}

TEST(Engine, MetricsSnapshotSerializesToJson)
{
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(41);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 10; ++i)
        pairs.push_back(gen.pair(120, 0.05));
    engine.alignAll(pairs, false);
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.completed, 10u);
    EXPECT_GT(snap.latency_count, 0u);
    EXPECT_GT(snap.latency_mean_us, 0.0);
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"submitted\":10"), std::string::npos);
    EXPECT_NE(json.find("\"tiers\":{"), std::string::npos);
    EXPECT_NE(json.find("\"filter\":"), std::string::npos);
    EXPECT_NE(json.find("\"steals\":"), std::string::npos);
    EXPECT_NE(json.find("\"deadline_missed\":0"), std::string::npos);
    EXPECT_NE(json.find("\"memory\":{"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

// ----------------------------------------------------- input validation

TEST(EngineValidation, EmptyPatternRejected)
{
    Engine engine(EngineConfig{});
    auto f = engine.submit(
        seq::SequencePair{seq::Sequence(""), seq::Sequence("ACGT")}, true);
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().code(), StatusCode::InvalidInput);
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.invalid, 1u);
    EXPECT_EQ(snap.submitted, 0u); // never entered the queue
}

TEST(EngineValidation, EmptyTextRejected)
{
    Engine engine(EngineConfig{});
    auto f = engine.submit(
        seq::SequencePair{seq::Sequence("ACGT"), seq::Sequence("")}, true);
    EXPECT_EQ(f.get().code(), StatusCode::InvalidInput);
}

TEST(EngineValidation, NonAcgtRejectedWhenConfigured)
{
    EngineConfig cfg;
    cfg.limits.reject_non_acgt = true;
    Engine engine(cfg);
    auto bad = engine.submit(
        seq::SequencePair{seq::Sequence("ACGNNACG"), seq::Sequence("ACGT")},
        true);
    auto res = bad.get();
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.code(), StatusCode::InvalidInput);
    // Clean ACGT (either case) still passes.
    auto good = engine.submit(
        seq::SequencePair{seq::Sequence("acgt"), seq::Sequence("ACGT")},
        true);
    EXPECT_TRUE(good.get().ok());
}

TEST(EngineValidation, MaxPairBasesRejected)
{
    EngineConfig cfg;
    cfg.limits.max_pair_bases = 100;
    Engine engine(cfg);
    seq::Generator gen(43);
    auto f = engine.submit(gen.pair(80, 0.0), true); // 160 bases total
    EXPECT_EQ(f.get().code(), StatusCode::InvalidInput);
    auto ok = engine.submit(gen.pair(40, 0.0), true);
    EXPECT_TRUE(ok.get().ok());
}

TEST(EngineValidation, MaxLengthSkewRejected)
{
    EngineConfig cfg;
    cfg.limits.max_length_skew = 10;
    Engine engine(cfg);
    seq::Generator gen(47);
    const auto text = gen.random(100);
    auto f = engine.submit(seq::SequencePair{text.substr(0, 50), text},
                           false);
    EXPECT_EQ(f.get().code(), StatusCode::InvalidInput);
}

// ------------------------------------------- deadlines and cancellation

TEST(EngineDeadline, ExpiredDeadlineFailsFastWithoutBlockingSiblings)
{
    // Acceptance check: a 100 kbp Full(GMX)-bound pair whose deadline has
    // already expired must fail in well under 50 ms — never run its
    // quadratic kernel — while sibling requests complete normally.
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(53);
    const auto huge = gen.pair(100000, 0.30);
    std::vector<seq::SequencePair> siblings;
    for (int i = 0; i < 8; ++i)
        siblings.push_back(gen.pair(200, 0.05));

    SubmitOptions opts;
    opts.want_cigar = false;
    opts.timeout = std::chrono::nanoseconds(1); // expired on arrival
    const auto t0 = std::chrono::steady_clock::now();
    auto doomed = engine.submit(huge, std::move(opts));
    std::vector<std::future<Outcome>> sib;
    for (const auto &p : siblings)
        sib.push_back(engine.submit(p, false));

    auto res = doomed.get();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.code(), StatusCode::DeadlineExceeded);
    EXPECT_LT(elapsed, milliseconds(50));

    for (size_t i = 0; i < sib.size(); ++i) {
        auto s = sib[i].get();
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(s->distance, align::nwDistance(siblings[i].pattern,
                                                 siblings[i].text));
    }
    EXPECT_EQ(engine.metrics().deadline_missed, 1u);
}

TEST(EngineDeadline, MidKernelDeadlineUnwindsCooperatively)
{
    // A deadline short enough to expire while the kernel is running: the
    // cancel gate inside the tile loops must unwind the request.
    EngineConfig cfg;
    cfg.workers = 1;
    Engine engine(cfg);
    seq::Generator gen(59);
    const auto big = gen.pair(30000, 0.40);
    SubmitOptions opts;
    opts.want_cigar = false;
    opts.timeout = milliseconds(5);
    auto f = engine.submit(big, std::move(opts));
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_EQ(f.get().code(), StatusCode::DeadlineExceeded);
}

TEST(EngineDeadline, GenerousDeadlineDoesNotPerturbResults)
{
    EngineConfig cfg;
    cfg.workers = 2;
    Engine engine(cfg);
    seq::Generator gen(61);
    const auto pair = gen.pair(300, 0.10);
    SubmitOptions opts;
    opts.timeout = std::chrono::seconds(60);
    auto f = engine.submit(pair, std::move(opts));
    auto res = f.get();
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->distance, align::nwDistance(pair.pattern, pair.text));
    EXPECT_EQ(engine.metrics().deadline_missed, 0u);
}

TEST(EngineCancel, SourceCancelsQueuedAndRunningRequests)
{
    EngineConfig cfg;
    cfg.workers = 1;
    Engine engine(cfg);
    seq::Generator gen(67);
    CancelSource source;

    // Already-cancelled token: fails fast at dispatch.
    source.cancel();
    SubmitOptions pre;
    pre.want_cigar = false;
    pre.cancel = source.token();
    auto f1 = engine.submit(gen.pair(500, 0.10), std::move(pre));
    EXPECT_EQ(f1.get().code(), StatusCode::Cancelled);

    // Cancel mid-run: a large pair starts, then the source fires.
    CancelSource mid;
    SubmitOptions opts;
    opts.want_cigar = false;
    opts.cancel = mid.token();
    auto f2 = engine.submit(gen.pair(50000, 0.35), std::move(opts));
    std::this_thread::sleep_for(milliseconds(5));
    mid.cancel();
    ASSERT_EQ(f2.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_EQ(f2.get().code(), StatusCode::Cancelled);
    EXPECT_EQ(engine.metrics().cancelled, 2u);
}

// -------------------------------------------------------- memory budget

TEST(EngineBudget, DowngradesTracebackUnderPressureAndStaysExact)
{
    // Full(GMX) traceback on a 3000-bp pair wants ~283 KB of tile edges;
    // a 160 KB budget refuses that but admits two concurrent Hirschberg
    // footprints (~54 KB each), so every request downgrades — and stays
    // exact.
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.memory_budget_bytes = 160 * 1024;
    Engine engine(cfg);
    seq::Generator gen(71);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 6; ++i)
        pairs.push_back(gen.pair(3000, 0.05));
    const auto results = engine.alignAll(pairs, true);
    for (size_t i = 0; i < pairs.size(); ++i) {
        ASSERT_TRUE(results[i].ok()) << results[i].status().toString();
        EXPECT_EQ(results[i]->distance,
                  align::nwDistance(pairs[i].pattern, pairs[i].text));
        EXPECT_TRUE(results[i]->has_cigar);
    }
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.downgraded, pairs.size());
    EXPECT_EQ(snap.tier_hits[static_cast<unsigned>(Tier::Downgraded)],
              pairs.size());
    EXPECT_GT(snap.mem_reserved_peak, 0u);
    EXPECT_LE(snap.mem_reserved_peak, snap.mem_budget_bytes);
    EXPECT_EQ(snap.mem_reserved_bytes, 0u); // all reservations released
}

TEST(EngineBudget, RejectsWithResourceExhaustedWhenDowngradeDisabled)
{
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.memory_budget_bytes = 64 * 1024;
    cfg.downgrade_under_pressure = false;
    Engine engine(cfg);
    seq::Generator gen(73);
    auto f = engine.submit(gen.pair(3000, 0.05), true);
    auto res = f.get();
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.code(), StatusCode::ResourceExhausted);
    const auto snap = engine.metrics();
    EXPECT_EQ(snap.resource_rejected, 1u);
    EXPECT_LE(snap.mem_reserved_peak, snap.mem_budget_bytes);
}

TEST(EngineBudget, DistanceOnlyRequestsHaveNoDowngradeTier)
{
    // Distance-only footprints are already frugal; when even they exceed
    // a (pathologically small) budget, the request must fail typed.
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.memory_budget_bytes = 1024;
    Engine engine(cfg);
    seq::Generator gen(79);
    auto f = engine.submit(gen.pair(3000, 0.05), false);
    EXPECT_EQ(f.get().code(), StatusCode::ResourceExhausted);
    // Small pairs still fit and complete.
    auto ok = engine.submit(gen.pair(40, 0.0), false);
    EXPECT_TRUE(ok.get().ok());
}

TEST(EngineBudget, EstimatorsAreMonotonicAndTileAware)
{
    EXPECT_EQ(fullGmxTracebackBytes(0, 100, 32), 100u);
    // 3000x3000 at T=32: 94*94 tile edges of 32 bytes + ops bytes.
    EXPECT_EQ(fullGmxTracebackBytes(3000, 3000, 32),
              94u * 94u * kTileEdgeBytes + 6000u);
    EXPECT_LT(hirschbergBytes(3000, 3000),
              fullGmxTracebackBytes(3000, 3000, 32));
    EXPECT_LT(distanceOnlyBytes(3000, 3000, 32),
              fullGmxTracebackBytes(3000, 3000, 32));
    EXPECT_GT(fullGmxTracebackBytes(6000, 6000, 32),
              fullGmxTracebackBytes(3000, 3000, 32));
}

// ------------------------------------------------- batchAlign rewiring

TEST(BatchOnEngine, MatchesGroundTruthAndKeepsOrder)
{
    const auto ds = seq::makeDataset("be", 250, 0.08, 30, 47);
    const align::PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    const auto results = align::batchAlign(ds.pairs, aligner, 4);
    ASSERT_EQ(results.size(), ds.pairs.size());
    for (size_t i = 0; i < ds.pairs.size(); ++i) {
        EXPECT_EQ(results[i].distance,
                  align::nwDistance(ds.pairs[i].pattern, ds.pairs[i].text))
            << i;
    }
}

TEST(BatchOnEngine, NestedBatchDoesNotDeadlock)
{
    // batchAlign from inside a pool task: the caller participates in its
    // own batch, so a saturated shared pool cannot deadlock it.
    const auto inner_ds = seq::makeDataset("nest", 80, 0.05, 6, 53);
    const align::PairAligner aligner = [](const seq::SequencePair &p) {
        return core::fullGmxAlign(p.pattern, p.text);
    };
    std::atomic<bool> ok{false};
    sharedPool().submit([&] {
        const auto res = align::batchAlign(inner_ds.pairs, aligner, 4);
        ok.store(res.size() == inner_ds.pairs.size());
    });
    for (int spin = 0; spin < 10000 && !ok.load(); ++spin)
        std::this_thread::sleep_for(milliseconds(1));
    EXPECT_TRUE(ok.load());
}

} // namespace
} // namespace gmx::engine
