/**
 * @file
 * Tests for the Bitap aligner (GenASM's underlying algorithm).
 */

#include <gtest/gtest.h>

#include "align/bitap.hh"
#include "align/nw.hh"
#include "align/verify.hh"
#include "common/logging.hh"
#include "test_util.hh"

namespace gmx::align {
namespace {

using seq::Sequence;

TEST(BitapDistance, HandComputedCases)
{
    EXPECT_EQ(bitapDistance(Sequence("GATT"), Sequence("GCAT"), 4), 2);
    EXPECT_EQ(bitapDistance(Sequence("ACGT"), Sequence("ACGT"), 0), 0);
    EXPECT_EQ(bitapDistance(Sequence("ACGT"), Sequence("ACGA"), 0),
              kNoAlignment);
    EXPECT_EQ(bitapDistance(Sequence("ACGT"), Sequence("ACGA"), 1), 1);
}

class BitapGridTest : public ::testing::TestWithParam<test::PairParams>
{
};

TEST_P(BitapGridTest, DistanceMatchesNwWithSufficientK)
{
    const auto &params = GetParam();
    if (params.length > 300)
        return; // Bitap is O(nmk); keep the suite fast
    const auto pair = test::makePair(params);
    const i64 true_dist = nwDistance(pair.pattern, pair.text);
    EXPECT_EQ(bitapDistance(pair.pattern, pair.text, true_dist + 3),
              true_dist);
}

TEST_P(BitapGridTest, AutoAlignVerifies)
{
    const auto &params = GetParam();
    if (params.length > 300)
        return;
    const auto pair = test::makePair(params);
    const auto res = bitapAlignAuto(pair.pattern, pair.text);
    EXPECT_EQ(res.distance, nwDistance(pair.pattern, pair.text));
    const auto check = verifyResult(pair.pattern, pair.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BitapGridTest, ::testing::ValuesIn(test::standardGrid()),
    [](const auto &info) { return test::paramName(info.param); });

TEST(Bitap, KSensitivity)
{
    // The paper stresses that Bitap's cost is sensitive to k: the distance
    // query must fail for k below the true distance and succeed at it.
    seq::Generator gen(91);
    const auto pair = gen.pair(120, 0.1);
    const i64 true_dist = nwDistance(pair.pattern, pair.text);
    ASSERT_GT(true_dist, 0);
    EXPECT_EQ(bitapDistance(pair.pattern, pair.text, true_dist - 1),
              kNoAlignment);
    EXPECT_EQ(bitapDistance(pair.pattern, pair.text, true_dist), true_dist);
}

TEST(Bitap, MultiWordPatterns)
{
    // Patterns longer than 64 need multi-word shifts with carry.
    seq::Generator gen(93);
    for (size_t n : {64u, 65u, 100u, 127u, 128u, 130u}) {
        const auto p = gen.random(n);
        const auto t = gen.mutate(p, 0.05);
        const i64 true_dist = nwDistance(p, t);
        EXPECT_EQ(bitapDistance(p, t, true_dist + 2), true_dist)
            << "n=" << n;
    }
}

TEST(Bitap, EmptySequences)
{
    EXPECT_EQ(bitapDistance(Sequence(""), Sequence("AC"), 3), 2);
    EXPECT_EQ(bitapDistance(Sequence(""), Sequence("AC"), 1), kNoAlignment);
    EXPECT_EQ(bitapDistance(Sequence("AC"), Sequence(""), 2), 2);
    const auto res = bitapAlign(Sequence("AC"), Sequence(""), 2);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.cigar.str(), "II");
}

TEST(Bitap, RejectsNegativeK)
{
    EXPECT_THROW(bitapDistance(Sequence("A"), Sequence("A"), -1), FatalError);
    EXPECT_THROW(bitapAlign(Sequence("A"), Sequence("A"), -2), FatalError);
}

TEST(Bitap, CountsScaleWithK)
{
    // The 7k-per-character cost model from the paper: doubling k roughly
    // doubles the ALU work.
    seq::Generator gen(97);
    const auto pair = gen.pair(60, 0.05);
    KernelCounts k8, k16;
    KernelContext ctx8(CancelToken{}, &k8);
    KernelContext ctx16(CancelToken{}, &k16);
    bitapDistance(pair.pattern, pair.text, 8, ctx8);
    bitapDistance(pair.pattern, pair.text, 16, ctx16);
    EXPECT_GT(k16.alu, k8.alu * 3 / 2);
}

} // namespace
} // namespace gmx::align
