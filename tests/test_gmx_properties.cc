/**
 * @file
 * Metamorphic and cross-configuration property tests for the GMX
 * aligners: invariances that must hold for any correct edit-distance
 * implementation, swept over tile sizes and error regimes.
 */

#include <gtest/gtest.h>

#include "align/nw.hh"
#include "align/verify.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"
#include "test_util.hh"

namespace gmx::core {
namespace {

using seq::Sequence;

struct PropParams
{
    unsigned tile;
    size_t length;
    double error;
    u64 seed;
};

std::string
propName(const PropParams &p)
{
    return "T" + std::to_string(p.tile) + "_len" +
           std::to_string(p.length) + "_err" +
           std::to_string(static_cast<int>(p.error * 100));
}

std::vector<PropParams>
propGrid()
{
    std::vector<PropParams> grid;
    for (unsigned tile : {8u, 32u, 64u}) {
        for (size_t len : {50u, 200u, 500u}) {
            for (double err : {0.02, 0.15}) {
                grid.push_back({tile, len, err,
                                9000 + tile + len +
                                    static_cast<u64>(err * 100)});
            }
        }
    }
    return grid;
}

class GmxPropertyTest : public ::testing::TestWithParam<PropParams>
{
  protected:
    seq::SequencePair
    pair() const
    {
        seq::Generator gen(GetParam().seed);
        return gen.pair(GetParam().length, GetParam().error);
    }
};

TEST_P(GmxPropertyTest, SymmetryOfDistance)
{
    // Edit distance is symmetric; swapping pattern and text transposes
    // the matrix but must not change the distance.
    const auto p = pair();
    EXPECT_EQ(fullGmxDistance(p.pattern, p.text, GetParam().tile),
              fullGmxDistance(p.text, p.pattern, GetParam().tile));
}

TEST_P(GmxPropertyTest, ReverseInvariance)
{
    // d(reverse(a), reverse(b)) == d(a, b).
    const auto p = pair();
    const Sequence rp(std::string(p.pattern.str().rbegin(),
                                  p.pattern.str().rend()));
    const Sequence rt(std::string(p.text.str().rbegin(),
                                  p.text.str().rend()));
    EXPECT_EQ(fullGmxDistance(rp, rt, GetParam().tile),
              fullGmxDistance(p.pattern, p.text, GetParam().tile));
}

TEST_P(GmxPropertyTest, ReverseComplementInvariance)
{
    // Watson-Crick: d(rc(a), rc(b)) == d(a, b).
    const auto p = pair();
    EXPECT_EQ(fullGmxDistance(p.pattern.reverseComplement(),
                              p.text.reverseComplement(),
                              GetParam().tile),
              fullGmxDistance(p.pattern, p.text, GetParam().tile));
}

TEST_P(GmxPropertyTest, ConcatenationSubadditivity)
{
    // d(a1+a2, b1+b2) <= d(a1, b1) + d(a2, b2).
    seq::Generator gen(GetParam().seed + 1);
    const auto p1 = gen.pair(GetParam().length / 2, GetParam().error);
    const auto p2 = gen.pair(GetParam().length / 2, GetParam().error);
    const Sequence cat_p(p1.pattern.str() + p2.pattern.str());
    const Sequence cat_t(p1.text.str() + p2.text.str());
    const unsigned t = GetParam().tile;
    EXPECT_LE(fullGmxDistance(cat_p, cat_t, t),
              fullGmxDistance(p1.pattern, p1.text, t) +
                  fullGmxDistance(p2.pattern, p2.text, t));
}

TEST_P(GmxPropertyTest, SelfDistanceIsZero)
{
    const auto p = pair();
    EXPECT_EQ(fullGmxDistance(p.text, p.text, GetParam().tile), 0);
    const auto res = fullGmxAlign(p.text, p.text, GetParam().tile);
    EXPECT_EQ(res.cigar.editDistance(), 0u);
}

TEST_P(GmxPropertyTest, SingleEditCostsOne)
{
    const auto p = pair();
    if (p.text.size() < 3)
        return;
    // Substitute one base in the middle.
    std::string s = p.text.str();
    const size_t pos = s.size() / 2;
    s[pos] = s[pos] == 'A' ? 'C' : 'A';
    EXPECT_EQ(fullGmxDistance(Sequence(s), p.text, GetParam().tile), 1);
    // Delete one base.
    std::string d = p.text.str();
    d.erase(pos, 1);
    EXPECT_EQ(fullGmxDistance(Sequence(d), p.text, GetParam().tile), 1);
}

TEST_P(GmxPropertyTest, AllThreeAlignersAgreeWithReference)
{
    const auto p = pair();
    const i64 expect = align::nwDistance(p.pattern, p.text);
    const unsigned t = GetParam().tile;
    EXPECT_EQ(fullGmxDistance(p.pattern, p.text, t), expect);
    EXPECT_EQ(bandedGmxAuto(p.pattern, p.text, false, 64, t).distance,
              expect);
    const auto win = windowedGmxAlign(p.pattern, p.text, t,
                                      {3 * static_cast<size_t>(t),
                                       static_cast<size_t>(t)});
    EXPECT_GE(win.distance, expect);
    EXPECT_TRUE(align::verifyResult(p.pattern, p.text, win).ok);
}

TEST_P(GmxPropertyTest, TracebackDistanceMatchesScoreOnly)
{
    const auto p = pair();
    const unsigned t = GetParam().tile;
    const auto res = fullGmxAlign(p.pattern, p.text, t);
    EXPECT_EQ(res.distance, fullGmxDistance(p.pattern, p.text, t));
    const auto check = align::verifyResult(p.pattern, p.text, res);
    EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GmxPropertyTest, ::testing::ValuesIn(propGrid()),
    [](const auto &info) { return propName(info.param); });

} // namespace
} // namespace gmx::core
