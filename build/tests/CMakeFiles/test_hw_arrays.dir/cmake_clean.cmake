file(REMOVE_RECURSE
  "CMakeFiles/test_hw_arrays.dir/test_hw_arrays.cc.o"
  "CMakeFiles/test_hw_arrays.dir/test_hw_arrays.cc.o.d"
  "test_hw_arrays"
  "test_hw_arrays.pdb"
  "test_hw_arrays[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
