# Empty dependencies file for test_hw_arrays.
# This may be replaced when dependencies are built.
