file(REMOVE_RECURSE
  "CMakeFiles/test_genasm_model.dir/test_genasm_model.cc.o"
  "CMakeFiles/test_genasm_model.dir/test_genasm_model.cc.o.d"
  "test_genasm_model"
  "test_genasm_model.pdb"
  "test_genasm_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genasm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
