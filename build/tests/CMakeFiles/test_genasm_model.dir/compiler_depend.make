# Empty compiler generated dependencies file for test_genasm_model.
# This may be replaced when dependencies are built.
