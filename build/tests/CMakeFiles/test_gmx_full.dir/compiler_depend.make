# Empty compiler generated dependencies file for test_gmx_full.
# This may be replaced when dependencies are built.
