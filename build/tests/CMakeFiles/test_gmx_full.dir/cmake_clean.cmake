file(REMOVE_RECURSE
  "CMakeFiles/test_gmx_full.dir/test_gmx_full.cc.o"
  "CMakeFiles/test_gmx_full.dir/test_gmx_full.cc.o.d"
  "test_gmx_full"
  "test_gmx_full.pdb"
  "test_gmx_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmx_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
