file(REMOVE_RECURSE
  "CMakeFiles/test_gmx_banded.dir/test_gmx_banded.cc.o"
  "CMakeFiles/test_gmx_banded.dir/test_gmx_banded.cc.o.d"
  "test_gmx_banded"
  "test_gmx_banded.pdb"
  "test_gmx_banded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmx_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
