# Empty dependencies file for test_gmx_banded.
# This may be replaced when dependencies are built.
