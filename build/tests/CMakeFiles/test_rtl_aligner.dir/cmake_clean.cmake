file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_aligner.dir/test_rtl_aligner.cc.o"
  "CMakeFiles/test_rtl_aligner.dir/test_rtl_aligner.cc.o.d"
  "test_rtl_aligner"
  "test_rtl_aligner.pdb"
  "test_rtl_aligner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_aligner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
