# Empty dependencies file for test_rtl_aligner.
# This may be replaced when dependencies are built.
