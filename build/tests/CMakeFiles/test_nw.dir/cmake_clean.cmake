file(REMOVE_RECURSE
  "CMakeFiles/test_nw.dir/test_nw.cc.o"
  "CMakeFiles/test_nw.dir/test_nw.cc.o.d"
  "test_nw"
  "test_nw.pdb"
  "test_nw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
