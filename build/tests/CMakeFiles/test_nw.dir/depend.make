# Empty dependencies file for test_nw.
# This may be replaced when dependencies are built.
