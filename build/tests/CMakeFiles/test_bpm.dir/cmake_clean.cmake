file(REMOVE_RECURSE
  "CMakeFiles/test_bpm.dir/test_bpm.cc.o"
  "CMakeFiles/test_bpm.dir/test_bpm.cc.o.d"
  "test_bpm"
  "test_bpm.pdb"
  "test_bpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
