# Empty dependencies file for test_bpm.
# This may be replaced when dependencies are built.
