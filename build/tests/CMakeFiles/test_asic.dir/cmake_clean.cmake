file(REMOVE_RECURSE
  "CMakeFiles/test_asic.dir/test_asic.cc.o"
  "CMakeFiles/test_asic.dir/test_asic.cc.o.d"
  "test_asic"
  "test_asic.pdb"
  "test_asic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
