file(REMOVE_RECURSE
  "CMakeFiles/test_hirschberg.dir/test_hirschberg.cc.o"
  "CMakeFiles/test_hirschberg.dir/test_hirschberg.cc.o.d"
  "test_hirschberg"
  "test_hirschberg.pdb"
  "test_hirschberg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hirschberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
