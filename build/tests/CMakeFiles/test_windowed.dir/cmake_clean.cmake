file(REMOVE_RECURSE
  "CMakeFiles/test_windowed.dir/test_windowed.cc.o"
  "CMakeFiles/test_windowed.dir/test_windowed.cc.o.d"
  "test_windowed"
  "test_windowed.pdb"
  "test_windowed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_windowed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
