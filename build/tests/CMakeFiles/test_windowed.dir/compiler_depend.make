# Empty compiler generated dependencies file for test_windowed.
# This may be replaced when dependencies are built.
