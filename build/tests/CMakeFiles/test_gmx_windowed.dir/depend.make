# Empty dependencies file for test_gmx_windowed.
# This may be replaced when dependencies are built.
