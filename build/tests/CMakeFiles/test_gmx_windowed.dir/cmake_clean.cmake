file(REMOVE_RECURSE
  "CMakeFiles/test_gmx_windowed.dir/test_gmx_windowed.cc.o"
  "CMakeFiles/test_gmx_windowed.dir/test_gmx_windowed.cc.o.d"
  "test_gmx_windowed"
  "test_gmx_windowed.pdb"
  "test_gmx_windowed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmx_windowed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
