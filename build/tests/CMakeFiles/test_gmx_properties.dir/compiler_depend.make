# Empty compiler generated dependencies file for test_gmx_properties.
# This may be replaced when dependencies are built.
