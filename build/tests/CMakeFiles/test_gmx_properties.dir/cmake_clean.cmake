file(REMOVE_RECURSE
  "CMakeFiles/test_gmx_properties.dir/test_gmx_properties.cc.o"
  "CMakeFiles/test_gmx_properties.dir/test_gmx_properties.cc.o.d"
  "test_gmx_properties"
  "test_gmx_properties.pdb"
  "test_gmx_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmx_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
