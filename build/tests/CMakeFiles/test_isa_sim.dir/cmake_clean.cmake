file(REMOVE_RECURSE
  "CMakeFiles/test_isa_sim.dir/test_isa_sim.cc.o"
  "CMakeFiles/test_isa_sim.dir/test_isa_sim.cc.o.d"
  "test_isa_sim"
  "test_isa_sim.pdb"
  "test_isa_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
