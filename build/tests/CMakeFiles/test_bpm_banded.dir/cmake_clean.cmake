file(REMOVE_RECURSE
  "CMakeFiles/test_bpm_banded.dir/test_bpm_banded.cc.o"
  "CMakeFiles/test_bpm_banded.dir/test_bpm_banded.cc.o.d"
  "test_bpm_banded"
  "test_bpm_banded.pdb"
  "test_bpm_banded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpm_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
