# Empty dependencies file for test_bitap.
# This may be replaced when dependencies are built.
