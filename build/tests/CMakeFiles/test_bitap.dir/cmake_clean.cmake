file(REMOVE_RECURSE
  "CMakeFiles/test_bitap.dir/test_bitap.cc.o"
  "CMakeFiles/test_bitap.dir/test_bitap.cc.o.d"
  "test_bitap"
  "test_bitap.pdb"
  "test_bitap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
