file(REMOVE_RECURSE
  "CMakeFiles/test_cigar.dir/test_cigar.cc.o"
  "CMakeFiles/test_cigar.dir/test_cigar.cc.o.d"
  "test_cigar"
  "test_cigar.pdb"
  "test_cigar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cigar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
