# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_read_mapping "/root/repo/build/examples/read_mapping")
set_tests_properties(example_read_mapping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_long_read_overlap "/root/repo/build/examples/long_read_overlap")
set_tests_properties(example_long_read_overlap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_edit_filter "/root/repo/build/examples/edit_filter")
set_tests_properties(example_edit_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fuzzy_search "/root/repo/build/examples/fuzzy_search")
set_tests_properties(example_fuzzy_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isa_demo "/root/repo/build/examples/isa_demo")
set_tests_properties(example_isa_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_align_tool "/root/repo/build/examples/align_tool" "--generate" "3" "200" "0.05" "--algo" "full")
set_tests_properties(example_align_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataset_gen "/root/repo/build/examples/dataset_gen" "--custom" "100" "0.05" "2" "/root/repo/build/examples/ds_test.seq")
set_tests_properties(example_dataset_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
