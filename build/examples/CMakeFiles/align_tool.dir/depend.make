# Empty dependencies file for align_tool.
# This may be replaced when dependencies are built.
