file(REMOVE_RECURSE
  "CMakeFiles/align_tool.dir/align_tool.cpp.o"
  "CMakeFiles/align_tool.dir/align_tool.cpp.o.d"
  "align_tool"
  "align_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
