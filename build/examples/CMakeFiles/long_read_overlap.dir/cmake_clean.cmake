file(REMOVE_RECURSE
  "CMakeFiles/long_read_overlap.dir/long_read_overlap.cpp.o"
  "CMakeFiles/long_read_overlap.dir/long_read_overlap.cpp.o.d"
  "long_read_overlap"
  "long_read_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_read_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
