# Empty dependencies file for long_read_overlap.
# This may be replaced when dependencies are built.
