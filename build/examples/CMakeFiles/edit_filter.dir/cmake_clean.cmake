file(REMOVE_RECURSE
  "CMakeFiles/edit_filter.dir/edit_filter.cpp.o"
  "CMakeFiles/edit_filter.dir/edit_filter.cpp.o.d"
  "edit_filter"
  "edit_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
