# Empty compiler generated dependencies file for edit_filter.
# This may be replaced when dependencies are built.
