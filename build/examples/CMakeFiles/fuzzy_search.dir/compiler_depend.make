# Empty compiler generated dependencies file for fuzzy_search.
# This may be replaced when dependencies are built.
