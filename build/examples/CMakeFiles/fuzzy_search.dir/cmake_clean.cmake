file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_search.dir/fuzzy_search.cpp.o"
  "CMakeFiles/fuzzy_search.dir/fuzzy_search.cpp.o.d"
  "fuzzy_search"
  "fuzzy_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
