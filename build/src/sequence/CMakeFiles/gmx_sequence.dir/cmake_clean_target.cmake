file(REMOVE_RECURSE
  "libgmx_sequence.a"
)
