file(REMOVE_RECURSE
  "CMakeFiles/gmx_sequence.dir/dataset.cc.o"
  "CMakeFiles/gmx_sequence.dir/dataset.cc.o.d"
  "CMakeFiles/gmx_sequence.dir/fasta.cc.o"
  "CMakeFiles/gmx_sequence.dir/fasta.cc.o.d"
  "CMakeFiles/gmx_sequence.dir/generator.cc.o"
  "CMakeFiles/gmx_sequence.dir/generator.cc.o.d"
  "CMakeFiles/gmx_sequence.dir/sequence.cc.o"
  "CMakeFiles/gmx_sequence.dir/sequence.cc.o.d"
  "libgmx_sequence.a"
  "libgmx_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
