# Empty compiler generated dependencies file for gmx_sequence.
# This may be replaced when dependencies are built.
