
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sequence/dataset.cc" "src/sequence/CMakeFiles/gmx_sequence.dir/dataset.cc.o" "gcc" "src/sequence/CMakeFiles/gmx_sequence.dir/dataset.cc.o.d"
  "/root/repo/src/sequence/fasta.cc" "src/sequence/CMakeFiles/gmx_sequence.dir/fasta.cc.o" "gcc" "src/sequence/CMakeFiles/gmx_sequence.dir/fasta.cc.o.d"
  "/root/repo/src/sequence/generator.cc" "src/sequence/CMakeFiles/gmx_sequence.dir/generator.cc.o" "gcc" "src/sequence/CMakeFiles/gmx_sequence.dir/generator.cc.o.d"
  "/root/repo/src/sequence/sequence.cc" "src/sequence/CMakeFiles/gmx_sequence.dir/sequence.cc.o" "gcc" "src/sequence/CMakeFiles/gmx_sequence.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
