file(REMOVE_RECURSE
  "CMakeFiles/gmx_common.dir/logging.cc.o"
  "CMakeFiles/gmx_common.dir/logging.cc.o.d"
  "CMakeFiles/gmx_common.dir/table.cc.o"
  "CMakeFiles/gmx_common.dir/table.cc.o.d"
  "libgmx_common.a"
  "libgmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
