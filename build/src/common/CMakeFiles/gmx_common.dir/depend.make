# Empty dependencies file for gmx_common.
# This may be replaced when dependencies are built.
