file(REMOVE_RECURSE
  "libgmx_common.a"
)
