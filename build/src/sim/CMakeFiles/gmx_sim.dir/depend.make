# Empty dependencies file for gmx_sim.
# This may be replaced when dependencies are built.
