
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/gmx_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/gmx_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/gmx_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/perf.cc" "src/sim/CMakeFiles/gmx_sim.dir/perf.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/perf.cc.o.d"
  "/root/repo/src/sim/profile.cc" "src/sim/CMakeFiles/gmx_sim.dir/profile.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/profile.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/gmx_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/sim/CMakeFiles/gmx_sim.dir/workloads.cc.o" "gcc" "src/sim/CMakeFiles/gmx_sim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmx/CMakeFiles/gmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gmx_align.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/gmx_sequence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
