file(REMOVE_RECURSE
  "libgmx_sim.a"
)
