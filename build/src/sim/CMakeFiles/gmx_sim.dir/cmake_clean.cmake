file(REMOVE_RECURSE
  "CMakeFiles/gmx_sim.dir/cache.cc.o"
  "CMakeFiles/gmx_sim.dir/cache.cc.o.d"
  "CMakeFiles/gmx_sim.dir/config.cc.o"
  "CMakeFiles/gmx_sim.dir/config.cc.o.d"
  "CMakeFiles/gmx_sim.dir/energy.cc.o"
  "CMakeFiles/gmx_sim.dir/energy.cc.o.d"
  "CMakeFiles/gmx_sim.dir/perf.cc.o"
  "CMakeFiles/gmx_sim.dir/perf.cc.o.d"
  "CMakeFiles/gmx_sim.dir/profile.cc.o"
  "CMakeFiles/gmx_sim.dir/profile.cc.o.d"
  "CMakeFiles/gmx_sim.dir/trace.cc.o"
  "CMakeFiles/gmx_sim.dir/trace.cc.o.d"
  "CMakeFiles/gmx_sim.dir/workloads.cc.o"
  "CMakeFiles/gmx_sim.dir/workloads.cc.o.d"
  "libgmx_sim.a"
  "libgmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
