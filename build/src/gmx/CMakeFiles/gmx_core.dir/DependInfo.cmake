
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmx/banded.cc" "src/gmx/CMakeFiles/gmx_core.dir/banded.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/banded.cc.o.d"
  "/root/repo/src/gmx/delta.cc" "src/gmx/CMakeFiles/gmx_core.dir/delta.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/delta.cc.o.d"
  "/root/repo/src/gmx/full.cc" "src/gmx/CMakeFiles/gmx_core.dir/full.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/full.cc.o.d"
  "/root/repo/src/gmx/isa.cc" "src/gmx/CMakeFiles/gmx_core.dir/isa.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/isa.cc.o.d"
  "/root/repo/src/gmx/search.cc" "src/gmx/CMakeFiles/gmx_core.dir/search.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/search.cc.o.d"
  "/root/repo/src/gmx/tile.cc" "src/gmx/CMakeFiles/gmx_core.dir/tile.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/tile.cc.o.d"
  "/root/repo/src/gmx/windowed.cc" "src/gmx/CMakeFiles/gmx_core.dir/windowed.cc.o" "gcc" "src/gmx/CMakeFiles/gmx_core.dir/windowed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/gmx_align.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/gmx_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
