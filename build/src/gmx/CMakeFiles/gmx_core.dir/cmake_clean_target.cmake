file(REMOVE_RECURSE
  "libgmx_core.a"
)
