file(REMOVE_RECURSE
  "CMakeFiles/gmx_core.dir/banded.cc.o"
  "CMakeFiles/gmx_core.dir/banded.cc.o.d"
  "CMakeFiles/gmx_core.dir/delta.cc.o"
  "CMakeFiles/gmx_core.dir/delta.cc.o.d"
  "CMakeFiles/gmx_core.dir/full.cc.o"
  "CMakeFiles/gmx_core.dir/full.cc.o.d"
  "CMakeFiles/gmx_core.dir/isa.cc.o"
  "CMakeFiles/gmx_core.dir/isa.cc.o.d"
  "CMakeFiles/gmx_core.dir/search.cc.o"
  "CMakeFiles/gmx_core.dir/search.cc.o.d"
  "CMakeFiles/gmx_core.dir/tile.cc.o"
  "CMakeFiles/gmx_core.dir/tile.cc.o.d"
  "CMakeFiles/gmx_core.dir/windowed.cc.o"
  "CMakeFiles/gmx_core.dir/windowed.cc.o.d"
  "libgmx_core.a"
  "libgmx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
