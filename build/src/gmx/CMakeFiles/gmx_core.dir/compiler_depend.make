# Empty compiler generated dependencies file for gmx_core.
# This may be replaced when dependencies are built.
