
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/asic.cc" "src/hw/CMakeFiles/gmx_hw.dir/asic.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/asic.cc.o.d"
  "/root/repo/src/hw/dsa.cc" "src/hw/CMakeFiles/gmx_hw.dir/dsa.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/dsa.cc.o.d"
  "/root/repo/src/hw/genasm_model.cc" "src/hw/CMakeFiles/gmx_hw.dir/genasm_model.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/genasm_model.cc.o.d"
  "/root/repo/src/hw/gmx_ac.cc" "src/hw/CMakeFiles/gmx_hw.dir/gmx_ac.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/gmx_ac.cc.o.d"
  "/root/repo/src/hw/gmx_tb.cc" "src/hw/CMakeFiles/gmx_hw.dir/gmx_tb.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/gmx_tb.cc.o.d"
  "/root/repo/src/hw/netlist.cc" "src/hw/CMakeFiles/gmx_hw.dir/netlist.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/netlist.cc.o.d"
  "/root/repo/src/hw/rtl_aligner.cc" "src/hw/CMakeFiles/gmx_hw.dir/rtl_aligner.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/rtl_aligner.cc.o.d"
  "/root/repo/src/hw/segmentation.cc" "src/hw/CMakeFiles/gmx_hw.dir/segmentation.cc.o" "gcc" "src/hw/CMakeFiles/gmx_hw.dir/segmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmx/CMakeFiles/gmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gmx_align.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/gmx_sequence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
