file(REMOVE_RECURSE
  "libgmx_hw.a"
)
