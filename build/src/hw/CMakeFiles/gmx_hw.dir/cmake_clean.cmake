file(REMOVE_RECURSE
  "CMakeFiles/gmx_hw.dir/asic.cc.o"
  "CMakeFiles/gmx_hw.dir/asic.cc.o.d"
  "CMakeFiles/gmx_hw.dir/dsa.cc.o"
  "CMakeFiles/gmx_hw.dir/dsa.cc.o.d"
  "CMakeFiles/gmx_hw.dir/genasm_model.cc.o"
  "CMakeFiles/gmx_hw.dir/genasm_model.cc.o.d"
  "CMakeFiles/gmx_hw.dir/gmx_ac.cc.o"
  "CMakeFiles/gmx_hw.dir/gmx_ac.cc.o.d"
  "CMakeFiles/gmx_hw.dir/gmx_tb.cc.o"
  "CMakeFiles/gmx_hw.dir/gmx_tb.cc.o.d"
  "CMakeFiles/gmx_hw.dir/netlist.cc.o"
  "CMakeFiles/gmx_hw.dir/netlist.cc.o.d"
  "CMakeFiles/gmx_hw.dir/rtl_aligner.cc.o"
  "CMakeFiles/gmx_hw.dir/rtl_aligner.cc.o.d"
  "CMakeFiles/gmx_hw.dir/segmentation.cc.o"
  "CMakeFiles/gmx_hw.dir/segmentation.cc.o.d"
  "libgmx_hw.a"
  "libgmx_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
