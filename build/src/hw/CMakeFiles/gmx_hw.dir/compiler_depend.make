# Empty compiler generated dependencies file for gmx_hw.
# This may be replaced when dependencies are built.
