
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/accuracy.cc" "src/align/CMakeFiles/gmx_align.dir/accuracy.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/accuracy.cc.o.d"
  "/root/repo/src/align/affine.cc" "src/align/CMakeFiles/gmx_align.dir/affine.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/affine.cc.o.d"
  "/root/repo/src/align/batch.cc" "src/align/CMakeFiles/gmx_align.dir/batch.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/batch.cc.o.d"
  "/root/repo/src/align/bitap.cc" "src/align/CMakeFiles/gmx_align.dir/bitap.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/bitap.cc.o.d"
  "/root/repo/src/align/bpm.cc" "src/align/CMakeFiles/gmx_align.dir/bpm.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/bpm.cc.o.d"
  "/root/repo/src/align/bpm_banded.cc" "src/align/CMakeFiles/gmx_align.dir/bpm_banded.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/bpm_banded.cc.o.d"
  "/root/repo/src/align/cigar.cc" "src/align/CMakeFiles/gmx_align.dir/cigar.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/cigar.cc.o.d"
  "/root/repo/src/align/hirschberg.cc" "src/align/CMakeFiles/gmx_align.dir/hirschberg.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/hirschberg.cc.o.d"
  "/root/repo/src/align/matrix_view.cc" "src/align/CMakeFiles/gmx_align.dir/matrix_view.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/matrix_view.cc.o.d"
  "/root/repo/src/align/myers_search.cc" "src/align/CMakeFiles/gmx_align.dir/myers_search.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/myers_search.cc.o.d"
  "/root/repo/src/align/nw.cc" "src/align/CMakeFiles/gmx_align.dir/nw.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/nw.cc.o.d"
  "/root/repo/src/align/verify.cc" "src/align/CMakeFiles/gmx_align.dir/verify.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/verify.cc.o.d"
  "/root/repo/src/align/windowed.cc" "src/align/CMakeFiles/gmx_align.dir/windowed.cc.o" "gcc" "src/align/CMakeFiles/gmx_align.dir/windowed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sequence/CMakeFiles/gmx_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
