file(REMOVE_RECURSE
  "CMakeFiles/gmx_align.dir/accuracy.cc.o"
  "CMakeFiles/gmx_align.dir/accuracy.cc.o.d"
  "CMakeFiles/gmx_align.dir/affine.cc.o"
  "CMakeFiles/gmx_align.dir/affine.cc.o.d"
  "CMakeFiles/gmx_align.dir/batch.cc.o"
  "CMakeFiles/gmx_align.dir/batch.cc.o.d"
  "CMakeFiles/gmx_align.dir/bitap.cc.o"
  "CMakeFiles/gmx_align.dir/bitap.cc.o.d"
  "CMakeFiles/gmx_align.dir/bpm.cc.o"
  "CMakeFiles/gmx_align.dir/bpm.cc.o.d"
  "CMakeFiles/gmx_align.dir/bpm_banded.cc.o"
  "CMakeFiles/gmx_align.dir/bpm_banded.cc.o.d"
  "CMakeFiles/gmx_align.dir/cigar.cc.o"
  "CMakeFiles/gmx_align.dir/cigar.cc.o.d"
  "CMakeFiles/gmx_align.dir/hirschberg.cc.o"
  "CMakeFiles/gmx_align.dir/hirschberg.cc.o.d"
  "CMakeFiles/gmx_align.dir/matrix_view.cc.o"
  "CMakeFiles/gmx_align.dir/matrix_view.cc.o.d"
  "CMakeFiles/gmx_align.dir/myers_search.cc.o"
  "CMakeFiles/gmx_align.dir/myers_search.cc.o.d"
  "CMakeFiles/gmx_align.dir/nw.cc.o"
  "CMakeFiles/gmx_align.dir/nw.cc.o.d"
  "CMakeFiles/gmx_align.dir/verify.cc.o"
  "CMakeFiles/gmx_align.dir/verify.cc.o.d"
  "CMakeFiles/gmx_align.dir/windowed.cc.o"
  "CMakeFiles/gmx_align.dir/windowed.cc.o.d"
  "libgmx_align.a"
  "libgmx_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
