# Empty dependencies file for gmx_align.
# This may be replaced when dependencies are built.
