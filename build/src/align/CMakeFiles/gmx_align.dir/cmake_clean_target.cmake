file(REMOVE_RECURSE
  "libgmx_align.a"
)
