file(REMOVE_RECURSE
  "libgmx_isa_sim.a"
)
