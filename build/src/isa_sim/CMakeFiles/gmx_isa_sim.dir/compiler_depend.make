# Empty compiler generated dependencies file for gmx_isa_sim.
# This may be replaced when dependencies are built.
