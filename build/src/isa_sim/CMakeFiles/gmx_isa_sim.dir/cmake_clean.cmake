file(REMOVE_RECURSE
  "CMakeFiles/gmx_isa_sim.dir/assembler.cc.o"
  "CMakeFiles/gmx_isa_sim.dir/assembler.cc.o.d"
  "CMakeFiles/gmx_isa_sim.dir/cpu.cc.o"
  "CMakeFiles/gmx_isa_sim.dir/cpu.cc.o.d"
  "CMakeFiles/gmx_isa_sim.dir/programs.cc.o"
  "CMakeFiles/gmx_isa_sim.dir/programs.cc.o.d"
  "libgmx_isa_sim.a"
  "libgmx_isa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmx_isa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
