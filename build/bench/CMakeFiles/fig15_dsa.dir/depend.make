# Empty dependencies file for fig15_dsa.
# This may be replaced when dependencies are built.
