file(REMOVE_RECURSE
  "CMakeFiles/fig15_dsa.dir/fig15_dsa.cc.o"
  "CMakeFiles/fig15_dsa.dir/fig15_dsa.cc.o.d"
  "fig15_dsa"
  "fig15_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
