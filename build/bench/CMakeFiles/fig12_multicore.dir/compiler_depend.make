# Empty compiler generated dependencies file for fig12_multicore.
# This may be replaced when dependencies are built.
