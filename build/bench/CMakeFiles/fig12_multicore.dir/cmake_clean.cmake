file(REMOVE_RECURSE
  "CMakeFiles/fig12_multicore.dir/fig12_multicore.cc.o"
  "CMakeFiles/fig12_multicore.dir/fig12_multicore.cc.o.d"
  "fig12_multicore"
  "fig12_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
