# Empty dependencies file for fig04_strategies.
# This may be replaced when dependencies are built.
