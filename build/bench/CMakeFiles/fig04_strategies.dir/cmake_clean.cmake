file(REMOVE_RECURSE
  "CMakeFiles/fig04_strategies.dir/fig04_strategies.cc.o"
  "CMakeFiles/fig04_strategies.dir/fig04_strategies.cc.o.d"
  "fig04_strategies"
  "fig04_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
