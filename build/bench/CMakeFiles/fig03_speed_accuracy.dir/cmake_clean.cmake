file(REMOVE_RECURSE
  "CMakeFiles/fig03_speed_accuracy.dir/fig03_speed_accuracy.cc.o"
  "CMakeFiles/fig03_speed_accuracy.dir/fig03_speed_accuracy.cc.o.d"
  "fig03_speed_accuracy"
  "fig03_speed_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_speed_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
