file(REMOVE_RECURSE
  "CMakeFiles/ablation_dualport.dir/ablation_dualport.cc.o"
  "CMakeFiles/ablation_dualport.dir/ablation_dualport.cc.o.d"
  "ablation_dualport"
  "ablation_dualport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dualport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
