# Empty compiler generated dependencies file for ablation_dualport.
# This may be replaced when dependencies are built.
