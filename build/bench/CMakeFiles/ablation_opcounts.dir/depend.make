# Empty dependencies file for ablation_opcounts.
# This may be replaced when dependencies are built.
