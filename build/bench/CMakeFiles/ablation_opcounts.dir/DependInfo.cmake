
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_opcounts.cc" "bench/CMakeFiles/ablation_opcounts.dir/ablation_opcounts.cc.o" "gcc" "bench/CMakeFiles/ablation_opcounts.dir/ablation_opcounts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmx/CMakeFiles/gmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/gmx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gmx_align.dir/DependInfo.cmake"
  "/root/repo/build/src/sequence/CMakeFiles/gmx_sequence.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
