file(REMOVE_RECURSE
  "CMakeFiles/ablation_opcounts.dir/ablation_opcounts.cc.o"
  "CMakeFiles/ablation_opcounts.dir/ablation_opcounts.cc.o.d"
  "ablation_opcounts"
  "ablation_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
