# Empty dependencies file for native_throughput.
# This may be replaced when dependencies are built.
