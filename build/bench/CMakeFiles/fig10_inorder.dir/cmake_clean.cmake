file(REMOVE_RECURSE
  "CMakeFiles/fig10_inorder.dir/fig10_inorder.cc.o"
  "CMakeFiles/fig10_inorder.dir/fig10_inorder.cc.o.d"
  "fig10_inorder"
  "fig10_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
