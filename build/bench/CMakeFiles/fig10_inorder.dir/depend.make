# Empty dependencies file for fig10_inorder.
# This may be replaced when dependencies are built.
