# Empty compiler generated dependencies file for fig11_ooo.
# This may be replaced when dependencies are built.
