file(REMOVE_RECURSE
  "CMakeFiles/fig11_ooo.dir/fig11_ooo.cc.o"
  "CMakeFiles/fig11_ooo.dir/fig11_ooo.cc.o.d"
  "fig11_ooo"
  "fig11_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
