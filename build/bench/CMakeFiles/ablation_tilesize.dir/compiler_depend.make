# Empty compiler generated dependencies file for ablation_tilesize.
# This may be replaced when dependencies are built.
