file(REMOVE_RECURSE
  "CMakeFiles/ablation_tilesize.dir/ablation_tilesize.cc.o"
  "CMakeFiles/ablation_tilesize.dir/ablation_tilesize.cc.o.d"
  "ablation_tilesize"
  "ablation_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
