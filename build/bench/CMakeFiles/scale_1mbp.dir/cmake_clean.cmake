file(REMOVE_RECURSE
  "CMakeFiles/scale_1mbp.dir/scale_1mbp.cc.o"
  "CMakeFiles/scale_1mbp.dir/scale_1mbp.cc.o.d"
  "scale_1mbp"
  "scale_1mbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_1mbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
