# Empty dependencies file for scale_1mbp.
# This may be replaced when dependencies are built.
