file(REMOVE_RECURSE
  "CMakeFiles/fig14_rtl_inorder.dir/fig14_rtl_inorder.cc.o"
  "CMakeFiles/fig14_rtl_inorder.dir/fig14_rtl_inorder.cc.o.d"
  "fig14_rtl_inorder"
  "fig14_rtl_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rtl_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
