# Empty dependencies file for fig14_rtl_inorder.
# This may be replaced when dependencies are built.
