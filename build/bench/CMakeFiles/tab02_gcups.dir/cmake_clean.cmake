file(REMOVE_RECURSE
  "CMakeFiles/tab02_gcups.dir/tab02_gcups.cc.o"
  "CMakeFiles/tab02_gcups.dir/tab02_gcups.cc.o.d"
  "tab02_gcups"
  "tab02_gcups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_gcups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
