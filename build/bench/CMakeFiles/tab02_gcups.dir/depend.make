# Empty dependencies file for tab02_gcups.
# This may be replaced when dependencies are built.
