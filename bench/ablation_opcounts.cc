/**
 * @file
 * §4.2 ablation: operation counts and per-tile memory of the competing
 * techniques — the paper's analytic comparison (DP 5T^2 integer ops,
 * Bitap 7T*T^2 bit-ops, BPM 17T^2, GMX-Tile 12T^2; memory per tile: DP
 * T^2 integers, Bitap T^3 bits, BPM 4T^2 bits, GMX 4T bits) — checked
 * against the instruction counts measured from this repository's
 * implementations.
 */

#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/nw.hh"
#include "bench_util.hh"
#include "gmx/full.hh"
#include "sequence/generator.hh"

int
main()
{
    using namespace gmx;
    using namespace gmx::align;

    gmx::bench::banner(
        "Section 4.2 ablation: per-tile operation and memory comparison",
        "for a TxT tile: DP 5T^2 full-integer ops; Bitap 7T*T^2 bit-ops; "
        "BPM 17T^2; GMX-Tile 12T^2 (hardware). Memory per tile: DP T^2 "
        "ints, Bitap T^3 bits, BPM 4T^2 bits, GMX-Tile 4T bits");

    const unsigned T = 32;
    const double t2 = static_cast<double>(T) * T;

    std::printf("\n-- Analytic (paper formulas, T = %u) --\n", T);
    TextTable analytic({"technique", "ops per tile", "ops/DP-elem",
                        "bits stored/tile"});
    analytic.addRow({"Classical DP", TextTable::num(5 * t2, 0), "5 (int)",
                     TextTable::num(t2 * 32, 0)});
    analytic.addRow({"Bitap", TextTable::num(7.0 * T * t2, 0),
                     TextTable::num(7.0 * T, 0) + " (bit)",
                     TextTable::num(t2 * T, 0)});
    analytic.addRow({"BPM", TextTable::num(17 * t2, 0), "17 (bit)",
                     TextTable::num(4 * t2, 0)});
    analytic.addRow({"GMX-Tile", TextTable::num(12 * t2, 0), "12 (gate)",
                     TextTable::num(4.0 * T, 0)});
    analytic.print();

    // Measured: dynamic scalar instructions per DP-element of each
    // software implementation on a 1024x~1024 alignment. Word-parallel
    // implementations amortize their per-word ops over 64 lanes, and the
    // GMX emulation collapses 2 instructions per tile.
    std::printf("\n-- Measured (this repository, software) --\n");
    seq::Generator gen(7777);
    const auto pair = gen.pair(1024, 0.1);
    TextTable measured({"implementation", "instr/DP-elem",
                        "gmx instr/alignment"});
    {
        // Full(DP) is analytic: 5 ALU + 3 mem per cell.
        measured.addRow({"Full(DP)", "8.0 (analytic)", "-"});
    }
    {
        KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        bpmDistance(pair.pattern, pair.text, ctx);
        measured.addRow({"Full(BPM)",
                         TextTable::num(static_cast<double>(
                                            c.instructions()) /
                                            static_cast<double>(c.cells),
                                        3),
                         "-"});
    }
    {
        KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        const i64 d = nwDistance(pair.pattern, pair.text);
        bitapDistance(pair.pattern, pair.text, d, ctx);
        measured.addRow({"Bitap (k=d)",
                         TextTable::num(static_cast<double>(
                                            c.instructions()) /
                                            static_cast<double>(c.cells),
                                        3),
                         "-"});
    }
    {
        KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        core::fullGmxDistance(pair.pattern, pair.text, T, ctx);
        measured.addRow({"Full(GMX)",
                         TextTable::num(static_cast<double>(
                                            c.instructions()) /
                                            static_cast<double>(c.cells),
                                        3),
                         TextTable::num(
                             static_cast<long long>(c.gmx_ac))});
    }
    measured.print();
    std::printf("\nExpected shape: GMX needs ~2 instructions per 1024 "
                "DP-elements (plus CSR/load/store overhead), a quadratic "
                "reduction over the scalar DP and a large one over the "
                "word-parallel baselines.\n");
    return 0;
}
