/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every binary regenerates one table or figure of the paper; the header
 * banner states which one and what the paper reports, so the output can
 * be compared side by side (see EXPERIMENTS.md).
 */

#ifndef GMX_BENCH_BENCH_UTIL_HH
#define GMX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sequence/dataset.hh"

namespace gmx::bench {

/** Print the banner identifying the reproduced experiment. */
inline void
banner(const std::string &experiment, const std::string &paper_claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper reference: %s\n", paper_claim.c_str());
    std::printf("==============================================================\n");
}

/** Shorthand scientific-ish formatting for throughputs. */
inline std::string
fmtThroughput(double alignments_per_second)
{
    char buf[64];
    if (alignments_per_second >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.3gM", alignments_per_second / 1e6);
    else if (alignments_per_second >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.3gk", alignments_per_second / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3g", alignments_per_second);
    return buf;
}

/**
 * Kernel-phase GCUPS from a cell count and kernel-phase microseconds.
 * Returns 0 when the timer read 0 us (sub-microsecond runs on tiny
 * inputs) instead of inf/nan — every bench GCUPS division goes through
 * here so zero-duration timers can't poison a table.
 */
inline double
kernelGcups(u64 cells, double kernel_us)
{
    return kernel_us > 0.0 ? static_cast<double>(cells) / kernel_us / 1e3
                           : 0.0;
}

/** The five short-sequence evaluation sets (small pair counts for speed). */
inline std::vector<seq::Dataset>
benchShortDatasets(size_t pairs = 3)
{
    return seq::shortDatasets(pairs, /*seed=*/2024);
}

/** Long-sequence sets, optionally capped. */
inline std::vector<seq::Dataset>
benchLongDatasets(size_t pairs = 2, size_t max_len = 10000)
{
    return seq::longDatasets(pairs, /*seed=*/2025, max_len);
}

} // namespace gmx::bench

#endif // GMX_BENCH_BENCH_UTIL_HH
