/**
 * @file
 * Figure 3 reproduction: speed vs. accuracy of edit-distance alignment
 * (Edlib-style banded BPM) against gap-affine alignment (exact Gotoh and
 * the banded KSW2/Minimap2-style heuristic) on high-quality short
 * (Illumina-like) and long (HiFi-like) datasets.
 *
 * Accuracy is the paper's metric: mean alignment-score deviation from the
 * optimal gap-affine alignment, under Minimap2's default penalties.
 */

#include <functional>

#include "align/accuracy.hh"
#include "align/affine.hh"
#include "align/bpm_banded.hh"
#include "align/verify.hh"
#include "bench_util.hh"
#include "common/timer.hh"

namespace {

using namespace gmx;
using namespace gmx::align;

struct Method
{
    std::string name;
    CigarFn fn;
};

void
runDataset(const seq::Dataset &ds, const std::vector<Method> &methods)
{
    std::printf("\nDataset %s (%zu pairs)\n", ds.name.c_str(),
                ds.pairs.size());
    TextTable table({"method", "align/s", "mean score dev",
                     "rel dev", "exact frac"});
    const AffinePenalties pen = AffinePenalties::minimap2();
    for (const auto &method : methods) {
        Timer timer;
        const AccuracyStats acc = measureAccuracy(ds, method.fn, pen);
        const double secs = timer.seconds();
        // measureAccuracy also computes the optimal score per pair; time
        // the aligner alone for the throughput column.
        Timer t2;
        for (const auto &pair : ds.pairs)
            (void)method.fn(pair);
        const double align_secs = t2.seconds();
        (void)secs;
        table.addRow({method.name,
                      gmx::bench::fmtThroughput(
                          static_cast<double>(ds.pairs.size()) /
                          align_secs),
                      TextTable::num(acc.mean_deviation, 3),
                      TextTable::num(acc.mean_rel_deviation, 4),
                      TextTable::num(acc.exact_fraction, 3)});
    }
    table.print();
}

} // namespace

int
main()
{
    gmx::bench::banner(
        "Figure 3: speed vs. accuracy, edit distance vs. gap-affine",
        "edit distance matches gap-affine accuracy on high-quality reads "
        "while being significantly faster; banded affine is faster than "
        "exact affine but can lose accuracy");

    const std::vector<Method> methods = {
        {"Edit (Edlib-like)",
         [](const seq::SequencePair &p) {
             return edlibAlign(p.pattern, p.text).cigar;
         }},
        {"Affine exact (Gotoh)",
         [](const seq::SequencePair &p) {
             return affineAlign(p.pattern, p.text,
                                AffinePenalties::minimap2())
                 .cigar;
         }},
        {"Affine banded (KSW2-like)",
         [](const seq::SequencePair &p) {
             const i64 band = 64;
             auto res = affineAlignBanded(p.pattern, p.text,
                                          AffinePenalties::minimap2(), band);
             if (!res.has_cigar) {
                 res = affineAlign(p.pattern, p.text,
                                   AffinePenalties::minimap2());
             }
             return res.cigar;
         }},
    };

    runDataset(seq::illuminaLikeDataset(100), methods);
    runDataset(seq::hifiLikeDataset(3), methods);

    std::printf("\nExpected shape: edit-distance throughput >> affine, with "
                "near-zero score deviation on these low-error datasets.\n");
    return 0;
}
