/**
 * @file
 * Figure 13 reproduction: area and power breakdown of the GMX-enhanced
 * RTL SoC in 22nm at 1 GHz, from the gate-level netlist model.
 */

#include "bench_util.hh"
#include "hw/asic.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"

int
main()
{
    using namespace gmx;
    using namespace gmx::hw;

    gmx::bench::banner(
        "Figure 13: area/power breakdown of the GMX SoC (22nm, 1 GHz)",
        "GMX total 0.0216 mm2 (GMX-AC 0.008, GMX-TB 0.0108), 1.7% of SoC "
        "area; 8.47 mW, 2.1% of SoC power; AC latency 2 cycles, TB 6");

    const GmxAsicReport gmx_rep = gmxAsicReport(32, 1.0);
    std::printf("\n-- GMX unit (T=32) --\n");
    TextTable unit({"block", "gates", "NAND2-eq", "area mm2", "power mW"});
    const auto ac_stats = GmxAcArray(32).stats();
    const auto tb_stats = GmxTbArray(32).stats();
    unit.addRow({"GMX-AC", TextTable::num((long long)ac_stats.gates),
                 TextTable::num(ac_stats.nand2, 0),
                 TextTable::num(gmx_rep.ac.area_mm2, 4),
                 TextTable::num(gmx_rep.ac.power_mw, 2)});
    unit.addRow({"GMX-TB", TextTable::num((long long)tb_stats.gates),
                 TextTable::num(tb_stats.nand2, 0),
                 TextTable::num(gmx_rep.tb.area_mm2, 4),
                 TextTable::num(gmx_rep.tb.power_mw, 2)});
    unit.addRow({"GMX-CSRs", "-", "-",
                 TextTable::num(gmx_rep.csr.area_mm2, 4),
                 TextTable::num(gmx_rep.csr.power_mw, 2)});
    unit.addRow({"total", "-", "-",
                 TextTable::num(gmx_rep.total_area_mm2, 4),
                 TextTable::num(gmx_rep.total_power_mw, 2)});
    unit.print();
    std::printf("paper: AC 0.0080, TB 0.0108, total 0.0216 mm2; 8.47 mW\n");
    std::printf("latencies after segmentation: GMX-AC %u cycles, GMX-TB %u "
                "cycles (paper: 2 and 6)\n",
                gmx_rep.ac_cycles, gmx_rep.tb_cycles);

    std::printf("\n-- SoC context --\n");
    const SocReport soc = socReport();
    TextTable soc_table({"block", "area mm2", "power mW"});
    for (const auto &b : soc.blocks)
        soc_table.addRow({b.name, TextTable::num(b.area_mm2, 4),
                          TextTable::num(b.power_mw, 2)});
    soc_table.addRow({"SoC total", TextTable::num(soc.total_area_mm2, 3),
                      TextTable::num(soc.total_power_mw, 1)});
    soc_table.print();
    std::printf("GMX fraction of SoC: area %.2f%% (paper 1.7%%), power "
                "%.2f%% (paper 2.1%%)\n",
                soc.gmx_area_fraction * 100, soc.gmx_power_fraction * 100);
    return 0;
}
