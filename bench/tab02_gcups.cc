/**
 * @file
 * Table 2 reproduction: peak GCUPS per processing element across the
 * accelerator survey, with the GMX rows computed from this repository's
 * models (GMX unit area from the gate-level netlists; Core+GMX uses the
 * paper's 1.24 mm2 core complex), plus the achieved throughput-per-area
 * ratio behind the paper's 0.35-0.52x claim.
 */

#include "bench_util.hh"
#include "hw/asic.hh"
#include "hw/dsa.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

int
main()
{
    using namespace gmx;
    using namespace gmx::hw;

    gmx::bench::banner(
        "Table 2: peak GCUPS per PE",
        "GMX unit: 0.02 mm2, 1024 PGCUPS/PE (highest of the survey); "
        "Core+GMX 1.24 mm2; achieved throughput/area 0.35-0.52x of DSAs");

    const GmxAsicReport rep = gmxAsicReport(32, 1.0);
    const double gmx_gcups = gmxPeakGcups(32, 1.0);
    const double core_gmx_area = 1.24; // paper: Sargantana core + GMX

    TextTable table({"study", "device", "PE", "area/PE", "PGCUPS/PE"});
    table.addRow({"GMX Unit (this model)", "ASIC", "1 PE",
                  TextTable::num(rep.total_area_mm2, 3) + "mm2",
                  TextTable::num(gmx_gcups, 1)});
    table.addRow({"Core+GMX", "ASIC", "1 PE",
                  TextTable::num(core_gmx_area, 2) + "mm2",
                  TextTable::num(gmx_gcups, 1)});
    for (const auto &row : table2SurveyRows()) {
        table.addRow({row.study + (row.gap_affine ? " (affine)" : ""),
                      row.device, row.pe_config, row.area_per_pe,
                      TextTable::num(row.pgcups_per_pe, 1)});
    }
    table.print();

    // Achieved (not peak) throughput per area on the windowed long-read
    // workload, the basis of the paper's 0.35-0.52x statement.
    const seq::Dataset ds =
        seq::makeDataset("10kbp-e15%", 10000, 0.15, 1, 99);
    sim::WorkloadOptions opts;
    opts.samples = 1;
    const auto profile =
        sim::profileForDataset(sim::Algo::WindowedGmx, ds, opts);
    const double gmx_aps =
        sim::evaluate(profile, sim::CoreConfig::rtlInOrder(),
                      sim::MemSystemConfig::rtlLike())
            .alignments_per_second;
    const auto genasm = genasmVault(96);
    const auto darwin = darwinGact(96);
    const double gen_aps = alignmentsPerSecond(genasm, ds.length, 96, 32);
    const double dar_aps = alignmentsPerSecond(darwin, ds.length, 96, 32);

    std::printf("\nAchieved throughput per area on %s (alignments/s/mm2):\n",
                ds.name.c_str());
    const double gmx_tpa = gmx_aps / core_gmx_area;
    const double gen_tpa = gen_aps / genasm.area_mm2;
    const double dar_tpa = dar_aps / darwin.area_mm2;
    std::printf("  Core+GMX : %.0f\n", gmx_tpa);
    std::printf("  GenASM   : %.0f  -> GMX/GenASM = %.2fx\n", gen_tpa,
                gmx_tpa / gen_tpa);
    std::printf("  Darwin   : %.0f  -> GMX/Darwin = %.2fx\n", dar_tpa,
                gmx_tpa / dar_tpa);
    std::printf("paper: a single GMX-enabled core achieves 0.35-0.52x the "
                "throughput/area of state-of-the-art DSAs while reusing "
                "the core's resources.\n");
    return 0;
}
