/**
 * @file
 * ISA what-if from the paper's §5 discussion: with two destination
 * register ports, gmx.v and gmx.h merge into one gmx.vh instruction
 * (halving the per-tile GMX instruction count, like mul/mulh vs a fused
 * multiply), and gmx.tb could write gmx_lo/gmx_hi to GPRs instead of
 * CSRs (saving the csrr pair per traceback step). This bench measures
 * both effects with the functional model and the performance model.
 */

#include "bench_util.hh"
#include "gmx/full.hh"
#include "gmx/isa.hh"
#include "sequence/generator.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Ablation: dual-destination-port ISA variant (gmx.vh)",
        "paper §5: merging gmx.v/gmx.h would improve efficiency and "
        "throughput on cores with two destination register ports");

    // Functional check: gmx.vh returns exactly what the split pair does.
    {
        seq::Generator gen(881);
        core::GmxUnit unit(32);
        const auto p = gen.random(32);
        const auto t = gen.random(32);
        unit.csrwPattern(p.codes().data(), 32);
        unit.csrwText(t.codes().data(), 32);
        const auto dv = core::DeltaVec::ones(32);
        const auto dh = core::DeltaVec::ones(32);
        const auto merged = unit.gmxVH(dv, dh);
        const bool same = merged.dv_out == unit.gmxV(dv, dh) &&
                          merged.dh_out == unit.gmxH(dv, dh);
        std::printf("\ngmx.vh == (gmx.v, gmx.h): %s\n",
                    same ? "yes" : "NO (bug)");
    }

    // Performance what-if on the gem5-InOrder platform.
    const auto ds = seq::makeDataset("1kbp-e15%", 1000, 0.15, 2, 888);
    sim::WorkloadOptions opts;
    opts.samples = 2;
    const auto core_cfg = sim::CoreConfig::gem5InOrder();
    const auto mem = sim::MemSystemConfig::gem5Like();

    auto baseline = sim::profileForDataset(sim::Algo::FullGmx, ds, opts);
    const double base_aps =
        sim::evaluate(baseline, core_cfg, mem).alignments_per_second;

    // gmx.vh: half the GMX-AC instruction stream.
    auto dual = baseline;
    dual.counts.gmx_ac /= 2;
    const double dual_aps =
        sim::evaluate(dual, core_cfg, mem).alignments_per_second;

    // Plus GPR-destination gmx.tb: drop two csrr per traceback step.
    auto dual_tb = dual;
    dual_tb.counts.csr -= std::min(dual_tb.counts.csr,
                                   2 * dual_tb.counts.gmx_tb);
    const double dual_tb_aps =
        sim::evaluate(dual_tb, core_cfg, mem).alignments_per_second;

    TextTable table({"ISA variant", "align/s", "vs baseline"});
    table.addRow({"gmx.v + gmx.h (paper baseline)",
                  gmx::bench::fmtThroughput(base_aps), "1.00"});
    table.addRow({"merged gmx.vh",
                  gmx::bench::fmtThroughput(dual_aps),
                  TextTable::num(dual_aps / base_aps, 2)});
    table.addRow({"gmx.vh + GPR-dest gmx.tb",
                  gmx::bench::fmtThroughput(dual_tb_aps),
                  TextTable::num(dual_tb_aps / base_aps, 2)});
    table.print();

    std::printf("\nExpected shape: tile computation is the instruction "
                "bottleneck of Full(GMX), so halving the gmx.* stream "
                "buys a significant in-order speedup; the CSR savings "
                "matter only for traceback-heavy workloads.\n");
    return 0;
}
