/**
 * @file
 * §6.3 ablation: tile-size implications. Sweeping T shows the paper's
 * scaling laws: compute-cell count and peak throughput grow with T^2,
 * latency (critical path / pipeline stages) grows with T, and the
 * executed-instruction count of Full(GMX) falls quadratically in T.
 */

#include "bench_util.hh"
#include "gmx/full.hh"
#include "hw/asic.hh"
#include "hw/dsa.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"
#include "sequence/generator.hh"

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Section 6.3 ablation: tile-size sweep",
        "area and DP-elements/cycle grow quadratically with T; latency "
        "grows linearly; instructions fall quadratically");

    seq::Generator gen(31337);
    const auto pair = gen.pair(2048, 0.1);

    TextTable table({"T", "gates (AC+TB)", "area mm2", "AC cyc", "TB cyc",
                     "peak GCUPS", "instr/alignment", "GCUPS/mm2"});
    for (unsigned t : {4u, 8u, 16u, 32u, 64u}) {
        const auto rep = hw::gmxAsicReport(t, 1.0);
        const auto ac = hw::GmxAcArray(t).stats();
        const auto tb = hw::GmxTbArray(t).stats();
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        core::fullGmxDistance(pair.pattern, pair.text, t, ctx);
        const double gcups = hw::gmxPeakGcups(t, 1.0);
        table.addRow({std::to_string(t),
                      TextTable::num(static_cast<long long>(ac.gates +
                                                            tb.gates)),
                      TextTable::num(rep.total_area_mm2, 4),
                      std::to_string(rep.ac_cycles),
                      std::to_string(rep.tb_cycles),
                      TextTable::num(gcups, 0),
                      TextTable::num(static_cast<long long>(
                          counts.instructions())),
                      TextTable::num(gcups / rep.total_area_mm2, 0)});
    }
    table.print();

    std::printf("\nExpected shape: quadrupling T multiplies gates/area/"
                "GCUPS by ~4x, latency by ~2x, and divides the dynamic "
                "instruction count by ~4x. T=32 maximizes 64-bit register "
                "usage (the paper's design point).\n");
    return 0;
}
