/**
 * @file
 * Engine throughput sweep: workers x queue capacity on a mixed-divergence
 * synthetic workload, plus a metrics snapshot of the largest run.
 *
 * This is the software analogue of the paper's multicore scaling study
 * (§7.2, Fig. 12): inter-sequence parallelism over independent pairs, one
 * persistent worker per "core". Rows report sustained throughput
 * (pairs/s and Mbases/s) for the full submit -> cascade -> future
 * pipeline, including queueing and dispatch cost.
 *
 * Runs argument-free. Speedup is relative to the 1-worker row of the same
 * queue capacity; on machines with fewer hardware threads than the row's
 * worker count, speedup saturates at the hardware. With `--serve <port>`
 * (0 = ephemeral) it finishes the sweep, re-runs the workload on a fresh
 * engine, and serves that engine's /metrics, /vars, /trace and /healthz
 * until SIGINT/SIGTERM, so a scraper can be pointed at a benchmark run.
 *
 * `--wire [pairs]` appends a front-door leg: the same workload shape
 * streamed through an AlignServer over localhost TCP via AlignClient,
 * so the row prices the whole wire path (framing, socket hops, router,
 * dedup cache) against the in-process sweep above. The batch runs
 * twice — cold, then again with the result cache warm — and reports
 * both rates plus the cache counters. `--wire-hold` then keeps the
 * align server up until SIGINT/SIGTERM so `examples/align_client` (or
 * any wire client) can be pointed at a live, pre-warmed server.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "common/timer.hh"
#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/server.hh"
#include "kernel/dispatch.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"
#include "sequence/generator.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace gmx;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/**
 * Mixed-divergence workload: one third short reads at low error (filter
 * tier), one third moderate divergence (banded tier), one third high
 * divergence (escalates to Full(GMX)).
 */
std::vector<seq::SequencePair>
makeWorkload(size_t pairs, u64 seed)
{
    seq::Generator gen(seed);
    std::vector<seq::SequencePair> out;
    out.reserve(pairs);
    struct Mix
    {
        size_t length;
        double error;
    };
    const Mix mixes[] = {{150, 0.005}, {300, 0.05}, {300, 0.25}};
    for (size_t i = 0; i < pairs; ++i) {
        const Mix &mix = mixes[i % 3];
        out.push_back(gen.pair(mix.length, mix.error));
    }
    return out;
}

size_t
totalBases(const std::vector<seq::SequencePair> &pairs)
{
    size_t bases = 0;
    for (const auto &p : pairs)
        bases += p.pattern.size() + p.text.size();
    return bases;
}

} // namespace

int
main(int argc, char **argv)
{
    int serve_port = -1;
    long wire_pairs = -1;
    bool wire_hold = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
            serve_port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--wire") == 0) {
            wire_pairs = 2000;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                wire_pairs = std::atol(argv[++i]);
        } else if (std::strcmp(argv[i], "--wire-hold") == 0) {
            wire_hold = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--serve <port>] [--wire [pairs]] "
                         "[--wire-hold]\n",
                         argv[0]);
            return 2;
        }
    }
    if (wire_hold && wire_pairs < 0)
        wire_pairs = 2000;

    const size_t kPairs = 1200;
    const auto workload = makeWorkload(kPairs, 20230711);
    const double mbases =
        static_cast<double>(totalBases(workload)) / 1e6;

    std::printf("Engine throughput sweep: %zu mixed-divergence pairs "
                "(150bp@0.5%%, 300bp@5%%, 300bp@25%%), cascade routing, "
                "distance-only\n"
                "Every request carries a generous 60 s deadline: the "
                "robustness plumbing is enabled but unexercised, so these "
                "rates include its happy-path cost.\n\n",
                kPairs);

    TextTable table({"workers", "queue", "time_s", "pairs/s", "Mbases/s",
                     "speedup", "steals", "microbatches", "shed", "downgr",
                     "dl_miss"});

    engine::MetricsSnapshot last_snapshot;
    for (size_t queue_cap : {64u, 1024u}) {
        double base_rate = 0.0;
        for (unsigned workers : {1u, 2u, 4u, 8u}) {
            engine::EngineConfig cfg;
            cfg.workers = workers;
            cfg.queue_capacity = queue_cap;
            cfg.backpressure = engine::Backpressure::Block;
            engine::Engine eng(cfg);

            Timer timer;
            std::vector<std::future<engine::Engine::AlignOutcome>> futures;
            futures.reserve(workload.size());
            for (const auto &pair : workload) {
                engine::SubmitOptions opts;
                opts.want_cigar = false;
                opts.timeout = std::chrono::seconds(60);
                futures.push_back(eng.submit(pair, std::move(opts)));
            }
            for (auto &f : futures)
                f.get();
            const double secs = timer.seconds();

            const double rate = static_cast<double>(kPairs) / secs;
            if (workers == 1)
                base_rate = rate;
            const auto snap = eng.metrics();
            table.addRow({std::to_string(workers),
                          std::to_string(queue_cap), TextTable::num(secs, 3),
                          TextTable::num(rate, 0),
                          TextTable::num(mbases / secs, 2),
                          TextTable::num(rate / base_rate, 2),
                          TextTable::num(static_cast<long long>(
                              snap.pool_steals)),
                          TextTable::num(static_cast<long long>(
                              snap.microbatches)),
                          TextTable::num(static_cast<long long>(snap.shed)),
                          TextTable::num(static_cast<long long>(
                              snap.downgraded)),
                          TextTable::num(static_cast<long long>(
                              snap.deadline_missed))});
            last_snapshot = snap;
        }
    }
    table.print();

    // One overload point: small shedding queue plus a memory budget tight
    // enough that every Full(GMX) traceback downgrades to Hirschberg, so
    // the robustness columns are exercised, not just reported. 2 kbp
    // traceback wants ~131 KB of tile edges; the 96 KB budget admits two
    // concurrent Hirschberg footprints (~36 KB) instead.
    {
        seq::Generator gen(77);
        std::vector<seq::SequencePair> heavy;
        for (int i = 0; i < 200; ++i)
            heavy.push_back(gen.pair(2000, 0.05));
        engine::EngineConfig cfg;
        cfg.workers = 2;
        cfg.queue_capacity = 16;
        cfg.backpressure = engine::Backpressure::ShedOldest;
        cfg.microbatch_max = 1;
        cfg.memory_budget_bytes = 96 * 1024;
        engine::Engine eng(cfg);
        std::vector<std::future<engine::Engine::AlignOutcome>> futures;
        futures.reserve(heavy.size());
        for (const auto &pair : heavy)
            futures.push_back(eng.submit(pair, /*want_cigar=*/true));
        size_t ok = 0, shed = 0, other = 0;
        for (auto &f : futures) {
            const auto res = f.get();
            if (res.ok())
                ++ok;
            else if (res.code() == StatusCode::Overloaded)
                ++shed;
            else
                ++other;
        }
        const auto snap = eng.metrics();
        std::printf("\nOverload point (200 x 2 kbp traceback, 2 workers, "
                    "queue 16, ShedOldest, 96 KB budget):\n"
                    "  served=%zu shed=%zu other=%zu downgraded=%llu "
                    "peak_reserved=%llu B (budget %llu B)\n",
                    ok, shed, other,
                    static_cast<unsigned long long>(snap.downgraded),
                    static_cast<unsigned long long>(snap.mem_reserved_peak),
                    static_cast<unsigned long long>(snap.mem_budget_bytes));
    }

    // Allocator traffic on the short-pair hot path. "fresh arena" is the
    // pre-refactor behaviour in arena terms: every request starts cold
    // and its kernels hit the allocator for rows/masks/tile buffers.
    // "reused arena" is what engine workers do now: one thread-local
    // arena, reset (not freed) between requests, so a warmed worker
    // serves the short-pair mix with zero heap allocations per request.
    {
        seq::Generator gen(4242);
        std::vector<seq::SequencePair> shorts;
        for (int i = 0; i < 2000; ++i)
            shorts.push_back(gen.pair(150, 0.005));
        const engine::CascadeConfig ccfg;

        struct HotPathRun
        {
            u64 block_allocs = 0;
            u64 cells = 0;
            double kernel_us = 0;
            double secs = 0;
        };
        auto run = [&](bool reuse) {
            HotPathRun r;
            ScratchArena persistent;
            Timer t;
            for (const auto &pair : shorts) {
                ScratchArena fresh;
                ScratchArena &arena = reuse ? persistent : fresh;
                if (reuse)
                    persistent.reset();
                const auto out = engine::cascadeAlign(
                    pair, ccfg, /*want_cigar=*/false, CancelToken{}, arena);
                r.cells += out.counts.cells;
                for (const auto &a : out.attempts)
                    r.kernel_us += a.kernel_us;
                if (!reuse)
                    r.block_allocs += fresh.blockAllocs();
            }
            r.secs = t.seconds();
            if (reuse)
                r.block_allocs = persistent.blockAllocs();
            return r;
        };
        // Per-attempt kernel time on 150 bp pairs sits near timer
        // granularity, so single passes are noise-dominated: warm up,
        // then alternate modes and keep each mode's fastest pass.
        run(false);
        run(true);
        auto better = [](const HotPathRun &a, const HotPathRun &b) {
            return a.secs > 0 && a.secs < b.secs ? a : b;
        };
        HotPathRun fresh, reused;
        fresh.secs = reused.secs = 1e30;
        for (int rep = 0; rep < 5; ++rep) {
            fresh = better(run(false), fresh);
            reused = better(run(true), reused);
        }
        const double fresh_gcups =
            bench::kernelGcups(fresh.cells, fresh.kernel_us);
        const double reused_gcups =
            bench::kernelGcups(reused.cells, reused.kernel_us);
        std::printf(
            "\nShort-pair hot path (%zu x 150bp @ 0.5%%, cascade "
            "distance-only, 1 thread):\n"
            "  fresh arena per request:  %.2f allocs/request, %.3f GCUPS, "
            "%.0f pairs/s\n"
            "  reused per-worker arena:  %.2f allocs/request, %.3f GCUPS, "
            "%.0f pairs/s\n"
            "  allocator traffic cut %.0fx; throughput %+.1f%%; "
            "GCUPS delta %+.1f%% (kernel-phase only — allocation cost "
            "lands in setup)\n",
            shorts.size(),
            static_cast<double>(fresh.block_allocs) / shorts.size(),
            fresh_gcups, shorts.size() / fresh.secs,
            static_cast<double>(reused.block_allocs) / shorts.size(),
            reused_gcups, shorts.size() / reused.secs,
            static_cast<double>(fresh.block_allocs) /
                static_cast<double>(std::max<u64>(reused.block_allocs, 1)),
            100.0 * (fresh.secs / reused.secs - 1.0),
            fresh_gcups > 0.0
                ? 100.0 * (reused_gcups - fresh_gcups) / fresh_gcups
                : 0.0);
    }

    // Scalar vs SIMD kernel variants, priced on the kernel phase alone so
    // the comparison isolates the DP inner loop from setup and dispatch.
    // Each leg runs the registry descriptor directly (no engine) on the
    // short-read shape the cascade's filter/banded tiers see most.
    {
        seq::Generator gen(9090);
        std::vector<seq::SequencePair> pairs;
        for (int i = 0; i < 2000; ++i)
            pairs.push_back(gen.pair(150, 0.02));
        const auto &reg = kernel::AlignerRegistry::instance();
        // One context per rep: phase times accumulate in nanoseconds
        // across the whole pass and convert to us once, so per-pair
        // microsecond truncation can't erase 1 us kernels.
        auto measure_once = [&](const kernel::AlignerDescriptor &d,
                                bool want_cigar) {
            kernel::KernelParams params;
            params.want_cigar = want_cigar;
            KernelCounts counts;
            ScratchArena arena;
            KernelContext ctx(CancelToken{}, &counts, &arena);
            for (const auto &p : pairs) {
                arena.reset();
                (void)d.run(p, params, ctx);
            }
            const double kernel_us =
                static_cast<double>(ctx.takePhases().kernel_us);
            return bench::kernelGcups(counts.cells, kernel_us);
        };

        std::printf("\nScalar vs SIMD kernel-phase GCUPS (2000 x 150bp @ "
                    "2%%, 1 thread, best of 5 interleaved; %s backend, "
                    "dispatch %s):\n",
                    simd::builtWithAvx2() ? "AVX2" : "portable-SIMD",
                    kernel::simdDispatchEnabled() ? "prefers *-avx2"
                                                  : "pinned scalar");
        TextTable simd_table({"kernel", "dist GCUPS", "dist(avx2)", "x",
                              "cigar GCUPS", "cigar(avx2)", "x"});
        struct Leg
        {
            const char *scalar;
            const char *simd;
        };
        for (const Leg &leg : {Leg{"bpm", "bpm-avx2"},
                               Leg{"bpm-banded", "bpm-banded-avx2"},
                               Leg{"gmx-full", "gmx-full-avx2"}}) {
            const kernel::AlignerDescriptor *s = reg.find(leg.scalar);
            const kernel::AlignerDescriptor *v = reg.find(leg.simd);
            if (!s || !v)
                continue;
            // Interleave scalar/SIMD reps so transient machine load hits
            // both sides of the ratio instead of one.
            double sd = 0.0, vd = 0.0, sc = 0.0, vc = 0.0;
            for (int rep = 0; rep < 5; ++rep) {
                sd = std::max(sd, measure_once(*s, false));
                vd = std::max(vd, measure_once(*v, false));
                sc = std::max(sc, measure_once(*s, true));
                vc = std::max(vc, measure_once(*v, true));
            }
            simd_table.addRow(
                {leg.scalar, TextTable::num(sd, 3), TextTable::num(vd, 3),
                 sd > 0 ? TextTable::num(vd / sd, 2) : "-",
                 TextTable::num(sc, 3), TextTable::num(vc, 3),
                 sc > 0 ? TextTable::num(vc / sc, 2) : "-"});
        }
        simd_table.print();

        // Inter-pair batching: four <=64bp patterns packed one per lane.
        seq::Generator sgen(777);
        std::vector<seq::SequencePair> tiny;
        for (int i = 0; i < 4000; ++i)
            tiny.push_back(sgen.pair(60, 0.03));
        std::vector<i64> batch_out(tiny.size());
        const kernel::AlignerDescriptor &bpm = reg.require("bpm");
        kernel::KernelParams dist_params;
        dist_params.want_cigar = false;
        double scalar_best = 0.0, batch_best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            {
                KernelCounts counts;
                ScratchArena arena;
                KernelContext ctx(CancelToken{}, &counts, &arena);
                for (const auto &p : tiny) {
                    arena.reset();
                    (void)bpm.run(p, dist_params, ctx);
                }
                const double kernel_us =
                    static_cast<double>(ctx.takePhases().kernel_us);
                scalar_best = std::max(
                    scalar_best, bench::kernelGcups(counts.cells, kernel_us));
            }
            {
                KernelCounts counts;
                ScratchArena arena;
                KernelContext ctx(CancelToken{}, &counts, &arena);
                simd::bpmDistanceBatch4(tiny, batch_out, ctx);
                const double kernel_us =
                    static_cast<double>(ctx.takePhases().kernel_us);
                batch_best = std::max(
                    batch_best, bench::kernelGcups(counts.cells, kernel_us));
            }
        }
        std::printf("  inter-pair batch (4000 x 60bp, 4 lanes/vector): "
                    "scalar %.3f GCUPS, batched %.3f GCUPS (%.2fx)\n",
                    scalar_best, batch_best,
                    scalar_best > 0 ? batch_best / scalar_best : 0.0);

        // Same 150 bp working set as the table above. Batching four pairs
        // per vector keeps every op per-lane (no emulated 256-bit carry on
        // the serial chain), so this is the formulation that decisively
        // beats the scalar kernel on short-read distance screens.
        std::vector<i64> out150(pairs.size());
        auto batch_once = [&]() {
            KernelCounts counts;
            ScratchArena arena;
            KernelContext ctx(CancelToken{}, &counts, &arena);
            simd::bpmDistanceBatch4(pairs, out150, ctx);
            return bench::kernelGcups(
                counts.cells,
                static_cast<double>(ctx.takePhases().kernel_us));
        };
        const kernel::AlignerDescriptor &bpm_scalar = reg.require("bpm");
        double s150 = 0.0, b150 = 0.0;
        for (int rep = 0; rep < 5; ++rep) {
            s150 = std::max(s150, measure_once(bpm_scalar, false));
            b150 = std::max(b150, batch_once());
        }
        std::printf("  inter-pair batch (2000 x 150bp, 3 blocks/lane): "
                    "scalar %.3f GCUPS, batched %.3f GCUPS (%.2fx)\n",
                    s150, b150, s150 > 0 ? b150 / s150 : 0.0);
    }

    // Engine-level lane packing: the same 150 bp distance-only screen
    // through the full submit -> fuse -> lane-pack -> cascade pipeline,
    // batching armed (dispatch decides) vs pinned to the per-request
    // scalar cascade. This is the acceptance leg for the engine
    // integration: the kernel-level batch win above must survive
    // queueing, fusion, and dispatch overhead end to end.
    {
        seq::Generator egen(13579);
        std::vector<seq::SequencePair> screen;
        for (int i = 0; i < 6000; ++i)
            screen.push_back(egen.pair(150, 0.005));
        engine::MetricsSnapshot batched_snap;
        auto engine_rate = [&](bool force_scalar,
                               engine::MetricsSnapshot *snap) {
            kernel::setForceScalarForTest(force_scalar ? 1 : -1);
            engine::EngineConfig cfg;
            cfg.workers = 2;
            cfg.microbatch_max = 16;
            engine::Engine eng(cfg);
            Timer t;
            std::vector<std::future<engine::Engine::AlignOutcome>> futs;
            futs.reserve(screen.size());
            for (const auto &p : screen) {
                engine::SubmitOptions o;
                o.want_cigar = false;
                futs.push_back(eng.submit(p, std::move(o)));
            }
            for (auto &f : futs)
                f.get();
            const double secs = t.seconds();
            if (snap)
                *snap = eng.metrics();
            return static_cast<double>(screen.size()) / secs;
        };
        double scalar_rate = 0.0, batched_rate = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            scalar_rate =
                std::max(scalar_rate, engine_rate(true, nullptr));
            batched_rate =
                std::max(batched_rate, engine_rate(false, &batched_snap));
        }
        kernel::setForceScalarForTest(-1);
        std::printf(
            "  engine end-to-end (6000 x 150bp, 2 workers, distance-only): "
            "forced-scalar %.0f pairs/s, batched %.0f pairs/s (%.2fx)\n"
            "    packed groups=%llu pairs_packed=%llu occupancy(1/2/3/4)="
            "%llu/%llu/%llu/%llu filter-tier %.3f GCUPS\n",
            scalar_rate, batched_rate,
            scalar_rate > 0 ? batched_rate / scalar_rate : 0.0,
            static_cast<unsigned long long>(batched_snap.filter_batches),
            static_cast<unsigned long long>(
                batched_snap.filter_batched_pairs),
            static_cast<unsigned long long>(
                batched_snap.filter_batch_lanes[0]),
            static_cast<unsigned long long>(
                batched_snap.filter_batch_lanes[1]),
            static_cast<unsigned long long>(
                batched_snap.filter_batch_lanes[2]),
            static_cast<unsigned long long>(
                batched_snap.filter_batch_lanes[3]),
            batched_snap
                .tiers[static_cast<unsigned>(engine::Tier::Filter)]
                .gcups);
    }

    std::printf("\nMetrics snapshot (last sweep run: 8 workers, queue "
                "1024):\n%s\n",
                last_snapshot.toJson().c_str());

    std::printf("\nTier hits: filter=%llu banded=%llu full=%llu "
                "downgraded=%llu\n",
                static_cast<unsigned long long>(last_snapshot.tier_hits[0]),
                static_cast<unsigned long long>(last_snapshot.tier_hits[1]),
                static_cast<unsigned long long>(last_snapshot.tier_hits[2]),
                static_cast<unsigned long long>(last_snapshot.tier_hits[3]));

    std::printf("\nPer-tier GCUPS (kernel cells / kernel wall time):\n");
    for (unsigned t = 0; t < engine::kTierCount; ++t) {
        const auto &ts = last_snapshot.tiers[t];
        if (ts.attempts == 0)
            continue;
        std::printf("  %-10s attempts=%-6llu cells=%-12llu gcups=%.3f "
                    "qwait_p99=%.0fus service_p99=%.0fus\n",
                    engine::tierName(static_cast<engine::Tier>(t)),
                    static_cast<unsigned long long>(ts.attempts),
                    static_cast<unsigned long long>(ts.cells), ts.gcups,
                    ts.queue_wait.p99_us, ts.service.p99_us);
    }

    // The same snapshot in the format a Prometheus scraper would ingest.
    std::printf("\n--- OpenMetrics scrape (last sweep run) ---\n%s",
                engine::renderOpenMetrics(last_snapshot).c_str());

    // Wire mode: the same workload shape through the alignment front
    // door — AlignServer + AlignClient over localhost TCP — priced
    // cold and then with the dedup cache warm.
    if (wire_pairs > 0) {
        const auto wire_workload =
            makeWorkload(static_cast<size_t>(wire_pairs), 20230711);
        const double wire_mbases =
            static_cast<double>(totalBases(wire_workload)) / 1e6;

        std::vector<std::unique_ptr<engine::Engine>> engines;
        for (int i = 0; i < 2; ++i) {
            engine::EngineConfig cfg;
            cfg.workers = 4;
            engines.push_back(std::make_unique<engine::Engine>(cfg));
        }
        serve::AlignServerConfig scfg;
        scfg.port = 0;
        scfg.pending_cap = 4096;
        serve::AlignServer server({engines[0].get(), engines[1].get()},
                                  scfg);
        if (Status s = server.start(); !s.ok()) {
            std::fprintf(stderr, "wire server failed: %s\n",
                         s.toString().c_str());
            return 1;
        }

        serve::ClientConfig ccfg;
        ccfg.port = server.port();
        ccfg.client_id = "bench";
        ccfg.window = 128;
        serve::AlignClient client(ccfg);
        if (Status s = client.connect(); !s.ok()) {
            std::fprintf(stderr, "wire connect failed: %s\n",
                         s.toString().c_str());
            return 1;
        }

        double cold_s = 0, warm_s = 0;
        for (int pass = 0; pass < 2; ++pass) {
            Timer t;
            const auto results =
                client.alignBatch(wire_workload, /*want_cigar=*/false);
            const double secs = t.seconds();
            size_t ok = 0;
            for (const auto &r : results)
                ok += r.ok() ? 1 : 0;
            if (ok != results.size()) {
                std::fprintf(stderr, "wire pass %d: %zu/%zu failed\n",
                             pass, results.size() - ok, results.size());
                return 1;
            }
            (pass == 0 ? cold_s : warm_s) = secs;
        }

        const auto snap = server.serveSnapshot();
        std::printf(
            "\nWire path (%ld pairs over localhost TCP, 2 engines x 4 "
            "workers, distance-only):\n"
            "  cold: %8.0f pairs/s  %6.2f Mbases/s\n"
            "  warm: %8.0f pairs/s  %6.2f Mbases/s  (dedup cache)\n"
            "  cache: hits=%llu coalesced=%llu misses=%llu "
            "hit_rate=%.2f  bytes_in=%llu bytes_out=%llu\n",
            wire_pairs, wire_pairs / cold_s, wire_mbases / cold_s,
            wire_pairs / warm_s, wire_mbases / warm_s,
            static_cast<unsigned long long>(snap.cache_hits),
            static_cast<unsigned long long>(snap.cache_coalesced),
            static_cast<unsigned long long>(snap.cache_misses),
            snap.cacheHitRate(),
            static_cast<unsigned long long>(snap.bytes_in),
            static_cast<unsigned long long>(snap.bytes_out));

        if (wire_hold) {
            std::signal(SIGINT, onSignal);
            std::signal(SIGTERM, onSignal);
            std::printf("align server holding on 127.0.0.1:%u — try "
                        "examples/align_client --port %u; "
                        "SIGINT/SIGTERM to stop\n",
                        static_cast<unsigned>(server.port()),
                        static_cast<unsigned>(server.port()));
            std::fflush(stdout);
            while (!g_stop.load())
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        server.stop();
    }

    // Scrape mode: replay the workload on a fresh engine and serve its
    // live observability surfaces until a signal arrives.
    if (serve_port >= 0) {
        engine::EngineConfig cfg;
        cfg.workers = 4;
        cfg.slow_request_threshold = std::chrono::milliseconds(5);
        engine::Engine eng(cfg);
        for (const auto &pair : workload) {
            engine::SubmitOptions opts;
            opts.want_cigar = false;
            (void)eng.submit(pair, std::move(opts));
        }
        eng.drain();
        engine::ServerConfig scfg;
        scfg.port = static_cast<u16>(serve_port);
        engine::MetricsServer server(eng, scfg);
        if (Status s = server.start(); !s.ok()) {
            std::fprintf(stderr, "serve failed: %s\n",
                         s.toString().c_str());
            return 1;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::printf("serving on http://127.0.0.1:%u "
                    "(/metrics /vars /trace /healthz); "
                    "SIGINT/SIGTERM to stop\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        while (!g_stop.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        server.stop();
    }
    return 0;
}
