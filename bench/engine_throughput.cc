/**
 * @file
 * Engine throughput sweep: workers x queue capacity on a mixed-divergence
 * synthetic workload, plus a metrics snapshot of the largest run.
 *
 * This is the software analogue of the paper's multicore scaling study
 * (§7.2, Fig. 12): inter-sequence parallelism over independent pairs, one
 * persistent worker per "core". Rows report sustained throughput
 * (pairs/s and Mbases/s) for the full submit -> cascade -> future
 * pipeline, including queueing and dispatch cost.
 *
 * Runs argument-free. Speedup is relative to the 1-worker row of the same
 * queue capacity; on machines with fewer hardware threads than the row's
 * worker count, speedup saturates at the hardware.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "common/timer.hh"
#include "engine/engine.hh"
#include "sequence/generator.hh"

using namespace gmx;

namespace {

/**
 * Mixed-divergence workload: one third short reads at low error (filter
 * tier), one third moderate divergence (banded tier), one third high
 * divergence (escalates to Full(GMX)).
 */
std::vector<seq::SequencePair>
makeWorkload(size_t pairs, u64 seed)
{
    seq::Generator gen(seed);
    std::vector<seq::SequencePair> out;
    out.reserve(pairs);
    struct Mix
    {
        size_t length;
        double error;
    };
    const Mix mixes[] = {{150, 0.005}, {300, 0.05}, {300, 0.25}};
    for (size_t i = 0; i < pairs; ++i) {
        const Mix &mix = mixes[i % 3];
        out.push_back(gen.pair(mix.length, mix.error));
    }
    return out;
}

size_t
totalBases(const std::vector<seq::SequencePair> &pairs)
{
    size_t bases = 0;
    for (const auto &p : pairs)
        bases += p.pattern.size() + p.text.size();
    return bases;
}

} // namespace

int
main()
{
    const size_t kPairs = 1200;
    const auto workload = makeWorkload(kPairs, 20230711);
    const double mbases =
        static_cast<double>(totalBases(workload)) / 1e6;

    std::printf("Engine throughput sweep: %zu mixed-divergence pairs "
                "(150bp@0.5%%, 300bp@5%%, 300bp@25%%), cascade routing, "
                "distance-only\n\n",
                kPairs);

    TextTable table({"workers", "queue", "time_s", "pairs/s", "Mbases/s",
                     "speedup", "steals", "microbatches"});

    engine::MetricsSnapshot last_snapshot;
    for (size_t queue_cap : {64u, 1024u}) {
        double base_rate = 0.0;
        for (unsigned workers : {1u, 2u, 4u, 8u}) {
            engine::EngineConfig cfg;
            cfg.workers = workers;
            cfg.queue_capacity = queue_cap;
            cfg.backpressure = engine::Backpressure::Block;
            engine::Engine eng(cfg);

            Timer timer;
            std::vector<std::future<align::AlignResult>> futures;
            futures.reserve(workload.size());
            for (const auto &pair : workload)
                futures.push_back(eng.submit(pair, /*want_cigar=*/false));
            for (auto &f : futures)
                f.get();
            const double secs = timer.seconds();

            const double rate = static_cast<double>(kPairs) / secs;
            if (workers == 1)
                base_rate = rate;
            const auto snap = eng.metrics();
            table.addRow({std::to_string(workers),
                          std::to_string(queue_cap), TextTable::num(secs, 3),
                          TextTable::num(rate, 0),
                          TextTable::num(mbases / secs, 2),
                          TextTable::num(rate / base_rate, 2),
                          TextTable::num(static_cast<long long>(
                              snap.pool_steals)),
                          TextTable::num(static_cast<long long>(
                              snap.microbatches))});
            last_snapshot = snap;
        }
    }
    table.print();

    std::printf("\nMetrics snapshot (last run: 8 workers, queue 1024):\n%s\n",
                last_snapshot.toJson().c_str());

    std::printf("\nTier hits: filter=%llu banded=%llu full=%llu\n",
                static_cast<unsigned long long>(last_snapshot.tier_hits[0]),
                static_cast<unsigned long long>(last_snapshot.tier_hits[1]),
                static_cast<unsigned long long>(last_snapshot.tier_hits[2]));
    return 0;
}
