/**
 * @file
 * Energy-efficiency companion to Fig. 10/13: energy per alignment across
 * the software configurations. The paper argues GMX's efficiency comes
 * from replacing millions of general-purpose instructions with thousands
 * of accesses to a 0.02 mm2 datapath and from slashing memory traffic;
 * this bench quantifies both effects with the energy model.
 */

#include "bench_util.hh"
#include "sim/energy.hh"
#include "sim/workloads.hh"

namespace {

using namespace gmx;
using namespace gmx::sim;

const std::vector<Algo> kAlgos = {
    Algo::FullDp,        Algo::FullBpm, Algo::BandedEdlib,
    Algo::WindowedGenasm, Algo::FullGmx, Algo::BandedGmx,
    Algo::WindowedGmx,
};

} // namespace

int
main()
{
    gmx::bench::banner(
        "Energy per alignment (22nm-class model)",
        "GMX's area/power footprint (Fig. 13: 8.47 mW) plus its memory-"
        "traffic reduction translate into orders-of-magnitude energy "
        "savings per alignment");

    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const struct
    {
        const char *label;
        seq::Dataset ds;
        size_t samples;
    } groups[] = {
        {"150 bp @ 5%", seq::makeDataset("150bp", 150, 0.05, 3, 31), 2},
        {"10 kbp @ 15%", seq::makeDataset("10kbp", 10000, 0.15, 1, 37), 1},
    };

    for (const auto &g : groups) {
        std::printf("\n-- %s --\n", g.label);
        TextTable table({"configuration", "core nJ", "GMX nJ", "memory nJ",
                         "total nJ", "vs Full(GMX)"});
        double gmx_total = 0;
        std::vector<EnergyResult> results;
        for (Algo a : kAlgos) {
            WorkloadOptions opts;
            opts.samples = g.samples;
            const auto profile = profileForDataset(a, g.ds, opts);
            const EnergyResult e = energyPerAlignment(profile, mem);
            results.push_back(e);
            if (a == Algo::FullGmx)
                gmx_total = e.total_nj;
        }
        for (size_t i = 0; i < kAlgos.size(); ++i) {
            const auto &e = results[i];
            table.addRow({algoName(kAlgos[i]),
                          TextTable::num(e.core_nj, 1),
                          TextTable::num(e.gmx_nj, 1),
                          TextTable::num(e.memory_nj, 1),
                          TextTable::num(e.total_nj, 1),
                          TextTable::num(e.total_nj / gmx_total, 1)});
        }
        table.print();
    }

    std::printf("\nExpected shape: the GMX configurations shift energy "
                "from the core columns into the small GMX column and "
                "carry far less memory energy; total energy tracks the "
                "Fig. 10 instruction-count gaps.\n");
    return 0;
}
