/**
 * @file
 * Figure 15 reproduction: per-PE throughput of a single RTL-InOrder core
 * with one GMX unit vs. one GenASM vault and one Darwin GACT array, all
 * running the same Windowed algorithm (W = 96, O = 32), plus the
 * extra-silicon-area comparison.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "hw/asic.hh"
#include "hw/dsa.hh"
#include "hw/genasm_model.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

int
main()
{
    using namespace gmx;
    using namespace gmx::sim;

    gmx::bench::banner(
        "Figure 15: throughput per PE vs. GenASM and Darwin (W=96, O=32)",
        "GMX performs 1.3-1.9x better than GenASM and 7.2-16.2x better "
        "than Darwin per PE, with 15.46x / 26.29x less extra area");

    const CoreConfig core = CoreConfig::rtlInOrder();
    const MemSystemConfig mem = MemSystemConfig::rtlLike();
    const auto genasm = hw::genasmVault(96);
    const auto darwin = hw::darwinGact(96);

    GeoMean vs_genasm, vs_darwin;
    TextTable table({"dataset", "Core+GMX al/s", "GenASM al/s",
                     "GenASM behav al/s", "Darwin al/s", "GMX/GenASM",
                     "GMX/Darwin"});
    const hw::GenasmVaultModel vault({96, 32});

    auto run = [&](const seq::Dataset &ds, size_t samples) {
        WorkloadOptions opts;
        opts.samples = samples;
        opts.window = 96;
        opts.overlap = 32;
        const KernelProfile p =
            profileForDataset(Algo::WindowedGmx, ds, opts);
        const double gmx_aps = evaluate(p, core, mem).alignments_per_second;
        const double gen_aps =
            hw::alignmentsPerSecond(genasm, ds.length, 96, 32);
        // Behavioural cross-check: actually execute the vault's windowed
        // Bitap on a sample pair and charge microarchitectural cycles.
        const double gen_behav_aps =
            vault.align(ds.pairs[0].pattern, ds.pairs[0].text)
                .alignmentsPerSecond(genasm.clock_ghz);
        const double dar_aps =
            hw::alignmentsPerSecond(darwin, ds.length, 96, 32);
        vs_genasm.add(gmx_aps / gen_aps);
        vs_darwin.add(gmx_aps / dar_aps);
        table.addRow({ds.name, gmx::bench::fmtThroughput(gmx_aps),
                      gmx::bench::fmtThroughput(gen_aps),
                      gmx::bench::fmtThroughput(gen_behav_aps),
                      gmx::bench::fmtThroughput(dar_aps),
                      TextTable::num(gmx_aps / gen_aps, 2),
                      TextTable::num(gmx_aps / dar_aps, 2)});
    };

    for (const auto &ds : gmx::bench::benchShortDatasets(3))
        run(ds, 2);
    for (const auto &ds : gmx::bench::benchLongDatasets(2, 10000))
        run(ds, 1);
    table.print();

    std::printf("\nGeomean: GMX/GenASM %.2fx (paper 1.3-1.9x), GMX/Darwin "
                "%.2fx (paper 7.2-16.2x)\n",
                vs_genasm.value(), vs_darwin.value());

    const auto gmx_rep = hw::gmxAsicReport(32, 1.0);
    std::printf("\nExtra silicon area per PE:\n");
    std::printf("  GMX unit  : %.4f mm2\n", gmx_rep.total_area_mm2);
    std::printf("  GenASM    : %.3f mm2 (%.1fx GMX; paper 15.46x)\n",
                genasm.area_mm2, genasm.area_mm2 / gmx_rep.total_area_mm2);
    std::printf("  Darwin    : %.3f mm2 (%.1fx GMX; paper 26.29x)\n",
                darwin.area_mm2, darwin.area_mm2 / gmx_rep.total_area_mm2);
    return 0;
}
