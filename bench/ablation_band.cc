/**
 * @file
 * Banded(GMX) design ablation: sweeping the band budget k trades compute
 * (tiles ~ m*B/T^2, §4.1) against accuracy (the envelope overestimates
 * when the optimal path leaves the band). This quantifies the heuristic
 * contract behind Fig. 4.b.2 and the k-doubling driver's design.
 */

#include "align/nw.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "gmx/banded.hh"


namespace {

/**
 * Structural-variant pair: the pattern deletes one @p sv-length block of
 * the text and inserts a random block elsewhere, plus light point errors.
 * Net length is preserved, but the optimal path detours @p sv cells off
 * the main diagonal between the two events — exactly the regime where a
 * fixed corridor must either widen or lose the path.
 */
gmx::seq::SequencePair
structuralVariantPair(gmx::seq::Generator &gen, size_t len, size_t sv)
{
    using gmx::seq::Sequence;
    const Sequence text = gen.random(len);
    const size_t del_pos = len / 4;
    const size_t ins_pos = 2 * len / 3;
    std::string p = text.str().substr(0, del_pos) +
                    text.str().substr(del_pos + sv,
                                      ins_pos - del_pos - sv) +
                    gen.random(sv).str() + text.str().substr(ins_pos);
    return {gen.mutate(Sequence(p), 0.02), text};
}

} // namespace

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Ablation: Banded(GMX) band-width sweep",
        "band heuristics reduce computation at the risk of missing the "
        "optimal alignment (paper §3.1/§4.1); the k-doubling driver "
        "restores exactness");

    // Structural-variant pairs: a 160 bp block deletion plus a 160 bp
    // block insertion force the optimal path ~160 cells off the diagonal
    // between the events — the regime where fixed corridors lose paths.
    seq::Dataset ds;
    ds.name = "3000bp+160bp-SV";
    {
        seq::Generator gen(555);
        for (int i = 0; i < 4; ++i)
            ds.pairs.push_back(structuralVariantPair(gen, 3000, 160));
    }

    // Reference distances.
    std::vector<i64> exact;
    for (const auto &pair : ds.pairs)
        exact.push_back(align::nwDistance(pair.pattern, pair.text));

    TextTable table({"band k", "cells computed", "vs full %", "found",
                     "mean distance error", "exact fraction"});
    const double full_cells = 3000.0 * 3000.0;
    for (i64 k : {64, 128, 256, 512, 1024, 2048}) {
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        size_t found = 0, exact_hits = 0;
        double err_sum = 0;
        for (size_t i = 0; i < ds.pairs.size(); ++i) {
            const auto res = core::bandedGmxAlign(
                ds.pairs[i].pattern, ds.pairs[i].text, k,
                /*want_cigar=*/false, 32,
                /*enforce_bound=*/false, ctx);
            if (!res.found())
                continue;
            ++found;
            err_sum += static_cast<double>(res.distance - exact[i]);
            exact_hits += res.distance == exact[i];
        }
        const double cells =
            static_cast<double>(counts.cells) / ds.pairs.size();
        table.addRow(
            {TextTable::num(static_cast<long long>(k)),
             TextTable::num(static_cast<long long>(cells)),
             TextTable::num(100.0 * cells / full_cells, 1),
             std::to_string(found) + "/" + std::to_string(ds.pairs.size()),
             TextTable::num(found ? err_sum / found : 0.0, 2),
             TextTable::num(found ? static_cast<double>(exact_hits) / found
                                  : 0.0,
                            2)});
    }
    table.print();

    std::printf("\nExpected shape: small bands compute a few %% of the "
                "matrix but overestimate the distance (mean error > 0); "
                "once k exceeds the true distance (~%lld here) the result "
                "is exact — which is what bandedGmxAuto exploits.\n",
                static_cast<long long>(exact[0]));
    return 0;
}
