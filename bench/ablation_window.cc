/**
 * @file
 * Windowed(GMX) design ablation: sweeping the window/overlap geometry
 * (W, O) trades re-computation (overlap fraction) against the corridor's
 * ability to track the optimal path (paper §4.1, Fig. 4.b.3; the DSA
 * comparison's W=96, O=32 point).
 */

#include "align/nw.hh"
#include "bench_util.hh"
#include "gmx/windowed.hh"


namespace {

/**
 * Structural-variant pair: the pattern deletes one @p sv-length block of
 * the text and inserts a random block elsewhere, plus light point errors.
 * Net length is preserved, but the optimal path detours @p sv cells off
 * the main diagonal between the two events — exactly the regime where a
 * fixed corridor must either widen or lose the path.
 */
gmx::seq::SequencePair
structuralVariantPair(gmx::seq::Generator &gen, size_t len, size_t sv)
{
    using gmx::seq::Sequence;
    const Sequence text = gen.random(len);
    const size_t del_pos = len / 4;
    const size_t ins_pos = 2 * len / 3;
    std::string p = text.str().substr(0, del_pos) +
                    text.str().substr(del_pos + sv,
                                      ins_pos - del_pos - sv) +
                    gen.random(sv).str() + text.str().substr(ins_pos);
    return {gen.mutate(Sequence(p), 0.02), text};
}

} // namespace

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Ablation: Windowed(GMX) window/overlap sweep",
        "small windows minimize state (registers!) but lose noisy paths; "
        "overlap recovers accuracy at the cost of recomputation");

    // Structural-variant pairs: a 160 bp block deletion plus a 160 bp
    // block insertion force the optimal path ~160 cells off the diagonal
    // between the events — the regime where fixed corridors lose paths.
    seq::Dataset ds;
    ds.name = "2000bp+160bp-SV";
    {
        seq::Generator gen(777);
        for (int i = 0; i < 4; ++i)
            ds.pairs.push_back(structuralVariantPair(gen, 2000, 160));
    }
    std::vector<i64> exact;
    for (const auto &pair : ds.pairs)
        exact.push_back(align::nwDistance(pair.pattern, pair.text));

    struct Geometry
    {
        size_t w, o;
    };
    const Geometry geoms[] = {
        {64, 16}, {64, 32}, {96, 32}, {96, 48}, {128, 32}, {192, 64},
    };

    TextTable table({"W", "O", "cells/alignment", "mean dist error",
                     "exact fraction"});
    for (const auto &g : geoms) {
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        double err_sum = 0;
        size_t exact_hits = 0;
        for (size_t i = 0; i < ds.pairs.size(); ++i) {
            const auto res = core::windowedGmxAlign(
                ds.pairs[i].pattern, ds.pairs[i].text, 32, {g.w, g.o},
                ctx);
            err_sum += static_cast<double>(res.distance - exact[i]);
            exact_hits += res.distance == exact[i];
        }
        table.addRow(
            {std::to_string(g.w), std::to_string(g.o),
             TextTable::num(static_cast<long long>(
                 counts.cells / ds.pairs.size())),
             TextTable::num(err_sum / ds.pairs.size(), 2),
             TextTable::num(
                 static_cast<double>(exact_hits) / ds.pairs.size(), 2)});
    }
    table.print();

    std::printf("\nExpected shape: computed cells grow ~W^2/(W-O); wider "
                "windows track more of the 160-cell structural detour "
                "(smaller distance error), but no fixed corridor recovers "
                "it fully — the accuracy/efficiency trade-off that "
                "separates Windowed from the exact Full/auto-Banded "
                "configurations.\n");
    return 0;
}
