/**
 * @file
 * Figure 4 companion: the DP-matrix regions each GMX-accelerated
 * strategy computes and stores. Fig. 4 is the paper's didactic picture;
 * this bench prints the measured tile/cell/storage counts behind it for
 * one concrete alignment, demonstrating the Full / Banded / Windowed
 * compute-and-memory envelopes of §4.1.
 */

#include "align/nw.hh"
#include "bench_util.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Figure 4 companion: computed/stored DP-elements per strategy",
        "Full computes nm/T^2 tiles storing edges only; Banded computes "
        "m*B/T^2 tiles; Windowed computes overlapping W x W windows with "
        "register-resident state");

    const auto ds = seq::makeDataset("4kbp-e10%", 4000, 0.10, 1, 991);
    const auto &pair = ds.pairs[0];
    const double n = static_cast<double>(pair.pattern.size());
    const double m = static_cast<double>(pair.text.size());
    const i64 exact = align::nwDistance(pair.pattern, pair.text);

    TextTable table({"strategy", "cells computed", "% of matrix",
                     "DP-elements stored", "distance"});
    const double matrix = n * m;

    auto add_row = [&](const char *name, const align::KernelCounts &c,
                       double stored, i64 distance) {
        table.addRow({name,
                      TextTable::num(static_cast<long long>(c.cells)),
                      TextTable::num(100.0 * static_cast<double>(c.cells) /
                                         matrix,
                                     1),
                      TextTable::num(static_cast<long long>(stored)),
                      TextTable::num(static_cast<long long>(distance))});
    };

    {
        // Classical DP stores every element (the paper's reference point).
        table.addRow({"Full(DP)",
                      TextTable::num(static_cast<long long>(matrix)),
                      "100.0",
                      TextTable::num(static_cast<long long>(matrix)),
                      TextTable::num(static_cast<long long>(exact))});
    }
    {
        align::KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        const auto res = core::fullGmxAlign(pair.pattern, pair.text, 32, ctx);
        // Edge matrix: 2T elements per tile (T right + T bottom).
        const double tiles = (n / 32) * (m / 32);
        add_row("Full(GMX)", c, tiles * 64, res.distance);
    }
    {
        align::KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        const auto res =
            core::bandedGmxAuto(pair.pattern, pair.text, true, 64, 32, ctx);
        const double band_tiles =
            (n / 32) * (2.0 * (static_cast<double>(res.distance) / 32 + 2) +
                        1);
        add_row("Banded(GMX, auto-k)", c, band_tiles * 64, res.distance);
    }
    {
        align::KernelCounts c;
        KernelContext ctx(CancelToken{}, &c);
        const auto res = core::windowedGmxAlign(pair.pattern, pair.text, 32,
                                                {96, 32}, ctx);
        // Windowed keeps one window of edges (registers) + the CIGAR.
        add_row("Windowed(GMX)", c, 9 * 64, res.distance);
    }
    table.print();

    std::printf("\nExpected shape (Fig. 4): Full touches 100%% of the "
                "matrix but stores T-fold less than DP; Banded computes "
                "only the diagonal band; Windowed recomputes the overlap "
                "(cells above the committed corridor) with near-zero "
                "storage, trading exactness for it.\n");
    return 0;
}
