/**
 * @file
 * Figure 14 reproduction: throughput comparison on the RTL-InOrder SoC
 * (Table 1 memory hierarchy: 32 KB L1d, 512 KB LLC, 1 GHz). The limited
 * hierarchy amplifies GMX's memory-footprint advantage: Full(BPM) becomes
 * memory-bound and the average Full(GMX)/Full(BPM) improvement grows to
 * ~45x (1.5x larger than on gem5-InOrder).
 */

#include <map>

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace {

using namespace gmx;
using namespace gmx::sim;

const std::vector<Algo> kAlgos = {
    Algo::FullDp,        Algo::FullBpm, Algo::BandedEdlib,
    Algo::WindowedGenasm, Algo::FullGmx, Algo::BandedGmx,
    Algo::WindowedGmx,
};

} // namespace

int
main()
{
    gmx::bench::banner(
        "Figure 14: RTL-InOrder throughput comparison",
        "results consistent with gem5-InOrder; Full(BPM) strongly limited "
        "by memory on the edge SoC; Full(GMX)/Full(BPM) averages ~45x");

    const CoreConfig core = CoreConfig::rtlInOrder();
    const MemSystemConfig mem = MemSystemConfig::rtlLike();

    std::map<Algo, std::vector<double>> tp;
    const struct
    {
        const char *label;
        std::vector<seq::Dataset> sets;
        size_t samples;
    } groups[] = {
        {"short", gmx::bench::benchShortDatasets(3), 2},
        {"long", gmx::bench::benchLongDatasets(2, 10000), 1},
    };

    for (const auto &group : groups) {
        std::printf("\n-- %s sequences --\n", group.label);
        TextTable table([&] {
            std::vector<std::string> headers = {"dataset"};
            for (Algo a : kAlgos)
                headers.push_back(algoName(a));
            return headers;
        }());
        for (const auto &ds : group.sets) {
            std::vector<std::string> row = {ds.name};
            for (Algo a : kAlgos) {
                WorkloadOptions opts;
                opts.samples = group.samples;
                const KernelProfile p = profileForDataset(a, ds, opts);
                const double aps =
                    evaluate(p, core, mem).alignments_per_second;
                tp[a].push_back(aps);
                row.push_back(gmx::bench::fmtThroughput(aps));
            }
            table.addRow(row);
        }
        table.print();
    }

    GeoMean gmx_vs_bpm;
    for (size_t i = 0; i < tp[Algo::FullGmx].size(); ++i)
        gmx_vs_bpm.add(tp[Algo::FullGmx][i] / tp[Algo::FullBpm][i]);
    std::printf("\nFull(GMX) / Full(BPM) geomean on the RTL SoC: %.1fx "
                "(paper: ~45.2x average)\n",
                gmx_vs_bpm.value());
    return 0;
}
