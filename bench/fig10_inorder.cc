/**
 * @file
 * Figure 10 reproduction: alignment throughput of the seven software
 * configurations on the gem5-InOrder platform, for the short-sequence
 * (100-300 bp @ 5% error) and long-sequence (1-10 kbp @ 15% error)
 * workloads, followed by the speedup summary the paper quotes.
 */

#include <map>

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace {

using namespace gmx;
using namespace gmx::sim;

const std::vector<Algo> kAlgos = {
    Algo::FullDp,        Algo::FullBpm, Algo::BandedEdlib,
    Algo::WindowedGenasm, Algo::FullGmx, Algo::BandedGmx,
    Algo::WindowedGmx,
};

using ThroughputMap = std::map<Algo, std::vector<double>>;

ThroughputMap
runGroup(const std::vector<seq::Dataset> &group, const CoreConfig &core,
         const MemSystemConfig &mem, size_t samples)
{
    ThroughputMap out;
    TextTable table([&] {
        std::vector<std::string> headers = {"dataset"};
        for (Algo a : kAlgos)
            headers.push_back(algoName(a));
        return headers;
    }());

    for (const auto &ds : group) {
        std::vector<std::string> row = {ds.name};
        for (Algo a : kAlgos) {
            WorkloadOptions opts;
            opts.samples = samples;
            const KernelProfile profile = profileForDataset(a, ds, opts);
            const PerfResult res = evaluate(profile, core, mem);
            out[a].push_back(res.alignments_per_second);
            row.push_back(gmx::bench::fmtThroughput(
                res.alignments_per_second));
        }
        table.addRow(row);
    }
    table.print();
    return out;
}

double
geomeanRatio(const std::vector<double> &num, const std::vector<double> &den)
{
    GeoMean g;
    for (size_t i = 0; i < num.size(); ++i)
        g.add(num[i] / den[i]);
    return g.value();
}

void
summary(const ThroughputMap &tp, const char *label, double full_dp,
        double full_bpm, double banded, double windowed)
{
    std::printf("\nSpeedup summary (%s sequences) — geomean, "
                "[paper's figure]\n",
                label);
    TextTable t({"comparison", "measured", "paper"});
    t.addRow({"Full(GMX) / Full(DP)",
              TextTable::num(geomeanRatio(tp.at(Algo::FullGmx),
                                          tp.at(Algo::FullDp)),
                             0),
              TextTable::num(full_dp, 0)});
    t.addRow({"Full(GMX) / Full(BPM)",
              TextTable::num(geomeanRatio(tp.at(Algo::FullGmx),
                                          tp.at(Algo::FullBpm)),
                             0),
              TextTable::num(full_bpm, 0)});
    t.addRow({"Banded(GMX) / Banded(Edlib)",
              TextTable::num(geomeanRatio(tp.at(Algo::BandedGmx),
                                          tp.at(Algo::BandedEdlib)),
                             0),
              TextTable::num(banded, 0)});
    t.addRow({"Windowed(GMX) / Windowed(GenASM-CPU)",
              TextTable::num(geomeanRatio(tp.at(Algo::WindowedGmx),
                                          tp.at(Algo::WindowedGenasm)),
                             0),
              TextTable::num(windowed, 0)});
    t.print();
}

} // namespace

int
main()
{
    gmx::bench::banner(
        "Figure 10: gem5-InOrder throughput comparison (alignments/s)",
        "short: Full(GMX) 597x vs Full(DP), 18x vs Full(BPM); "
        "Banded(GMX) 267x; Windowed(GMX) 3809x. long: 2436x / 42x / "
        "372x / 13253x");

    const CoreConfig core = CoreConfig::gem5InOrder();
    const MemSystemConfig mem = MemSystemConfig::gem5Like();

    std::printf("\n-- Short sequences (100-300 bp, 5%% error) --\n");
    const auto short_tp =
        runGroup(gmx::bench::benchShortDatasets(3), core, mem, 2);
    std::printf("\n-- Long sequences (1-10 kbp, 15%% error) --\n");
    const auto long_tp =
        runGroup(gmx::bench::benchLongDatasets(2, 10000), core, mem, 1);

    summary(short_tp, "short", 597, 18, 267, 3809);
    summary(long_tp, "long", 2436, 42, 372, 13253);
    return 0;
}
