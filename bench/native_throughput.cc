/**
 * @file
 * Native (host wall-clock) microbenchmarks of every aligner and of the
 * GMX-Tile kernel, via google-benchmark. These are not the paper's
 * simulated numbers — they anchor the instruction-count ratios the
 * performance model consumes and catch performance regressions in the
 * kernels themselves.
 */

#include <benchmark/benchmark.h>

#include "align/affine.hh"
#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/nw.hh"
#include "align/windowed.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/tile.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

seq::SequencePair
pairFor(size_t len, double err)
{
    seq::Generator gen(123456 + len);
    return gen.pair(len, err);
}

void
BM_TileCompute(benchmark::State &state)
{
    seq::Generator gen(1);
    const auto p = gen.random(32);
    const auto t = gen.random(32);
    core::TileInput in;
    in.pattern = p.codes().data();
    in.tp = 32;
    in.text = t.codes().data();
    in.tt = 32;
    in.dv_in = core::DeltaVec::ones(32);
    in.dh_in = core::DeltaVec::ones(32);
    for (auto _ : state) {
        auto out = core::tileCompute(in);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 1024); // DP-elems
}
BENCHMARK(BM_TileCompute);

template <typename Fn>
void
alignLoop(benchmark::State &state, size_t len, double err, Fn &&fn)
{
    const auto pair = pairFor(len, err);
    for (auto _ : state) {
        auto out = fn(pair);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FullDp(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::nwAlign(p.pattern, p.text).distance;
              });
}
BENCHMARK(BM_FullDp)->Arg(150)->Arg(1000);

void
BM_FullBpm(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::bpmAlign(p.pattern, p.text).distance;
              });
}
BENCHMARK(BM_FullBpm)->Arg(150)->Arg(1000)->Arg(3000);

void
BM_BandedEdlib(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::edlibAlign(p.pattern, p.text).distance;
              });
}
BENCHMARK(BM_BandedEdlib)->Arg(150)->Arg(1000)->Arg(3000);

void
BM_WindowedGenasmCpu(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::genasmCpuAlign(p.pattern, p.text, {96, 32})
                      .distance;
              });
}
BENCHMARK(BM_WindowedGenasmCpu)->Arg(150)->Arg(1000);

void
BM_FullGmxEmulated(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return core::fullGmxAlign(p.pattern, p.text, 32).distance;
              });
}
BENCHMARK(BM_FullGmxEmulated)->Arg(150)->Arg(1000)->Arg(3000);

void
BM_BandedGmxEmulated(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return core::bandedGmxAuto(p.pattern, p.text, false)
                      .distance;
              });
}
BENCHMARK(BM_BandedGmxEmulated)->Arg(150)->Arg(1000)->Arg(3000);

void
BM_WindowedGmxEmulated(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return core::windowedGmxAlign(p.pattern, p.text, 32,
                                                {96, 32})
                      .distance;
              });
}
BENCHMARK(BM_WindowedGmxEmulated)->Arg(150)->Arg(1000)->Arg(3000);

void
BM_AffineExact(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::affineScore(p.pattern, p.text,
                                            align::AffinePenalties());
              });
}
BENCHMARK(BM_AffineExact)->Arg(150)->Arg(1000);

void
BM_Bitap(benchmark::State &state)
{
    alignLoop(state, static_cast<size_t>(state.range(0)), 0.05,
              [](const seq::SequencePair &p) {
                  return align::bitapAlignAuto(p.pattern, p.text).distance;
              });
}
BENCHMARK(BM_Bitap)->Arg(150);

} // namespace

BENCHMARK_MAIN();
