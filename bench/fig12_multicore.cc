/**
 * @file
 * Figure 12 reproduction: multicore scalability (top panel: speedup at
 * 1/2/4/8/16 threads) and DRAM bandwidth demand of 16-thread executions
 * across sequence lengths (bottom panel), on the 16-core gem5-OoO system
 * with two DDR4 controllers (47.8 GB/s peak).
 */

#include "bench_util.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace {

using namespace gmx;
using namespace gmx::sim;

const std::vector<Algo> kAlgos = {
    Algo::FullDp,        Algo::FullBpm, Algo::BandedEdlib,
    Algo::WindowedGenasm, Algo::FullGmx, Algo::BandedGmx,
    Algo::WindowedGmx,
};

} // namespace

int
main()
{
    gmx::bench::banner(
        "Figure 12: 16-core scalability and memory bandwidth (gem5-OoO)",
        "all configurations scale ~linearly except Full(BPM) at long "
        "lengths (DDR4 bandwidth-bound, >65% of peak) and a slight "
        "degradation for Windowed(GMX)");

    const CoreConfig core = CoreConfig::gem5OutOfOrder();
    const MemSystemConfig mem = MemSystemConfig::gem5Like();
    const std::vector<unsigned> threads = {1, 2, 4, 8, 16};

    // ---- Top panel: speedups at a cache-resident and a cache-busting
    // length (the paper's exceptions emerge at the longer one) ----
    const seq::Dataset panels[] = {
        seq::makeDataset("1kbp-e15%", 1000, 0.15, 2, 76),
        seq::makeDataset("10kbp-e15%", 10000, 0.15, 2, 77),
    };
    for (const auto &ds : panels) {
        std::printf("\n-- Speedup vs threads (%s) --\n", ds.name.c_str());
        TextTable top([&] {
            std::vector<std::string> headers = {"configuration"};
            for (unsigned t : threads)
                headers.push_back(std::to_string(t) + "T");
            return headers;
        }());
        for (Algo a : kAlgos) {
            WorkloadOptions opts;
            opts.samples = 1;
            const KernelProfile p = profileForDataset(a, ds, opts);
            const MulticoreResult mc =
                evaluateMulticore(p, core, mem, threads);
            std::vector<std::string> row = {algoName(a)};
            for (double s : mc.speedup)
                row.push_back(TextTable::num(s, 1));
            top.addRow(row);
        }
        top.print();
    }

    // ---- Bottom panel: 16-thread bandwidth across lengths ----
    std::printf("\n-- DRAM bandwidth of 16-thread executions (GB/s, peak "
                "%.1f) --\n",
                mem.dram_bw_gbps);
    const auto longs = gmx::bench::benchLongDatasets(2, 10000);
    TextTable bottom([&] {
        std::vector<std::string> headers = {"configuration"};
        for (const auto &ds : longs)
            headers.push_back(ds.name);
        return headers;
    }());
    for (Algo a : kAlgos) {
        std::vector<std::string> row = {algoName(a)};
        for (const auto &ds : longs) {
            WorkloadOptions opts;
            opts.samples = 1;
            const KernelProfile p = profileForDataset(a, ds, opts);
            const MulticoreResult mc = evaluateMulticore(p, core, mem, {16});
            row.push_back(TextTable::num(mc.aggregate_gbps[0], 1));
        }
        bottom.addRow(row);
    }
    bottom.print();

    std::printf("\nExpected shape: Full(BPM) bandwidth grows with length "
                "and saturates the controllers (sub-linear 16T speedup); "
                "GMX configurations stay far below peak.\n");
    return 0;
}
