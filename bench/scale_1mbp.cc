/**
 * @file
 * §7.4 scalability reproduction: aligning 1 Mbp sequences with 15% error
 * on the RTL-InOrder SoC. The paper reports Banded(GMX) at ~20
 * alignments/s and Windowed(GMX) at ~374 alignments/s (1.58x the GenASM
 * accelerator); Full(GMX) is excluded (it would need >10 GB on a 1 GB
 * SoC) — we print its projected footprint to confirm.
 *
 * This bench also exercises the streaming tier end to end: the streamed
 * Windowed(GMX) traversal must report the bit-identical distance to the
 * monolithic aligner at no throughput loss (its live memory is O(window)
 * instead of O(n + m)), and one engine must serve a long-class pair and
 * 150 bp short reads under a single memory budget. `--smoke` runs the
 * same legs on a 64 kbp pair with hard pass/fail checks for CI.
 */

#include <cstring>

#include "align/nw.hh"
#include "bench_util.hh"
#include "common/timer.hh"
#include "engine/engine.hh"
#include "gmx/banded.hh"
#include "gmx/windowed.hh"
#include "hw/dsa.hh"
#include "sequence/generator.hh"
#include "sim/perf.hh"
#include "sim/profile.hh"

int
main(int argc, char **argv)
{
    using namespace gmx;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    gmx::bench::banner(
        "Section 7.4: 1 Mbp scalability (RTL-InOrder core)",
        "Banded(GMX) ~20 alignments/s; Windowed(GMX) ~374 alignments/s, "
        "1.58x the GenASM accelerator; Full(GMX) excluded (>10 GB)");

    const size_t length = smoke ? 64 * 1024 : 1000000;
    std::printf("\nGenerating the %zu bp @ 15%% error pair%s...\n", length,
                smoke ? " (--smoke)" : "");
    seq::Generator gen(46);
    const auto pair = gen.pair(length, 0.15);
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();
    std::printf("pattern %zu bp, text %zu bp\n", n, m);

    const sim::CoreConfig core = sim::CoreConfig::rtlInOrder();
    const sim::MemSystemConfig mem = sim::MemSystemConfig::rtlLike();
    TextTable table({"configuration", "model align/s", "paper align/s"});
    int failures = 0;

    // Full(GMX) footprint check (the reason the paper excludes it).
    {
        const double tiles = (static_cast<double>(n) / 32.0) *
                             (static_cast<double>(m) / 32.0);
        std::printf("\nFull(GMX) tile-edge matrix would need %.1f GB "
                    "(paper: >10 GB with the DP baselines far larger) — "
                    "excluded. Streamed Windowed(GMX) reserves %zu bytes.\n",
                    32.0 * tiles / 1e9,
                    engine::windowedStreamBytes(96, 32));
    }

    // Monolithic Windowed(GMX), W=96 O=32: the O(n + m) baseline.
    i64 mono_distance = 0;
    double mono_seconds = 0;
    {
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        Timer t;
        const auto res = core::windowedGmxAlign(pair.pattern, pair.text, 32,
                                                {96, 32}, ctx);
        mono_seconds = t.seconds();
        mono_distance = res.distance;
        std::printf("\nWindowed(GMX) monolithic: emulated in %.1fs, "
                    "heuristic distance %lld\n",
                    mono_seconds, static_cast<long long>(mono_distance));
        const auto profile = sim::windowedGmxProfile(n, m, 96, 32, counts);
        const double aps =
            sim::evaluate(profile, core, mem).alignments_per_second;
        table.addRow({"Windowed(GMX) W=96 O=32",
                      TextTable::num(aps, 1), "374"});

        const auto genasm = hw::genasmVault(96);
        const double gen_aps =
            hw::alignmentsPerSecond(genasm, std::max(n, m), 96, 32);
        table.addRow({"GenASM accelerator (model)",
                      TextTable::num(gen_aps, 1), "~237 (374/1.58)"});
        std::printf("Windowed(GMX) / GenASM = %.2fx (paper 1.58x)\n",
                    aps / gen_aps);
    }

    // Streamed Windowed(GMX): identical traversal, O(window) live state.
    {
        u64 runs = 0;
        ScratchArena arena;
        KernelContext ctx(CancelToken{}, nullptr, &arena);
        Timer t;
        const i64 streamed_distance = core::windowedGmxStream(
            pair.pattern, pair.text, 32, {96, 32},
            [&runs](align::Op, u64) { ++runs; }, ctx);
        const double streamed_seconds = t.seconds();
        const double ratio = mono_seconds / streamed_seconds;
        std::printf("\nWindowed(GMX) streamed: emulated in %.1fs "
                    "(%.2fx monolithic throughput), distance %lld, "
                    "%llu CIGAR runs, arena peak %zu bytes "
                    "(length-independent)\n",
                    streamed_seconds, ratio,
                    static_cast<long long>(streamed_distance),
                    static_cast<unsigned long long>(runs),
                    arena.peakBytes());
        if (streamed_distance != mono_distance) {
            std::printf("FAIL: streamed distance %lld != monolithic %lld\n",
                        static_cast<long long>(streamed_distance),
                        static_cast<long long>(mono_distance));
            ++failures;
        }
        // Streaming must not cost throughput (generous floor for timer
        // noise on the smoke-sized run).
        if (smoke && ratio < 0.7) {
            std::printf("FAIL: streamed throughput ratio %.2f < 0.7\n",
                        ratio);
            ++failures;
        }
        if (arena.peakBytes() > engine::windowedStreamBytes(96, 32)) {
            std::printf("FAIL: streamed arena peak %zu exceeds the "
                        "O(window) reservation %zu\n",
                        arena.peakBytes(),
                        engine::windowedStreamBytes(96, 32));
            ++failures;
        }
    }

    // Mixed traffic: one engine, one budget, the long-class pair riding
    // with 150 bp short reads — the serving story the streamed tier buys.
    {
        engine::EngineConfig cfg;
        cfg.cascade.long_threshold = 32 * 1024;
        cfg.memory_budget_bytes = 64 * 1024 * 1024;
        engine::Engine eng(cfg);

        std::vector<seq::SequencePair> shorts;
        for (int i = 0; i < 64; ++i)
            shorts.push_back(gen.pair(150, 0.005));

        Timer t;
        auto long_f = eng.submit(pair, /*want_cigar=*/false);
        std::vector<std::future<engine::Engine::AlignOutcome>> fs;
        for (const auto &p : shorts)
            fs.push_back(eng.submit(p, /*want_cigar=*/false));

        auto long_res = long_f.get();
        size_t short_ok = 0;
        for (size_t i = 0; i < fs.size(); ++i) {
            auto r = fs[i].get();
            if (r.ok() && r->distance == align::nwDistance(
                              shorts[i].pattern, shorts[i].text))
                ++short_ok;
        }
        const auto snap = eng.metrics();
        const u64 streamed_hits =
            snap.tier_hits[static_cast<unsigned>(engine::Tier::Streamed)];
        std::printf("\nMixed engine run (%.1fs): long-class %s "
                    "(distance %lld), %zu/%zu short reads exact, "
                    "streamed tier hits %llu, budget peak %llu bytes\n",
                    t.seconds(), long_res.ok() ? "served" : "FAILED",
                    long_res.ok()
                        ? static_cast<long long>(long_res->distance)
                        : -1LL,
                    short_ok, shorts.size(),
                    static_cast<unsigned long long>(streamed_hits),
                    static_cast<unsigned long long>(snap.mem_reserved_peak));
        if (!long_res.ok() || long_res->distance != mono_distance ||
            short_ok != shorts.size() || streamed_hits != 1) {
            std::printf("FAIL: mixed engine leg (long ok=%d, short %zu/%zu, "
                        "streamed hits %llu)\n",
                        long_res.ok() ? 1 : 0, short_ok, shorts.size(),
                        static_cast<unsigned long long>(streamed_hits));
            ++failures;
        }
    }

    // Banded(GMX) with a fixed band budget (distance-only, rolling
    // storage — the megabase configuration). Skipped in smoke: the wide
    // band dominates CI wall-clock without adding coverage.
    if (!smoke) {
        const i64 band_k = 4 * 1024;
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        Timer t;
        const auto res = core::bandedGmxAlign(
            pair.pattern, pair.text, band_k, /*want_cigar=*/false, 32,
            /*enforce_bound=*/false, ctx);
        std::printf("\nBanded(GMX) k=%lld: emulated in %.1fs, banded "
                    "distance %lld\n",
                    static_cast<long long>(band_k), t.seconds(),
                    static_cast<long long>(res.distance));
        const auto profile =
            sim::bandedGmxProfile(n, m, band_k, 32, counts);
        const double aps =
            sim::evaluate(profile, core, mem).alignments_per_second;
        table.addRow({"Banded(GMX) fixed band", TextTable::num(aps, 1),
                      "20"});
    }

    std::printf("\n");
    table.print();
    if (failures) {
        std::printf("\n%d smoke check(s) FAILED\n", failures);
        return 1;
    }
    if (smoke)
        std::printf("\nsmoke checks passed\n");
    return 0;
}
