/**
 * @file
 * §7.4 scalability reproduction: aligning 1 Mbp sequences with 15% error
 * on the RTL-InOrder SoC. The paper reports Banded(GMX) at ~20
 * alignments/s and Windowed(GMX) at ~374 alignments/s (1.58x the GenASM
 * accelerator); Full(GMX) is excluded (it would need >10 GB on a 1 GB
 * SoC) — we print its projected footprint to confirm.
 */

#include "align/bpm.hh"
#include "bench_util.hh"
#include "common/timer.hh"
#include "gmx/banded.hh"
#include "gmx/windowed.hh"
#include "hw/dsa.hh"
#include "sim/perf.hh"
#include "sim/profile.hh"

int
main()
{
    using namespace gmx;

    gmx::bench::banner(
        "Section 7.4: 1 Mbp scalability (RTL-InOrder core)",
        "Banded(GMX) ~20 alignments/s; Windowed(GMX) ~374 alignments/s, "
        "1.58x the GenASM accelerator; Full(GMX) excluded (>10 GB)");

    std::printf("\nGenerating the 1 Mbp @ 15%% error pair...\n");
    const seq::Dataset ds = seq::megabaseDataset(1);
    const auto &pair = ds.pairs[0];
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();
    std::printf("pattern %zu bp, text %zu bp\n", n, m);

    const sim::CoreConfig core = sim::CoreConfig::rtlInOrder();
    const sim::MemSystemConfig mem = sim::MemSystemConfig::rtlLike();
    TextTable table({"configuration", "model align/s", "paper align/s"});

    // Full(GMX) footprint check (the reason the paper excludes it).
    {
        const double tiles = (static_cast<double>(n) / 32.0) *
                             (static_cast<double>(m) / 32.0);
        std::printf("\nFull(GMX) tile-edge matrix would need %.1f GB "
                    "(paper: >10 GB with the DP baselines far larger) — "
                    "excluded.\n",
                    32.0 * tiles / 1e9);
    }

    // Windowed(GMX), W=96 O=32.
    {
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        Timer t;
        const auto res = core::windowedGmxAlign(pair.pattern, pair.text, 32,
                                                {96, 32}, ctx);
        std::printf("\nWindowed(GMX): emulated in %.1fs, heuristic "
                    "distance %lld\n",
                    t.seconds(), static_cast<long long>(res.distance));
        const auto profile =
            sim::windowedGmxProfile(n, m, 96, 32, counts);
        const double aps =
            sim::evaluate(profile, core, mem).alignments_per_second;
        table.addRow({"Windowed(GMX) W=96 O=32",
                      TextTable::num(aps, 1), "374"});

        const auto genasm = hw::genasmVault(96);
        const double gen_aps =
            hw::alignmentsPerSecond(genasm, std::max(n, m), 96, 32);
        table.addRow({"GenASM accelerator (model)",
                      TextTable::num(gen_aps, 1), "~237 (374/1.58)"});
        std::printf("Windowed(GMX) / GenASM = %.2fx (paper 1.58x)\n",
                    aps / gen_aps);
    }

    // Banded(GMX) with a fixed band budget (distance-only, rolling
    // storage — the megabase configuration).
    {
        const i64 band_k = 4 * 1024;
        align::KernelCounts counts;
        KernelContext ctx(CancelToken{}, &counts);
        Timer t;
        const auto res = core::bandedGmxAlign(
            pair.pattern, pair.text, band_k, /*want_cigar=*/false, 32,
            /*enforce_bound=*/false, ctx);
        std::printf("\nBanded(GMX) k=%lld: emulated in %.1fs, banded "
                    "distance %lld\n",
                    static_cast<long long>(band_k), t.seconds(),
                    static_cast<long long>(res.distance));
        const auto profile =
            sim::bandedGmxProfile(n, m, band_k, 32, counts);
        const double aps =
            sim::evaluate(profile, core, mem).alignments_per_second;
        table.addRow({"Banded(GMX) fixed band", TextTable::num(aps, 1),
                      "20"});
    }

    std::printf("\n");
    table.print();
    return 0;
}
