/**
 * @file
 * Figure 11 reproduction: throughput improvement from the gem5-InOrder
 * core to the 8-wide gem5-OoO core, per software configuration.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/perf.hh"
#include "sim/workloads.hh"

namespace {

using namespace gmx;
using namespace gmx::sim;

const std::vector<Algo> kAlgos = {
    Algo::FullDp,        Algo::FullBpm, Algo::BandedEdlib,
    Algo::WindowedGenasm, Algo::FullGmx, Algo::BandedGmx,
    Algo::WindowedGmx,
};

} // namespace

int
main()
{
    gmx::bench::banner(
        "Figure 11: gem5-OoO speedup over gem5-InOrder",
        "using the OoO core with GMX leads to a 2.4-6.4x increase over "
        "the in-order design; baselines also speed up consistently");

    const CoreConfig in_order = CoreConfig::gem5InOrder();
    const CoreConfig ooo = CoreConfig::gem5OutOfOrder();
    const MemSystemConfig mem = MemSystemConfig::gem5Like();

    const struct
    {
        const char *label;
        std::vector<seq::Dataset> sets;
        size_t samples;
    } groups[] = {
        {"short", gmx::bench::benchShortDatasets(3), 2},
        {"long", gmx::bench::benchLongDatasets(2, 10000), 1},
    };

    for (const auto &group : groups) {
        std::printf("\n-- %s sequences --\n", group.label);
        TextTable table({"configuration", "geomean OoO/InOrder"});
        for (Algo a : kAlgos) {
            GeoMean g;
            for (const auto &ds : group.sets) {
                WorkloadOptions opts;
                opts.samples = group.samples;
                const KernelProfile p = profileForDataset(a, ds, opts);
                const double slow =
                    evaluate(p, in_order, mem).alignments_per_second;
                const double fast =
                    evaluate(p, ooo, mem).alignments_per_second;
                g.add(fast / slow);
            }
            table.addRow({algoName(a), TextTable::num(g.value(), 2)});
        }
        table.print();
    }
    std::printf("\nExpected shape: every configuration speeds up on the "
                "OoO core; GMX configurations land in the paper's "
                "2.4-6.4x window.\n");
    return 0;
}
