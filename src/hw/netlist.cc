#include "hw/netlist.hh"

#include <algorithm>

namespace gmx::hw {

bool
isPhysical(GateOp op)
{
    switch (op) {
      case GateOp::Input:
      case GateOp::Const0:
      case GateOp::Const1:
        return false;
      default:
        return true;
    }
}

double
gateEquivalents(GateOp op)
{
    // Conventional NAND2-equivalent weights for standard-cell sizing.
    switch (op) {
      case GateOp::Input:
      case GateOp::Const0:
      case GateOp::Const1:
        return 0.0;
      case GateOp::Not:
        return 0.5;
      case GateOp::Nand:
      case GateOp::Nor:
        return 1.0;
      case GateOp::And:
      case GateOp::Or:
        return 1.5;
      case GateOp::Xor:
      case GateOp::Xnor:
        return 2.5;
    }
    GMX_PANIC("invalid GateOp");
}

Wire
Netlist::addInput(const std::string &name)
{
    (void)name;
    nodes_.push_back({GateOp::Input, 0, 0});
    const Wire w = static_cast<Wire>(nodes_.size() - 1);
    inputs_.push_back(w);
    return w;
}

Wire
Netlist::const0()
{
    if (const0_ == UINT32_MAX) {
        nodes_.push_back({GateOp::Const0, 0, 0});
        const0_ = static_cast<Wire>(nodes_.size() - 1);
    }
    return const0_;
}

Wire
Netlist::const1()
{
    if (const1_ == UINT32_MAX) {
        nodes_.push_back({GateOp::Const1, 0, 0});
        const1_ = static_cast<Wire>(nodes_.size() - 1);
    }
    return const1_;
}

Wire
Netlist::addNot(Wire a)
{
    GMX_ASSERT(a < nodes_.size());
    nodes_.push_back({GateOp::Not, a, a});
    return static_cast<Wire>(nodes_.size() - 1);
}

Wire
Netlist::addGate(GateOp op, Wire a, Wire b)
{
    GMX_ASSERT(a < nodes_.size() && b < nodes_.size());
    GMX_ASSERT(op != GateOp::Input && op != GateOp::Not);
    nodes_.push_back({op, a, b});
    return static_cast<Wire>(nodes_.size() - 1);
}

void
Netlist::markOutput(Wire w, const std::string &name)
{
    GMX_ASSERT(w < nodes_.size());
    outputs_.push_back({w, name});
}

size_t
Netlist::gateCount() const
{
    size_t count = 0;
    for (const auto &node : nodes_)
        count += isPhysical(node.op);
    return count;
}

double
Netlist::nand2Equivalents() const
{
    double total = 0;
    for (const auto &node : nodes_)
        total += gateEquivalents(node.op);
    return total;
}

size_t
Netlist::depth() const
{
    std::vector<size_t> level(nodes_.size(), 0);
    size_t max_level = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        if (!isPhysical(node.op))
            continue;
        const size_t in_level = std::max(level[node.a], level[node.b]);
        level[i] = in_level + 1;
        max_level = std::max(max_level, level[i]);
    }
    return max_level;
}

std::vector<bool>
Netlist::eval(const std::vector<bool> &input_values) const
{
    GMX_ASSERT(input_values.size() == inputs_.size(),
               "input arity mismatch");
    std::vector<char> value(nodes_.size(), 0);
    size_t next_input = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        switch (node.op) {
          case GateOp::Input:
            value[i] = input_values[next_input++];
            break;
          case GateOp::Const0:
            value[i] = 0;
            break;
          case GateOp::Const1:
            value[i] = 1;
            break;
          case GateOp::Not:
            value[i] = !value[node.a];
            break;
          case GateOp::And:
            value[i] = value[node.a] && value[node.b];
            break;
          case GateOp::Or:
            value[i] = value[node.a] || value[node.b];
            break;
          case GateOp::Xor:
            value[i] = value[node.a] != value[node.b];
            break;
          case GateOp::Nand:
            value[i] = !(value[node.a] && value[node.b]);
            break;
          case GateOp::Nor:
            value[i] = !(value[node.a] || value[node.b]);
            break;
          case GateOp::Xnor:
            value[i] = value[node.a] == value[node.b];
            break;
        }
    }
    std::vector<bool> out(outputs_.size());
    for (size_t i = 0; i < outputs_.size(); ++i)
        out[i] = value[outputs_[i].wire];
    return out;
}

} // namespace gmx::hw
