/**
 * @file
 * Behavioural model of a GenASM vault (MICRO'20), the Bitap-based DSA
 * GMX is compared against in Fig. 15.
 *
 * The GenASM-DC engine updates all k+1 Bitap state vectors for one text
 * character per cycle once its systolic pipeline is full; GenASM-TB then
 * walks the stored vectors at one operation per traceback step, each step
 * costing an SRAM read plus decode. This model executes the actual
 * algorithm window by window (so its results are real alignments, not
 * just cycle estimates) while charging cycles per the microarchitecture —
 * replacing the closed-form dsa.cc estimate with a measured one, and
 * validating that estimate in the tests.
 */

#ifndef GMX_HW_GENASM_MODEL_HH
#define GMX_HW_GENASM_MODEL_HH

#include "align/types.hh"
#include "align/windowed.hh"
#include "sequence/sequence.hh"

namespace gmx::hw {

/** Result of aligning one pair on the modelled vault. */
struct GenasmRunResult
{
    align::AlignResult result;
    u64 windows = 0;
    u64 dc_cycles = 0; //!< bit-vector computation cycles
    u64 tb_cycles = 0; //!< traceback cycles
    u64 cycles = 0;    //!< total, including per-window fill

    /** Throughput at the vault's clock. */
    double
    alignmentsPerSecond(double clock_ghz = 1.0) const
    {
        return cycles ? clock_ghz * 1e9 / static_cast<double>(cycles) : 0;
    }
};

/** Behavioural GenASM vault running the windowed algorithm. */
class GenasmVaultModel
{
  public:
    explicit GenasmVaultModel(const align::WindowedParams &params = {96, 32})
        : params_(params)
    {}

    /** Align one pair, producing a real alignment and a cycle count. */
    GenasmRunResult align(const seq::Sequence &pattern,
                          const seq::Sequence &text) const;

  private:
    align::WindowedParams params_;
};

} // namespace gmx::hw

#endif // GMX_HW_GENASM_MODEL_HH
