/**
 * @file
 * Throughput models of the domain-specific accelerators GMX is compared
 * against (paper §7.4): a GenASM vault and a Darwin GACT array, plus the
 * Table 2 accelerator survey data.
 *
 * Both DSAs execute the same Windowed(W, O) algorithm as Windowed(GMX).
 * Their per-window cycle counts are modeled from the microarchitectures
 * described in the respective papers; clock and area figures are the
 * published ones. We cannot rerun the authors' RTL, so these models are
 * the documented substitution for the real accelerators (see DESIGN.md).
 */

#ifndef GMX_HW_DSA_HH
#define GMX_HW_DSA_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace gmx::hw {

/** A processing element model. */
struct DsaPe
{
    std::string name;
    double clock_ghz = 1.0;
    double area_mm2 = 0;

    /** Cycles one PE spends on one W x W window (compute + traceback). */
    double cycles_per_window = 0;
};

/**
 * GenASM vault (Bitap-based, MICRO'20): processes one text character per
 * cycle across all error levels once the k-deep systolic pipeline is
 * full, then walks the traceback at one operation per cycle.
 *   cycles/window = W (fill) + W (stream) + W (traceback)
 * 28nm, 1 GHz, 0.334 mm2 per vault.
 */
DsaPe genasmVault(size_t window);

/**
 * Darwin GACT (ASPLOS'18): a 64-cell systolic array computing gap-affine
 * DP one antidiagonal slice per cycle, plus array fill/drain and a serial
 * traceback. Gap-affine tracks three DP matrices, tripling the per-cell
 * work relative to edit distance.
 *   cycles/window = 3 * W^2 / 64 + (64 + W) (fill/drain) + W (traceback)
 * 28nm-class, 0.847 GHz, 1.34 mm2 per GACT array.
 */
DsaPe darwinGact(size_t window);

/**
 * Throughput of one PE running the windowed algorithm over a sequence of
 * length @p seq_len: alignments/s = clock / (windows * cycles/window).
 */
double alignmentsPerSecond(const DsaPe &pe, size_t seq_len, size_t window,
                           size_t overlap);

/** Number of W x W windows the windowed driver visits for @p seq_len. */
double windowsPerAlignment(size_t seq_len, size_t window, size_t overlap);

/** One row of the Table 2 accelerator survey. */
struct SurveyRow
{
    std::string study;
    std::string device;
    std::string pe_config;
    std::string area_per_pe; //!< textual: mm2 or LUTs or "-"
    double pgcups_per_pe = 0;
    bool gap_affine = false;
};

/** The published rows of Table 2 (constants from the cited studies). */
std::vector<SurveyRow> table2SurveyRows();

/** Peak GCUPS of a GMX unit: T^2 DP-elements per cycle. */
double gmxPeakGcups(unsigned t, double ghz);

} // namespace gmx::hw

#endif // GMX_HW_DSA_HH
