#include "hw/rtl_aligner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gmx/full.hh"

namespace gmx::hw {

namespace {

using align::AlignResult;
using align::Op;
using core::DeltaVec;
using core::NextTile;
using core::TileEdges;
using core::TileInput;
using core::TracebackPos;

void
checkLengths(const seq::Sequence &pattern, const seq::Sequence &text,
             unsigned t)
{
    if (pattern.empty() || text.empty() || pattern.size() % t != 0 ||
        text.size() % t != 0) {
        GMX_FATAL("RtlAligner: lengths (%zu, %zu) must be positive "
                  "multiples of T=%u",
                  pattern.size(), text.size(), t);
    }
}

} // namespace

i64
RtlAligner::distance(const seq::Sequence &pattern, const seq::Sequence &text)
{
    checkLengths(pattern, text, t_);
    const size_t gr = pattern.size() / t_;
    const size_t gc = text.size() / t_;

    std::vector<DeltaVec> right(gr);
    i64 dist = static_cast<i64>(pattern.size());
    for (size_t tj = 0; tj < gc; ++tj) {
        DeltaVec dh = DeltaVec::ones(t_);
        for (size_t ti = 0; ti < gr; ++ti) {
            TileInput in;
            in.pattern = pattern.codes().data() + ti * t_;
            in.tp = t_;
            in.text = text.codes().data() + tj * t_;
            in.tt = t_;
            in.dv_in = tj == 0 ? DeltaVec::ones(t_) : right[ti];
            in.dh_in = dh;
            const auto out = ac_.run(in);
            right[ti] = out.dv_out;
            dh = out.dh_out;
        }
        dist += dh.sum(t_);
    }
    return dist;
}

align::AlignResult
RtlAligner::align(const seq::Sequence &pattern, const seq::Sequence &text)
{
    checkLengths(pattern, text, t_);
    const size_t gr = pattern.size() / t_;
    const size_t gc = text.size() / t_;

    std::vector<TileEdges> edges(gr * gc);
    auto at = [&](size_t ti, size_t tj) -> TileEdges & {
        return edges[ti * gc + tj];
    };
    auto tile_input = [&](size_t ti, size_t tj) {
        TileInput in;
        in.pattern = pattern.codes().data() + ti * t_;
        in.tp = t_;
        in.text = text.codes().data() + tj * t_;
        in.tt = t_;
        in.dv_in = tj == 0 ? DeltaVec::ones(t_) : at(ti, tj - 1).v;
        in.dh_in = ti == 0 ? DeltaVec::ones(t_) : at(ti - 1, tj).h;
        return in;
    };

    AlignResult res;
    i64 dist = static_cast<i64>(pattern.size());
    for (size_t tj = 0; tj < gc; ++tj) {
        for (size_t ti = 0; ti < gr; ++ti) {
            const auto out = ac_.run(tile_input(ti, tj));
            at(ti, tj).v = out.dv_out;
            at(ti, tj).h = out.dh_out;
        }
        dist += at(gr - 1, tj).h.sum(t_);
    }
    res.distance = dist;
    res.has_cigar = true;

    // Gate-level tile-wise traceback.
    std::vector<Op> ops;
    ops.reserve(pattern.size() + text.size());
    size_t ai = pattern.size(), aj = text.size();
    size_t ti = gr - 1, tj = gc - 1;
    TracebackPos pos{TracebackPos::Edge::Bottom, t_ - 1};

    while (ai > 0 && aj > 0) {
        const auto step = tb_.run(tile_input(ti, tj), pos);
        for (Op op : step.ops) {
            ops.push_back(op);
            if (op != Op::Deletion)
                --ai;
            if (op != Op::Insertion)
                --aj;
            if (ai == 0 || aj == 0)
                break;
        }
        if (ai == 0 || aj == 0)
            break;
        pos = step.next_pos;
        switch (step.next) {
          case NextTile::Diag:
            --ti;
            --tj;
            break;
          case NextTile::Up:
            --ti;
            break;
          case NextTile::Left:
            --tj;
            break;
        }
    }
    for (; aj > 0; --aj)
        ops.push_back(Op::Deletion);
    for (; ai > 0; --ai)
        ops.push_back(Op::Insertion);

    std::reverse(ops.begin(), ops.end());
    res.cigar = align::Cigar(std::move(ops));
    return res;
}

} // namespace gmx::hw
