#include "hw/gmx_tb.hh"

namespace gmx::hw {

namespace {

/** Outputs of one instantiated CCTB. */
struct CctbWires
{
    Wire op0; // gated op bit 0
    Wire op1; // gated op bit 1
    Wire en_diag;
    Wire en_left;
    Wire en_up;
};

/**
 * CCTB priority logic (Fig. 8): M if eq; else D if dh == +1; else I if
 * dv == +1; else X. Op encoding follows align::Op: M=00, X=01, I=10, D=11.
 */
CctbWires
emitCctb(Netlist &nl, Wire eq, Wire dvp, Wire dhp, Wire en)
{
    const Wire neq = nl.addNot(eq);
    const Wire sel_d = nl.addGate(GateOp::And, neq, dhp);
    const Wire ndhp = nl.addNot(dhp);
    const Wire t0 = nl.addGate(GateOp::And, neq, ndhp);
    const Wire sel_i = nl.addGate(GateOp::And, t0, dvp);
    const Wire ndvp = nl.addNot(dvp);
    const Wire sel_x = nl.addGate(GateOp::And, t0, ndvp);

    CctbWires w{};
    const Wire op0_raw = nl.addGate(GateOp::Or, sel_x, sel_d);
    const Wire op1_raw = nl.addGate(GateOp::Or, sel_i, sel_d);
    w.op0 = nl.addGate(GateOp::And, op0_raw, en);
    w.op1 = nl.addGate(GateOp::And, op1_raw, en);
    const Wire diag_sel = nl.addGate(GateOp::Or, eq, sel_x);
    w.en_diag = nl.addGate(GateOp::And, diag_sel, en);
    w.en_left = nl.addGate(GateOp::And, sel_d, en);
    w.en_up = nl.addGate(GateOp::And, sel_i, en);
    return w;
}

} // namespace

Netlist
buildCctbNetlist()
{
    Netlist nl;
    const Wire eq = nl.addInput("eq");
    const Wire dvp = nl.addInput("dv_plus");
    const Wire dhp = nl.addInput("dh_plus");
    const Wire en = nl.addInput("enable");
    const CctbWires w = emitCctb(nl, eq, dvp, dhp, en);
    nl.markOutput(w.op0, "op0");
    nl.markOutput(w.op1, "op1");
    nl.markOutput(w.en_diag, "en_diag");
    nl.markOutput(w.en_left, "en_left");
    nl.markOutput(w.en_up, "en_up");
    return nl;
}

GmxTbArray::GmxTbArray(unsigned t)
    : t_(t)
{
    GMX_ASSERT(t_ >= 2 && t_ <= core::kMaxTile);
    const unsigned T = t_;

    // Per-cell delta/eq inputs, row-major.
    std::vector<Wire> eq(T * T), dvp(T * T), dhp(T * T);
    for (unsigned r = 0; r < T; ++r) {
        for (unsigned c = 0; c < T; ++c) {
            const std::string s =
                std::to_string(r) + "_" + std::to_string(c);
            eq[r * T + c] = nl_.addInput("eq" + s);
            dvp[r * T + c] = nl_.addInput("dvp" + s);
            dhp[r * T + c] = nl_.addInput("dhp" + s);
        }
    }
    // One-hot start: bits 0..T-1 bottom row columns, T..2T-1 right rows.
    std::vector<Wire> start(2 * T);
    for (unsigned i = 0; i < 2 * T; ++i)
        start[i] = nl_.addInput("pos" + std::to_string(i));

    // Emit cells bottom-right to top-left so neighbour enables exist.
    std::vector<CctbWires> cells(T * T);
    for (int r = static_cast<int>(T) - 1; r >= 0; --r) {
        for (int c = static_cast<int>(T) - 1; c >= 0; --c) {
            const unsigned idx = static_cast<unsigned>(r) * T +
                                 static_cast<unsigned>(c);
            Wire en = nl_.const0();
            // Start-position injection.
            if (r == static_cast<int>(T) - 1)
                en = nl_.addGate(GateOp::Or, en, start[c]);
            if (c == static_cast<int>(T) - 1)
                en = nl_.addGate(GateOp::Or, en, start[T + r]);
            // Enables from the three downstream neighbours.
            if (r + 1 < static_cast<int>(T) && c + 1 < static_cast<int>(T))
                en = nl_.addGate(GateOp::Or, en,
                                 cells[(r + 1) * T + (c + 1)].en_diag);
            if (c + 1 < static_cast<int>(T))
                en = nl_.addGate(GateOp::Or, en,
                                 cells[r * T + (c + 1)].en_left);
            if (r + 1 < static_cast<int>(T))
                en = nl_.addGate(GateOp::Or, en,
                                 cells[(r + 1) * T + c].en_up);
            cells[idx] = emitCctb(nl_, eq[idx], dvp[idx], dhp[idx], en);
        }
    }

    // Antidiagonal op collection: 2T-1 slots, one op per antidiagonal.
    for (unsigned a = 0; a < 2 * T - 1; ++a) {
        Wire active = nl_.const0();
        Wire op0 = nl_.const0();
        Wire op1 = nl_.const0();
        for (unsigned r = 0; r < T; ++r) {
            if (a < r || a - r >= T)
                continue;
            const unsigned c = a - r;
            const CctbWires &cell = cells[r * T + c];
            // A cell is on the path iff any of its enables fired (it
            // always forwards exactly one).
            Wire on = nl_.addGate(GateOp::Or, cell.en_diag, cell.en_left);
            on = nl_.addGate(GateOp::Or, on, cell.en_up);
            active = nl_.addGate(GateOp::Or, active, on);
            op0 = nl_.addGate(GateOp::Or, op0, cell.op0);
            op1 = nl_.addGate(GateOp::Or, op1, cell.op1);
        }
        nl_.markOutput(active, "active" + std::to_string(a));
        nl_.markOutput(op0, "op0_" + std::to_string(a));
        nl_.markOutput(op1, "op1_" + std::to_string(a));
    }

    // Exit position: Up exits per column, Left exits per row, Diag corner.
    for (unsigned c = 0; c < T; ++c) {
        Wire up = cells[c].en_up; // row 0, column c
        if (c + 1 < T)
            up = nl_.addGate(GateOp::Or, up, cells[c + 1].en_diag);
        nl_.markOutput(up, "exit_up" + std::to_string(c));
    }
    for (unsigned r = 0; r < T; ++r) {
        Wire left = cells[r * T].en_left; // column 0, row r
        if (r + 1 < T)
            left = nl_.addGate(GateOp::Or, left,
                               cells[(r + 1) * T].en_diag);
        nl_.markOutput(left, "exit_left" + std::to_string(r));
    }
    nl_.markOutput(cells[0].en_diag, "exit_diag");
}

core::TracebackStep
GmxTbArray::run(const core::TileInput &in,
                const core::TracebackPos &start) const
{
    GMX_ASSERT(in.tp == t_ && in.tt == t_,
               "the array netlist is fixed at full T x T tiles");
    const unsigned T = t_;
    const core::TileInterior interior = core::tileInterior(in);

    std::vector<bool> inputs;
    inputs.reserve(3 * T * T + 2 * T);
    for (unsigned r = 0; r < T; ++r) {
        for (unsigned c = 0; c < T; ++c) {
            inputs.push_back(in.pattern[r] == in.text[c]);
            inputs.push_back(interior.dvAt(r, c) == 1);
            inputs.push_back(interior.dhAt(r, c) == 1);
        }
    }
    for (unsigned i = 0; i < 2 * T; ++i) {
        const bool bottom_hit =
            start.edge == core::TracebackPos::Edge::Bottom && i == start.index;
        const bool right_hit =
            start.edge == core::TracebackPos::Edge::Right &&
            i == T + start.index;
        inputs.push_back(bottom_hit || right_hit);
    }

    const std::vector<bool> out = nl_.eval(inputs);
    // Output layout: per antidiagonal (active, op0, op1) x (2T-1), then
    // exit_up (T), exit_left (T), exit_diag.
    auto active = [&](unsigned a) { return out[3 * a]; };
    auto op_at = [&](unsigned a) {
        const int code = (out[3 * a + 1] ? 1 : 0) | (out[3 * a + 2] ? 2 : 0);
        return static_cast<align::Op>(code);
    };
    const size_t exit_base = 3 * (2 * T - 1);

    core::TracebackStep step;
    const unsigned a0 = start.edge == core::TracebackPos::Edge::Bottom
                            ? (T - 1) + start.index
                            : start.index + (T - 1);
    // Walk the antidiagonals downward; M/X ops skip one antidiagonal.
    int a = static_cast<int>(a0);
    while (a >= 0 && active(static_cast<unsigned>(a))) {
        const align::Op op = op_at(static_cast<unsigned>(a));
        step.ops.push_back(op);
        a -= (op == align::Op::Match || op == align::Op::Mismatch) ? 2 : 1;
    }

    if (out[exit_base + 2 * T]) {
        step.next = core::NextTile::Diag;
        step.next_pos = {core::TracebackPos::Edge::Bottom, T - 1};
        return step;
    }
    for (unsigned c = 0; c < T; ++c) {
        if (out[exit_base + c]) {
            step.next = core::NextTile::Up;
            step.next_pos = {core::TracebackPos::Edge::Bottom, c};
            return step;
        }
    }
    for (unsigned r = 0; r < T; ++r) {
        if (out[exit_base + T + r]) {
            step.next = core::NextTile::Left;
            step.next_pos = {core::TracebackPos::Edge::Right, r};
            return step;
        }
    }
    GMX_PANIC("GMX-TB array produced no exit");
}

} // namespace gmx::hw
