#include "hw/segmentation.hh"

#include <cmath>
#include <map>

#include "common/logging.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"

namespace gmx::hw {

namespace {

/** Cache of measured array stats (netlist construction is not free). */
const ModuleStats &
acStats(unsigned t)
{
    static std::map<unsigned, ModuleStats> cache;
    auto it = cache.find(t);
    if (it == cache.end())
        it = cache.emplace(t, GmxAcArray(t).stats()).first;
    return it->second;
}

const ModuleStats &
tbStats(unsigned t)
{
    static std::map<unsigned, ModuleStats> cache;
    auto it = cache.find(t);
    if (it == cache.end())
        it = cache.emplace(t, GmxTbArray(t).stats()).first;
    return it->second;
}

SegmentationPlan
plan(double path_ns, double target_ghz, unsigned t, unsigned extra_state,
     const TimingConfig &cfg)
{
    GMX_ASSERT(target_ghz > 0);
    SegmentationPlan p;
    p.critical_path_ns = path_ns;
    const double usable = 1.0 / target_ghz - cfg.stage_overhead_ns;
    GMX_ASSERT(usable > 0, "stage overhead exceeds the clock period");
    p.stages = static_cast<unsigned>(std::ceil(path_ns / usable));
    if (p.stages < 1)
        p.stages = 1;
    p.stage_delay_ns = path_ns / p.stages;
    p.max_frequency_ghz = 1.0 / (p.stage_delay_ns + cfg.stage_overhead_ns);
    // Each antidiagonal cut stores up to T dv and T dh elements (2 bits
    // each) plus control state.
    p.seg_register_bits =
        static_cast<u64>(p.stages - 1) * (4ull * t + extra_state);
    return p;
}

} // namespace

double
ccacDelayNs(const TimingConfig &cfg)
{
    static const size_t depth = buildCcacNetlist().depth();
    return static_cast<double>(depth) * cfg.gate_delay_ns;
}

double
cctbDelayNs(const TimingConfig &cfg)
{
    static const size_t depth = buildCctbNetlist().depth();
    return static_cast<double>(depth) * cfg.gate_delay_ns;
}

SegmentationPlan
segmentGmxAc(unsigned t, double target_ghz, const TimingConfig &cfg)
{
    const double path_ns =
        static_cast<double>(acStats(t).depth) * cfg.gate_delay_ns;
    return plan(path_ns, target_ghz, t, 16, cfg);
}

SegmentationPlan
segmentGmxTb(unsigned t, double target_ghz, const TimingConfig &cfg)
{
    // Fig. 9.b operation: first the interior differences are recomputed
    // and latched into all segmentation registers (ac_stages cycles), then
    // each antidiagonal segment takes two cycles — differences top-to-
    // bottom, then the backtrace bottom-to-top. The per-cycle delay of a
    // segment is the longer of its AC chain and its TB enable chain, so
    // the segment count is set by the slower of the two arrays.
    const double ac_path =
        static_cast<double>(acStats(t).depth) * cfg.gate_delay_ns;
    const double tb_path =
        static_cast<double>(tbStats(t).depth) * cfg.gate_delay_ns;
    const double usable = 1.0 / target_ghz - cfg.stage_overhead_ns;
    GMX_ASSERT(usable > 0, "stage overhead exceeds the clock period");
    const unsigned fill = segmentGmxAc(t, target_ghz, cfg).stages;
    const unsigned segments = static_cast<unsigned>(
        std::ceil(std::max(ac_path, tb_path) / usable));

    SegmentationPlan p;
    p.critical_path_ns = ac_path + tb_path;
    p.stages = fill + 2 * std::max(segments, 1u);
    p.stage_delay_ns = std::max(ac_path, tb_path) / std::max(segments, 1u);
    p.max_frequency_ghz = 1.0 / (p.stage_delay_ns + cfg.stage_overhead_ns);
    // TB cuts latch the deltas plus the walk state (position one-hot and
    // the collected ops).
    p.seg_register_bits =
        static_cast<u64>(std::max(segments, 1u)) * (6ull * t + 16);
    return p;
}

} // namespace gmx::hw
