/**
 * @file
 * Segmentation and frequency analysis of the GMX modules (paper §6.3,
 * Fig. 9).
 *
 * The GMX-AC critical path crosses 2T-1 compute cells of delay Cd each;
 * GMX-TB additionally pays the traceback cell delay Pd on the way back,
 * (2T-1)(Cd + Pd) in total. To reach the core's frequency the arrays are
 * cut along antidiagonals into pipeline stages holding up to T elements
 * each. The delay constants are derived from the gate-level netlists
 * (logic depth x per-gate delay in 22FDX-class technology) and calibrated
 * so the paper's design point (T=32 @ 1 GHz -> 2-cycle AC, 6-cycle TB)
 * is reproduced.
 */

#ifndef GMX_HW_SEGMENTATION_HH
#define GMX_HW_SEGMENTATION_HH

#include "common/types.hh"

namespace gmx::hw {

/** Technology timing constants (22nm FD-SOI class). */
struct TimingConfig
{
    /** Average per-gate-level delay including local wires, ns. */
    double gate_delay_ns = 0.008;
    /** Sequencing overhead per pipeline stage (setup + clk->q), ns. */
    double stage_overhead_ns = 0.045;
};

/** Segmentation result for one module. */
struct SegmentationPlan
{
    unsigned stages = 1;          //!< pipeline stages (= cycles latency)
    double critical_path_ns = 0;  //!< unsegmented combinational delay
    double stage_delay_ns = 0;    //!< per-stage delay after cutting
    double max_frequency_ghz = 0; //!< 1 / (stage delay + overhead)
    u64 seg_register_bits = 0;    //!< pipeline register state added
};

/**
 * Analysis of the GMX-AC array: cell delay Cd = (cell logic depth) x
 * (gate delay); critical path (2T-1) * Cd.
 */
SegmentationPlan segmentGmxAc(unsigned t, double target_ghz,
                              const TimingConfig &cfg = TimingConfig());

/**
 * Analysis of the GMX-TB array: total traceback delay (2T-1) * (Cd + Pd).
 * TB segments more finely than AC because each stage both recomputes
 * deltas (down) and walks the path (up), per Fig. 9.b.
 */
SegmentationPlan segmentGmxTb(unsigned t, double target_ghz,
                              const TimingConfig &cfg = TimingConfig());

/** Per-cell combinational delays used by the plans (for reporting). */
double ccacDelayNs(const TimingConfig &cfg = TimingConfig());
double cctbDelayNs(const TimingConfig &cfg = TimingConfig());

} // namespace gmx::hw

#endif // GMX_HW_SEGMENTATION_HH
