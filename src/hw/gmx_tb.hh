/**
 * @file
 * Gate-level model of the GMX-TB traceback microarchitecture (paper §6.2).
 *
 * GMX-TB is a (T x T) matrix of traceback cells (CCTB). The cell at the
 * traceback's current position selects the next move with the priority
 * table of Fig. 8 (eq -> M, dh == +1 -> D, dv == +1 -> I, else X) and
 * propagates an enable to the chosen neighbour (up-left, left, or up).
 * Because the path crosses each antidiagonal at most once, the 2T-1 ops
 * are collected one per antidiagonal.
 *
 * The array model takes the recomputed interior deltas (produced by the
 * GMX-AC array in hardware, Fig. 9.b) plus the one-hot start position and
 * produces the op list and the exit position, and is verified against the
 * GmxUnit's behavioural gmx.tb.
 */

#ifndef GMX_HW_GMX_TB_HH
#define GMX_HW_GMX_TB_HH

#include "gmx/isa.hh"
#include "hw/gmx_ac.hh"

namespace gmx::hw {

/**
 * Build a standalone CCTB netlist. Inputs: eq, dv+ , dh+ , enable.
 * Outputs: op0, op1 (2-bit op, gated by enable), en_diag, en_left, en_up.
 */
Netlist buildCctbNetlist();

/**
 * The full (T x T) GMX-TB array as a flat netlist: per-cell eq/dv+/dh+
 * inputs, a 2T-bit one-hot start position, and per-antidiagonal op
 * outputs plus the exit one-hot.
 */
class GmxTbArray
{
  public:
    explicit GmxTbArray(unsigned t);

    unsigned tileSize() const { return t_; }
    const Netlist &netlist() const { return nl_; }
    ModuleStats stats() const { return measure(nl_); }
    unsigned criticalPathCells() const { return 2 * t_ - 1; }

    /**
     * Evaluate the traceback network for a full T x T tile. @p start
     * mirrors the gmx_pos CSR. Returns the decoded step, identical in
     * contract to GmxUnit::gmxTb.
     */
    core::TracebackStep run(const core::TileInput &in,
                            const core::TracebackPos &start) const;

  private:
    unsigned t_;
    Netlist nl_;
};

} // namespace gmx::hw

#endif // GMX_HW_GMX_TB_HH
