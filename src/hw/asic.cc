#include "hw/asic.hh"

#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"

namespace gmx::hw {

namespace {

/** Area of @p nand2 equivalents plus @p flops, in mm^2. */
double
blockArea(double nand2, double flops, const TechConfig &tech)
{
    const double total_nand2 = nand2 + flops * tech.flop_nand2;
    return total_nand2 * tech.nand2_area_um2 * 1e-6;
}

/** Dynamic + leakage power of a block, mW. */
double
blockPower(double nand2, double flops, double ghz, const TechConfig &tech)
{
    const double total_nand2 = nand2 + flops * tech.flop_nand2;
    const double dynamic_mw = total_nand2 * tech.activity *
                              tech.nand2_energy_fj * ghz * 1e-3;
    const double leakage_mw = total_nand2 * tech.nand2_leakage_nw * 1e-6;
    return dynamic_mw + leakage_mw;
}

} // namespace

GmxAsicReport
gmxAsicReport(unsigned t, double ghz, const TechConfig &tech,
              const TimingConfig &timing)
{
    GmxAsicReport rep;

    const ModuleStats ac = GmxAcArray(t).stats();
    const ModuleStats tb = GmxTbArray(t).stats();
    const SegmentationPlan ac_seg = segmentGmxAc(t, ghz, timing);
    const SegmentationPlan tb_seg = segmentGmxTb(t, ghz, timing);
    rep.ac_cycles = ac_seg.stages;
    rep.tb_cycles = tb_seg.stages;

    rep.ac.name = "GMX-AC";
    rep.ac.area_mm2 = blockArea(
        ac.nand2, static_cast<double>(ac_seg.seg_register_bits), tech);
    rep.ac.power_mw = blockPower(
        ac.nand2, static_cast<double>(ac_seg.seg_register_bits), ghz, tech);

    rep.tb.name = "GMX-TB";
    rep.tb.area_mm2 = blockArea(
        tb.nand2, static_cast<double>(tb_seg.seg_register_bits), tech);
    rep.tb.power_mw = blockPower(
        tb.nand2, static_cast<double>(tb_seg.seg_register_bits), ghz, tech);

    // Architectural state: gmx_pattern/text/pos/lo/hi of 2T bits each,
    // plus decode/control logic (~300 NAND2).
    const double csr_flops = 5.0 * 2 * t;
    const double csr_logic = 300.0;
    rep.csr.name = "GMX-CSRs";
    rep.csr.area_mm2 = blockArea(csr_logic, csr_flops, tech);
    rep.csr.power_mw = blockPower(csr_logic, csr_flops, ghz, tech);

    rep.total_area_mm2 =
        rep.ac.area_mm2 + rep.tb.area_mm2 + rep.csr.area_mm2;
    rep.total_power_mw =
        rep.ac.power_mw + rep.tb.power_mw + rep.csr.power_mw;
    return rep;
}

SocReport
socReport(unsigned t, double ghz, const TechConfig &tech)
{
    // Sargantana-class SoC blocks in GF 22FDX (constants modeled from the
    // paper's floorplan: GMX is 1.7% of a ~1.27 mm2 SoC whose area is
    // dominated by the 512 KB L2).
    SocReport rep;
    const GmxAsicReport gmx = gmxAsicReport(t, ghz, tech);

    // mW figures scale the paper's 2.1%-of-power split (~403 mW total).
    rep.blocks.push_back({"core (7-stage RV64G)", 0.205, 96.0});
    rep.blocks.push_back({"L1d (32 KB)", 0.091, 38.0});
    rep.blocks.push_back({"L1i (16 KB)", 0.052, 22.0});
    rep.blocks.push_back({"L2 (512 KB)", 0.788, 188.0});
    rep.blocks.push_back({"uncore/NoC/IO", 0.112, 50.0});
    rep.blocks.push_back({gmx.ac.name, gmx.ac.area_mm2, gmx.ac.power_mw});
    rep.blocks.push_back({gmx.tb.name, gmx.tb.area_mm2, gmx.tb.power_mw});
    rep.blocks.push_back({gmx.csr.name, gmx.csr.area_mm2, gmx.csr.power_mw});

    double gmx_area = gmx.total_area_mm2;
    double gmx_power = gmx.total_power_mw;
    for (const auto &b : rep.blocks) {
        rep.total_area_mm2 += b.area_mm2;
        rep.total_power_mw += b.power_mw;
    }
    rep.gmx_area_fraction = gmx_area / rep.total_area_mm2;
    rep.gmx_power_fraction = gmx_power / rep.total_power_mw;
    return rep;
}

} // namespace gmx::hw
