#include "hw/genasm_model.hh"

#include "align/bitap.hh"
#include "common/logging.hh"

namespace gmx::hw {

GenasmRunResult
GenasmVaultModel::align(const seq::Sequence &pattern,
                        const seq::Sequence &text) const
{
    GenasmRunResult run;

    // The window aligner is the hardware Bitap with the full per-window
    // error budget (k = max(wp, wt)), exactly like the ASIC: the DC array
    // has one row per error level and always runs all of them.
    const auto window_fn = [&run](const seq::Sequence &p,
                                  const seq::Sequence &t) {
        const i64 k = static_cast<i64>(std::max(p.size(), t.size()));
        align::AlignResult res = align::bitapAlign(p, t, k);
        GMX_ASSERT(res.found());

        ++run.windows;
        // GenASM-DC: k-deep systolic fill, then one text character per
        // cycle across all k+1 vectors.
        run.dc_cycles += static_cast<u64>(k) + t.size();
        // GenASM-TB: each emitted operation costs an SRAM read + decode
        // (2 cycles per op over the window's traceback length).
        run.tb_cycles += 2 * res.cigar.size();
        return res;
    };

    run.result =
        align::windowedAlign(pattern, text, params_, window_fn);
    run.cycles = run.dc_cycles + run.tb_cycles;
    return run;
}

} // namespace gmx::hw
