/**
 * @file
 * Analytic area/power model of the GMX extensions in the 22nm SoC
 * (paper §7.3, Fig. 13).
 *
 * Gate counts come from the real netlists in gmx_ac/gmx_tb; the only
 * fitted inputs are the technology constants (effective area per NAND2
 * equivalent including placement/routing overhead, per-flop area, and
 * per-gate switching energy), calibrated so the T=32 @ 1 GHz design point
 * reproduces the paper's sign-off numbers (GMX-AC 0.008 mm2, GMX-TB
 * 0.0108 mm2, total 0.0216 mm2 at 1.7% of the SoC, 8.47 mW at 2.1% of
 * SoC power). See EXPERIMENTS.md for the calibration discussion.
 */

#ifndef GMX_HW_ASIC_HH
#define GMX_HW_ASIC_HH

#include <string>
#include <vector>

#include "hw/segmentation.hh"

namespace gmx::hw {

/** 22FDX-class technology constants. */
struct TechConfig
{
    /** Effective silicon area per NAND2 equivalent, um^2 (incl. routing). */
    double nand2_area_um2 = 0.36;
    /** Flop area in NAND2 equivalents. */
    double flop_nand2 = 6.0;
    /** Dynamic energy per NAND2-equivalent toggle, fJ (at nominal VDD). */
    double nand2_energy_fj = 0.56;
    /** Average switching activity factor of the datapath. */
    double activity = 0.25;
    /** Leakage power per NAND2 equivalent, nW. */
    double nand2_leakage_nw = 1.2;
};

/** Area/power of one named block. */
struct BlockReport
{
    std::string name;
    double area_mm2 = 0;
    double power_mw = 0;
};

/** Full report for a GMX unit instance. */
struct GmxAsicReport
{
    BlockReport ac;        //!< GMX-AC array + its pipeline registers
    BlockReport tb;        //!< GMX-TB array + its pipeline registers
    BlockReport csr;       //!< the five architectural registers + decode
    double total_area_mm2 = 0;
    double total_power_mw = 0;
    unsigned ac_cycles = 0; //!< AC latency after segmentation
    unsigned tb_cycles = 0; //!< TB latency after segmentation
};

/** Model the GMX unit at tile size @p t and clock @p ghz. */
GmxAsicReport gmxAsicReport(unsigned t, double ghz,
                            const TechConfig &tech = TechConfig(),
                            const TimingConfig &timing = TimingConfig());

/**
 * SoC context for Fig. 13: the RTL-InOrder SoC blocks (core, caches, L2)
 * with the GMX unit attached. Non-GMX block sizes are constants taken
 * from the Sargantana-class SoC floorplan; the GMX entries come from the
 * gate-level model.
 */
struct SocReport
{
    std::vector<BlockReport> blocks;
    double total_area_mm2 = 0;
    double total_power_mw = 0;
    double gmx_area_fraction = 0; //!< paper: 0.017
    double gmx_power_fraction = 0; //!< paper: 0.021
};

SocReport socReport(unsigned t = 32, double ghz = 1.0,
                    const TechConfig &tech = TechConfig());

} // namespace gmx::hw

#endif // GMX_HW_ASIC_HH
