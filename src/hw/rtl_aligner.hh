/**
 * @file
 * Gate-level end-to-end aligner: Full(GMX) where every tile computation
 * and every traceback step is evaluated on the GMX-AC / GMX-TB netlists
 * instead of the algorithmic kernels.
 *
 * This is the repository's RTL-style integration proof: if the netlists
 * mis-implemented a single gate of Eq. 3, the CCTB priority logic, the
 * one-hot position protocol, or the antidiagonal op encoding, whole-
 * matrix alignments would diverge from the NW reference. It is meant for
 * verification, not speed — netlist evaluation is thousands of times
 * slower than the word kernel.
 *
 * Limitation: the arrays are fixed at full T x T tiles, so sequence
 * lengths must be multiples of T (the hardware pads its registers; this
 * model asserts instead to keep the check strict).
 */

#ifndef GMX_HW_RTL_ALIGNER_HH
#define GMX_HW_RTL_ALIGNER_HH

#include "align/types.hh"
#include "hw/gmx_ac.hh"
#include "hw/gmx_tb.hh"
#include "sequence/sequence.hh"

namespace gmx::hw {

/** Full(GMX) on the netlists. Lengths must be positive multiples of T. */
class RtlAligner
{
  public:
    explicit RtlAligner(unsigned t = 8) : t_(t), ac_(t), tb_(t) {}

    unsigned tileSize() const { return t_; }

    /** Edit distance only. */
    i64 distance(const seq::Sequence &pattern, const seq::Sequence &text);

    /** Full alignment with gate-level tile tracebacks. */
    align::AlignResult align(const seq::Sequence &pattern,
                             const seq::Sequence &text);

  private:
    unsigned t_;
    GmxAcArray ac_;
    GmxTbArray tb_;
};

} // namespace gmx::hw

#endif // GMX_HW_RTL_ALIGNER_HH
