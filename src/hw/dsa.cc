#include "hw/dsa.hh"

#include <cmath>

#include "common/logging.hh"

namespace gmx::hw {

DsaPe
genasmVault(size_t window)
{
    DsaPe pe;
    pe.name = "GenASM vault";
    pe.clock_ghz = 1.0;
    pe.area_mm2 = 0.334; // per-vault share reported by GenASM (28nm)
    const double w = static_cast<double>(window);
    pe.cycles_per_window = w /* pipeline fill (k = W rows) */ +
                           w /* text streaming */ +
                           2 * w /* serial traceback: SRAM read + decode
                                    per op */;
    return pe;
}

DsaPe
darwinGact(size_t window)
{
    DsaPe pe;
    pe.name = "Darwin GACT";
    pe.clock_ghz = 0.847;
    // GACT logic area as used in the paper's extra-area comparison
    // (26.29x the 0.0216 mm2 GMX unit); Table 2 lists the full 1.34 mm2
    // array including its traceback SRAMs.
    pe.area_mm2 = 0.568;
    const double w = static_cast<double>(window);
    pe.cycles_per_window =
        3.0 * w * w / 64.0 /* 3 gap-affine matrices */ +
        2.0 * (64.0 + w) /* systolic fill/drain per pass */ +
        2.0 * w /* serial traceback from SRAM */ +
        800.0 /* host-managed window orchestration (GACT is a
                 loosely-coupled co-processor) */;
    return pe;
}

double
windowsPerAlignment(size_t seq_len, size_t window, size_t overlap)
{
    GMX_ASSERT(window > overlap);
    if (seq_len <= window)
        return 1.0;
    // Each non-final window commits ~(W - O) along the diagonal.
    return 1.0 + std::ceil(static_cast<double>(seq_len - window) /
                           static_cast<double>(window - overlap));
}

double
alignmentsPerSecond(const DsaPe &pe, size_t seq_len, size_t window,
                    size_t overlap)
{
    const double windows = windowsPerAlignment(seq_len, window, overlap);
    const double cycles = windows * pe.cycles_per_window;
    return pe.clock_ghz * 1e9 / cycles;
}

std::vector<SurveyRow>
table2SurveyRows()
{
    // Constants reported by the cited studies (paper Table 2).
    return {
        {"GenASM [17]", "ASIC", "32 PE", "0.33mm2", 64.0, false},
        {"ABSW [66]", "ASIC", "1 PE", "5.51mm2", 61.4, false},
        {"GenAx [37]", "ASIC", "4 PE", "1.34mm2", 112.0, false},
        {"Darwin [104]", "ASIC", "64 PE", "1.34mm2", 54.2, true},
        {"ASAP [12]", "FPGA", "1 PE", "277K LUTs", 51.2, false},
        {"FPGASW [34]", "FPGA", "1 PE", "58K LUTs", 105.9, true},
        {"DPX", "GPU", "132 SM", "-", 42.4, true},
        {"GASAL2 [3]", "GPU", "28 SM", "-", 2.3, true},
        {"BPM-GPU [20]", "GPU", "8 SM", "-", 287.5, false},
        {"NVBio", "GPU", "15 SM", "-", 66.6, false},
    };
}

double
gmxPeakGcups(unsigned t, double ghz)
{
    return static_cast<double>(t) * t * ghz;
}

} // namespace gmx::hw
