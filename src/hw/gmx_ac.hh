/**
 * @file
 * Gate-level model of the GMX-AC alignment microarchitecture (paper §6.1).
 *
 * GMX-AC is a (T x T) matrix of compute cells (CCAC). Each CCAC compares
 * one pattern character with one text character (2-bit DNA comparator)
 * and evaluates two GMXD modules to produce the cell's dv/dh outputs.
 * Data flows from the top-left to the bottom-right; the critical path
 * crosses 2T-1 cells (paper §6.3).
 *
 * The model builds the actual netlist, which is (a) simulated against the
 * algorithmic tile kernel for functional equivalence, and (b) measured
 * (gate count, NAND2 equivalents, logic depth) to drive the segmentation
 * and area/power analyses.
 */

#ifndef GMX_HW_GMX_AC_HH
#define GMX_HW_GMX_AC_HH

#include <memory>

#include "gmx/tile.hh"
#include "hw/netlist.hh"

namespace gmx::hw {

/** Build a standalone GMXD netlist: inputs a+,a-,b+,b-,eq; outputs o+,o-. */
Netlist buildGmxDeltaNetlist();

/**
 * Build a standalone CCAC netlist: one DP cell. Inputs: pattern char (2b),
 * text char (2b), dv_in (2b), dh_in (2b); outputs dv_out (2b), dh_out (2b).
 */
Netlist buildCcacNetlist();

/** Static complexity figures of one module. */
struct ModuleStats
{
    size_t gates = 0;       //!< physical gate count
    double nand2 = 0;       //!< NAND2 equivalents
    size_t depth = 0;       //!< logic depth in gate levels
};

/** Measure a netlist. */
ModuleStats measure(const Netlist &nl);

/**
 * The full (T x T) GMX-AC array as a single flat netlist with marshaling
 * helpers to run TileInput/TileOutput through it.
 */
class GmxAcArray
{
  public:
    explicit GmxAcArray(unsigned t);

    unsigned tileSize() const { return t_; }
    const Netlist &netlist() const { return nl_; }
    ModuleStats stats() const { return measure(nl_); }

    /**
     * Critical path length in CCAC cells: 2T-1 (paper §6.3). Exposed for
     * the segmentation analysis.
     */
    unsigned criticalPathCells() const { return 2 * t_ - 1; }

    /** Evaluate the netlist on a tile (full T x T tiles only). */
    core::TileOutput run(const core::TileInput &in) const;

  private:
    unsigned t_;
    Netlist nl_;
    // Input wire order: pattern (2T bits, LSB first per char), text (2T),
    // dv_in (+ then - per lane), dh_in (+ then - per lane).
};

} // namespace gmx::hw

#endif // GMX_HW_GMX_AC_HH
