#include "hw/gmx_ac.hh"

#include <array>

namespace gmx::hw {

namespace {

/** Wires of one 2-bit-encoded delta. */
struct DeltaWires
{
    Wire plus;
    Wire minus;
};

/**
 * Instantiate one GMXD module into @p nl:
 *   t    = a- | eq
 *   out- = t & b+
 *   out+ = !(b+ | (t & !b-))
 * 6 physical gates, 3 logic levels.
 */
DeltaWires
emitGmxDelta(Netlist &nl, Wire a_minus, DeltaWires b, Wire eq)
{
    const Wire t = nl.addGate(GateOp::Or, a_minus, eq);
    const Wire out_minus = nl.addGate(GateOp::And, t, b.plus);
    const Wire nb_minus = nl.addNot(b.minus);
    const Wire u = nl.addGate(GateOp::And, t, nb_minus);
    const Wire v = nl.addGate(GateOp::Or, b.plus, u);
    const Wire out_plus = nl.addNot(v);
    return {out_plus, out_minus};
}

/** 2-bit character equality comparator: 2 XNOR + 1 AND. */
Wire
emitCharCompare(Netlist &nl, Wire p0, Wire p1, Wire t0, Wire t1)
{
    const Wire x0 = nl.addGate(GateOp::Xnor, p0, t0);
    const Wire x1 = nl.addGate(GateOp::Xnor, p1, t1);
    return nl.addGate(GateOp::And, x0, x1);
}

/** Instantiate one CCAC (two GMXD modules + comparator). */
void
emitCcac(Netlist &nl, Wire eq, DeltaWires dv_in, DeltaWires dh_in,
         DeltaWires &dv_out, DeltaWires &dh_out)
{
    dv_out = emitGmxDelta(nl, dv_in.minus, dh_in, eq);
    dh_out = emitGmxDelta(nl, dh_in.minus, dv_in, eq);
}

} // namespace

Netlist
buildGmxDeltaNetlist()
{
    Netlist nl;
    nl.addInput("a_plus"); // part of the encoding; not used by the logic
    const Wire a_minus = nl.addInput("a_minus");
    const Wire b_plus = nl.addInput("b_plus");
    const Wire b_minus = nl.addInput("b_minus");
    const Wire eq = nl.addInput("eq");
    const DeltaWires out =
        emitGmxDelta(nl, a_minus, {b_plus, b_minus}, eq);
    nl.markOutput(out.plus, "out_plus");
    nl.markOutput(out.minus, "out_minus");
    return nl;
}

Netlist
buildCcacNetlist()
{
    Netlist nl;
    const Wire p0 = nl.addInput("p0");
    const Wire p1 = nl.addInput("p1");
    const Wire t0 = nl.addInput("t0");
    const Wire t1 = nl.addInput("t1");
    const Wire dvp = nl.addInput("dv_plus");
    const Wire dvm = nl.addInput("dv_minus");
    const Wire dhp = nl.addInput("dh_plus");
    const Wire dhm = nl.addInput("dh_minus");

    const Wire eq = emitCharCompare(nl, p0, p1, t0, t1);
    DeltaWires dv_out{}, dh_out{};
    emitCcac(nl, eq, {dvp, dvm}, {dhp, dhm}, dv_out, dh_out);
    nl.markOutput(dv_out.plus, "dv_out_plus");
    nl.markOutput(dv_out.minus, "dv_out_minus");
    nl.markOutput(dh_out.plus, "dh_out_plus");
    nl.markOutput(dh_out.minus, "dh_out_minus");
    return nl;
}

ModuleStats
measure(const Netlist &nl)
{
    return {nl.gateCount(), nl.nand2Equivalents(), nl.depth()};
}

GmxAcArray::GmxAcArray(unsigned t)
    : t_(t)
{
    GMX_ASSERT(t_ >= 2 && t_ <= core::kMaxTile);

    std::vector<std::array<Wire, 2>> pattern_bits(t_);
    std::vector<std::array<Wire, 2>> text_bits(t_);
    std::vector<DeltaWires> dv_in(t_), dh_in(t_);

    for (unsigned r = 0; r < t_; ++r) {
        pattern_bits[r][0] = nl_.addInput("p" + std::to_string(r) + "_0");
        pattern_bits[r][1] = nl_.addInput("p" + std::to_string(r) + "_1");
    }
    for (unsigned c = 0; c < t_; ++c) {
        text_bits[c][0] = nl_.addInput("t" + std::to_string(c) + "_0");
        text_bits[c][1] = nl_.addInput("t" + std::to_string(c) + "_1");
    }
    for (unsigned r = 0; r < t_; ++r) {
        dv_in[r].plus = nl_.addInput("dvp" + std::to_string(r));
        dv_in[r].minus = nl_.addInput("dvm" + std::to_string(r));
    }
    for (unsigned c = 0; c < t_; ++c) {
        dh_in[c].plus = nl_.addInput("dhp" + std::to_string(c));
        dh_in[c].minus = nl_.addInput("dhm" + std::to_string(c));
    }

    // Grid of cells: dv flows left-to-right, dh top-to-bottom.
    std::vector<DeltaWires> dv_col = dv_in; // dv entering column c per row
    std::vector<DeltaWires> dh_row = dh_in; // dh entering row r per column
    for (unsigned c = 0; c < t_; ++c) {
        for (unsigned r = 0; r < t_; ++r) {
            const Wire eq = emitCharCompare(
                nl_, pattern_bits[r][0], pattern_bits[r][1],
                text_bits[c][0], text_bits[c][1]);
            DeltaWires dv_out{}, dh_out{};
            emitCcac(nl_, eq, dv_col[r], dh_row[c], dv_out, dh_out);
            dv_col[r] = dv_out;
            dh_row[c] = dh_out;
        }
    }
    for (unsigned r = 0; r < t_; ++r) {
        nl_.markOutput(dv_col[r].plus, "dv_out_p" + std::to_string(r));
        nl_.markOutput(dv_col[r].minus, "dv_out_m" + std::to_string(r));
    }
    for (unsigned c = 0; c < t_; ++c) {
        nl_.markOutput(dh_row[c].plus, "dh_out_p" + std::to_string(c));
        nl_.markOutput(dh_row[c].minus, "dh_out_m" + std::to_string(c));
    }
}

core::TileOutput
GmxAcArray::run(const core::TileInput &in) const
{
    GMX_ASSERT(in.tp == t_ && in.tt == t_,
               "the array netlist is fixed at full T x T tiles");
    std::vector<bool> inputs;
    inputs.reserve(8 * t_);
    for (unsigned r = 0; r < t_; ++r) {
        inputs.push_back(in.pattern[r] & 1);
        inputs.push_back((in.pattern[r] >> 1) & 1);
    }
    for (unsigned c = 0; c < t_; ++c) {
        inputs.push_back(in.text[c] & 1);
        inputs.push_back((in.text[c] >> 1) & 1);
    }
    for (unsigned r = 0; r < t_; ++r) {
        inputs.push_back(in.dv_in.at(r) > 0);
        inputs.push_back(in.dv_in.at(r) < 0);
    }
    for (unsigned c = 0; c < t_; ++c) {
        inputs.push_back(in.dh_in.at(c) > 0);
        inputs.push_back(in.dh_in.at(c) < 0);
    }

    const std::vector<bool> out = nl_.eval(inputs);
    core::TileOutput result;
    for (unsigned r = 0; r < t_; ++r) {
        const bool plus = out[2 * r];
        const bool minus = out[2 * r + 1];
        result.dv_out.set(r, plus ? 1 : minus ? -1 : 0);
    }
    for (unsigned c = 0; c < t_; ++c) {
        const bool plus = out[2 * t_ + 2 * c];
        const bool minus = out[2 * t_ + 2 * c + 1];
        result.dh_out.set(c, plus ? 1 : minus ? -1 : 0);
    }
    return result;
}

} // namespace gmx::hw
