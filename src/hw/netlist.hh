/**
 * @file
 * A small combinational netlist framework.
 *
 * The GMX-AC and GMX-TB microarchitecture models (paper §6) are expressed
 * as real gate netlists: the GMXD equation, the compute cells, and the
 * full T x T arrays are built gate by gate, then (a) simulated to prove
 * functional equivalence with the algorithmic kernels and (b) analyzed
 * for gate count and logic depth, feeding the segmentation and the
 * area/power models.
 */

#ifndef GMX_HW_NETLIST_HH
#define GMX_HW_NETLIST_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gmx::hw {

/** Gate kinds. CONST0/CONST1 and INPUT are zero-area pseudo-nodes. */
enum class GateOp : u8
{
    Input,
    Const0,
    Const1,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
};

/** True for nodes that occupy silicon (everything but inputs/constants). */
bool isPhysical(GateOp op);

/** NAND2-equivalent complexity of a gate, for area accounting. */
double gateEquivalents(GateOp op);

/** A node index inside a Netlist. */
using Wire = u32;

/**
 * A directed acyclic netlist of 1- and 2-input gates. Nodes are created
 * in topological order (operands must already exist), so evaluation and
 * depth analysis are single passes.
 */
class Netlist
{
  public:
    /** Add a primary input; returns its wire. */
    Wire addInput(const std::string &name);

    /** Constant wires. */
    Wire const0();
    Wire const1();

    /** Add a unary gate. */
    Wire addNot(Wire a);

    /** Add a binary gate. */
    Wire addGate(GateOp op, Wire a, Wire b);

    /** Mark a wire as a primary output. */
    void markOutput(Wire w, const std::string &name);

    size_t numInputs() const { return inputs_.size(); }
    size_t numOutputs() const { return outputs_.size(); }
    size_t numNodes() const { return nodes_.size(); }

    /** Physical gate count (excludes inputs and constants). */
    size_t gateCount() const;

    /** Total NAND2-equivalents, the area accounting unit. */
    double nand2Equivalents() const;

    /**
     * Logic depth in gate levels: the longest input-to-output path
     * counting physical gates (inverters count as one level).
     */
    size_t depth() const;

    /** Evaluate: @p input_values must match numInputs(). */
    std::vector<bool> eval(const std::vector<bool> &input_values) const;

    /** Output name (for diagnostics). */
    const std::string &outputName(size_t i) const { return outputs_[i].name; }

  private:
    struct Node
    {
        GateOp op;
        Wire a = 0;
        Wire b = 0;
    };
    struct Output
    {
        Wire wire;
        std::string name;
    };

    std::vector<Node> nodes_;
    std::vector<Wire> inputs_;
    std::vector<Output> outputs_;
    Wire const0_ = UINT32_MAX;
    Wire const1_ = UINT32_MAX;
};

} // namespace gmx::hw

#endif // GMX_HW_NETLIST_HH
