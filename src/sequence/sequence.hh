/**
 * @file
 * DNA sequence container.
 *
 * Stores the sequence both as ASCII (for character-compare kernels like
 * GMX-Tile, which needs no preprocessing) and as 2-bit codes (for kernels
 * that build eq-vectors, like BPM and Bitap). The duplication is deliberate:
 * it mirrors the paper's point that GMX removes the preprocessing step the
 * other algorithms require.
 */

#ifndef GMX_SEQUENCE_SEQUENCE_HH
#define GMX_SEQUENCE_SEQUENCE_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"
#include "sequence/alphabet.hh"

namespace gmx::seq {

/** Immutable DNA sequence with ASCII and 2-bit-coded views. */
class Sequence
{
  public:
    Sequence() = default;

    /** Build from ASCII; non-ACGT characters are normalized to 'A'. */
    explicit Sequence(std::string ascii);

    /** Build from 2-bit codes. */
    explicit Sequence(const std::vector<u8> &codes);

    size_t size() const { return ascii_.size(); }
    bool empty() const { return ascii_.empty(); }

    /** ASCII view (uppercase ACGT). */
    const std::string &str() const { return ascii_; }
    char at(size_t i) const { return ascii_[i]; }

    /** 2-bit code view. */
    const std::vector<u8> &codes() const { return codes_; }
    u8 code(size_t i) const { return codes_[i]; }

    /** Substring [pos, pos+len), clamped to the sequence end. */
    Sequence substr(size_t pos, size_t len) const;

    /** Reverse complement. */
    Sequence reverseComplement() const;

    /**
     * True when the ASCII constructor had to coerce bytes outside
     * ACGT/acgt to 'A' (case folding alone does not set this). The
     * engine's input validation uses it to reject, rather than silently
     * rewrite, malformed requests.
     */
    bool hadNonAcgt() const { return had_non_acgt_; }

    bool operator==(const Sequence &o) const { return ascii_ == o.ascii_; }

  private:
    std::string ascii_;
    std::vector<u8> codes_;
    bool had_non_acgt_ = false;
};

/** A pattern/text pair to align, as produced by the dataset generators. */
struct SequencePair
{
    Sequence pattern; //!< query (rows of the DP-matrix, length n)
    Sequence text;    //!< target (columns of the DP-matrix, length m)
};

} // namespace gmx::seq

#endif // GMX_SEQUENCE_SEQUENCE_HH
