#include "sequence/sequence.hh"

#include <algorithm>

namespace gmx::seq {

Sequence::Sequence(std::string ascii)
    : ascii_(std::move(ascii))
{
    codes_.reserve(ascii_.size());
    for (auto &c : ascii_) {
        if (!isDnaChar(c))
            had_non_acgt_ = true;
        const u8 code = encodeBase(c);
        c = decodeBase(code); // normalize case and non-ACGT bytes
        codes_.push_back(code);
    }
}

Sequence::Sequence(const std::vector<u8> &codes)
{
    ascii_.reserve(codes.size());
    codes_.reserve(codes.size());
    for (u8 code : codes) {
        ascii_.push_back(decodeBase(code));
        codes_.push_back(static_cast<u8>(code & 3));
    }
}

Sequence
Sequence::substr(size_t pos, size_t len) const
{
    if (pos >= ascii_.size())
        return Sequence();
    return Sequence(ascii_.substr(pos, len));
}

Sequence
Sequence::reverseComplement() const
{
    std::vector<u8> rc(codes_.size());
    for (size_t i = 0; i < codes_.size(); ++i)
        rc[codes_.size() - 1 - i] = complementCode(codes_[i]);
    return Sequence(rc);
}

} // namespace gmx::seq
