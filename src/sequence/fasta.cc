#include "sequence/fasta.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace gmx::seq {

std::vector<FastaRecord>
readFasta(std::istream &in)
{
    std::vector<FastaRecord> records;
    std::string line;
    std::string name;
    std::string bases;
    bool have_record = false;

    auto flush = [&]() {
        if (have_record) {
            records.push_back({name, Sequence(bases)});
            bases.clear();
        }
    };

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            name = line.substr(1);
            have_record = true;
        } else {
            if (!have_record)
                GMX_FATAL("FASTA: sequence data before any '>' header");
            bases += line;
        }
    }
    flush();
    return records;
}

std::vector<FastaRecord>
readFastaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GMX_FATAL("cannot open FASTA file: %s", path.c_str());
    return readFasta(in);
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records)
{
    constexpr size_t kWrap = 60;
    for (const auto &rec : records) {
        out << '>' << rec.name << '\n';
        const std::string &s = rec.sequence.str();
        for (size_t pos = 0; pos < s.size(); pos += kWrap)
            out << s.substr(pos, kWrap) << '\n';
    }
}

std::vector<SequencePair>
readSeqPairs(std::istream &in)
{
    std::vector<SequencePair> pairs;
    std::string line;
    std::string pattern;
    bool expect_text = false;

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            if (expect_text)
                GMX_FATAL("seq-pair file: two '>' lines in a row");
            pattern = line.substr(1);
            expect_text = true;
        } else if (line[0] == '<') {
            if (!expect_text)
                GMX_FATAL("seq-pair file: '<' line without preceding '>'");
            pairs.push_back(
                {Sequence(pattern), Sequence(line.substr(1))});
            expect_text = false;
        } else {
            GMX_FATAL("seq-pair file: line must start with '>' or '<'");
        }
    }
    if (expect_text)
        GMX_FATAL("seq-pair file: trailing pattern without text");
    return pairs;
}

std::vector<SequencePair>
readSeqPairsFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GMX_FATAL("cannot open seq-pair file: %s", path.c_str());
    return readSeqPairs(in);
}

void
writeSeqPairs(std::ostream &out, const std::vector<SequencePair> &pairs)
{
    for (const auto &p : pairs) {
        out << '>' << p.pattern.str() << '\n';
        out << '<' << p.text.str() << '\n';
    }
}

void
writeSeqPairsFile(const std::string &path, const Dataset &dataset)
{
    std::ofstream out(path);
    if (!out)
        GMX_FATAL("cannot open output file: %s", path.c_str());
    writeSeqPairs(out, dataset.pairs);
}

double
FastqRecord::meanPhred() const
{
    if (quality.empty())
        return 0.0;
    double sum = 0;
    for (char q : quality)
        sum += q - 33;
    return sum / static_cast<double>(quality.size());
}

std::vector<FastqRecord>
readFastq(std::istream &in)
{
    std::vector<FastqRecord> records;
    std::string header, bases, plus, quality;
    while (std::getline(in, header)) {
        if (!header.empty() && header.back() == '\r')
            header.pop_back();
        if (header.empty())
            continue;
        if (header[0] != '@')
            GMX_FATAL("FASTQ: expected '@' header, got '%s'",
                      header.c_str());
        if (!std::getline(in, bases) || !std::getline(in, plus) ||
            !std::getline(in, quality))
            GMX_FATAL("FASTQ: truncated record '%s'", header.c_str());
        for (std::string *line : {&bases, &plus, &quality}) {
            if (!line->empty() && line->back() == '\r')
                line->pop_back();
        }
        if (plus.empty() || plus[0] != '+')
            GMX_FATAL("FASTQ: expected '+' separator in record '%s'",
                      header.c_str());
        if (bases.size() != quality.size())
            GMX_FATAL("FASTQ: %zu bases but %zu quality values in '%s'",
                      bases.size(), quality.size(), header.c_str());
        records.push_back(
            {header.substr(1), Sequence(bases), quality});
    }
    return records;
}

std::vector<FastqRecord>
readFastqFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        GMX_FATAL("cannot open FASTQ file: %s", path.c_str());
    return readFastq(in);
}

void
writeFastq(std::ostream &out, const std::vector<FastqRecord> &records)
{
    for (const auto &rec : records) {
        GMX_ASSERT(rec.quality.size() == rec.sequence.size(),
                   "FASTQ record quality/sequence length mismatch");
        out << '@' << rec.name << '\n'
            << rec.sequence.str() << '\n'
            << "+\n"
            << rec.quality << '\n';
    }
}

} // namespace gmx::seq
