#include "sequence/generator.hh"

#include "common/logging.hh"

namespace gmx::seq {

Sequence
Generator::random(size_t length)
{
    std::vector<u8> codes(length);
    for (auto &c : codes)
        c = static_cast<u8>(prng_.below(kDnaSymbols));
    return Sequence(codes);
}

Sequence
Generator::mutate(const Sequence &original, double error_rate,
                  const ErrorProfile &profile)
{
    GMX_ASSERT(error_rate >= 0.0 && error_rate <= 1.0);
    const double total =
        profile.substitution + profile.insertion + profile.deletion;
    GMX_ASSERT(total > 0.0);
    const double p_sub = profile.substitution / total;
    const double p_ins = profile.insertion / total;

    std::vector<u8> out;
    out.reserve(original.size() + original.size() / 8 + 16);
    for (size_t i = 0; i < original.size(); ++i) {
        const u8 base = original.code(i);
        if (!prng_.chance(error_rate)) {
            out.push_back(base);
            continue;
        }
        const double kind = prng_.uniform();
        if (kind < p_sub) {
            // substitution: pick one of the three other bases
            const u8 shift = static_cast<u8>(1 + prng_.below(3));
            out.push_back(static_cast<u8>((base + shift) & 3));
        } else if (kind < p_sub + p_ins) {
            // insertion: emit a random base, then the original
            out.push_back(static_cast<u8>(prng_.below(kDnaSymbols)));
            out.push_back(base);
        } else {
            // deletion: drop the original base
        }
    }
    return Sequence(out);
}

SequencePair
Generator::pair(size_t length, double error_rate, const ErrorProfile &profile)
{
    SequencePair p;
    p.text = random(length);
    p.pattern = mutate(p.text, error_rate, profile);
    return p;
}

} // namespace gmx::seq
