/**
 * @file
 * FASTA and ".seq" pair-file I/O.
 *
 * The paper open-sources its datasets in the WFA tools' ".seq" format:
 * each alignment task is two consecutive lines, ">PATTERN" and "<TEXT".
 * We support that format plus plain FASTA for single-sequence files so the
 * examples can consume externally produced data.
 */

#ifndef GMX_SEQUENCE_FASTA_HH
#define GMX_SEQUENCE_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sequence/dataset.hh"
#include "sequence/sequence.hh"

namespace gmx::seq {

/** One FASTA record. */
struct FastaRecord
{
    std::string name;
    Sequence sequence;
};

/** Parse FASTA records from a stream. Throws FatalError on malformed input. */
std::vector<FastaRecord> readFasta(std::istream &in);

/** Read FASTA records from a file. */
std::vector<FastaRecord> readFastaFile(const std::string &path);

/** Write FASTA records (60-column wrapped). */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &records);

/** Parse WFA-style ">pattern\n<text" pair files from a stream. */
std::vector<SequencePair> readSeqPairs(std::istream &in);

/** Read pair file from disk. */
std::vector<SequencePair> readSeqPairsFile(const std::string &path);

/** Write pairs in the ">pattern\n<text" format. */
void writeSeqPairs(std::ostream &out, const std::vector<SequencePair> &pairs);

/** Write a dataset's pairs to a file. */
void writeSeqPairsFile(const std::string &path, const Dataset &dataset);

/** One FASTQ record (sequence + per-base Phred+33 qualities). */
struct FastqRecord
{
    std::string name;
    Sequence sequence;
    std::string quality; //!< same length as the sequence

    /** Mean Phred quality score of the record. */
    double meanPhred() const;
};

/**
 * Parse FASTQ records (4-line form: @name / bases / + / qualities).
 * Throws FatalError on malformed input, including quality/sequence
 * length mismatches.
 */
std::vector<FastqRecord> readFastq(std::istream &in);

/** Read FASTQ records from a file. */
std::vector<FastqRecord> readFastqFile(const std::string &path);

/** Write FASTQ records. */
void writeFastq(std::ostream &out, const std::vector<FastqRecord> &records);

} // namespace gmx::seq

#endif // GMX_SEQUENCE_FASTA_HH
