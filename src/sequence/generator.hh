/**
 * @file
 * Random sequence generation and error injection.
 *
 * The paper's evaluation workloads (§7.1) are synthetic, generated with the
 * methodology of the WFA paper [73]: draw a random text, then derive the
 * pattern by applying substitutions, insertions, and deletions at a target
 * error rate. We reproduce that methodology here.
 */

#ifndef GMX_SEQUENCE_GENERATOR_HH
#define GMX_SEQUENCE_GENERATOR_HH

#include "common/prng.hh"
#include "sequence/sequence.hh"

namespace gmx::seq {

/** Relative frequency of each error class when mutating a sequence. */
struct ErrorProfile
{
    double substitution = 1.0 / 3.0;
    double insertion = 1.0 / 3.0;
    double deletion = 1.0 / 3.0;
};

/** Generator of random sequences and mutated pairs. */
class Generator
{
  public:
    explicit Generator(u64 seed) : prng_(seed) {}

    /** Uniform random DNA sequence of @p length bases. */
    Sequence random(size_t length);

    /**
     * Mutate @p original at @p error_rate: each position independently
     * suffers an error with probability error_rate, split between
     * substitution/insertion/deletion per @p profile. Substitutions always
     * change the base (never silently resample the same one).
     */
    Sequence mutate(const Sequence &original, double error_rate,
                    const ErrorProfile &profile = ErrorProfile());

    /**
     * A pattern/text pair: text is random of @p length, pattern is the
     * mutated copy (so the expected edit distance is ~error_rate * length).
     */
    SequencePair pair(size_t length, double error_rate,
                      const ErrorProfile &profile = ErrorProfile());

    Prng &prng() { return prng_; }

  private:
    Prng prng_;
};

} // namespace gmx::seq

#endif // GMX_SEQUENCE_GENERATOR_HH
