/**
 * @file
 * DNA alphabet encoding.
 *
 * GMX hardware compares raw characters (any alphabet; the paper notes the
 * gmx_text/gmx_pattern registers can be widened to ASCII or CCCII), but the
 * software pipeline works with the 4-letter DNA alphabet encoded in 2 bits,
 * which is also what the Bitap/BPM baselines' eq-vector preprocessing uses.
 */

#ifndef GMX_SEQUENCE_ALPHABET_HH
#define GMX_SEQUENCE_ALPHABET_HH

#include <array>
#include <string_view>

#include "common/types.hh"

namespace gmx::seq {

/** Number of symbols in the DNA alphabet. */
inline constexpr unsigned kDnaSymbols = 4;

/** Encode an ASCII base (ACGTacgt) to a 2-bit code; other bytes map to A. */
inline u8
encodeBase(char c)
{
    switch (c) {
      case 'A': case 'a': return 0;
      case 'C': case 'c': return 1;
      case 'G': case 'g': return 2;
      case 'T': case 't': return 3;
      default: return 0;
    }
}

/** Decode a 2-bit code back to an uppercase ASCII base. */
inline char
decodeBase(u8 code)
{
    constexpr std::array<char, 4> bases = {'A', 'C', 'G', 'T'};
    return bases[code & 3];
}

/** True if @p c is a canonical DNA character. */
inline bool
isDnaChar(char c)
{
    switch (c) {
      case 'A': case 'a': case 'C': case 'c':
      case 'G': case 'g': case 'T': case 't':
        return true;
      default:
        return false;
    }
}

/** Watson-Crick complement of a 2-bit code. */
inline u8 complementCode(u8 code) { return code ^ 3; }

} // namespace gmx::seq

#endif // GMX_SEQUENCE_ALPHABET_HH
