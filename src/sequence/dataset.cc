#include "sequence/dataset.hh"

#include <cstdio>

namespace gmx::seq {

size_t
Dataset::totalPatternBases() const
{
    size_t total = 0;
    for (const auto &p : pairs)
        total += p.pattern.size();
    return total;
}

size_t
Dataset::totalTextBases() const
{
    size_t total = 0;
    for (const auto &p : pairs)
        total += p.text.size();
    return total;
}

Dataset
makeDataset(const std::string &name, size_t length, double error_rate,
            size_t count, u64 seed)
{
    Dataset ds;
    ds.name = name;
    ds.length = length;
    ds.error_rate = error_rate;
    Generator gen(seed);
    ds.pairs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        ds.pairs.push_back(gen.pair(length, error_rate));
    return ds;
}

namespace {

std::string
datasetName(size_t length, double error_rate)
{
    char buf[64];
    if (length >= 1000000)
        std::snprintf(buf, sizeof(buf), "%zuMbp-e%.0f%%", length / 1000000,
                      error_rate * 100);
    else if (length >= 1000)
        std::snprintf(buf, sizeof(buf), "%zukbp-e%.0f%%", length / 1000,
                      error_rate * 100);
    else
        std::snprintf(buf, sizeof(buf), "%zubp-e%.0f%%", length,
                      error_rate * 100);
    return buf;
}

} // namespace

std::vector<Dataset>
shortDatasets(size_t pairs_per_set, u64 seed)
{
    std::vector<Dataset> sets;
    for (size_t len : {100u, 150u, 200u, 250u, 300u}) {
        sets.push_back(makeDataset(datasetName(len, 0.05), len, 0.05,
                                   pairs_per_set, seed + len));
    }
    return sets;
}

std::vector<Dataset>
longDatasets(size_t pairs_per_set, u64 seed, size_t max_length)
{
    std::vector<Dataset> sets;
    for (size_t len = 1000; len <= max_length; len += 1000) {
        sets.push_back(makeDataset(datasetName(len, 0.15), len, 0.15,
                                   pairs_per_set, seed + len));
    }
    return sets;
}

Dataset
illuminaLikeDataset(size_t pairs, u64 seed)
{
    return makeDataset("illumina-like-150bp-e0.5%", 150, 0.005, pairs, seed);
}

Dataset
hifiLikeDataset(size_t pairs, u64 seed)
{
    return makeDataset("hifi-like-10kbp-e1%", 10000, 0.01, pairs, seed);
}

Dataset
megabaseDataset(size_t pairs, u64 seed)
{
    return makeDataset(datasetName(1000000, 0.15), 1000000, 0.15, pairs, seed);
}

} // namespace gmx::seq
