/**
 * @file
 * Evaluation datasets following the paper's §7.1 methodology.
 *
 * Short-sequence datasets: lengths {100, 150, 200, 250, 300} bp at 5% error.
 * Long-sequence datasets: lengths 1k..10k bp (1k steps) at 15% error.
 * Scalability dataset: 1 Mbp at 15% error.
 * Figure-3 datasets: Illumina-like (150bp @0.5%) and HiFi-like (10kbp @1%).
 */

#ifndef GMX_SEQUENCE_DATASET_HH
#define GMX_SEQUENCE_DATASET_HH

#include <string>
#include <vector>

#include "sequence/generator.hh"
#include "sequence/sequence.hh"

namespace gmx::seq {

/** A named collection of pattern/text pairs with uniform length/error. */
struct Dataset
{
    std::string name;      //!< e.g. "short-150bp-5%"
    size_t length = 0;     //!< nominal text length in bases
    double error_rate = 0; //!< injected error rate
    std::vector<SequencePair> pairs;

    /** Total number of pattern bases (used for GCUPS-style metrics). */
    size_t totalPatternBases() const;

    /** Total number of text bases. */
    size_t totalTextBases() const;
};

/** Build one dataset of @p count pairs. Deterministic in @p seed. */
Dataset makeDataset(const std::string &name, size_t length, double error_rate,
                    size_t count, u64 seed);

/** The five short-sequence datasets (100-300bp, 5% error). */
std::vector<Dataset> shortDatasets(size_t pairs_per_set, u64 seed = 42);

/**
 * Long-sequence datasets (1k-10k bp in 1k steps, 15% error). @p max_length
 * lets callers cap the sweep to bound simulation time.
 */
std::vector<Dataset> longDatasets(size_t pairs_per_set, u64 seed = 43,
                                  size_t max_length = 10000);

/** Illumina-like high-quality short reads (Fig. 3): 150bp @ 0.5% error. */
Dataset illuminaLikeDataset(size_t pairs, u64 seed = 44);

/** PacBio-HiFi-like high-quality long reads (Fig. 3): 10kbp @ 1% error. */
Dataset hifiLikeDataset(size_t pairs, u64 seed = 45);

/** 1 Mbp noisy long-sequence scalability dataset (§7.4): 15% error. */
Dataset megabaseDataset(size_t pairs, u64 seed = 46);

} // namespace gmx::seq

#endif // GMX_SEQUENCE_DATASET_HH
