/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Benchmarks and tests must be reproducible across runs and platforms, so
 * we avoid std::mt19937 implementation differences and provide a small,
 * fast, well-understood generator with convenience helpers.
 */

#ifndef GMX_COMMON_PRNG_HH
#define GMX_COMMON_PRNG_HH

#include <cstdint>

#include "common/types.hh"

namespace gmx {

/**
 * xoshiro256** generator (Blackman & Vigna). Seeded via splitmix64 so any
 * 64-bit seed, including 0, produces a well-mixed state.
 */
class Prng
{
  public:
    explicit Prng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(u64 seed)
    {
        u64 x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    u64
    below(u64 bound)
    {
        // Lemire's nearly-divisionless method, simplified: rejection-free
        // multiply-shift is fine for our non-cryptographic use.
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4];
};

} // namespace gmx

#endif // GMX_COMMON_PRNG_HH
