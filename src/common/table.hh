/**
 * @file
 * Fixed-width text table printer.
 *
 * Every benchmark binary reproduces one of the paper's tables or figures and
 * prints its rows through this class so the output format is uniform and
 * easy to diff against EXPERIMENTS.md.
 */

#ifndef GMX_COMMON_TABLE_HH
#define GMX_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace gmx {

/** Column-aligned ASCII table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer with thousands separators. */
    static std::string num(long long v);

    /** Render the full table (header, rule, rows). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gmx

#endif // GMX_COMMON_TABLE_HH
