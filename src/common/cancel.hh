/**
 * @file
 * Cooperative cancellation and deadlines for long-running kernels.
 *
 * Full(GMX) traceback and the NW baseline are quadratic in sequence
 * length: one adversarial megabase pair can pin a worker for minutes.
 * CancelToken makes every unbounded kernel loop interruptible: the token
 * carries an optional shared cancel flag (set by CancelSource::cancel())
 * and an optional deadline; kernels poll it every K tiles/rows through a
 * CancelGate, which throws StatusError (Cancelled or DeadlineExceeded) so
 * the loop unwinds promptly instead of running to completion.
 *
 * Cost discipline: an inactive token (no flag, no deadline — the default
 * argument every direct caller gets) reduces CancelGate::check() to a
 * single predictable branch, so kernels pay nothing when nobody asked for
 * bounds. An active token costs one atomic load and/or one steady_clock
 * read per K iterations.
 */

#ifndef GMX_COMMON_CANCEL_HH
#define GMX_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.hh"

namespace gmx {

/**
 * How many kernel iterations (rows, tiles, or windows-worth of tiles)
 * pass between consultations of an active CancelToken. One shared
 * constant so every kernel — NW, Hirschberg, BPM, banded BPM, Bitap,
 * and the three GMX strategies — amortizes polling identically: a poll
 * every 64 rows is tens of microseconds of work between checks, far
 * below the 50 ms cancellation-latency budget, at <2% overhead.
 */
inline constexpr unsigned kCancelPollStride = 64;

/**
 * Observer half of cancellation: cheap to copy, safe to share across
 * threads. Obtain from a CancelSource (cancellable), withDeadline()
 * (bounded), or default-construct (never stops anything).
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /** True when polling this token can ever request a stop. */
    bool active() const
    {
        return flag_ != nullptr || deadline_ != Clock::time_point::max();
    }

    bool cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_acquire);
    }

    bool hasDeadline() const
    {
        return deadline_ != Clock::time_point::max();
    }

    Clock::time_point deadline() const { return deadline_; }

    bool expired() const
    {
        return hasDeadline() && Clock::now() >= deadline_;
    }

    /** Ok, Cancelled, or DeadlineExceeded. Cancel wins ties. */
    Status check() const
    {
        if (cancelled())
            return Status::cancelled("request cancelled by caller");
        if (expired())
            return Status::deadlineExceeded("request deadline passed");
        return Status();
    }

    /** Throws StatusError when the token requests a stop. */
    void throwIfStopped() const
    {
        Status s = check();
        if (!s.ok())
            throw StatusError(std::move(s));
    }

    /** This token further bounded by @p d (the earlier deadline wins). */
    CancelToken withDeadline(Clock::time_point d) const
    {
        CancelToken t = *this;
        if (d < t.deadline_)
            t.deadline_ = d;
        return t;
    }

    CancelToken withTimeout(Clock::duration timeout) const
    {
        return withDeadline(Clock::now() + timeout);
    }

  private:
    friend class CancelSource;

    std::shared_ptr<const std::atomic<bool>> flag_;
    Clock::time_point deadline_ = Clock::time_point::max();
};

/** Owner half: create, hand out tokens, cancel() when the work is moot. */
class CancelSource
{
  public:
    CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    void cancel() { flag_->store(true, std::memory_order_release); }
    bool cancelled() const
    {
        return flag_->load(std::memory_order_acquire);
    }

    CancelToken token() const
    {
        CancelToken t;
        t.flag_ = flag_;
        return t;
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * Amortized polling helper for kernel loops: check() is a branch and an
 * increment on most calls and consults the token every @p interval calls.
 * Kernels call it once per tile/row, so an active token is polled every
 * K tiles — tens of microseconds of work — which keeps cancellation
 * latency far below the 50 ms budget while adding <2% overhead.
 */
class CancelGate
{
  public:
    static constexpr unsigned kDefaultInterval = kCancelPollStride;

    explicit CancelGate(const CancelToken &token,
                        unsigned interval = kDefaultInterval)
        : token_(token), interval_(token.active() ? interval : 0)
    {}

    /** Throws StatusError(Cancelled | DeadlineExceeded) when due. */
    void check()
    {
        if (interval_ == 0)
            return; // inactive token: kernels pay one branch
        if (++count_ < interval_)
            return;
        count_ = 0;
        token_.throwIfStopped();
    }

  private:
    const CancelToken &token_;
    unsigned interval_;
    unsigned count_ = 0;
};

} // namespace gmx

#endif // GMX_COMMON_CANCEL_HH
