/**
 * @file
 * Fundamental integer type aliases used across the GMX libraries.
 */

#ifndef GMX_COMMON_TYPES_HH
#define GMX_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace gmx {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Number of bits in a machine word used by the bit-parallel kernels. */
inline constexpr unsigned kWordBits = 64;

} // namespace gmx

#endif // GMX_COMMON_TYPES_HH
