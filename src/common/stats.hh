/**
 * @file
 * Streaming summary statistics used by the benchmark harnesses.
 */

#ifndef GMX_COMMON_STATS_HH
#define GMX_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <limits>

namespace gmx {

/**
 * Welford-style running mean/variance plus min/max. Numerically stable and
 * O(1) per sample, so benchmark loops can feed it directly.
 */
class RunningStats
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    size_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric-mean accumulator (throughput ratios are summarized this way). */
class GeoMean
{
  public:
    void
    add(double x)
    {
        if (x > 0) {
            log_sum_ += std::log(x);
            ++n_;
        }
    }

    size_t count() const { return n_; }
    double value() const { return n_ ? std::exp(log_sum_ / n_) : 0.0; }

  private:
    double log_sum_ = 0.0;
    size_t n_ = 0;
};

} // namespace gmx

#endif // GMX_COMMON_STATS_HH
