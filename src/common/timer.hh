/**
 * @file
 * Simple wall-clock stopwatch for native benchmarks.
 */

#ifndef GMX_COMMON_TIMER_HH
#define GMX_COMMON_TIMER_HH

#include <chrono>

namespace gmx {

/** Monotonic stopwatch; starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction/reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace gmx

#endif // GMX_COMMON_TIMER_HH
