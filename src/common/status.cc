#include "common/status.hh"

namespace gmx {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidInput:
        return "INVALID_INPUT";
      case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case StatusCode::Cancelled:
        return "CANCELLED";
      case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::Overloaded:
        return "OVERLOADED";
      case StatusCode::EngineStopped:
        return "ENGINE_STOPPED";
      case StatusCode::Internal:
        return "INTERNAL";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
    }
    return "?";
}

std::string
Status::toString() const
{
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace gmx
