/**
 * @file
 * Shared blocking-socket plumbing for the serving layers.
 *
 * Both network front doors in this repository — the HTTP scrape server
 * (engine/server) and the binary alignment server (serve/server) — are
 * deliberately dependency-free blocking-socket designs: listeners
 * multiplexed with a self-pipe through poll(), per-connection
 * SO_RCVTIMEO/SO_SNDTIMEO deadlines, and careful partial-read/write
 * loops. This header is the one implementation of that plumbing, so the
 * two servers (and the test/client side) cannot drift apart on the
 * subtle parts: EINTR retries, MSG_NOSIGNAL, timeout-vs-close
 * classification, and unix-path cleanup.
 *
 * Everything here is errno-faithful and returns typed gmx::Status (or
 * an IoResult for the per-call read/write classification); nothing
 * throws, and nothing allocates beyond the strings it returns.
 */

#ifndef GMX_COMMON_NET_HH
#define GMX_COMMON_NET_HH

#include <chrono>
#include <string>

#include "common/status.hh"
#include "common/types.hh"

namespace gmx::net {

/** errno-carrying internal Status for a failed socket call. */
Status errnoStatus(const char *what);

/** Classification of one blocking read/write attempt. */
enum class IoResult {
    Ok,      //!< the full transfer completed
    Timeout, //!< SO_RCVTIMEO / SO_SNDTIMEO expired (slow or dead peer)
    Closed,  //!< the peer closed the connection cleanly
    Error,   //!< any other socket error (reset, EPIPE, ...)
};

/** Apply per-connection read+write deadlines (SO_RCVTIMEO/SO_SNDTIMEO). */
void setIoDeadlines(int fd, std::chrono::milliseconds timeout);

/**
 * Write the whole buffer, tolerating partial sends and EINTR. Sends with
 * MSG_NOSIGNAL so a vanished client produces EPIPE, not SIGPIPE.
 */
IoResult sendAll(int fd, const void *data, size_t len);

/**
 * Read exactly @p len bytes (looping over short reads and EINTR).
 * Returns Closed when the peer ends the stream before @p len bytes —
 * including mid-record, which framed protocols must treat as an error.
 */
IoResult recvExact(int fd, void *buf, size_t len);

/** Read at most @p cap bytes; @p got receives the count on Ok. */
IoResult recvSome(int fd, void *buf, size_t cap, size_t &got);

/** Read until the peer closes (one-shot HTTP-style responses). */
std::string recvToEof(int fd);

/** close(fd) and set it to -1; no-op when already negative. */
void closeFd(int &fd);

/**
 * Bind + listen a TCP socket on host:port (port 0 = ephemeral; the
 * chosen port is written to @p bound_port). On failure the fd is closed
 * and a typed Status names the failing call.
 */
Status listenTcp(const std::string &host, u16 port, int &fd,
                 u16 &bound_port);

/**
 * Bind + listen a unix-domain socket, unlinking any stale file at
 * @p path first (the caller owns unlinking on shutdown).
 */
Status listenUnix(const std::string &path, int &fd);

/** Blocking client connect to 127.0.0.1-style host:port; -1 on failure. */
int connectTcp(const std::string &host, u16 port,
               std::chrono::milliseconds io_timeout);

/** Blocking client connect to a unix-domain socket path; -1 on failure. */
int connectUnix(const std::string &path,
                std::chrono::milliseconds io_timeout);

/**
 * The self-pipe trick: stop() writes one byte, the accept loop's poll()
 * wakes on readFd(). Both servers use it for graceful shutdown without
 * signals or busy-polling.
 */
struct SelfPipe
{
    int fds[2] = {-1, -1};

    Status open();
    /** Wake the poll()er; safe from any thread, idempotent. */
    void notify();
    void close();
    int readFd() const { return fds[0]; }
};

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 request-side helpers (the scrape server's dialect:
// one request per connection, GET-only routing done by the caller).
// ---------------------------------------------------------------------

/** One parsed request line. */
struct HttpRequestLine
{
    std::string method;
    std::string path;  //!< target before '?'
    std::string query; //!< target after '?' (no '?')
};

/** Parse "GET /path?query HTTP/1.1" into its parts; false on garbage. */
bool parseHttpRequestLine(const std::string &raw, HttpRequestLine &out);

/**
 * Read an HTTP request (through the blank line) into @p raw. On failure
 * returns false with @p error_status set to the HTTP code the caller
 * should answer: 431 (too large), 408 (read deadline expired), or 0
 * (peer closed / hard error — drop with no reply).
 */
bool readHttpRequest(int fd, size_t max_bytes, std::string &raw,
                     int &error_status);

/** Canonical reason phrase for the status codes the servers emit. */
const char *httpReasonPhrase(int status);

} // namespace gmx::net

#endif // GMX_COMMON_NET_HH
