/**
 * @file
 * Dynamic bit vector with word-granular access.
 *
 * The bit-parallel aligners (Myers BPM, Bitap/GenASM) operate on long bit
 * vectors split into 64-bit words with carry propagation between words.
 * This class provides the storage plus the handful of word/bit primitives
 * those kernels need; the kernels themselves implement the shifting and
 * carry logic explicitly, since that is where the algorithms live.
 */

#ifndef GMX_COMMON_BITVECTOR_HH
#define GMX_COMMON_BITVECTOR_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gmx {

/** Fixed-length bit vector backed by 64-bit words. */
class BitVector
{
  public:
    BitVector() = default;

    /** Create a vector of @p nbits, all clear (or all set). */
    explicit BitVector(size_t nbits, bool set_all = false)
        : nbits_(nbits),
          words_(wordsFor(nbits), set_all ? ~u64{0} : u64{0})
    {
        trimTail();
    }

    /** Number of addressable bits. */
    size_t size() const { return nbits_; }

    /** Number of backing words. */
    size_t numWords() const { return words_.size(); }

    /** How many 64-bit words are needed to hold @p nbits bits. */
    static size_t wordsFor(size_t nbits) { return (nbits + 63) / 64; }

    bool
    get(size_t i) const
    {
        GMX_ASSERT(i < nbits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool v = true)
    {
        GMX_ASSERT(i < nbits_);
        const u64 mask = u64{1} << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /** Direct word access for bit-parallel kernels. */
    u64 word(size_t w) const { return words_[w]; }
    u64 &word(size_t w) { return words_[w]; }
    const u64 *data() const { return words_.data(); }
    u64 *data() { return words_.data(); }

    /** Set every bit. */
    void
    fill()
    {
        for (auto &w : words_)
            w = ~u64{0};
        trimTail();
    }

    /** Clear every bit. */
    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Population count over the whole vector. */
    size_t
    count() const
    {
        size_t n = 0;
        for (u64 w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    bool
    operator==(const BitVector &o) const
    {
        return nbits_ == o.nbits_ && words_ == o.words_;
    }

  private:
    /** Clear any bits beyond nbits_ in the last word. */
    void
    trimTail()
    {
        const size_t rem = nbits_ & 63;
        if (rem != 0 && !words_.empty())
            words_.back() &= (u64{1} << rem) - 1;
    }

    size_t nbits_ = 0;
    std::vector<u64> words_;
};

} // namespace gmx

#endif // GMX_COMMON_BITVECTOR_HH
