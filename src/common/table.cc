#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace gmx {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GMX_ASSERT(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GMX_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (v < 0)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-");
        os << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace gmx
