/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts the process.
 * fatal()  — the user supplied an invalid configuration or input; throws
 *            a FatalError so callers (and tests) can observe it.
 * warn()   — something is suspicious but execution can continue.
 */

#ifndef GMX_COMMON_LOGGING_HH
#define GMX_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gmx {

/** Exception thrown by fatal() on invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

#define GMX_PANIC(...) \
    ::gmx::detail::panicImpl(__FILE__, __LINE__, ::gmx::detail::format(__VA_ARGS__))

#define GMX_FATAL(...) \
    ::gmx::detail::fatalImpl(::gmx::detail::format(__VA_ARGS__))

#define GMX_WARN(...) \
    ::gmx::detail::warnImpl(::gmx::detail::format(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define GMX_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            GMX_PANIC("assertion failed: %s", #cond); \
        } \
    } while (0)

} // namespace gmx

#endif // GMX_COMMON_LOGGING_HH
