/**
 * @file
 * Typed error propagation for subsystem boundaries.
 *
 * The engine is a service front-end: callers need to distinguish "your
 * input was malformed" from "you ran out of time" from "the system is
 * overloaded", and they need to do it without string-matching exception
 * messages. Status carries a typed code plus a human-readable message;
 * Result<T> is the value-or-Status sum type returned across subsystem
 * boundaries (engine futures, admission gates, batch drivers).
 *
 * Inside deep kernel loops, unwinding by hand would contort every
 * recurrence, so cancellation uses one exception type — StatusError —
 * that wraps a Status and is caught exactly once, at the boundary, where
 * it becomes a failed Result. No other exception type crosses the engine
 * boundary: std::bad_alloc maps to ResourceExhausted, FatalError (invalid
 * configuration/input) to InvalidInput, anything else to Internal.
 */

#ifndef GMX_COMMON_STATUS_HH
#define GMX_COMMON_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace gmx {

/** Stable error taxonomy shared by every subsystem. */
enum class StatusCode : u8 {
    Ok = 0,
    InvalidInput,      //!< malformed request (empty/oversized/mismatched)
    DeadlineExceeded,  //!< the request's deadline passed before completion
    Cancelled,         //!< the caller cancelled the request
    ResourceExhausted, //!< memory budget (or an allocation) refused the work
    Overloaded,        //!< backpressure: queue full, request rejected or shed
    EngineStopped,     //!< submitted to an engine after stop()
    Internal,          //!< unexpected failure inside an aligner or the engine
    Unavailable,       //!< every route to a backend is circuit-broken
};

/** Stable upper-snake name for a code ("DEADLINE_EXCEEDED", ...). */
const char *statusCodeName(StatusCode code);

/** A typed error code with an optional human-readable message. */
class Status
{
  public:
    /** Default: Ok. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "DEADLINE_EXCEEDED: request deadline passed" (or just the name). */
    std::string toString() const;

    // Named constructors keep call sites readable.
    static Status invalidInput(std::string msg)
    {
        return {StatusCode::InvalidInput, std::move(msg)};
    }
    static Status deadlineExceeded(std::string msg)
    {
        return {StatusCode::DeadlineExceeded, std::move(msg)};
    }
    static Status cancelled(std::string msg)
    {
        return {StatusCode::Cancelled, std::move(msg)};
    }
    static Status resourceExhausted(std::string msg)
    {
        return {StatusCode::ResourceExhausted, std::move(msg)};
    }
    static Status overloaded(std::string msg)
    {
        return {StatusCode::Overloaded, std::move(msg)};
    }
    static Status engineStopped(std::string msg)
    {
        return {StatusCode::EngineStopped, std::move(msg)};
    }
    static Status internal(std::string msg)
    {
        return {StatusCode::Internal, std::move(msg)};
    }
    static Status unavailable(std::string msg)
    {
        return {StatusCode::Unavailable, std::move(msg)};
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * The one exception used to unwind deep kernel loops on cancellation or
 * deadline expiry. Thrown by CancelGate::check(), caught at the engine
 * boundary and converted into a failed Result.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {}

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/**
 * Value-or-Status. A Result either holds a T (ok) or a non-Ok Status.
 * This is the payload type of engine futures: futures are always
 * fulfilled with a value — never an exception — so waiting on one cannot
 * throw and a request's outcome is always a typed Status.
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be Ok. */
    Result(Status status) : status_(std::move(status))
    {
        GMX_ASSERT(!status_.ok(), "Result failure requires a non-Ok status");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }
    StatusCode code() const
    {
        return ok() ? StatusCode::Ok : status_.code();
    }

    /** The held value; the Result must be ok (asserted). */
    T &value()
    {
        GMX_ASSERT(ok(), "Result::value() on a failed Result");
        return *value_;
    }
    const T &value() const
    {
        GMX_ASSERT(ok(), "Result::value() on a failed Result");
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_; //!< Ok when value_ holds the result
    std::optional<T> value_;
};

} // namespace gmx

#endif // GMX_COMMON_STATUS_HH
