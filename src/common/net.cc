#include "common/net.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gmx::net {

Status
errnoStatus(const char *what)
{
    return Status::internal(std::string(what) + ": " +
                            std::strerror(errno));
}

void
setIoDeadlines(int fd, std::chrono::milliseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

IoResult
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return IoResult::Timeout;
        return IoResult::Error;
    }
    return IoResult::Ok;
}

IoResult
recvExact(int fd, void *buf, size_t len)
{
    char *p = static_cast<char *>(buf);
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, p + off, len - off, 0);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return IoResult::Closed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoResult::Timeout;
        return IoResult::Error;
    }
    return IoResult::Ok;
}

IoResult
recvSome(int fd, void *buf, size_t cap, size_t &got)
{
    got = 0;
    for (;;) {
        const ssize_t n = ::recv(fd, buf, cap, 0);
        if (n > 0) {
            got = static_cast<size_t>(n);
            return IoResult::Ok;
        }
        if (n == 0)
            return IoResult::Closed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoResult::Timeout;
        return IoResult::Error;
    }
}

std::string
recvToEof(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        size_t got = 0;
        if (recvSome(fd, buf, sizeof buf, got) != IoResult::Ok)
            return out; // close, timeout, or reset — any of them ends it
        out.append(buf, got);
    }
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Status
listenTcp(const std::string &host, u16 port, int &fd, u16 &bound_port)
{
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_INET)");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        closeFd(fd);
        return Status::invalidInput("listenTcp: bad host \"" + host + "\"");
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0) {
        const Status s = errnoStatus("bind");
        closeFd(fd);
        return s;
    }
    if (::listen(fd, 64) < 0) {
        const Status s = errnoStatus("listen");
        closeFd(fd);
        return s;
    }
    socklen_t len = sizeof addr;
    bound_port = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) == 0)
        bound_port = ntohs(addr.sin_port);
    return Status();
}

Status
listenUnix(const std::string &path, int &fd)
{
    sockaddr_un uaddr{};
    if (path.size() >= sizeof uaddr.sun_path)
        return Status::invalidInput("listenUnix: path too long");
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_UNIX)");
    uaddr.sun_family = AF_UNIX;
    std::strncpy(uaddr.sun_path, path.c_str(), sizeof uaddr.sun_path - 1);
    (void)::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&uaddr), sizeof uaddr) < 0 ||
        ::listen(fd, 16) < 0) {
        const Status s = errnoStatus("bind/listen(unix)");
        closeFd(fd);
        return s;
    }
    return Status();
}

int
connectTcp(const std::string &host, u16 port,
           std::chrono::milliseconds io_timeout)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        ::close(fd);
        return -1;
    }
    setIoDeadlines(fd, io_timeout);
    return fd;
}

int
connectUnix(const std::string &path, std::chrono::milliseconds io_timeout)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path)
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        ::close(fd);
        return -1;
    }
    setIoDeadlines(fd, io_timeout);
    return fd;
}

Status
SelfPipe::open()
{
    if (::pipe(fds) < 0)
        return errnoStatus("pipe");
    return Status();
}

void
SelfPipe::notify()
{
    if (fds[1] >= 0) {
        const char byte = 1;
        (void)!::write(fds[1], &byte, 1);
    }
}

void
SelfPipe::close()
{
    closeFd(fds[0]);
    closeFd(fds[1]);
}

bool
parseHttpRequestLine(const std::string &raw, HttpRequestLine &out)
{
    const size_t eol = raw.find("\r\n");
    if (eol == std::string::npos)
        return false;
    const std::string line = raw.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
        return false;
    if (line.compare(sp2 + 1, 5, "HTTP/") != 0)
        return false;
    out.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (target.empty() || target[0] != '/')
        return false;
    const size_t q = target.find('?');
    out.path = target.substr(0, q);
    out.query = q == std::string::npos ? "" : target.substr(q + 1);
    return true;
}

bool
readHttpRequest(int fd, size_t max_bytes, std::string &raw,
                int &error_status)
{
    char buf[2048];
    while (raw.find("\r\n\r\n") == std::string::npos) {
        if (raw.size() > max_bytes) {
            error_status = 431;
            return false;
        }
        size_t got = 0;
        switch (recvSome(fd, buf, sizeof buf, got)) {
          case IoResult::Ok:
            raw.append(buf, got);
            continue;
          case IoResult::Timeout:
            error_status = 408; // SO_RCVTIMEO expired: slow client
            return false;
          case IoResult::Closed:
          case IoResult::Error:
            error_status = 0; // drop silently
            return false;
        }
    }
    if (raw.size() > max_bytes) {
        error_status = 431;
        return false;
    }
    return true;
}

const char *
httpReasonPhrase(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
    }
    return "Unknown";
}

} // namespace gmx::net
