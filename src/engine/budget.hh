/**
 * @file
 * Engine-wide memory budget and per-request footprint estimation.
 *
 * Scrooge's lesson (PAPERS.md) applied to the engine: traceback memory,
 * not compute, is what an adversarial workload exhausts first. Full(GMX)
 * stores ceil(n/T)*ceil(m/T) tile-edge records, so one 1 Mbp pair at
 * T=32 wants ~31 GB of edge matrix. The MemoryBudget is a concurrent
 * admission gate over the sum of estimated footprints of in-flight
 * requests: a reservation either fits under the cap or fails, in which
 * case the engine downgrades the request to a memory-frugal traceback
 * (Hirschberg, O(min(n,m)) bytes) or rejects it with ResourceExhausted.
 *
 * Estimates are deliberately analytic (no allocation probing): they are
 * the same closed forms the kernels' own storage uses, so the gate caps
 * real RSS up to small constant factors.
 */

#ifndef GMX_ENGINE_BUDGET_HH
#define GMX_ENGINE_BUDGET_HH

#include <algorithm>
#include <atomic>

#include "common/types.hh"

namespace gmx::engine {

/** Bytes of one stored tile edge (TileEdges: two DeltaVec of two u64). */
inline constexpr size_t kTileEdgeBytes = 32;

/**
 * The cascade's auto filter budget for an (n, m) pair:
 * max(8, longer/16, skew + 4). The skew term guarantees the Bitap filter
 * can ever reach the opposite corner (|n-m| edits are unavoidable).
 *
 * Defined here, next to the footprint estimators, because the
 * distance-only estimate sizes the filter's (k+1) state vectors from the
 * same k the cascade will actually run with — one closed form, shared by
 * admission and routing, so the two cannot drift.
 */
inline i64
cascadeAutoFilterK(size_t n, size_t m)
{
    const i64 longer = static_cast<i64>(std::max(n, m));
    const i64 skew = static_cast<i64>(n > m ? n - m : m - n);
    return std::max<i64>({8, longer / 16, skew + 4});
}

/** Full(GMX) traceback footprint: the whole tile-edge matrix plus ops. */
size_t fullGmxTracebackBytes(size_t n, size_t m, unsigned tile);

/** Distance-only cascade footprint: one tile-row of edges per tier. */
size_t distanceOnlyBytes(size_t n, size_t m, unsigned tile);

/** Hirschberg traceback footprint: a few DP rows plus the ops buffer. */
size_t hirschbergBytes(size_t n, size_t m);

/** NW traceback footprint: the (n+1) x (m+1) direction matrix. */
size_t nwTracebackBytes(size_t n, size_t m);

/**
 * Streaming Windowed(GMX) footprint: one W x W Full(GMX) window (edge
 * matrix + window ops + window substrings) plus the stepper's bounded
 * run buffer. Deliberately independent of the pair lengths — this is
 * the closed form that lets the budget admit a 1 Mbp pair against the
 * same reservation as a 10 kbp one.
 */
size_t windowedStreamBytes(size_t window, unsigned tile);

/**
 * Concurrent byte-budget. tryReserve() admits a request only when the
 * total of outstanding reservations stays within the limit; a limit of 0
 * disables the gate. Lock-free (single CAS loop), so it sits on the
 * per-request dispatch path without serializing workers.
 */
class MemoryBudget
{
  public:
    explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

    bool enabled() const { return limit_ != 0; }
    size_t limit() const { return limit_; }
    size_t reserved() const
    {
        return reserved_.load(std::memory_order_relaxed);
    }
    size_t peak() const { return peak_.load(std::memory_order_relaxed); }

    /**
     * Reserve @p bytes if they fit (always succeeds when disabled).
     * Oversized single requests (bytes > limit) never fit.
     */
    bool tryReserve(size_t bytes);

    /** Return @p bytes reserved earlier. */
    void release(size_t bytes);

  private:
    size_t limit_;
    std::atomic<size_t> reserved_{0};
    std::atomic<size_t> peak_{0};
};

/**
 * RAII reservation: releases on destruction. Movable so a worker can
 * hold it across the kernel call it gates.
 */
class MemoryReservation
{
  public:
    MemoryReservation() = default;
    MemoryReservation(MemoryBudget *budget, size_t bytes)
        : budget_(budget), bytes_(bytes)
    {}
    MemoryReservation(MemoryReservation &&o) noexcept
        : budget_(o.budget_), bytes_(o.bytes_)
    {
        o.budget_ = nullptr;
        o.bytes_ = 0;
    }
    MemoryReservation &operator=(MemoryReservation &&o) noexcept
    {
        if (this != &o) {
            reset();
            budget_ = o.budget_;
            bytes_ = o.bytes_;
            o.budget_ = nullptr;
            o.bytes_ = 0;
        }
        return *this;
    }
    MemoryReservation(const MemoryReservation &) = delete;
    MemoryReservation &operator=(const MemoryReservation &) = delete;
    ~MemoryReservation() { reset(); }

    void reset()
    {
        if (budget_)
            budget_->release(bytes_);
        budget_ = nullptr;
        bytes_ = 0;
    }

    size_t bytes() const { return bytes_; }

  private:
    MemoryBudget *budget_ = nullptr;
    size_t bytes_ = 0;
};

} // namespace gmx::engine

#endif // GMX_ENGINE_BUDGET_HH
