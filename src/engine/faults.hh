/**
 * @file
 * Deterministic fault-injection harness for the engine.
 *
 * Chaos testing a concurrent pipeline is only useful when a failing run
 * can be replayed, so every injection decision here is a pure function
 * of (seed, injection point, nth call to that point): the nth poll of a
 * point injects iff splitmix64(seed, point, n) falls under the armed
 * probability. Thread interleaving changes which worker draws which n,
 * but the multiset of injected events per point is fixed by the seed.
 *
 * The hooks compile to constant-false / no-op unless the build defines
 * GMX_FAULT_INJECTION (CMake option of the same name), so production
 * builds carry zero overhead. Call sites use the macros:
 *
 *   if (GMX_INJECT_FAULT(faults::Point::QueueFull)) ...  // force a path
 *   GMX_FAULT_STALL();                                   // maybe sleep
 *
 * Injection points:
 *   AllocFail   — a simulated allocation failure before kernel work;
 *                 the engine must surface ResourceExhausted.
 *   WorkerStall — a pool worker sleeps mid-pipeline; siblings must keep
 *                 the engine live (no deadlock, no starvation).
 *   QueueFull   — the bounded queue reports full spuriously; the armed
 *                 backpressure policy must engage.
 *   TaskError   — a spurious exception from inside a task; the engine
 *                 must surface a typed Internal status, never terminate.
 *   AcceptFail  — an accepted serve connection fails immediately (as if
 *                 the client vanished between accept and handshake); the
 *                 align server must count it and keep accepting.
 *   FrameTooLarge — the align server's frame-size check trips spuriously;
 *                 the client must receive a typed protocol error frame.
 *   SlowClient  — the align server's response writer stalls (a client
 *                 that stops draining its socket); per-connection
 *                 in-flight bounds must hold the line.
 *   ShardWedge  — an engine worker wedges for wedge_duration before the
 *                 kernel (a sick shard); the router's circuit breaker
 *                 must open and route around it.
 *   RetryStorm  — the align client's transport drops a connection at a
 *                 frame boundary; the retry layer must resubmit only
 *                 unanswered pairs, and the dedup cache must absorb the
 *                 duplicates.
 *   ClockSkew   — the server's monotonic clock reads jump by skew;
 *                 quota refill and deadline-budget arithmetic must stay
 *                 sane (no negative budgets, ledger still balances).
 */

#ifndef GMX_ENGINE_FAULTS_HH
#define GMX_ENGINE_FAULTS_HH

#include <array>
#include <chrono>

#include "common/types.hh"

namespace gmx::engine::faults {

enum class Point : unsigned {
    AllocFail = 0,
    WorkerStall,
    QueueFull,
    TaskError,
    AcceptFail,
    FrameTooLarge,
    SlowClient,
    ShardWedge,
    RetryStorm,
    ClockSkew,
};

inline constexpr unsigned kPointCount = 10;

/** Human-readable point name ("alloc_fail", ...). */
const char *pointName(Point p);

/** A seeded chaos schedule. */
struct Plan
{
    u64 seed = 1;

    /** Per-point injection probability in [0, 1]; 0 disarms the point. */
    std::array<double, kPointCount> probability{};

    /** How long an injected WorkerStall sleeps. */
    std::chrono::microseconds stall_duration{2000};

    /** How long an injected ShardWedge pins a worker (sick shard). */
    std::chrono::microseconds wedge_duration{20000};

    /** Offset an injected ClockSkew adds to monotonic clock reads. */
    std::chrono::microseconds skew{-3000000};

    Plan &with(Point p, double prob)
    {
        probability[static_cast<unsigned>(p)] = prob;
        return *this;
    }
};

/** Install @p plan and reset all counters. Thread-safe via disarm-first. */
void arm(const Plan &plan);

/** Stop injecting (hooks return false immediately). */
void disarm();

bool armed();

/**
 * Deterministic decision for the next call at @p p. Cheap when disarmed
 * (one relaxed atomic load). Counts both calls and injections.
 */
bool shouldInject(Point p);

/** Sleep for the plan's stall duration iff WorkerStall fires. */
void maybeStall();

/** Sleep for the plan's stall duration iff @p p fires (SlowClient etc.).
 *  ShardWedge sleeps the plan's wedge_duration instead. */
void maybeStallAt(Point p);

/** The plan's skew iff ClockSkew fires, else zero. */
std::chrono::microseconds maybeSkew();

/** Calls to / injections at @p p since the last arm(). */
u64 callCount(Point p);
u64 injectedCount(Point p);

} // namespace gmx::engine::faults

#ifdef GMX_FAULT_INJECTION
#define GMX_INJECT_FAULT(point) (::gmx::engine::faults::shouldInject(point))
#define GMX_FAULT_STALL() (::gmx::engine::faults::maybeStall())
#define GMX_FAULT_STALL_AT(point) (::gmx::engine::faults::maybeStallAt(point))
#define GMX_FAULT_SKEW() (::gmx::engine::faults::maybeSkew())
#else
#define GMX_INJECT_FAULT(point) (false)
#define GMX_FAULT_STALL() ((void)0)
#define GMX_FAULT_STALL_AT(point) ((void)0)
#define GMX_FAULT_SKEW() (::std::chrono::microseconds{0})
#endif

#endif // GMX_ENGINE_FAULTS_HH
