#include "engine/engine.hh"

#include <algorithm>
#include <array>
#include <new>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "align/hirschberg.hh"
#include "common/logging.hh"
#include "common/timer.hh"
#include "engine/faults.hh"
#include "kernel/dispatch.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"

namespace gmx::engine {

namespace {

/** A future already fulfilled with @p status (rejections skip the queue). */
std::future<Engine::AlignOutcome>
readyFuture(Status status)
{
    std::promise<Engine::AlignOutcome> p;
    auto f = p.get_future();
    p.set_value(Engine::AlignOutcome(std::move(status)));
    return f;
}

} // namespace

Engine::Engine(EngineConfig config)
    : config_(config), budget_(config.memory_budget_bytes),
      trace_(config.trace_capacity, config.trace_sample_every),
      pool_(config.workers)
{
    if (config_.queue_capacity == 0)
        GMX_FATAL("Engine: queue_capacity must be nonzero");
    if (config_.microbatch_max == 0)
        config_.microbatch_max = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Engine::~Engine()
{
    stop();
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, SubmitOptions options)
{
    const size_t n = pair.pattern.size();
    const size_t mm = pair.text.size();
    // Length-class routing decision, made once at the submit boundary and
    // carried on the request: custom aligners always count as Short (the
    // cascade router never sees them), everything else follows the
    // cascade's long_threshold.
    const align::LengthClass klass =
        options.aligner ? align::LengthClass::Short
                        : lengthClassFor(config_.cascade, n, mm);

    // Validation runs on the submitter's thread, before the queue: a
    // malformed pair never costs a queue slot or a worker.
    if (Status s = align::validatePair(pair, config_.limits, klass);
        !s.ok()) {
        metrics_.invalid.fetch_add(1, std::memory_order_relaxed);
        return readyFuture(std::move(s));
    }
    // Per-kernel length caps: every kernel this request's route can visit
    // must accept the pair, so a non-streaming kernel rejects Mbp-scale
    // inputs with a typed InvalidInput here instead of blowing the budget
    // gate (or allocating quadratic state) mid-flight.
    if (!options.aligner) {
        if (Status s = checkRouteLengths(klass, n, mm); !s.ok()) {
            metrics_.invalid.fetch_add(1, std::memory_order_relaxed);
            return readyFuture(std::move(s));
        }
    }

    Request req;
    req.klass = klass;
    req.bases = n + mm;
    req.want_cigar = options.want_cigar;
    req.aligner = std::move(options.aligner);
    req.cancel = options.timeout.count() > 0
                     ? options.cancel.withTimeout(options.timeout)
                     : options.cancel;
    if (options.estimated_bytes != 0) {
        req.estimated_bytes = options.estimated_bytes;
    } else if (!req.aligner && klass == align::LengthClass::Long) {
        // The streamed tier's footprint is the window geometry's, not the
        // pair's: the estimator ignores n and m, so a 1 Mbp pair reserves
        // the same O(window) bytes as a 100 kbp one. This is what lets a
        // default budget admit long-class traffic at all.
        const auto &reg = kernel::AlignerRegistry::instance();
        kernel::KernelParams params;
        params.want_cigar = req.want_cigar;
        params.tile = config_.cascade.tile;
        params.window = config_.cascade.long_window;
        params.overlap = config_.cascade.long_overlap;
        req.estimated_bytes =
            reg.require(kernel::dispatchKernel(config_.cascade.long_kernel))
                .scratch_bytes(n, mm, params);
    } else if (!req.aligner) {
        // Worst-case cascade footprint. Tier kernels run back to back on
        // one arena and each rewinds its frame, so the request's peak is
        // the max over the tiers it can visit: the full-DP escalation
        // target (traceback requests pay the full edge matrix) and the
        // distance-only filter at the k the routing will pick. Custom
        // aligners are exempt unless declared.
        const auto &reg = kernel::AlignerRegistry::instance();
        kernel::KernelParams params;
        params.want_cigar = req.want_cigar;
        params.tile = config_.cascade.tile;
        // Estimate against the variant dispatch will actually run, so a
        // SIMD build's admission matches its real footprint.
        req.estimated_bytes =
            reg.require(kernel::dispatchKernel(config_.cascade.full_kernel))
                .scratch_bytes(n, mm, params);
        if (config_.cascade.enabled) {
            kernel::KernelParams fparams;
            fparams.want_cigar = false;
            fparams.tile = config_.cascade.tile;
            fparams.k = cascadeFilterK(config_.cascade, n, mm);
            req.estimated_bytes = std::max(
                req.estimated_bytes,
                reg.require(
                       kernel::dispatchKernel(config_.cascade.filter_kernel))
                    .scratch_bytes(n, mm, fparams));
        }
    }
    req.pair = std::move(pair);
    return enqueue(std::move(req));
}

Status
Engine::checkRouteLengths(align::LengthClass klass, size_t n, size_t m) const
{
    const auto &reg = kernel::AlignerRegistry::instance();
    const CascadeConfig &cc = config_.cascade;
    if (klass == align::LengthClass::Long) {
        return kernel::checkKernelLength(
            reg.require(kernel::dispatchKernel(cc.long_kernel)), n, m);
    }
    // Short class: the full tier can always be reached; the filter and
    // banded tiers only when the cascade is on.
    if (Status s = kernel::checkKernelLength(
            reg.require(kernel::dispatchKernel(cc.full_kernel)), n, m);
        !s.ok())
        return s;
    if (cc.enabled) {
        if (Status s = kernel::checkKernelLength(
                reg.require(kernel::dispatchKernel(cc.filter_kernel)), n, m);
            !s.ok())
            return s;
        if (Status s = kernel::checkKernelLength(
                reg.require(kernel::dispatchKernel(cc.banded_kernel)), n, m);
            !s.ok())
            return s;
    }
    return Status();
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, bool want_cigar)
{
    SubmitOptions options;
    options.want_cigar = want_cigar;
    return submit(std::move(pair), std::move(options));
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, align::PairAligner aligner)
{
    if (!aligner)
        GMX_FATAL("Engine::submit: empty aligner function");
    SubmitOptions options;
    options.aligner = std::move(aligner);
    return submit(std::move(pair), std::move(options));
}

std::future<Engine::AlignOutcome>
Engine::enqueue(Request req)
{
    req.enqueued = Clock::now();
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    auto future = req.promise.get_future();

    // A shed victim's promise must be fulfilled outside mu_ (promise
    // internals are not part of the queue's critical section).
    std::promise<AlignOutcome> shed_victim;
    bool have_victim = false;
    u64 victim_id = 0;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            return readyFuture(
                Status::engineStopped("submit after Engine::stop()"));
        }
        const bool full =
            queue_.size() >= config_.queue_capacity ||
            GMX_INJECT_FAULT(faults::Point::QueueFull);
        if (full) {
            switch (config_.backpressure) {
              case Backpressure::Block:
                queue_not_full_.wait(lk, [this] {
                    return queue_.size() < config_.queue_capacity ||
                           stopping_;
                });
                if (stopping_) {
                    metrics_.rejected.fetch_add(1,
                                                std::memory_order_relaxed);
                    return readyFuture(Status::engineStopped(
                        "engine stopped while awaiting queue room"));
                }
                break;
              case Backpressure::Reject:
                metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
                return readyFuture(
                    Status::overloaded("queue full (Reject policy)"));
              case Backpressure::ShedOldest:
                if (!queue_.empty()) {
                    shed_victim = std::move(queue_.front().promise);
                    victim_id = queue_.front().id;
                    queue_.pop_front();
                    have_victim = true;
                    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
                }
                break;
            }
        }
        // Record Enqueue under the lock so a traced request's spans can
        // never appear dispatch-before-enqueue in the ring.
        if (trace_.sampled(req.id))
            trace_.record(req.id, TraceEvent::Enqueue,
                          trace_.toUs(req.enqueued));
        queue_.push_back(std::move(req));
        const u64 depth = queue_.size();
        metrics_.queue_depth.store(depth, std::memory_order_relaxed);
        metrics_.notePeak(depth);
        metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
    }
    dispatch_cv_.notify_one();
    if (have_victim) {
        if (trace_.sampled(victim_id))
            trace_.record(victim_id, TraceEvent::Complete, trace_.nowUs(),
                          StatusCode::Overloaded);
        shed_victim.set_value(AlignOutcome(
            Status::overloaded("shed under ShedOldest backpressure")));
        queue_not_full_.notify_one(); // shedding also freed a slot
    }
    return future;
}

void
Engine::dispatchLoop()
{
    for (;;) {
        // shared_ptr because std::function requires copyable targets and
        // Request holds a move-only promise.
        auto batch = std::make_shared<std::vector<Request>>();
        {
            std::unique_lock<std::mutex> lk(mu_);
            // Wait for work AND a free dispatch slot: the throttle keeps
            // pressure in the bounded queue where the policies act on it.
            dispatch_cv_.wait(lk, [this] {
                return (!queue_.empty() &&
                        inflight_tasks_ < maxInflightTasks()) ||
                       (stopping_ && queue_.empty());
            });
            if (queue_.empty()) {
                // stopping_ and drained: dispatcher's work is done.
                return;
            }
            batch->push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Fuse the run of small requests behind the head into one
            // pool task. The head itself may be large: a lone large head
            // must not suppress fusing the smalls queued right behind it
            // (head-of-line fusion miss), and taking the run in queue
            // order keeps sizes unreordered.
            while (batch->size() < config_.microbatch_max &&
                   !queue_.empty() && isSmall(queue_.front())) {
                batch->push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            inflight_ += batch->size();
            ++inflight_tasks_;
            metrics_.queue_depth.store(queue_.size(),
                                       std::memory_order_relaxed);
        }
        queue_not_full_.notify_all();
        if (batch->size() > 1) {
            metrics_.microbatches.fetch_add(1, std::memory_order_relaxed);
            metrics_.batched_pairs.fetch_add(batch->size(),
                                             std::memory_order_relaxed);
        }
        if (!pool_.trySubmit([this, batch] {
                runRequests(std::move(*batch));
            })) {
            // Pool already shut down (tear-down race): run inline so
            // every accepted future is still fulfilled.
            runRequests(std::move(*batch));
        }
    }
}

namespace {

/**
 * Per-worker scratch: kernels bump-allocate their DP rows and tile
 * buffers here, so a warmed worker serves requests with zero heap
 * allocations on the hot path. Shared by the lane packer and runOne —
 * both run on the same worker thread, never concurrently.
 */
ScratchArena &
workerArena()
{
    thread_local ScratchArena arena;
    return arena;
}

} // namespace

Engine::Served
Engine::runOne(Request &req, const FilterPrefill *pre)
{
    const bool traced = trace_.sampled(req.id);
    const bool prefilled = pre != nullptr && pre->ran;

    // A lane the packer ran whose deadline expired (or token fired)
    // while fused siblings shared the kernel: fast-fail with the lane's
    // own status instead of re-running anything.
    if (prefilled && !pre->status.ok())
        return Served(AlignOutcome(pre->status));

    // Fast-fail before any work: an expired or cancelled request costs
    // microseconds here instead of a quadratic kernel run.
    if (Status s = req.cancel.check(); !s.ok())
        return Served(AlignOutcome(std::move(s)));

    // ShardWedge: a chaos plan pins this worker for wedge_duration,
    // modelling a sick shard; the serve router's circuit breaker must
    // open on the latency/error window and route around this engine.
    GMX_FAULT_STALL_AT(faults::Point::ShardWedge);

    // A packed filter hit is already the final answer (distance-only by
    // eligibility): its scratch was covered by the group's single
    // reservation, so reserving the per-request estimate here again
    // would double-count the fused batch against the budget.
    const bool prefilter_hit = prefilled && pre->filtered.found();

    // Memory-budget admission. The reservation is held for the whole
    // kernel call and released by RAII whichever way we leave.
    MemoryReservation reservation;
    bool downgrade = false;
    if (!prefilter_hit && budget_.enabled() && req.estimated_bytes > 0) {
        if (budget_.tryReserve(req.estimated_bytes)) {
            reservation = MemoryReservation(&budget_, req.estimated_bytes);
        } else if (config_.downgrade_under_pressure && !req.aligner &&
                   req.want_cigar &&
                   req.klass == align::LengthClass::Short) {
            // Long-class requests never downgrade: Hirschberg is O(m)
            // memory and O(n*m) time, both ruinous at Mbp scale, and
            // the streamed tier's O(window) reservation is already the
            // frugal option.
            const size_t frugal =
                kernel::AlignerRegistry::instance()
                    .require("hirschberg")
                    .scratch_bytes(req.pair.pattern.size(),
                                   req.pair.text.size(), {});
            if (!budget_.tryReserve(frugal)) {
                if (traced)
                    trace_.record(req.id, TraceEvent::Admission,
                                  trace_.nowUs(),
                                  StatusCode::ResourceExhausted);
                return Served(AlignOutcome(Status::resourceExhausted(
                    "memory budget exhausted (even for downgraded "
                    "traceback)")));
            }
            reservation = MemoryReservation(&budget_, frugal);
            downgrade = true;
        } else {
            if (traced)
                trace_.record(req.id, TraceEvent::Admission, trace_.nowUs(),
                              StatusCode::ResourceExhausted);
            return Served(AlignOutcome(Status::resourceExhausted(
                "estimated footprint exceeds the memory budget")));
        }
    }
    const i64 admitted_us = trace_.nowUs();
    if (traced)
        trace_.record(req.id, TraceEvent::Admission, admitted_us,
                      StatusCode::Ok,
                      prefilter_hit ? pre->reserved_share
                                    : reservation.bytes());

    try {
        if (GMX_INJECT_FAULT(faults::Point::AllocFail))
            throw std::bad_alloc();
        if (GMX_INJECT_FAULT(faults::Point::TaskError))
            throw std::runtime_error("injected spurious task error");
        align::AlignResult result;
        Served served(AlignOutcome(align::AlignResult{}));
        served.reserved_bytes =
            prefilter_hit ? pre->reserved_share : reservation.bytes();
        served.admitted_us = admitted_us;
        // Reset keeps the block (coalesced to the high-water mark), not
        // the contents.
        ScratchArena &arena = workerArena();
        arena.reset();
        if (req.aligner) {
            result = req.aligner(req.pair);
        } else if (downgrade) {
            KernelCounts counts;
            KernelContext ctx(req.cancel, &counts, &arena);
            Timer timer;
            result = align::hirschbergAlign(req.pair.pattern, req.pair.text,
                                            ctx);
            const KernelContext::Phases phases = ctx.takePhases();
            served.tiered = true;
            served.tier = Tier::Downgraded;
            served.cells = counts.cells;
            served.attempts.push_back(
                {Tier::Downgraded, counts.cells, timer.seconds() * 1e6,
                 true, static_cast<double>(phases.setup_us),
                 static_cast<double>(phases.kernel_us)});
            metrics_.downgraded.fetch_add(1, std::memory_order_relaxed);
        } else {
            CascadeOutcome outcome;
            if (prefilled) {
                // The filter tier already ran in a packed group; seed
                // the outcome with this lane's attempt and continue
                // through the unchanged banded/full tiers (a hit with
                // no cigar wanted returns immediately).
                FilterLane lane;
                lane.pair = &req.pair;
                lane.filtered = pre->filtered;
                lane.attempt = pre->attempt;
                lane.counts = pre->counts;
                outcome = cascadeContinueAfterFilter(
                    req.pair, config_.cascade, req.want_cigar, req.cancel,
                    arena, lane);
            } else {
                outcome = cascadeAlign(req.pair, config_.cascade,
                                       req.want_cigar, req.cancel, arena);
            }
            served.tiered = true;
            served.tier = outcome.tier;
            served.cells = outcome.counts.cells;
            served.attempts = std::move(outcome.attempts);
            result = std::move(outcome.result);
        }
        served.arena_peak_bytes = arena.peakBytes();
        served.outcome = AlignOutcome(std::move(result));
        return served;
    } catch (const StatusError &e) {
        return Served(AlignOutcome(e.status()));
    } catch (const std::bad_alloc &) {
        return Served(AlignOutcome(
            Status::resourceExhausted("allocation failed mid-request")));
    } catch (const FatalError &e) {
        return Served(AlignOutcome(Status::invalidInput(e.what())));
    } catch (const std::exception &e) {
        return Served(AlignOutcome(Status::internal(e.what())));
    } catch (...) {
        return Served(
            AlignOutcome(Status::internal("unknown aligner failure")));
    }
}

bool
Engine::filterBatchingActive() const
{
    switch (config_.filter_batching) {
      case FilterBatching::Off:
        return false;
      case FilterBatching::On:
        // The explicit arm for tests/benches: pack even on the portable
        // vector backend. GMX_FORCE_SCALAR still wins — "scalar" must
        // mean the per-request scalar cascade, full stop.
        return !kernel::forceScalar();
      case FilterBatching::Auto:
        return kernel::batchDispatchEnabled();
    }
    return false;
}

bool
Engine::batchFilterEligible(const Request &req) const
{
    // Lane compatibility rules (DESIGN.md §4k): cascade-routed,
    // distance-only (a cigar request's filter never answers, so packing
    // buys nothing and the memo-reuse path is better), pattern within
    // the batcher's width cap, and the default "bitap" filter kernel —
    // the one whose found-iff-d<=k contract the batch kernel reproduces
    // bit for bit. The effective k policy is engine-wide config, so
    // packed lanes are k-compatible by construction (each lane still
    // applies its own pair-derived k to the exact distance).
    return !req.aligner && !req.want_cigar &&
           req.klass == align::LengthClass::Short &&
           config_.cascade.enabled &&
           std::string_view(config_.cascade.filter_kernel) == "bitap" &&
           simd::batchLaneFits(req.pair);
}

void
Engine::runFilterGroups(std::vector<Request> &batch,
                        std::vector<FilterPrefill> &pre)
{
    std::vector<size_t> eligible;
    eligible.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        if (batchFilterEligible(batch[i]))
            eligible.push_back(i);

    ScratchArena &arena = workerArena();
    for (size_t at = 0; at < eligible.size();) {
        const size_t take =
            std::min(simd::kBatchLanes, eligible.size() - at);
        // The runOne deadline pre-check, extended into the packer: a
        // request whose deadline expired while earlier groups (or the
        // queue) ran must not occupy a lane — runOne fast-fails it from
        // its unengaged prefill slot instead.
        std::array<size_t, simd::kBatchLanes> live{};
        size_t cnt = 0;
        for (size_t j = 0; j < take; ++j) {
            const size_t idx = eligible[at + j];
            if (batch[idx].cancel.check().ok())
                live[cnt++] = idx;
        }
        at += take;
        if (cnt < 2)
            continue; // singleton: the plain cascade path is the same work

        // One reservation for the whole group: the packed filter shares
        // one scratch block, so per-lane filter reservations would
        // double-count the batch. If even the group grant doesn't fit,
        // skip packing — each lane then takes its own admission gate.
        size_t max_pattern = 0;
        for (size_t j = 0; j < cnt; ++j)
            max_pattern = std::max(max_pattern,
                                   batch[live[j]].pair.pattern.size());
        const size_t group_bytes = simd::bpmBatchScratchBytes(max_pattern);
        MemoryReservation group_grant;
        if (budget_.enabled()) {
            if (!budget_.tryReserve(group_bytes))
                continue;
            group_grant = MemoryReservation(&budget_, group_bytes);
        }

        arena.reset();
        std::array<FilterLane, simd::kBatchLanes> lanes{};
        for (size_t j = 0; j < cnt; ++j) {
            lanes[j].pair = &batch[live[j]].pair;
            lanes[j].cancel = batch[live[j]].cancel;
        }
        cascadeFilterBatch({lanes.data(), cnt}, config_.cascade, arena);
        metrics_.recordFilterBatch(cnt);
        metrics_.noteArenaPeak(arena.peakBytes());

        for (size_t j = 0; j < cnt; ++j) {
            FilterPrefill &p = pre[live[j]];
            p.ran = true;
            p.status = lanes[j].status;
            p.filtered = lanes[j].filtered;
            p.attempt = lanes[j].attempt;
            p.counts = lanes[j].counts;
            p.reserved_share = group_grant.bytes() / cnt;
        }
        // group_grant releases here: misses re-enter the normal
        // per-request admission for their banded/full continuation.
    }
}

void
Engine::runRequests(std::vector<Request> batch)
{
    // Stamp worker pickup for the whole fused task up front: the lane
    // packer may run a request's filter tier before its runOne turn, and
    // a traced request's Dispatch span must precede that work.
    for (Request &req : batch) {
        req.dispatched = Clock::now();
        if (trace_.sampled(req.id))
            trace_.record(req.id, TraceEvent::Dispatch,
                          trace_.toUs(req.dispatched));
    }

    // Lane-pack compatible fused requests and run their filter tiers as
    // packed groups before the per-request loop.
    std::vector<FilterPrefill> pre(batch.size());
    if (batch.size() >= 2 && filterBatchingActive())
        runFilterGroups(batch, pre);

    for (size_t i = 0; i < batch.size(); ++i) {
        Request &req = batch[i];
        const bool traced = trace_.sampled(req.id);

        Served served = runOne(req, &pre[i]);

        const Clock::time_point done = Clock::now();
        const double queue_wait_s =
            std::chrono::duration<double>(req.dispatched - req.enqueued)
                .count();
        const double service_s =
            std::chrono::duration<double>(done - req.dispatched).count();
        const double total_s =
            std::chrono::duration<double>(done - req.enqueued).count();

        AlignOutcome &outcome = served.outcome;
        if (outcome.ok()) {
            metrics_.latency.record(total_s);
            metrics_.completed.fetch_add(1, std::memory_order_relaxed);
            if (served.tiered) {
                metrics_.recordTier(served.tier, served.reserved_bytes);
                metrics_.recordTimings(served.tier, queue_wait_s,
                                       service_s);
                metrics_.noteArenaPeak(served.arena_peak_bytes);
                for (const CascadeAttempt &a : served.attempts)
                    metrics_.recordAttempt(a.tier, a.cells, a.micros,
                                           a.setup_us, a.kernel_us);
            }
        } else {
            metrics_.failed.fetch_add(1, std::memory_order_relaxed);
            switch (outcome.status().code()) {
              case StatusCode::DeadlineExceeded:
                metrics_.deadline_missed.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              case StatusCode::Cancelled:
                metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
                break;
              case StatusCode::ResourceExhausted:
                metrics_.resource_rejected.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              default:
                break;
            }
        }

        if (traced) {
            // Tier-attempt spans get timestamps reconstructed backwards
            // from completion (each attempt's measured duration), clamped
            // into [admission, done] so rounding can never make the dumped
            // timeline run backwards.
            const i64 done_us = trace_.toUs(done);
            double total_us = 0;
            for (const CascadeAttempt &a : served.attempts)
                total_us += a.micros;
            i64 t_us = std::max(served.admitted_us,
                                done_us - static_cast<i64>(total_us));
            for (const CascadeAttempt &a : served.attempts) {
                trace_.recordTier(req.id, TraceEvent::TierAttempt, t_us,
                                  a.tier, StatusCode::Ok, a.cells);
                t_us = std::min(t_us + static_cast<i64>(a.micros), done_us);
            }
            if (served.tiered)
                trace_.recordTier(req.id, TraceEvent::Complete,
                                  trace_.toUs(done), served.tier,
                                  outcome.ok() ? StatusCode::Ok
                                               : outcome.status().code(),
                                  served.cells);
            else
                trace_.record(req.id, TraceEvent::Complete,
                              trace_.toUs(done),
                              outcome.ok() ? StatusCode::Ok
                                           : outcome.status().code(),
                              served.cells);
        }

        const auto threshold = config_.slow_request_threshold;
        if (threshold.count() > 0 &&
            total_s >= std::chrono::duration<double>(threshold).count()) {
            GMX_WARN("slow request id=%llu total=%.0fus queue_wait=%.0fus "
                     "service=%.0fus tier=%s status=%s",
                     static_cast<unsigned long long>(req.id),
                     total_s * 1e6, queue_wait_s * 1e6, service_s * 1e6,
                     served.tiered ? tierName(served.tier) : "none",
                     statusCodeName(outcome.ok()
                                        ? StatusCode::Ok
                                        : outcome.status().code()));
            SlowExemplar ex;
            ex.id = req.id;
            ex.has_tier = served.tiered;
            ex.tier = served.tier;
            ex.code =
                outcome.ok() ? StatusCode::Ok : outcome.status().code();
            ex.total_us = total_s * 1e6;
            ex.queue_wait_us = queue_wait_s * 1e6;
            ex.service_us = service_s * 1e6;
            ex.completed_us = trace_.toUs(done);
            slow_.note(ex);
        }

        req.promise.set_value(std::move(outcome));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        inflight_ -= batch.size();
        --inflight_tasks_;
        if (inflight_ == 0 && queue_.empty())
            idle_.notify_all();
    }
    dispatch_cv_.notify_one(); // a dispatch slot just freed up
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

void
Engine::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ && !dispatcher_.joinable())
            return; // already stopped
        stopping_ = true;
    }
    // Wake everyone: blocked submitters get EngineStopped Results, the
    // dispatcher drains the queue into the pool and exits.
    dispatch_cv_.notify_all();
    queue_not_full_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // Pool shutdown drains every dispatched task, fulfilling all futures.
    pool_.shutdown();
}

std::vector<Engine::AlignOutcome>
Engine::alignAll(const std::vector<seq::SequencePair> &pairs,
                 bool want_cigar)
{
    std::vector<std::future<AlignOutcome>> futures;
    futures.reserve(pairs.size());
    for (const auto &pair : pairs)
        futures.push_back(submit(pair, want_cigar));
    std::vector<AlignOutcome> results;
    results.reserve(pairs.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

MetricsSnapshot
Engine::metrics() const
{
    const PoolStats ps = pool_.stats();
    return metrics_.snapshot(pool_.workerCount(), ps.executed, ps.steals,
                             budget_.limit(), budget_.reserved(),
                             budget_.peak());
}

} // namespace gmx::engine
