#include "engine/engine.hh"

#include <utility>

#include "common/logging.hh"

namespace gmx::engine {

Engine::Engine(EngineConfig config)
    : config_(config), pool_(config.workers)
{
    if (config_.queue_capacity == 0)
        GMX_FATAL("Engine: queue_capacity must be nonzero");
    if (config_.microbatch_max == 0)
        config_.microbatch_max = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Engine::~Engine()
{
    stop();
}

std::future<align::AlignResult>
Engine::submit(seq::SequencePair pair, bool want_cigar)
{
    Request req;
    req.bases = pair.pattern.size() + pair.text.size();
    req.pair = std::move(pair);
    req.want_cigar = want_cigar;
    return enqueue(std::move(req));
}

std::future<align::AlignResult>
Engine::submit(seq::SequencePair pair, align::PairAligner aligner)
{
    if (!aligner)
        GMX_FATAL("Engine::submit: empty aligner function");
    Request req;
    req.bases = pair.pattern.size() + pair.text.size();
    req.pair = std::move(pair);
    req.aligner = std::move(aligner);
    return enqueue(std::move(req));
}

std::future<align::AlignResult>
Engine::enqueue(Request req)
{
    req.enqueued = Clock::now();
    auto future = req.promise.get_future();

    // A shed victim's promise must be failed outside mu_ (promise
    // internals are not part of the queue's critical section).
    std::promise<align::AlignResult> shed_victim;
    bool have_victim = false;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_)
            throw EngineStoppedError();
        if (queue_.size() >= config_.queue_capacity) {
            switch (config_.backpressure) {
              case Backpressure::Block:
                queue_not_full_.wait(lk, [this] {
                    return queue_.size() < config_.queue_capacity ||
                           stopping_;
                });
                if (stopping_)
                    throw EngineStoppedError();
                break;
              case Backpressure::Reject:
                metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
                throw QueueFullError();
              case Backpressure::ShedOldest:
                shed_victim = std::move(queue_.front().promise);
                queue_.pop_front();
                have_victim = true;
                metrics_.shed.fetch_add(1, std::memory_order_relaxed);
                break;
            }
        }
        queue_.push_back(std::move(req));
        const u64 depth = queue_.size();
        metrics_.queue_depth.store(depth, std::memory_order_relaxed);
        metrics_.notePeak(depth);
        metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
    }
    dispatch_cv_.notify_one();
    if (have_victim) {
        shed_victim.set_exception(std::make_exception_ptr(ShedError()));
        queue_not_full_.notify_one(); // shedding also freed a slot
    }
    return future;
}

void
Engine::dispatchLoop()
{
    for (;;) {
        // shared_ptr because std::function requires copyable targets and
        // Request holds a move-only promise.
        auto batch = std::make_shared<std::vector<Request>>();
        {
            std::unique_lock<std::mutex> lk(mu_);
            // Wait for work AND a free dispatch slot: the throttle keeps
            // pressure in the bounded queue where the policies act on it.
            dispatch_cv_.wait(lk, [this] {
                return (!queue_.empty() &&
                        inflight_tasks_ < maxInflightTasks()) ||
                       (stopping_ && queue_.empty());
            });
            if (queue_.empty()) {
                // stopping_ and drained: dispatcher's work is done.
                return;
            }
            batch->push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Fuse a run of small requests into one pool task.
            if (isSmall(batch->front())) {
                while (batch->size() < config_.microbatch_max &&
                       !queue_.empty() && isSmall(queue_.front())) {
                    batch->push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
            }
            inflight_ += batch->size();
            ++inflight_tasks_;
            metrics_.queue_depth.store(queue_.size(),
                                       std::memory_order_relaxed);
        }
        queue_not_full_.notify_all();
        if (batch->size() > 1) {
            metrics_.microbatches.fetch_add(1, std::memory_order_relaxed);
            metrics_.batched_pairs.fetch_add(batch->size(),
                                             std::memory_order_relaxed);
        }
        pool_.submit([this, batch] {
            runRequests(std::move(*batch));
        });
    }
}

void
Engine::runRequests(std::vector<Request> batch)
{
    for (Request &req : batch) {
        try {
            align::AlignResult result;
            if (req.aligner) {
                result = req.aligner(req.pair);
            } else {
                auto outcome =
                    cascadeAlign(req.pair, config_.cascade, req.want_cigar);
                metrics_.recordTier(outcome.tier);
                result = std::move(outcome.result);
            }
            const double secs =
                std::chrono::duration<double>(Clock::now() - req.enqueued)
                    .count();
            metrics_.latency.record(secs);
            metrics_.latency_total_us.fetch_add(
                secs * 1e6, std::memory_order_relaxed);
            metrics_.completed.fetch_add(1, std::memory_order_relaxed);
            req.promise.set_value(std::move(result));
        } catch (...) {
            metrics_.failed.fetch_add(1, std::memory_order_relaxed);
            req.promise.set_exception(std::current_exception());
        }
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        inflight_ -= batch.size();
        --inflight_tasks_;
        if (inflight_ == 0 && queue_.empty())
            idle_.notify_all();
    }
    dispatch_cv_.notify_one(); // a dispatch slot just freed up
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

void
Engine::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ && !dispatcher_.joinable())
            return; // already stopped
        stopping_ = true;
    }
    // Wake everyone: blocked submitters throw EngineStoppedError, the
    // dispatcher drains the queue into the pool and exits.
    dispatch_cv_.notify_all();
    queue_not_full_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // Pool shutdown drains every dispatched task, fulfilling all futures.
    pool_.shutdown();
}

std::vector<align::AlignResult>
Engine::alignAll(const std::vector<seq::SequencePair> &pairs,
                 bool want_cigar)
{
    std::vector<std::future<align::AlignResult>> futures;
    futures.reserve(pairs.size());
    for (const auto &pair : pairs)
        futures.push_back(submit(pair, want_cigar));
    std::vector<align::AlignResult> results;
    results.reserve(pairs.size());
    std::exception_ptr first_error;
    for (auto &f : futures) {
        try {
            results.push_back(f.get());
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
            results.emplace_back();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

MetricsSnapshot
Engine::metrics() const
{
    const PoolStats ps = pool_.stats();
    return metrics_.snapshot(pool_.workerCount(), ps.executed, ps.steals);
}

} // namespace gmx::engine
