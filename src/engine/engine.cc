#include "engine/engine.hh"

#include <new>
#include <stdexcept>
#include <utility>

#include "align/hirschberg.hh"
#include "common/logging.hh"
#include "engine/faults.hh"

namespace gmx::engine {

namespace {

/** A future already fulfilled with @p status (rejections skip the queue). */
std::future<Engine::AlignOutcome>
readyFuture(Status status)
{
    std::promise<Engine::AlignOutcome> p;
    auto f = p.get_future();
    p.set_value(Engine::AlignOutcome(std::move(status)));
    return f;
}

} // namespace

Engine::Engine(EngineConfig config)
    : config_(config), budget_(config.memory_budget_bytes),
      pool_(config.workers)
{
    if (config_.queue_capacity == 0)
        GMX_FATAL("Engine: queue_capacity must be nonzero");
    if (config_.microbatch_max == 0)
        config_.microbatch_max = 1;
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Engine::~Engine()
{
    stop();
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, SubmitOptions options)
{
    // Validation runs on the submitter's thread, before the queue: a
    // malformed pair never costs a queue slot or a worker.
    if (Status s = align::validatePair(pair, config_.limits); !s.ok()) {
        metrics_.invalid.fetch_add(1, std::memory_order_relaxed);
        return readyFuture(std::move(s));
    }

    Request req;
    req.bases = pair.pattern.size() + pair.text.size();
    req.want_cigar = options.want_cigar;
    req.aligner = std::move(options.aligner);
    req.cancel = options.timeout.count() > 0
                     ? options.cancel.withTimeout(options.timeout)
                     : options.cancel;
    if (options.estimated_bytes != 0) {
        req.estimated_bytes = options.estimated_bytes;
    } else if (!req.aligner) {
        // Worst-case cascade footprint: traceback requests may escalate
        // to the Full(GMX) edge matrix; distance-only ones stay in
        // rolling tile rows. Custom aligners are exempt unless declared.
        const size_t n = pair.pattern.size();
        const size_t m = pair.text.size();
        req.estimated_bytes =
            req.want_cigar
                ? fullGmxTracebackBytes(n, m, config_.cascade.tile)
                : distanceOnlyBytes(n, m, config_.cascade.tile);
    }
    req.pair = std::move(pair);
    return enqueue(std::move(req));
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, bool want_cigar)
{
    SubmitOptions options;
    options.want_cigar = want_cigar;
    return submit(std::move(pair), std::move(options));
}

std::future<Engine::AlignOutcome>
Engine::submit(seq::SequencePair pair, align::PairAligner aligner)
{
    if (!aligner)
        GMX_FATAL("Engine::submit: empty aligner function");
    SubmitOptions options;
    options.aligner = std::move(aligner);
    return submit(std::move(pair), std::move(options));
}

std::future<Engine::AlignOutcome>
Engine::enqueue(Request req)
{
    req.enqueued = Clock::now();
    auto future = req.promise.get_future();

    // A shed victim's promise must be fulfilled outside mu_ (promise
    // internals are not part of the queue's critical section).
    std::promise<AlignOutcome> shed_victim;
    bool have_victim = false;
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_) {
            metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
            return readyFuture(
                Status::engineStopped("submit after Engine::stop()"));
        }
        const bool full =
            queue_.size() >= config_.queue_capacity ||
            GMX_INJECT_FAULT(faults::Point::QueueFull);
        if (full) {
            switch (config_.backpressure) {
              case Backpressure::Block:
                queue_not_full_.wait(lk, [this] {
                    return queue_.size() < config_.queue_capacity ||
                           stopping_;
                });
                if (stopping_) {
                    metrics_.rejected.fetch_add(1,
                                                std::memory_order_relaxed);
                    return readyFuture(Status::engineStopped(
                        "engine stopped while awaiting queue room"));
                }
                break;
              case Backpressure::Reject:
                metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
                return readyFuture(
                    Status::overloaded("queue full (Reject policy)"));
              case Backpressure::ShedOldest:
                if (!queue_.empty()) {
                    shed_victim = std::move(queue_.front().promise);
                    queue_.pop_front();
                    have_victim = true;
                    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
                }
                break;
            }
        }
        queue_.push_back(std::move(req));
        const u64 depth = queue_.size();
        metrics_.queue_depth.store(depth, std::memory_order_relaxed);
        metrics_.notePeak(depth);
        metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
    }
    dispatch_cv_.notify_one();
    if (have_victim) {
        shed_victim.set_value(AlignOutcome(
            Status::overloaded("shed under ShedOldest backpressure")));
        queue_not_full_.notify_one(); // shedding also freed a slot
    }
    return future;
}

void
Engine::dispatchLoop()
{
    for (;;) {
        // shared_ptr because std::function requires copyable targets and
        // Request holds a move-only promise.
        auto batch = std::make_shared<std::vector<Request>>();
        {
            std::unique_lock<std::mutex> lk(mu_);
            // Wait for work AND a free dispatch slot: the throttle keeps
            // pressure in the bounded queue where the policies act on it.
            dispatch_cv_.wait(lk, [this] {
                return (!queue_.empty() &&
                        inflight_tasks_ < maxInflightTasks()) ||
                       (stopping_ && queue_.empty());
            });
            if (queue_.empty()) {
                // stopping_ and drained: dispatcher's work is done.
                return;
            }
            batch->push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Fuse a run of small requests into one pool task.
            if (isSmall(batch->front())) {
                while (batch->size() < config_.microbatch_max &&
                       !queue_.empty() && isSmall(queue_.front())) {
                    batch->push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
            }
            inflight_ += batch->size();
            ++inflight_tasks_;
            metrics_.queue_depth.store(queue_.size(),
                                       std::memory_order_relaxed);
        }
        queue_not_full_.notify_all();
        if (batch->size() > 1) {
            metrics_.microbatches.fetch_add(1, std::memory_order_relaxed);
            metrics_.batched_pairs.fetch_add(batch->size(),
                                             std::memory_order_relaxed);
        }
        if (!pool_.trySubmit([this, batch] {
                runRequests(std::move(*batch));
            })) {
            // Pool already shut down (tear-down race): run inline so
            // every accepted future is still fulfilled.
            runRequests(std::move(*batch));
        }
    }
}

Engine::AlignOutcome
Engine::runOne(Request &req)
{
    // Fast-fail before any work: an expired or cancelled request costs
    // microseconds here instead of a quadratic kernel run.
    if (Status s = req.cancel.check(); !s.ok())
        return AlignOutcome(std::move(s));

    // Memory-budget admission. The reservation is held for the whole
    // kernel call and released by RAII whichever way we leave.
    MemoryReservation reservation;
    bool downgrade = false;
    if (budget_.enabled() && req.estimated_bytes > 0) {
        if (budget_.tryReserve(req.estimated_bytes)) {
            reservation = MemoryReservation(&budget_, req.estimated_bytes);
        } else if (config_.downgrade_under_pressure && !req.aligner &&
                   req.want_cigar) {
            const size_t frugal = hirschbergBytes(req.pair.pattern.size(),
                                                  req.pair.text.size());
            if (!budget_.tryReserve(frugal))
                return AlignOutcome(Status::resourceExhausted(
                    "memory budget exhausted (even for downgraded "
                    "traceback)"));
            reservation = MemoryReservation(&budget_, frugal);
            downgrade = true;
        } else {
            return AlignOutcome(Status::resourceExhausted(
                "estimated footprint exceeds the memory budget"));
        }
    }

    try {
        if (GMX_INJECT_FAULT(faults::Point::AllocFail))
            throw std::bad_alloc();
        if (GMX_INJECT_FAULT(faults::Point::TaskError))
            throw std::runtime_error("injected spurious task error");
        align::AlignResult result;
        if (req.aligner) {
            result = req.aligner(req.pair);
        } else if (downgrade) {
            result = align::hirschbergAlign(req.pair.pattern, req.pair.text,
                                            nullptr, req.cancel);
            metrics_.recordTier(Tier::Downgraded, reservation.bytes());
            metrics_.downgraded.fetch_add(1, std::memory_order_relaxed);
        } else {
            auto outcome = cascadeAlign(req.pair, config_.cascade,
                                        req.want_cigar, req.cancel);
            metrics_.recordTier(outcome.tier, reservation.bytes());
            result = std::move(outcome.result);
        }
        return AlignOutcome(std::move(result));
    } catch (const StatusError &e) {
        return AlignOutcome(e.status());
    } catch (const std::bad_alloc &) {
        return AlignOutcome(
            Status::resourceExhausted("allocation failed mid-request"));
    } catch (const FatalError &e) {
        return AlignOutcome(Status::invalidInput(e.what()));
    } catch (const std::exception &e) {
        return AlignOutcome(Status::internal(e.what()));
    } catch (...) {
        return AlignOutcome(Status::internal("unknown aligner failure"));
    }
}

void
Engine::runRequests(std::vector<Request> batch)
{
    for (Request &req : batch) {
        AlignOutcome outcome = runOne(req);
        if (outcome.ok()) {
            const double secs =
                std::chrono::duration<double>(Clock::now() - req.enqueued)
                    .count();
            metrics_.latency.record(secs);
            metrics_.latency_total_us.fetch_add(secs * 1e6,
                                                std::memory_order_relaxed);
            metrics_.completed.fetch_add(1, std::memory_order_relaxed);
        } else {
            metrics_.failed.fetch_add(1, std::memory_order_relaxed);
            switch (outcome.status().code()) {
              case StatusCode::DeadlineExceeded:
                metrics_.deadline_missed.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              case StatusCode::Cancelled:
                metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
                break;
              case StatusCode::ResourceExhausted:
                metrics_.resource_rejected.fetch_add(
                    1, std::memory_order_relaxed);
                break;
              default:
                break;
            }
        }
        req.promise.set_value(std::move(outcome));
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        inflight_ -= batch.size();
        --inflight_tasks_;
        if (inflight_ == 0 && queue_.empty())
            idle_.notify_all();
    }
    dispatch_cv_.notify_one(); // a dispatch slot just freed up
}

void
Engine::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

void
Engine::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_ && !dispatcher_.joinable())
            return; // already stopped
        stopping_ = true;
    }
    // Wake everyone: blocked submitters get EngineStopped Results, the
    // dispatcher drains the queue into the pool and exits.
    dispatch_cv_.notify_all();
    queue_not_full_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    // Pool shutdown drains every dispatched task, fulfilling all futures.
    pool_.shutdown();
}

std::vector<Engine::AlignOutcome>
Engine::alignAll(const std::vector<seq::SequencePair> &pairs,
                 bool want_cigar)
{
    std::vector<std::future<AlignOutcome>> futures;
    futures.reserve(pairs.size());
    for (const auto &pair : pairs)
        futures.push_back(submit(pair, want_cigar));
    std::vector<AlignOutcome> results;
    results.reserve(pairs.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

MetricsSnapshot
Engine::metrics() const
{
    const PoolStats ps = pool_.stats();
    return metrics_.snapshot(pool_.workerCount(), ps.executed, ps.steals,
                             budget_.limit(), budget_.reserved(),
                             budget_.peak());
}

} // namespace gmx::engine
