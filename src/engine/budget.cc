#include "engine/budget.hh"

#include <algorithm>

namespace gmx::engine {

namespace {

size_t
tilesAcross(size_t bases, unsigned tile)
{
    return (bases + tile - 1) / tile;
}

} // namespace

size_t
fullGmxTracebackBytes(size_t n, size_t m, unsigned tile)
{
    if (n == 0 || m == 0)
        return n + m; // trivial boundary CIGAR only
    // Edge matrix: rows * cols tile-edge records; plus the backwards op
    // buffer of the traceback (one byte per op, at most n + m ops).
    return tilesAcross(n, tile) * tilesAcross(m, tile) * kTileEdgeBytes +
           (n + m);
}

size_t
distanceOnlyBytes(size_t n, size_t m, unsigned tile)
{
    // Full(GMX) distance keeps one tile-row of right edges; the banded
    // tier keeps two band rows. Both are O(longer-side / T) edges.
    const size_t rows = 3 * tilesAcross(std::max(n, m), tile) * kTileEdgeBytes;
    // The cascade's Bitap filter dominates for large pairs: two column
    // sets of (k+1) vectors of ceil(n/64) words, sized with the same
    // cascadeAutoFilterK the routing will use (budget.hh holds the one
    // shared closed form, skew term included).
    const size_t k = static_cast<size_t>(cascadeAutoFilterK(n, m)) + 1;
    const size_t filter = 2 * k * ((n + 63) / 64) * sizeof(u64);
    return rows + filter;
}

size_t
hirschbergBytes(size_t n, size_t m)
{
    // Two i64 DP rows per recursion level (levels share the buffers'
    // peak), plus the op buffer. The rows span the TEXT — lastRow in
    // hirschberg.cc allocates row(m + 1) whichever side is shorter — so
    // a short-pattern/long-text pair still costs O(m) bytes.
    return 2 * (m + 1) * sizeof(i64) + (n + m);
}

size_t
nwTracebackBytes(size_t n, size_t m)
{
    return (n + 1) * (m + 1); // one direction byte per DP cell
}

size_t
windowedStreamBytes(size_t window, unsigned tile)
{
    // One window's Full(GMX) traceback (W x W edge matrix + 2W ops),
    // the two window substrings the stepper slices per step, and the
    // sealed-run emit buffer (2W + 1 runs of 16 bytes). The window
    // kernel's scratch dies with each step's arena frame, so this is
    // the traversal's peak no matter how long the pair is.
    return fullGmxTracebackBytes(window, window, tile) + 2 * window +
           (2 * window + 1) * 16 + 1024;
}

bool
MemoryBudget::tryReserve(size_t bytes)
{
    if (!enabled())
        return true;
    size_t cur = reserved_.load(std::memory_order_relaxed);
    do {
        if (cur + bytes > limit_ || cur + bytes < cur)
            return false;
    } while (!reserved_.compare_exchange_weak(cur, cur + bytes,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed));
    // Monotonic peak (racy CAS max; relaxed is fine for a statistic).
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (cur + bytes > peak &&
           !peak_.compare_exchange_weak(peak, cur + bytes,
                                        std::memory_order_relaxed)) {
    }
    return true;
}

void
MemoryBudget::release(size_t bytes)
{
    if (!enabled())
        return;
    reserved_.fetch_sub(bytes, std::memory_order_acq_rel);
}

} // namespace gmx::engine
