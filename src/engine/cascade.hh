/**
 * @file
 * Adaptive cascade dispatcher: route each pair through the cheapest
 * alignment strategy that can answer it exactly.
 *
 * The tiers reuse the paper's §4.1 strategies, cheapest first:
 *
 *   1. Filter — Bitap (the GenASM kernel) with a small error budget k.
 *      Distance-only requests whose distance is <= k finish here; for
 *      traceback requests a hit still fixes the exact band for tier 2.
 *   2. Banded(GMX) — the Edlib-style band of tiles. Exact whenever the
 *      optimal path stays inside the band; the band either comes from the
 *      filter (known distance => guaranteed hit) or grows by doubling.
 *   3. Full(GMX) — the whole DP-matrix; always exact, the fallback when
 *      the pair diverges too much for any band the budget allows.
 *
 * Every tier is exact when it answers (Bitap and Banded(GMX) both report
 * the true edit distance whenever they report success), so the cascade
 * returns bit-identical distances — and, because Banded(GMX) and
 * Full(GMX) share the same tile traceback with the same tie-breaking,
 * identical CIGARs — to running Full(GMX) on every pair.
 */

#ifndef GMX_ENGINE_CASCADE_HH
#define GMX_ENGINE_CASCADE_HH

#include <algorithm>
#include <span>
#include <vector>

#include "align/batch.hh" // LengthClass: routing decision shared with submit
#include "align/types.hh"
#include "common/cancel.hh"
#include "engine/budget.hh" // cascadeAutoFilterK: shared with admission
#include "engine/metrics.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::engine {

/**
 * Tuning knobs for the cascade. The tier kernels are registry names
 * (kernel::AlignerRegistry), so the tier list is data: swapping the
 * filter to "bpm-banded" or the exact tiers to a future kernel is a
 * config edit, not a dispatcher rewrite. Each named kernel must be
 * exact and, for the banded tier, banded.
 */
struct CascadeConfig
{
    /** False routes everything straight to the full tier. */
    bool enabled = true;

    /**
     * Filter error budget; 0 derives it from the pair:
     * max(8, max(n,m)/16, |n-m| + 4).
     */
    i64 filter_k = 0;

    /**
     * Banded attempts when the filter misses: band budgets 2k, 4k, ...
     * (band_doublings of them) before escalating to the full tier.
     */
    int band_doublings = 2;

    /** GMX tile size for the banded and full tiers. */
    unsigned tile = 32;

    const char *filter_kernel = "bitap";     //!< tier 1 (distance-only)
    const char *banded_kernel = "gmx-banded"; //!< tier 2 (exact in band)
    const char *full_kernel = "gmx-full";     //!< tier 3 (always answers)

    /**
     * Length-class routing: pairs whose longer side reaches
     * long_threshold bypass the exact cascade and run the streaming
     * windowed tier (Tier::Streamed) in O(window) memory. 0 disables
     * the long class (every pair is Short). The streamed tier is a
     * heuristic — distances are near-exact upper bounds, not optima —
     * which is the trade that makes Mbp-scale pairs servable at all:
     * Full(GMX) traceback on a 1 Mbp pair wants ~31 GB of tile edges.
     */
    size_t long_threshold = 64 * 1024;
    const char *long_kernel = "gmx-windowed-stream"; //!< streamed tier
    size_t long_window = 96; //!< window geometry for the streamed tier
    size_t long_overlap = 32;
};

/** Which route an (n, m) pair takes under @p config. Degenerate pairs
 *  stay Short: the full tier handles them without window machinery. */
inline align::LengthClass
lengthClassFor(const CascadeConfig &config, size_t n, size_t m)
{
    const bool is_long = config.enabled && n > 0 && m > 0 &&
                         config.long_threshold > 0 &&
                         config.long_kernel != nullptr &&
                         std::max(n, m) >= config.long_threshold;
    return is_long ? align::LengthClass::Long : align::LengthClass::Short;
}

/**
 * One kernel invocation inside a cascade run: which tier ran, how much
 * work it did, and how long it took. A request that escalates records
 * one attempt per tier tried (a missed banded doubling is its own
 * attempt), so per-tier work accounting attributes cells to the tier
 * that actually computed them, not to the tier that finally answered.
 */
struct CascadeAttempt
{
    Tier tier = Tier::Full;
    u64 cells = 0;       //!< DP cells this attempt computed
    double micros = 0.0; //!< wall-clock time of the attempt
    bool answered = false; //!< true on the attempt that produced the result

    /**
     * Phase split of micros as attributed by the kernel itself: setup is
     * mask/grid building and scratch carving, kernel is the DP loop plus
     * traceback. GCUPS reported per tier divides cells by kernel time
     * only, so tile-build overhead can no longer inflate or dilute it.
     */
    double setup_us = 0.0;
    double kernel_us = 0.0;
};

/** Result of one cascade routing decision. */
struct CascadeOutcome
{
    align::AlignResult result;
    Tier tier = Tier::Full; //!< tier that produced the result

    /** Total dynamic work across every attempt (cells, ops, GMX instrs). */
    KernelCounts counts;

    /** Kernel invocations in execution order; the last one answered. */
    std::vector<CascadeAttempt> attempts;
};

/**
 * Align @p pair through the cascade. With @p want_cigar the result carries
 * a full traceback (so tier 1 can only pre-filter, never answer); without
 * it the result is distance-only and may finish at any tier.
 *
 * @p cancel is threaded into the banded and full tiers, whose inner loops
 * poll it every K tiles; a cancelled or expired request unwinds with
 * StatusError instead of running its tier to completion.
 */
CascadeOutcome cascadeAlign(const seq::SequencePair &pair,
                            const CascadeConfig &config, bool want_cigar,
                            const CancelToken &cancel = {});

/**
 * Same, drawing every tier's scratch from @p arena (not reset here: the
 * owner resets once per request and reads peakBytes() afterwards). The
 * four-argument overload uses a thread-local arena, so standalone
 * callers still skip per-call heap traffic after warmup.
 */
CascadeOutcome cascadeAlign(const seq::SequencePair &pair,
                            const CascadeConfig &config, bool want_cigar,
                            const CancelToken &cancel, ScratchArena &arena);

/** The effective filter budget the cascade runs with for an n x m pair:
 *  the configured filter_k, or the auto policy when it is 0. One
 *  definition, shared by routing, admission, and the engine's lane
 *  packer (a packed group's hit/miss decisions must use the same k the
 *  scalar cascade would have). */
inline i64
cascadeFilterK(const CascadeConfig &config, size_t n, size_t m)
{
    return config.filter_k > 0 ? config.filter_k
                               : cascadeAutoFilterK(n, m);
}

/**
 * One request's slot in a batched filter-tier run. The engine's lane
 * packer fills pair/cancel, cascadeFilterBatch() fills the outputs: the
 * filter verdict exactly as the scalar filter tier would have produced
 * it (found with the exact distance iff distance <= k, not-found
 * otherwise — the batch kernel's exact distance on a miss is discarded
 * so the continuation mirrors the scalar cascade attempt for attempt),
 * plus the per-lane work record to seed the request's outcome with.
 */
struct FilterLane
{
    const seq::SequencePair *pair = nullptr;
    CancelToken cancel{};

    // Outputs.
    Status status{};              //!< Cancelled / DeadlineExceeded
    align::AlignResult filtered;  //!< scalar-identical filter verdict
    CascadeAttempt attempt;       //!< this lane's Filter-tier attempt
    KernelCounts counts;          //!< this lane's own kernel work
};

/**
 * Run the cascade's filter tier for up to four requests as one packed
 * kernel invocation (simd::bpmDistanceBatchLanes), producing per-lane
 * verdicts bit-identical to the scalar "bitap" filter: both compute the
 * exact distance and apply the same d <= k decision, so a packed request
 * continues through banded/full exactly as if it had run alone. Requires
 * every lane to satisfy simd::batchLaneFits and the config's filter
 * kernel to be the default "bitap" (the engine's packer checks both).
 */
void cascadeFilterBatch(std::span<FilterLane> lanes,
                        const CascadeConfig &config, ScratchArena &arena);

/**
 * Resume one request's cascade after its filter tier ran in a batch:
 * seeds the outcome with the lane's filter attempt/counts, then runs the
 * unchanged banded/full continuation (filter hit + no cigar -> done; hit
 * + cigar -> pinned band; miss -> band doublings then full). Requires a
 * non-degenerate pair (the packer never batches empty sequences).
 */
CascadeOutcome cascadeContinueAfterFilter(const seq::SequencePair &pair,
                                          const CascadeConfig &config,
                                          bool want_cigar,
                                          const CancelToken &cancel,
                                          ScratchArena &arena,
                                          const FilterLane &lane);

} // namespace gmx::engine

#endif // GMX_ENGINE_CASCADE_HH
