/**
 * @file
 * Per-request tracing for the alignment engine.
 *
 * A traced request leaves a timeline of spans — enqueue, dispatch
 * (worker pickup), admission (memory-budget decision), one span per
 * cascade tier attempt, and completion with its outcome — each stamped
 * with a steady-clock microsecond offset from the recorder's epoch.
 * Spans land in a fixed-size lock-free ring buffer: writers claim a slot
 * with one fetch_add and publish it with a seqlock-style sequence word,
 * so recording never blocks a worker and a reader never observes a
 * half-written span (torn slots are skipped, overwritten ones counted
 * as dropped). Every slot field is a relaxed atomic, which keeps the
 * ring ThreadSanitizer-clean by construction.
 *
 * Sampling is deterministic: request ids are assigned from a monotonic
 * counter and a request is traced iff id % sample_every == 0, so a
 * replayed workload traces the same requests.
 */

#ifndef GMX_ENGINE_TRACE_HH
#define GMX_ENGINE_TRACE_HH

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "engine/metrics.hh"

namespace gmx::engine {

/** Lifecycle points a traced request passes through, in pipeline order. */
enum class TraceEvent : u8 {
    Enqueue = 0,  //!< accepted into the bounded queue
    Dispatch,     //!< a pool worker picked the request up
    Admission,    //!< memory-budget decision (detail = reserved bytes)
    TierAttempt,  //!< one cascade kernel invocation (detail = cells)
    Complete,     //!< future fulfilled (code = outcome, detail = cells)
};

/** Stable lower-case event name ("enqueue", "dispatch", ...). */
const char *traceEventName(TraceEvent e);

/** One decoded span from the ring. */
struct TraceSpan
{
    u64 id = 0;              //!< request id (monotonic from 1)
    TraceEvent event = TraceEvent::Enqueue;
    bool has_tier = false;   //!< tier field is meaningful
    Tier tier = Tier::Full;
    StatusCode code = StatusCode::Ok;
    u64 detail = 0;          //!< event-specific payload (bytes, cells)
    i64 t_us = 0;            //!< microseconds since the recorder's epoch
};

/**
 * Fixed-capacity lock-free span ring. One instance per Engine; capacity
 * 0 disables recording entirely (record() becomes a cheap early-out).
 */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TraceRecorder(size_t capacity = 1024, u64 sample_every = 1);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    bool enabled() const { return capacity_ != 0 && sample_every_ != 0; }

    /** Whether request @p id is in the deterministic sample. */
    bool sampled(u64 id) const
    {
        return enabled() && id % sample_every_ == 0;
    }

    /** Microseconds from the recorder's epoch to @p tp. */
    i64 toUs(Clock::time_point tp) const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   tp - epoch_)
            .count();
    }

    /** Microseconds from the recorder's epoch to now. */
    i64 nowUs() const { return toUs(Clock::now()); }

    /**
     * Append one span. Wait-free: one fetch_add to claim a slot, relaxed
     * stores to fill it, release stores on the sequence word to publish.
     */
    void record(u64 id, TraceEvent event, i64 t_us,
                StatusCode code = StatusCode::Ok, u64 detail = 0);

    /** Append one span carrying a tier (TierAttempt / Complete). */
    void recordTier(u64 id, TraceEvent event, i64 t_us, Tier tier,
                    StatusCode code = StatusCode::Ok, u64 detail = 0);

    /**
     * Decode the live ring, oldest surviving span first. Slots being
     * written or already overwritten while decoding are skipped, so a
     * concurrent dump is safe but may omit in-flight spans.
     */
    std::vector<TraceSpan> spans() const;

    /** Spans ever recorded (including those the ring has overwritten). */
    u64 recorded() const { return head_.load(std::memory_order_acquire); }

    /** Spans lost to ring wrap-around. */
    u64 dropped() const
    {
        const u64 head = recorded();
        return head > capacity_ ? head - capacity_ : 0;
    }

    /**
     * Dump as one JSON object: {"recorded":N,"dropped":N,"spans":[...]}
     * with each span carrying id/event/tier/code/t_us/detail.
     */
    std::string toJson() const;

  private:
    /** Packed event|tier|code byte layout for the meta word. */
    static u64 packMeta(TraceEvent event, bool has_tier, Tier tier,
                        StatusCode code);

    /** Common slot-claim/publish path behind both record overloads. */
    void push(u64 id, TraceEvent event, i64 t_us, bool has_tier, Tier tier,
              StatusCode code, u64 detail);

    struct Slot
    {
        // seq == 2*ticket+1 while being written, 2*ticket+2 once
        // published; a reader accepts a slot only when seq matches its
        // ticket's published value before and after the field reads.
        std::atomic<u64> seq{0};
        std::atomic<u64> id{0};
        std::atomic<u64> meta{0};
        std::atomic<u64> time{0};
        std::atomic<u64> detail{0};
    };

    size_t capacity_;
    u64 sample_every_;
    Clock::time_point epoch_;
    std::vector<Slot> slots_;
    std::atomic<u64> head_{0};
};

} // namespace gmx::engine

#endif // GMX_ENGINE_TRACE_HH
