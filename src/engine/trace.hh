/**
 * @file
 * Per-request tracing for the alignment engine.
 *
 * A traced request leaves a timeline of spans — enqueue, dispatch
 * (worker pickup), admission (memory-budget decision), one span per
 * cascade tier attempt, and completion with its outcome — each stamped
 * with a steady-clock microsecond offset from the recorder's epoch.
 * Spans land in a fixed-size lock-free ring buffer: writers take a
 * ticket with one fetch_add, then CLAIM their slot with a CAS on its
 * seqlock-style sequence word — the CAS succeeds only while the slot
 * still holds the previous lap's published value, so a writer that was
 * descheduled long enough to be lapped can never store stale sequence
 * state over a newer ticket's slot (it drops its span instead, counted
 * in dropped()). Publication is the usual seqlock odd/even dance, so
 * recording never blocks a worker and a reader never observes a
 * half-written span (torn slots are skipped, overwritten ones counted
 * as dropped). Every slot field is a relaxed atomic, which keeps the
 * ring ThreadSanitizer-clean by construction.
 *
 * Sampling is deterministic: request ids are assigned from a monotonic
 * counter and a request is traced iff id % sample_every == 0, so a
 * replayed workload traces the same requests.
 */

#ifndef GMX_ENGINE_TRACE_HH
#define GMX_ENGINE_TRACE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/types.hh"
#include "engine/metrics.hh"

namespace gmx::engine {

/** Lifecycle points a traced request passes through, in pipeline order. */
enum class TraceEvent : u8 {
    Enqueue = 0,  //!< accepted into the bounded queue
    Dispatch,     //!< a pool worker picked the request up
    Admission,    //!< memory-budget decision (detail = reserved bytes)
    TierAttempt,  //!< one cascade kernel invocation (detail = cells)
    Complete,     //!< future fulfilled (code = outcome, detail = cells)
};

/** Stable lower-case event name ("enqueue", "dispatch", ...). */
const char *traceEventName(TraceEvent e);

/** One decoded span from the ring. */
struct TraceSpan
{
    u64 id = 0;              //!< request id (monotonic from 1)
    TraceEvent event = TraceEvent::Enqueue;
    bool has_tier = false;   //!< tier field is meaningful
    Tier tier = Tier::Full;
    StatusCode code = StatusCode::Ok;
    u64 detail = 0;          //!< event-specific payload (bytes, cells)
    i64 t_us = 0;            //!< microseconds since the recorder's epoch
};

/**
 * Fixed-capacity lock-free span ring. One instance per Engine; capacity
 * 0 disables recording entirely (record() becomes a cheap early-out).
 */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TraceRecorder(size_t capacity = 1024, u64 sample_every = 1);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    bool enabled() const { return capacity_ != 0 && sample_every_ != 0; }

    /** Whether request @p id is in the deterministic sample. */
    bool sampled(u64 id) const
    {
        return enabled() && id % sample_every_ == 0;
    }

    /** Microseconds from the recorder's epoch to @p tp. */
    i64 toUs(Clock::time_point tp) const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   tp - epoch_)
            .count();
    }

    /** Microseconds from the recorder's epoch to now. */
    i64 nowUs() const { return toUs(Clock::now()); }

    /**
     * Append one span. Lock-free: one fetch_add for a ticket, one CAS to
     * claim the ticket's slot (a lapped writer drops its span instead of
     * corrupting a newer one), relaxed stores to fill it, one release
     * store on the sequence word to publish.
     */
    void record(u64 id, TraceEvent event, i64 t_us,
                StatusCode code = StatusCode::Ok, u64 detail = 0);

    /** Append one span carrying a tier (TierAttempt / Complete). */
    void recordTier(u64 id, TraceEvent event, i64 t_us, Tier tier,
                    StatusCode code = StatusCode::Ok, u64 detail = 0);

    /**
     * Decode the live ring, oldest surviving span first. Slots being
     * written or already overwritten while decoding are skipped, so a
     * concurrent dump is safe but may omit in-flight spans.
     */
    std::vector<TraceSpan> spans() const;

    /**
     * Per-request lookup: the surviving spans of request @p id, in ring
     * (i.e. pipeline) order. Empty when the request was never sampled or
     * its spans have been overwritten.
     */
    std::vector<TraceSpan> spansFor(u64 id) const;

    /** Spans ever recorded (including those the ring has overwritten). */
    u64 recorded() const { return head_.load(std::memory_order_acquire); }

    /**
     * Spans lost: overwritten by ring wrap-around, plus the (rare) spans
     * a lapped writer dropped because its slot had already moved on.
     */
    u64 dropped() const
    {
        const u64 head = recorded();
        return (head > capacity_ ? head - capacity_ : 0) +
               lost_.load(std::memory_order_relaxed);
    }

    /**
     * Dump as one JSON object: {"recorded":N,"dropped":N,"spans":[...]}
     * with each span carrying id/event/tier/code/t_us/detail.
     */
    std::string toJson() const;

    /**
     * One request's timeline as JSON:
     * {"id":N,"found":bool,"spans":[...]}. found is false when no span
     * of the request survives in the ring.
     */
    std::string jsonFor(u64 id) const;

  private:
    /** Packed event|tier|code byte layout for the meta word. */
    static u64 packMeta(TraceEvent event, bool has_tier, Tier tier,
                        StatusCode code);

    /** Common slot-claim/publish path behind both record overloads. */
    void push(u64 id, TraceEvent event, i64 t_us, bool has_tier, Tier tier,
              StatusCode code, u64 detail);

    struct Slot
    {
        // seq == 2*ticket+1 while being written, 2*ticket+2 once
        // published; a writer owns the slot only after CASing seq from
        // the previous lap's published value, and a reader accepts a
        // slot only when seq matches its ticket's published value before
        // and after the field reads.
        std::atomic<u64> seq{0};
        std::atomic<u64> id{0};
        std::atomic<u64> meta{0};
        std::atomic<u64> time{0};
        std::atomic<u64> detail{0};
    };

    size_t capacity_;
    u64 sample_every_;
    Clock::time_point epoch_;
    std::vector<Slot> slots_;
    std::atomic<u64> head_{0};
    std::atomic<u64> lost_{0}; //!< spans dropped by a failed slot claim
};

/** One slow-request exemplar; times are recorder-epoch microseconds. */
struct SlowExemplar
{
    u64 id = 0;
    bool has_tier = false; //!< tier is meaningful (request was routed)
    Tier tier = Tier::Full;
    StatusCode code = StatusCode::Ok;
    double total_us = 0.0;
    double queue_wait_us = 0.0;
    double service_us = 0.0;
    i64 completed_us = 0; //!< when the request finished (epoch offset)
};

/**
 * Rolling slow-request exemplar store, keyed by answering tier (plus a
 * "none" lane for requests that finished without tier routing — custom
 * aligners and admission-stage failures). Each lane keeps the most
 * recent kPerLane exemplars, so "show me a recent slow full-tier
 * request" is a lookup, not a scan of the span ring. Mutex-guarded:
 * it is touched only on the slow path (requests beyond the engine's
 * slow_request_threshold), never per-request.
 */
class SlowRequestStore
{
  public:
    static constexpr size_t kPerLane = 4;
    static constexpr unsigned kLanes = kTierCount + 1; //!< + "none" lane

    /** Lane index an exemplar lands in. */
    static unsigned laneOf(const SlowExemplar &e)
    {
        return e.has_tier ? static_cast<unsigned>(e.tier) : kTierCount;
    }

    /** Stable lane name ("filter".."downgraded", "none"). */
    static const char *laneName(unsigned lane);

    /** Record one exemplar, evicting the lane's oldest beyond kPerLane. */
    void note(const SlowExemplar &e);

    /** Exemplars ever noted (across all lanes, including evicted). */
    u64 noted() const;

    /** Snapshot of one lane, oldest first. */
    std::vector<SlowExemplar> lane(unsigned lane) const;

    /**
     * Dump as {"noted":N,"by_tier":{"filter":[...],...,"none":[...]}}
     * with each exemplar carrying id/tier/code/total_us/queue_wait_us/
     * service_us/completed_us.
     */
    std::string toJson() const;

  private:
    mutable std::mutex mu_;
    u64 noted_ = 0;
    std::array<std::deque<SlowExemplar>, kLanes> lanes_{};
};

} // namespace gmx::engine

#endif // GMX_ENGINE_TRACE_HH
