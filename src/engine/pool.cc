#include "engine/pool.hh"

#include "common/logging.hh"
#include "engine/faults.hh"

namespace gmx::engine {

namespace {

/** Identity of the pool worker running the current thread, if any. */
struct WorkerIdentity
{
    const WorkStealingPool *pool = nullptr;
    unsigned index = 0;
};

thread_local WorkerIdentity tl_worker;

} // namespace

unsigned
WorkStealingPool::resolveWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

WorkStealingPool::WorkStealingPool(unsigned workers)
{
    workers = resolveWorkers(workers);
    shards_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        shards_.push_back(std::make_unique<Shard>());
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

WorkStealingPool::~WorkStealingPool()
{
    shutdown();
}

bool
WorkStealingPool::onWorkerThread() const
{
    return tl_worker.pool == this;
}

void
WorkStealingPool::submit(Task task)
{
    if (!task)
        GMX_FATAL("WorkStealingPool::submit: empty task");
    if (!trySubmit(std::move(task)))
        GMX_FATAL("WorkStealingPool::submit: pool is shut down");
}

bool
WorkStealingPool::trySubmit(Task task)
{
    if (!task)
        GMX_FATAL("WorkStealingPool::trySubmit: empty task");
    if (stopping_.load(std::memory_order_acquire))
        return false;

    unsigned target;
    if (tl_worker.pool == this) {
        target = tl_worker.index; // worker self-submission: keep it local
    } else {
        target = rr_.fetch_add(1, std::memory_order_relaxed) %
                 shards_.size();
    }
    {
        std::lock_guard<std::mutex> lk(shards_[target]->mu);
        shards_[target]->tasks.push_back(std::move(task));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    {
        // pending_ is bumped under idle_mu_ so a worker that just saw
        // "no work" in its wait predicate cannot miss this submission.
        std::lock_guard<std::mutex> lk(idle_mu_);
        pending_.fetch_add(1, std::memory_order_relaxed);
    }
    idle_cv_.notify_one();
    return true;
}

bool
WorkStealingPool::tryPop(unsigned self, Task &out)
{
    // Own deque first, newest first (LIFO: best cache locality).
    {
        Shard &mine = *shards_[self];
        std::lock_guard<std::mutex> lk(mine.mu);
        if (!mine.tasks.empty()) {
            out = std::move(mine.tasks.back());
            mine.tasks.pop_back();
            pending_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Steal from siblings, oldest first (FIFO end of their deque).
    const size_t n = shards_.size();
    for (size_t off = 1; off < n; ++off) {
        Shard &victim = *shards_[(self + off) % n];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            pending_.fetch_sub(1, std::memory_order_relaxed);
            steals_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
WorkStealingPool::workerLoop(unsigned self)
{
    tl_worker = {this, self};
    for (;;) {
        Task task;
        if (tryPop(self, task)) {
            GMX_FAULT_STALL();
            task();
            executed_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait(lk, [this] {
            return pending_.load(std::memory_order_relaxed) > 0 ||
                   stopping_.load(std::memory_order_relaxed);
        });
        if (pending_.load(std::memory_order_relaxed) == 0 &&
            stopping_.load(std::memory_order_relaxed)) {
            return; // drained and stopping: graceful exit
        }
    }
}

void
WorkStealingPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(idle_mu_);
        if (stopping_.exchange(true, std::memory_order_acq_rel)) {
            // Second caller: threads are already joining/joined.
        }
    }
    idle_cv_.notify_all();
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

PoolStats
WorkStealingPool::stats() const
{
    PoolStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    return s;
}

WorkStealingPool &
sharedPool()
{
    static WorkStealingPool pool(0);
    return pool;
}

} // namespace gmx::engine
