#include "engine/cascade.hh"

#include <algorithm>
#include <cstdlib>

#include "align/bitap.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"

namespace gmx::engine {

i64
cascadeAutoFilterK(size_t n, size_t m)
{
    const i64 longer = static_cast<i64>(std::max(n, m));
    const i64 skew = std::abs(static_cast<i64>(n) - static_cast<i64>(m));
    return std::max<i64>({8, longer / 16, skew + 4});
}

namespace {

/** Full(GMX) tier: always answers. */
CascadeOutcome
fullTier(const seq::SequencePair &pair, const CascadeConfig &cfg,
         bool want_cigar, const CancelToken &cancel)
{
    CascadeOutcome out;
    out.tier = Tier::Full;
    if (want_cigar) {
        out.result = core::fullGmxAlign(pair.pattern, pair.text, cfg.tile,
                                        nullptr, cancel);
    } else {
        out.result.distance = core::fullGmxDistance(
            pair.pattern, pair.text, cfg.tile, nullptr, cancel);
    }
    return out;
}

} // namespace

CascadeOutcome
cascadeAlign(const seq::SequencePair &pair, const CascadeConfig &cfg,
             bool want_cigar, const CancelToken &cancel)
{
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();

    // Degenerate pairs skip the heuristics; Full(GMX) handles them.
    if (!cfg.enabled || n == 0 || m == 0)
        return fullTier(pair, cfg, want_cigar, cancel);

    // Tier 1 — Bitap filter. When it finds the pair within k, the
    // distance is exact; distance-only requests are done.
    const i64 k = cfg.filter_k > 0 ? cfg.filter_k : cascadeAutoFilterK(n, m);
    const i64 filtered =
        align::bitapDistance(pair.pattern, pair.text, k, nullptr, cancel);
    if (filtered != align::kNoAlignment && !want_cigar) {
        CascadeOutcome out;
        out.tier = Tier::Filter;
        out.result.distance = filtered;
        return out;
    }

    // Tier 2 — Banded(GMX). A filter hit pins the band to the exact
    // distance (guaranteed to succeed); a miss tries growing bands.
    if (filtered != align::kNoAlignment) {
        auto r = core::bandedGmxAlign(pair.pattern, pair.text,
                                      std::max<i64>(filtered, 1),
                                      want_cigar, cfg.tile, nullptr,
                                      /*enforce_bound=*/true, cancel);
        if (r.found())
            return {std::move(r), Tier::Banded};
    } else {
        i64 band = 2 * k;
        for (int attempt = 0; attempt < cfg.band_doublings;
             ++attempt, band *= 2) {
            auto r = core::bandedGmxAlign(pair.pattern, pair.text, band,
                                          want_cigar, cfg.tile, nullptr,
                                          /*enforce_bound=*/true, cancel);
            if (r.found())
                return {std::move(r), Tier::Banded};
        }
    }

    // Tier 3 — Full(GMX), the exact fallback.
    return fullTier(pair, cfg, want_cigar, cancel);
}

} // namespace gmx::engine
