#include "engine/cascade.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/timer.hh"
#include "kernel/dispatch.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"

namespace gmx::engine {

namespace {

/**
 * One planned kernel invocation. The cascade policy (what to try next,
 * when an answer is final) stays here; everything kernel-specific lives
 * behind the registry descriptor.
 */
struct TierPlan
{
    Tier tier;
    const kernel::AlignerDescriptor *desc;
    kernel::KernelParams params;
};

/** Run one planned invocation and charge it to the outcome's work log. */
align::AlignResult
runTier(CascadeOutcome &out, const TierPlan &plan,
        const seq::SequencePair &pair, const CancelToken &cancel,
        ScratchArena &arena, PeqMemo &memo)
{
    KernelCounts counts;
    KernelContext ctx(cancel, &counts, &arena);
    ctx.setPeqMemo(&memo);
    Timer timer;
    align::AlignResult r = plan.desc->run(pair, plan.params, ctx);
    const KernelContext::Phases phases = ctx.takePhases();
    out.counts += counts;
    out.attempts.push_back({plan.tier, counts.cells, timer.seconds() * 1e6,
                            false, static_cast<double>(phases.setup_us),
                            static_cast<double>(phases.kernel_us)});
    return r;
}

/** Mark the last attempt as the one that answered. */
CascadeOutcome
answered(CascadeOutcome out, Tier tier, align::AlignResult result)
{
    out.tier = tier;
    out.result = std::move(result);
    out.attempts.back().answered = true;
    return out;
}

/**
 * Everything after the filter tier: the ONE banded/full continuation,
 * shared by cascadeAlign (filter ran inline) and
 * cascadeContinueAfterFilter (filter ran in a packed batch), so the two
 * paths cannot drift. @p out already carries the filter attempt.
 */
CascadeOutcome
finishAfterFilter(CascadeOutcome out, const seq::SequencePair &pair,
                  const CascadeConfig &cfg, bool want_cigar,
                  const CancelToken &cancel, ScratchArena &arena,
                  PeqMemo &memo, const align::AlignResult &filtered, i64 k)
{
    if (filtered.found() && !want_cigar)
        return answered(std::move(out), Tier::Filter, filtered);

    const auto &registry = kernel::AlignerRegistry::instance();

    // Tier 2 — banded. A filter hit pins the band to the exact distance
    // (guaranteed to succeed); a miss tries growing bands.
    const kernel::AlignerDescriptor &banded =
        registry.require(kernel::dispatchKernel(cfg.banded_kernel));
    kernel::KernelParams band_params;
    band_params.want_cigar = want_cigar;
    band_params.tile = cfg.tile;
    band_params.enforce_bound = true;
    const int band_attempts = filtered.found() ? 1 : cfg.band_doublings;
    i64 band = filtered.found() ? std::max<i64>(filtered.distance, 1)
                                : 2 * k;
    for (int attempt = 0; attempt < band_attempts; ++attempt, band *= 2) {
        band_params.k = band;
        align::AlignResult r =
            runTier(out, {Tier::Banded, &banded, band_params}, pair, cancel,
                    arena, memo);
        if (r.found())
            return answered(std::move(out), Tier::Banded, std::move(r));
    }

    // Tier 3 — the exact fallback, always answers.
    const kernel::AlignerDescriptor &full =
        registry.require(kernel::dispatchKernel(cfg.full_kernel));
    kernel::KernelParams full_params;
    full_params.want_cigar = want_cigar;
    full_params.tile = cfg.tile;
    align::AlignResult r = runTier(out, {Tier::Full, &full, full_params},
                                   pair, cancel, arena, memo);
    return answered(std::move(out), Tier::Full, std::move(r));
}

} // namespace

CascadeOutcome
cascadeAlign(const seq::SequencePair &pair, const CascadeConfig &cfg,
             bool want_cigar, const CancelToken &cancel, ScratchArena &arena)
{
    const auto &registry = kernel::AlignerRegistry::instance();
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();
    CascadeOutcome out;
    // One Peq memo for the whole cascade: every bit-parallel tier retry on
    // this pattern (band doublings, tier escalation) reuses the first
    // attempt's match-mask table instead of rebuilding it.
    PeqMemo memo;

    // Long length class: the streaming windowed tier answers alone, in
    // O(window) memory. No filter or band attempt precedes it — the
    // short-class tiers all materialize O(n) state or worse, which is
    // exactly what this route exists to avoid.
    if (lengthClassFor(cfg, n, m) == align::LengthClass::Long) {
        const kernel::AlignerDescriptor &stream =
            registry.require(kernel::dispatchKernel(cfg.long_kernel));
        kernel::KernelParams sp;
        sp.want_cigar = want_cigar;
        sp.tile = cfg.tile;
        sp.window = cfg.long_window;
        sp.overlap = cfg.long_overlap;
        align::AlignResult r = runTier(out, {Tier::Streamed, &stream, sp},
                                       pair, cancel, arena, memo);
        return answered(std::move(out), Tier::Streamed, std::move(r));
    }

    const kernel::AlignerDescriptor &full =
        registry.require(kernel::dispatchKernel(cfg.full_kernel));
    kernel::KernelParams full_params;
    full_params.want_cigar = want_cigar;
    full_params.tile = cfg.tile;

    // Degenerate pairs skip the heuristics; the full tier handles them.
    if (!cfg.enabled || n == 0 || m == 0) {
        align::AlignResult r =
            runTier(out, {Tier::Full, &full, full_params}, pair, cancel,
                    arena, memo);
        return answered(std::move(out), Tier::Full, std::move(r));
    }

    // Tier 1 — distance-only filter. When it finds the pair within k,
    // the distance is exact; distance-only requests are done.
    const i64 k = cascadeFilterK(cfg, n, m);
    kernel::KernelParams filter_params;
    filter_params.want_cigar = false;
    filter_params.k = k;
    filter_params.tile = cfg.tile;
    const align::AlignResult filtered =
        runTier(out,
                {Tier::Filter,
                 &registry.require(kernel::dispatchKernel(cfg.filter_kernel)),
                 filter_params},
                pair, cancel, arena, memo);
    return finishAfterFilter(std::move(out), pair, cfg, want_cigar, cancel,
                             arena, memo, filtered, k);
}

CascadeOutcome
cascadeAlign(const seq::SequencePair &pair, const CascadeConfig &cfg,
             bool want_cigar, const CancelToken &cancel)
{
    thread_local ScratchArena arena;
    arena.reset();
    return cascadeAlign(pair, cfg, want_cigar, cancel, arena);
}

void
cascadeFilterBatch(std::span<FilterLane> lanes, const CascadeConfig &cfg,
                   ScratchArena &arena)
{
    GMX_ASSERT(lanes.size() >= 1 && lanes.size() <= simd::kBatchLanes,
               "cascadeFilterBatch: 1..4 lanes per group");
    simd::BatchLane bl[simd::kBatchLanes];
    for (size_t i = 0; i < lanes.size(); ++i) {
        bl[i].pair = lanes[i].pair;
        bl[i].cancel = lanes[i].cancel;
    }
    KernelContext ctx(CancelToken{}, nullptr, &arena);
    Timer timer;
    simd::bpmDistanceBatchLanes({bl, lanes.size()}, ctx);
    const KernelContext::Phases phases = ctx.takePhases();
    // The group shares one kernel invocation; each lane's attempt carries
    // an even share of the wall/phase time (its cells are its own), so
    // summing attempts across fused requests reproduces the group totals.
    const double share = 1.0 / static_cast<double>(lanes.size());
    const double micros = timer.seconds() * 1e6 * share;
    const double setup_us = static_cast<double>(phases.setup_us) * share;
    const double kernel_us = static_cast<double>(phases.kernel_us) * share;
    for (size_t i = 0; i < lanes.size(); ++i) {
        FilterLane &lane = lanes[i];
        lane.status = bl[i].status;
        lane.counts = bl[i].counts;
        if (lane.status.ok()) {
            const i64 k = cascadeFilterK(cfg, lane.pair->pattern.size(),
                                         lane.pair->text.size());
            // The scalar filter's contract: found with the exact distance
            // iff d <= k. The batch kernel knows the exact distance even
            // past k, but reporting it would diverge the continuation
            // from the scalar cascade — a miss stays a miss.
            if (bl[i].distance <= k)
                lane.filtered.distance = bl[i].distance;
        }
        lane.attempt = {Tier::Filter, lane.counts.cells, micros, false,
                        setup_us, kernel_us};
    }
}

CascadeOutcome
cascadeContinueAfterFilter(const seq::SequencePair &pair,
                           const CascadeConfig &cfg, bool want_cigar,
                           const CancelToken &cancel, ScratchArena &arena,
                           const FilterLane &lane)
{
    CascadeOutcome out;
    out.counts = lane.counts;
    out.attempts.push_back(lane.attempt);
    // Fresh memo: the filter batch built its masks in lane-packed layout,
    // so the banded/full tiers rebuild theirs exactly as the scalar
    // cascade's later tiers would after a bitap filter.
    PeqMemo memo;
    const i64 k = cascadeFilterK(cfg, pair.pattern.size(),
                                 pair.text.size());
    return finishAfterFilter(std::move(out), pair, cfg, want_cigar, cancel,
                             arena, memo, lane.filtered, k);
}

} // namespace gmx::engine
