#include "engine/cascade.hh"

#include <algorithm>
#include <utility>

#include "align/bitap.hh"
#include "common/timer.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"

namespace gmx::engine {

namespace {

/** Charge one finished kernel invocation to the outcome's work log. */
void
noteAttempt(CascadeOutcome &out, Tier tier, const align::KernelCounts &c,
            const Timer &timer)
{
    out.counts += c;
    out.attempts.push_back({tier, c.cells, timer.seconds() * 1e6, false});
}

/** Full(GMX) tier: always answers. */
CascadeOutcome
fullTier(const seq::SequencePair &pair, const CascadeConfig &cfg,
         bool want_cigar, const CancelToken &cancel, CascadeOutcome out)
{
    out.tier = Tier::Full;
    align::KernelCounts c;
    Timer timer;
    if (want_cigar) {
        out.result = core::fullGmxAlign(pair.pattern, pair.text, cfg.tile,
                                        &c, cancel);
    } else {
        out.result.distance = core::fullGmxDistance(
            pair.pattern, pair.text, cfg.tile, &c, cancel);
    }
    noteAttempt(out, Tier::Full, c, timer);
    out.attempts.back().answered = true;
    return out;
}

} // namespace

CascadeOutcome
cascadeAlign(const seq::SequencePair &pair, const CascadeConfig &cfg,
             bool want_cigar, const CancelToken &cancel)
{
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();
    CascadeOutcome out;

    // Degenerate pairs skip the heuristics; Full(GMX) handles them.
    if (!cfg.enabled || n == 0 || m == 0)
        return fullTier(pair, cfg, want_cigar, cancel, std::move(out));

    // Tier 1 — Bitap filter. When it finds the pair within k, the
    // distance is exact; distance-only requests are done.
    const i64 k = cfg.filter_k > 0 ? cfg.filter_k : cascadeAutoFilterK(n, m);
    i64 filtered;
    {
        align::KernelCounts c;
        Timer timer;
        filtered =
            align::bitapDistance(pair.pattern, pair.text, k, &c, cancel);
        noteAttempt(out, Tier::Filter, c, timer);
    }
    if (filtered != align::kNoAlignment && !want_cigar) {
        out.tier = Tier::Filter;
        out.result.distance = filtered;
        out.attempts.back().answered = true;
        return out;
    }

    // Tier 2 — Banded(GMX). A filter hit pins the band to the exact
    // distance (guaranteed to succeed); a miss tries growing bands.
    if (filtered != align::kNoAlignment) {
        align::KernelCounts c;
        Timer timer;
        auto r = core::bandedGmxAlign(pair.pattern, pair.text,
                                      std::max<i64>(filtered, 1),
                                      want_cigar, cfg.tile, &c,
                                      /*enforce_bound=*/true, cancel);
        noteAttempt(out, Tier::Banded, c, timer);
        if (r.found()) {
            out.tier = Tier::Banded;
            out.result = std::move(r);
            out.attempts.back().answered = true;
            return out;
        }
    } else {
        i64 band = 2 * k;
        for (int attempt = 0; attempt < cfg.band_doublings;
             ++attempt, band *= 2) {
            align::KernelCounts c;
            Timer timer;
            auto r = core::bandedGmxAlign(pair.pattern, pair.text, band,
                                          want_cigar, cfg.tile, &c,
                                          /*enforce_bound=*/true, cancel);
            noteAttempt(out, Tier::Banded, c, timer);
            if (r.found()) {
                out.tier = Tier::Banded;
                out.result = std::move(r);
                out.attempts.back().answered = true;
                return out;
            }
        }
    }

    // Tier 3 — Full(GMX), the exact fallback.
    return fullTier(pair, cfg, want_cigar, cancel, std::move(out));
}

} // namespace gmx::engine
