#include "engine/trace.hh"

#include <sstream>

namespace gmx::engine {

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::Enqueue:
        return "enqueue";
      case TraceEvent::Dispatch:
        return "dispatch";
      case TraceEvent::Admission:
        return "admission";
      case TraceEvent::TierAttempt:
        return "tier_attempt";
      case TraceEvent::Complete:
        return "complete";
    }
    return "?";
}

TraceRecorder::TraceRecorder(size_t capacity, u64 sample_every)
    : capacity_(capacity), sample_every_(sample_every),
      epoch_(Clock::now()), slots_(capacity)
{
}

u64
TraceRecorder::packMeta(TraceEvent event, bool has_tier, Tier tier,
                        StatusCode code)
{
    // Byte 0: event, byte 1: tier (0xff = none), byte 2: status code.
    const u64 tier_byte =
        has_tier ? static_cast<u64>(tier) : u64{0xff};
    return static_cast<u64>(event) | (tier_byte << 8) |
           (static_cast<u64>(code) << 16);
}

void
TraceRecorder::record(u64 id, TraceEvent event, i64 t_us, StatusCode code,
                      u64 detail)
{
    push(id, event, t_us, /*has_tier=*/false, Tier::Full, code, detail);
}

void
TraceRecorder::recordTier(u64 id, TraceEvent event, i64 t_us, Tier tier,
                          StatusCode code, u64 detail)
{
    push(id, event, t_us, /*has_tier=*/true, tier, code, detail);
}

void
TraceRecorder::push(u64 id, TraceEvent event, i64 t_us, bool has_tier,
                    Tier tier, StatusCode code, u64 detail)
{
    if (!enabled())
        return;
    const u64 ticket = head_.fetch_add(1, std::memory_order_acq_rel);
    Slot &slot = slots_[ticket % capacity_];
    // Claim the slot: its sequence must still be the previous lap's
    // published value (0 on the first lap). An unconditional store here
    // would let a writer that was descheduled for a whole ring lap stamp
    // its stale seq over a newer ticket's claim; the two writers' field
    // stores could then interleave, and a reader double-checking seq
    // would accept the torn mixture as a valid span. If the slot has
    // moved on, drop this span instead.
    u64 expected = ticket >= capacity_ ? 2 * (ticket - capacity_) + 2 : 0;
    if (!slot.seq.compare_exchange_strong(expected, 2 * ticket + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        lost_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot.id.store(id, std::memory_order_relaxed);
    slot.meta.store(packMeta(event, has_tier, tier, code),
                    std::memory_order_relaxed);
    slot.time.store(static_cast<u64>(t_us), std::memory_order_relaxed);
    slot.detail.store(detail, std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceSpan>
TraceRecorder::spans() const
{
    std::vector<TraceSpan> out;
    if (!enabled())
        return out;
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 first = head > capacity_ ? head - capacity_ : 0;
    out.reserve(static_cast<size_t>(head - first));
    for (u64 ticket = first; ticket < head; ++ticket) {
        const Slot &slot = slots_[ticket % capacity_];
        if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2)
            continue; // being written, or already overwritten
        TraceSpan span;
        span.id = slot.id.load(std::memory_order_relaxed);
        const u64 meta = slot.meta.load(std::memory_order_relaxed);
        span.t_us =
            static_cast<i64>(slot.time.load(std::memory_order_relaxed));
        span.detail = slot.detail.load(std::memory_order_relaxed);
        // Re-check: if a writer lapped us mid-read the fields are torn.
        if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2)
            continue;
        span.event = static_cast<TraceEvent>(meta & 0xff);
        const u64 tier_byte = (meta >> 8) & 0xff;
        span.has_tier = tier_byte != 0xff;
        span.tier = span.has_tier ? static_cast<Tier>(tier_byte)
                                  : Tier::Full;
        span.code = static_cast<StatusCode>((meta >> 16) & 0xff);
        out.push_back(span);
    }
    return out;
}

std::vector<TraceSpan>
TraceRecorder::spansFor(u64 id) const
{
    std::vector<TraceSpan> out;
    for (const TraceSpan &s : spans())
        if (s.id == id)
            out.push_back(s);
    return out;
}

namespace {

/** Emit one span object; shared by the full dump and the id lookup. */
void
spanJson(std::ostringstream &os, const TraceSpan &s)
{
    os << "{\"id\":" << s.id << ",\"event\":\"" << traceEventName(s.event)
       << "\"";
    if (s.has_tier)
        os << ",\"tier\":\"" << tierName(s.tier) << "\"";
    os << ",\"code\":\"" << statusCodeName(s.code) << "\""
       << ",\"t_us\":" << s.t_us << ",\"detail\":" << s.detail << "}";
}

} // namespace

std::string
TraceRecorder::toJson() const
{
    const auto all = spans();
    std::ostringstream os;
    os << "{\"recorded\":" << recorded() << ",\"dropped\":" << dropped()
       << ",\"spans\":[";
    for (size_t i = 0; i < all.size(); ++i) {
        if (i)
            os << ",";
        spanJson(os, all[i]);
    }
    os << "]}";
    return os.str();
}

std::string
TraceRecorder::jsonFor(u64 id) const
{
    const auto mine = spansFor(id);
    std::ostringstream os;
    os << "{\"id\":" << id
       << ",\"found\":" << (mine.empty() ? "false" : "true")
       << ",\"spans\":[";
    for (size_t i = 0; i < mine.size(); ++i) {
        if (i)
            os << ",";
        spanJson(os, mine[i]);
    }
    os << "]}";
    return os.str();
}

const char *
SlowRequestStore::laneName(unsigned lane)
{
    return lane < kTierCount ? tierName(static_cast<Tier>(lane)) : "none";
}

void
SlowRequestStore::note(const SlowExemplar &e)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++noted_;
    auto &lane = lanes_[laneOf(e)];
    lane.push_back(e);
    if (lane.size() > kPerLane)
        lane.pop_front();
}

u64
SlowRequestStore::noted() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return noted_;
}

std::vector<SlowExemplar>
SlowRequestStore::lane(unsigned lane) const
{
    std::lock_guard<std::mutex> lk(mu_);
    return {lanes_[lane].begin(), lanes_[lane].end()};
}

std::string
SlowRequestStore::toJson() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << "{\"noted\":" << noted_ << ",\"by_tier\":{";
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        if (lane)
            os << ",";
        os << "\"" << laneName(lane) << "\":[";
        bool first = true;
        for (const SlowExemplar &e : lanes_[lane]) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"id\":" << e.id;
            if (e.has_tier)
                os << ",\"tier\":\"" << tierName(e.tier) << "\"";
            os << ",\"code\":\"" << statusCodeName(e.code) << "\""
               << ",\"total_us\":" << e.total_us
               << ",\"queue_wait_us\":" << e.queue_wait_us
               << ",\"service_us\":" << e.service_us
               << ",\"completed_us\":" << e.completed_us << "}";
        }
        os << "]";
    }
    os << "}}";
    return os.str();
}

} // namespace gmx::engine
