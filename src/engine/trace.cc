#include "engine/trace.hh"

#include <sstream>

namespace gmx::engine {

const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::Enqueue:
        return "enqueue";
      case TraceEvent::Dispatch:
        return "dispatch";
      case TraceEvent::Admission:
        return "admission";
      case TraceEvent::TierAttempt:
        return "tier_attempt";
      case TraceEvent::Complete:
        return "complete";
    }
    return "?";
}

TraceRecorder::TraceRecorder(size_t capacity, u64 sample_every)
    : capacity_(capacity), sample_every_(sample_every),
      epoch_(Clock::now()), slots_(capacity)
{
}

u64
TraceRecorder::packMeta(TraceEvent event, bool has_tier, Tier tier,
                        StatusCode code)
{
    // Byte 0: event, byte 1: tier (0xff = none), byte 2: status code.
    const u64 tier_byte =
        has_tier ? static_cast<u64>(tier) : u64{0xff};
    return static_cast<u64>(event) | (tier_byte << 8) |
           (static_cast<u64>(code) << 16);
}

void
TraceRecorder::record(u64 id, TraceEvent event, i64 t_us, StatusCode code,
                      u64 detail)
{
    push(id, event, t_us, /*has_tier=*/false, Tier::Full, code, detail);
}

void
TraceRecorder::recordTier(u64 id, TraceEvent event, i64 t_us, Tier tier,
                          StatusCode code, u64 detail)
{
    push(id, event, t_us, /*has_tier=*/true, tier, code, detail);
}

void
TraceRecorder::push(u64 id, TraceEvent event, i64 t_us, bool has_tier,
                    Tier tier, StatusCode code, u64 detail)
{
    if (!enabled())
        return;
    const u64 ticket = head_.fetch_add(1, std::memory_order_acq_rel);
    Slot &slot = slots_[ticket % capacity_];
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.id.store(id, std::memory_order_relaxed);
    slot.meta.store(packMeta(event, has_tier, tier, code),
                    std::memory_order_relaxed);
    slot.time.store(static_cast<u64>(t_us), std::memory_order_relaxed);
    slot.detail.store(detail, std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<TraceSpan>
TraceRecorder::spans() const
{
    std::vector<TraceSpan> out;
    if (!enabled())
        return out;
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 first = head > capacity_ ? head - capacity_ : 0;
    out.reserve(static_cast<size_t>(head - first));
    for (u64 ticket = first; ticket < head; ++ticket) {
        const Slot &slot = slots_[ticket % capacity_];
        if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2)
            continue; // being written, or already overwritten
        TraceSpan span;
        span.id = slot.id.load(std::memory_order_relaxed);
        const u64 meta = slot.meta.load(std::memory_order_relaxed);
        span.t_us =
            static_cast<i64>(slot.time.load(std::memory_order_relaxed));
        span.detail = slot.detail.load(std::memory_order_relaxed);
        // Re-check: if a writer lapped us mid-read the fields are torn.
        if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2)
            continue;
        span.event = static_cast<TraceEvent>(meta & 0xff);
        const u64 tier_byte = (meta >> 8) & 0xff;
        span.has_tier = tier_byte != 0xff;
        span.tier = span.has_tier ? static_cast<Tier>(tier_byte)
                                  : Tier::Full;
        span.code = static_cast<StatusCode>((meta >> 16) & 0xff);
        out.push_back(span);
    }
    return out;
}

std::string
TraceRecorder::toJson() const
{
    const auto all = spans();
    std::ostringstream os;
    os << "{\"recorded\":" << recorded() << ",\"dropped\":" << dropped()
       << ",\"spans\":[";
    for (size_t i = 0; i < all.size(); ++i) {
        const TraceSpan &s = all[i];
        if (i)
            os << ",";
        os << "{\"id\":" << s.id << ",\"event\":\""
           << traceEventName(s.event) << "\"";
        if (s.has_tier)
            os << ",\"tier\":\"" << tierName(s.tier) << "\"";
        os << ",\"code\":\"" << statusCodeName(s.code) << "\""
           << ",\"t_us\":" << s.t_us << ",\"detail\":" << s.detail << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace gmx::engine
