/**
 * @file
 * OpenMetrics / Prometheus text rendering of a MetricsSnapshot.
 *
 * The engine's JSON snapshot is the programmatic surface; this is the
 * scrape surface: every counter, gauge, and histogram in the snapshot
 * rendered in the OpenMetrics text format (one `# TYPE` line per metric
 * family, `_total`-suffixed counters, cumulative `le`-labelled histogram
 * buckets with a closing `+Inf`, and the mandatory trailing `# EOF`).
 * Per-tier series carry a `tier` label so one family covers the whole
 * cascade: `gmx_tier_cells_total{tier="banded"}`.
 *
 * The renderer is a pure function of the snapshot — call it from an HTTP
 * handler, a signal handler's dump, or a benchmark's epilogue alike.
 */

#ifndef GMX_ENGINE_EXPORTER_HH
#define GMX_ENGINE_EXPORTER_HH

#include <string>

#include "engine/metrics.hh"

namespace gmx::engine {

/**
 * Render @p snap as an OpenMetrics text block (ends with "# EOF\n").
 * Metric names are prefixed "gmx_"; latency histograms are emitted in
 * seconds, as the conventions require, converted from the snapshot's
 * log2-microsecond buckets.
 */
std::string renderOpenMetrics(const MetricsSnapshot &snap);

} // namespace gmx::engine

#endif // GMX_ENGINE_EXPORTER_HH
