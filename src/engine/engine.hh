/**
 * @file
 * Alignment engine: persistent submission front-end over the
 * work-stealing pool.
 *
 * The pipeline a request flows through:
 *
 *   submit() -> validation -> bounded MPMC queue -> dispatcher
 *            -> work-stealing pool -> admission (deadline, memory budget)
 *            -> cascade or custom aligner -> std::future<Result<AlignResult>>
 *
 * Error idiom: futures are ALWAYS fulfilled with a value — a
 * gmx::Result<AlignResult> carrying either the alignment or a typed
 * Status — never with an exception. Exceptions exist only inside the
 * pipeline (StatusError unwinds kernel loops on cancellation) and are
 * converted to Status exactly once, at the request boundary. Callers
 * branch on Status codes instead of catching a zoo of exception types:
 *
 *   InvalidInput      — rejected by validation before any work
 *   Overloaded        — refused (Reject) or shed (ShedOldest) under load
 *   EngineStopped     — submitted after stop()
 *   DeadlineExceeded  — per-request deadline passed (before or mid-kernel)
 *   Cancelled         — caller's CancelSource fired
 *   ResourceExhausted — memory-budget admission failed (and no downgrade)
 *   Internal          — unexpected aligner failure
 *
 * The bounded queue is where backpressure lives: a full queue either
 * blocks the submitter, rejects the new request, or sheds the oldest
 * queued one — the three policies a service front-end needs when traffic
 * exceeds alignment capacity. The dispatcher fuses adjacent small pairs
 * into micro-batches so that short-read-sized requests amortize one pool
 * task per batch instead of paying per-pair scheduling cost, mirroring
 * how the paper's short-sequence workloads keep the GMX unit saturated.
 */

#ifndef GMX_ENGINE_ENGINE_HH
#define GMX_ENGINE_ENGINE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "align/batch.hh"
#include "align/types.hh"
#include "common/cancel.hh"
#include "common/status.hh"
#include "engine/budget.hh"
#include "engine/cascade.hh"
#include "engine/metrics.hh"
#include "engine/pool.hh"
#include "engine/trace.hh"
#include "sequence/sequence.hh"

namespace gmx::engine {

/** What submit() does when the request queue is full. */
enum class Backpressure {
    Block,     //!< wait until the queue has room (lossless, applies latency)
    Reject,    //!< fail the new request with Overloaded (fail fast)
    ShedOldest //!< drop the oldest queued request (freshest-first service)
};

/**
 * When the engine lane-packs fused distance-only requests through the
 * 4-lane SIMD filter batcher (kernel/simd bpmDistanceBatchLanes).
 * Results are bit-identical either way — packing only changes
 * throughput — and GMX_FORCE_SCALAR=1 disables every mode.
 */
enum class FilterBatching {
    Auto, //!< follow runtime dispatch: pack on real AVX2 hosts only
    On,   //!< pack even on the portable vector backend (tests, benches)
    Off,  //!< always run the per-request scalar cascade
};

/** Engine construction parameters. */
struct EngineConfig
{
    /** Pool workers; 0 = one per hardware thread (never zero). */
    unsigned workers = 0;

    /** Bounded request-queue capacity. */
    size_t queue_capacity = 1024;

    /** Policy when the queue is full. */
    Backpressure backpressure = Backpressure::Block;

    /** Max small requests fused into one pool task (1 disables fusing). */
    size_t microbatch_max = 8;

    /** Pairs with pattern+text bases below this count as "small". */
    size_t microbatch_bases = 2048;

    /** Lane-packing policy for fused distance-only requests. */
    FilterBatching filter_batching = FilterBatching::Auto;

    /** Routing configuration for cascade-dispatched requests. */
    CascadeConfig cascade{};

    /** Input validation applied to every submitted pair. */
    align::InputLimits limits{};

    /**
     * Cap on the sum of estimated footprints of in-flight requests
     * (0 = unlimited). Requests that do not fit are downgraded to a
     * memory-frugal traceback or failed with ResourceExhausted.
     */
    size_t memory_budget_bytes = 0;

    /**
     * Under budget pressure, divert cascade traceback requests to
     * Hirschberg (exact, O(min(n,m)) memory) instead of failing them.
     */
    bool downgrade_under_pressure = true;

    /**
     * Span-ring capacity of the per-request trace recorder (0 disables
     * tracing). Each traced request records ~5 spans, so the default
     * keeps the last few hundred requests inspectable.
     */
    size_t trace_capacity = 2048;

    /**
     * Trace every Nth request (deterministic: request ids are monotonic
     * and a request is traced iff id % N == 0). 1 traces everything;
     * raise it on hot services to bound tracing cost. 0 disables.
     */
    u64 trace_sample_every = 1;

    /**
     * Requests whose end-to-end latency meets this threshold emit one
     * warn-level log line (id, queue-wait/service split, tier, outcome)
     * via common/logging. 0 disables the slow-request log.
     */
    std::chrono::nanoseconds slow_request_threshold{0};
};

/** Per-request options for Engine::submit. */
struct SubmitOptions
{
    /** Ask for a full traceback (tier 1 then only pre-filters). */
    bool want_cigar = true;

    /**
     * Per-request deadline, measured from submit() (0 = none). On expiry
     * the request fails with DeadlineExceeded — before dispatch if it is
     * still queued, or mid-kernel via the cooperative cancel gate.
     */
    std::chrono::nanoseconds timeout{0};

    /** Cooperative cancellation; combine with timeout freely. */
    CancelToken cancel{};

    /**
     * Caller-declared footprint for the memory budget (0 = the engine
     * estimates from sequence lengths; custom aligners estimate as 0,
     * i.e. exempt, unless declared here).
     */
    size_t estimated_bytes = 0;

    /** Caller-chosen aligner; empty routes through the cascade. */
    align::PairAligner aligner{};
};

/**
 * Persistent alignment engine. Safe for concurrent submit() from any
 * number of threads. Destruction is graceful: every accepted request's
 * future is fulfilled before the workers join.
 */
class Engine
{
  public:
    using AlignOutcome = Result<align::AlignResult>;

    explicit Engine(EngineConfig config = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Submit one pair. The future is always fulfilled with a Result —
     * a value or a typed Status, never an exception. Rejections
     * (validation, stopped, Reject-policy overload) return an
     * already-ready future without touching the queue.
     */
    std::future<AlignOutcome> submit(seq::SequencePair pair,
                                     SubmitOptions options = {});

    /** Convenience: cascade routing with just the traceback choice. */
    std::future<AlignOutcome> submit(seq::SequencePair pair,
                                     bool want_cigar);

    /** Convenience: caller-chosen aligner (bypasses the cascade). */
    std::future<AlignOutcome> submit(seq::SequencePair pair,
                                     align::PairAligner aligner);

    /**
     * Convenience: submit every pair and wait; Results in input order.
     * Per-pair failures stay in their slot; nothing is thrown.
     */
    std::vector<AlignOutcome>
    alignAll(const std::vector<seq::SequencePair> &pairs,
             bool want_cigar = true);

    /** Block until the queue is empty and no request is in flight. */
    void drain();

    /**
     * Graceful stop: refuse new submissions, finish everything accepted,
     * join dispatcher and workers. Idempotent; the destructor calls it.
     */
    void stop();

    /** Point-in-time metrics (queue, pool, tiers, budget, latency). */
    MetricsSnapshot metrics() const;

    /** The per-request span recorder (dump with trace().toJson()). */
    const TraceRecorder &trace() const { return trace_; }

    /**
     * Rolling slow-request exemplars, keyed by answering tier. Populated
     * whenever a request meets config().slow_request_threshold (the same
     * condition as the warn log); served by MetricsServer under /trace.
     */
    const SlowRequestStore &slowRequests() const { return slow_; }

    const EngineConfig &config() const { return config_; }
    unsigned workerCount() const { return pool_.workerCount(); }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued alignment request. */
    struct Request
    {
        seq::SequencePair pair;
        align::PairAligner aligner; //!< empty => cascade routing
        bool want_cigar = true;
        /** Routing decision made at submit: Long requests run the
         *  streamed tier and are exempt from short-class machinery
         *  (micro-batch lane packing, Hirschberg downgrade). */
        align::LengthClass klass = align::LengthClass::Short;
        u64 id = 0;       //!< monotonic request id (tracing & slow log)
        size_t bases = 0; //!< pattern + text length, for micro-batching
        size_t estimated_bytes = 0; //!< footprint for the budget gate
        CancelToken cancel;         //!< user token + deadline, if any
        Clock::time_point enqueued;
        Clock::time_point dispatched; //!< worker pickup (service start)
        std::promise<AlignOutcome> promise;
    };

    /**
     * Everything runOne learns about one request beyond the outcome:
     * which tier answered (when cascade/downgrade routing ran), the
     * kernel work done, and the per-attempt breakdown for tracing and
     * per-tier work attribution.
     */
    struct Served
    {
        AlignOutcome outcome;
        bool tiered = false; //!< tier/cells/attempts are meaningful
        Tier tier = Tier::Full;
        u64 cells = 0;
        u64 reserved_bytes = 0;
        u64 arena_peak_bytes = 0; //!< worker scratch high-water this request
        i64 admitted_us = 0; //!< trace time of the Admission span
        std::vector<CascadeAttempt> attempts;

        explicit Served(AlignOutcome o) : outcome(std::move(o)) {}
    };

    /**
     * What the lane packer already did for one fused request before its
     * runOne turn: the filter tier ran inside a packed group, producing
     * either a lane failure (deadline/cancel while siblings ran) or the
     * scalar-identical filter verdict plus the lane's own attempt record
     * and work counts to seed the cascade continuation with.
     */
    struct FilterPrefill
    {
        bool ran = false; //!< filter tier already ran in a packed group
        Status status{};  //!< lane failure (Cancelled/DeadlineExceeded)
        align::AlignResult filtered;
        CascadeAttempt attempt;
        KernelCounts counts;
        u64 reserved_share = 0; //!< this lane's share of the group grant
    };

    std::future<AlignOutcome> enqueue(Request req);
    void dispatchLoop();
    void runRequests(std::vector<Request> batch);
    /** Admission + kernel for one request; never throws. @p pre carries
     *  the lane packer's filter-tier result when the request rode in a
     *  packed group (null/un-ran otherwise). */
    Served runOne(Request &req, const FilterPrefill *pre);
    /** Per-kernel max_len enforcement over every kernel @p klass's route
     *  can visit; Ok or a typed InvalidInput naming the kernel. */
    Status checkRouteLengths(align::LengthClass klass, size_t n,
                             size_t m) const;
    /** Whether this engine lane-packs right now (config + dispatch). */
    bool filterBatchingActive() const;
    /** Whether @p req can ride a packed filter group at all. */
    bool batchFilterEligible(const Request &req) const;
    /** Pack eligible requests of @p batch into lane groups, run their
     *  filter tiers batched, and record the results into @p pre. */
    void runFilterGroups(std::vector<Request> &batch,
                         std::vector<FilterPrefill> &pre);
    bool isSmall(const Request &req) const
    {
        return req.bases <= config_.microbatch_bases;
    }

    EngineConfig config_;
    EngineMetrics metrics_;
    MemoryBudget budget_;
    TraceRecorder trace_; //!< before pool_: workers record during teardown
    SlowRequestStore slow_;
    std::atomic<u64> next_id_{1};
    WorkStealingPool pool_;

    // Bounded MPMC request queue and its coordination.
    mutable std::mutex mu_;
    std::condition_variable dispatch_cv_; //!< wakes the dispatcher
    std::condition_variable queue_not_full_;
    std::condition_variable idle_;
    std::deque<Request> queue_;
    size_t inflight_ = 0;       //!< requests dispatched, not yet finished
    size_t inflight_tasks_ = 0; //!< pool tasks dispatched, not yet finished
    bool stopping_ = false;

    /**
     * Dispatch throttle: at most 2 outstanding pool tasks per worker.
     * Without it the dispatcher would drain the bounded queue into the
     * pool's unbounded deques and backpressure could never engage.
     */
    size_t maxInflightTasks() const { return 2 * pool_.workerCount(); }

    std::thread dispatcher_;
};

} // namespace gmx::engine

#endif // GMX_ENGINE_ENGINE_HH
