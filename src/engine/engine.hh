/**
 * @file
 * Alignment engine: persistent submission front-end over the
 * work-stealing pool.
 *
 * The pipeline a request flows through:
 *
 *   submit() -> bounded MPMC queue -> dispatcher (micro-batching)
 *            -> work-stealing pool -> cascade or custom aligner
 *            -> std::future<AlignResult>
 *
 * The bounded queue is where backpressure lives: a full queue either
 * blocks the submitter, rejects the new request, or sheds the oldest
 * queued one — the three policies a service front-end needs when traffic
 * exceeds alignment capacity. The dispatcher fuses adjacent small pairs
 * into micro-batches so that short-read-sized requests amortize one pool
 * task per batch instead of paying per-pair scheduling cost, mirroring
 * how the paper's short-sequence workloads keep the GMX unit saturated.
 */

#ifndef GMX_ENGINE_ENGINE_HH
#define GMX_ENGINE_ENGINE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "align/batch.hh"
#include "align/types.hh"
#include "engine/cascade.hh"
#include "engine/metrics.hh"
#include "engine/pool.hh"
#include "sequence/sequence.hh"

namespace gmx::engine {

/** What submit() does when the request queue is full. */
enum class Backpressure {
    Block,     //!< wait until the queue has room (lossless, applies latency)
    Reject,    //!< throw QueueFullError at the submitter (fail fast)
    ShedOldest //!< drop the oldest queued request (freshest-first service)
};

/** Thrown by submit() under the Reject policy when the queue is full. */
class QueueFullError : public std::runtime_error
{
  public:
    QueueFullError() : std::runtime_error("engine queue full") {}
};

/** Delivered through a shed request's future under ShedOldest. */
class ShedError : public std::runtime_error
{
  public:
    ShedError() : std::runtime_error("request shed under backpressure") {}
};

/** Thrown by submit() after stop(), and delivered to blocked submitters. */
class EngineStoppedError : public std::runtime_error
{
  public:
    EngineStoppedError() : std::runtime_error("engine is stopped") {}
};

/** Engine construction parameters. */
struct EngineConfig
{
    /** Pool workers; 0 = one per hardware thread (never zero). */
    unsigned workers = 0;

    /** Bounded request-queue capacity. */
    size_t queue_capacity = 1024;

    /** Policy when the queue is full. */
    Backpressure backpressure = Backpressure::Block;

    /** Max small requests fused into one pool task (1 disables fusing). */
    size_t microbatch_max = 8;

    /** Pairs with pattern+text bases below this count as "small". */
    size_t microbatch_bases = 2048;

    /** Routing configuration for cascade-dispatched requests. */
    CascadeConfig cascade{};
};

/**
 * Persistent alignment engine. Safe for concurrent submit() from any
 * number of threads. Destruction is graceful: every accepted request's
 * future is fulfilled before the workers join.
 */
class Engine
{
  public:
    explicit Engine(EngineConfig config = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Submit one pair for cascade-routed alignment. @p want_cigar asks
     * for a full traceback (tier 1 then only pre-filters). The future
     * carries the result or the aligner's exception.
     */
    std::future<align::AlignResult> submit(seq::SequencePair pair,
                                           bool want_cigar = true);

    /** Submit one pair to a caller-chosen aligner (bypasses the cascade). */
    std::future<align::AlignResult> submit(seq::SequencePair pair,
                                           align::PairAligner aligner);

    /**
     * Convenience: submit every pair and wait; results in input order.
     * The first failed pair's exception (by index) is rethrown.
     */
    std::vector<align::AlignResult>
    alignAll(const std::vector<seq::SequencePair> &pairs,
             bool want_cigar = true);

    /** Block until the queue is empty and no request is in flight. */
    void drain();

    /**
     * Graceful stop: refuse new submissions, finish everything accepted,
     * join dispatcher and workers. Idempotent; the destructor calls it.
     */
    void stop();

    /** Point-in-time metrics (queue, pool, tiers, latency). */
    MetricsSnapshot metrics() const;

    const EngineConfig &config() const { return config_; }
    unsigned workerCount() const { return pool_.workerCount(); }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued alignment request. */
    struct Request
    {
        seq::SequencePair pair;
        align::PairAligner aligner; //!< empty => cascade routing
        bool want_cigar = true;
        size_t bases = 0; //!< pattern + text length, for micro-batching
        Clock::time_point enqueued;
        std::promise<align::AlignResult> promise;
    };

    std::future<align::AlignResult> enqueue(Request req);
    void dispatchLoop();
    void runRequests(std::vector<Request> batch);
    bool isSmall(const Request &req) const
    {
        return req.bases <= config_.microbatch_bases;
    }

    EngineConfig config_;
    EngineMetrics metrics_;
    WorkStealingPool pool_;

    // Bounded MPMC request queue and its coordination.
    mutable std::mutex mu_;
    std::condition_variable dispatch_cv_; //!< wakes the dispatcher
    std::condition_variable queue_not_full_;
    std::condition_variable idle_;
    std::deque<Request> queue_;
    size_t inflight_ = 0;       //!< requests dispatched, not yet finished
    size_t inflight_tasks_ = 0; //!< pool tasks dispatched, not yet finished
    bool stopping_ = false;

    /**
     * Dispatch throttle: at most 2 outstanding pool tasks per worker.
     * Without it the dispatcher would drain the bounded queue into the
     * pool's unbounded deques and backpressure could never engage.
     */
    size_t maxInflightTasks() const { return 2 * pool_.workerCount(); }

    std::thread dispatcher_;
};

} // namespace gmx::engine

#endif // GMX_ENGINE_ENGINE_HH
