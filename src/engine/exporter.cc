#include "engine/exporter.hh"

#include <cstdio>
#include <sstream>

namespace gmx::engine {

namespace {

/**
 * Upper edge of log2-microsecond bucket b, in seconds. Thin wrapper over
 * the shared latencyBucketUpperUs so exported `le` labels can never
 * drift from the snapshot's quantile edges.
 */
double
bucketUpperSeconds(size_t b)
{
    return latencyBucketUpperUs(b) * 1e-6;
}

/** Shortest round-trippable decimal for a double ("0.001", "1.5e-05"). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

void
counter(std::ostringstream &os, const char *name, u64 value)
{
    os << "# TYPE " << name << " counter\n"
       << name << "_total " << value << "\n";
}

void
gauge(std::ostringstream &os, const char *name, double value)
{
    os << "# TYPE " << name << " gauge\n" << name << " " << num(value)
       << "\n";
}

/**
 * Emit one histogram series (cumulative buckets, sum, count) under
 * @p name with optional extra label @p tier (nullptr = unlabelled).
 * Trailing all-zero buckets are elided; the +Inf bucket always appears.
 */
void
histogramSeries(std::ostringstream &os, const char *name, const char *tier,
                const std::vector<u64> &buckets, double sum_us, u64 count)
{
    size_t last = buckets.size();
    while (last > 0 && buckets[last - 1] == 0)
        --last;
    u64 cum = 0;
    for (size_t b = 0; b < last; ++b) {
        cum += buckets[b];
        os << name << "_bucket{";
        if (tier)
            os << "tier=\"" << tier << "\",";
        os << "le=\"" << num(bucketUpperSeconds(b)) << "\"} " << cum
           << "\n";
    }
    os << name << "_bucket{";
    if (tier)
        os << "tier=\"" << tier << "\",";
    os << "le=\"+Inf\"} " << count << "\n";
    os << name << "_sum";
    if (tier)
        os << "{tier=\"" << tier << "\"}";
    os << " " << num(sum_us * 1e-6) << "\n";
    os << name << "_count";
    if (tier)
        os << "{tier=\"" << tier << "\"}";
    os << " " << count << "\n";
}

} // namespace

std::string
renderOpenMetrics(const MetricsSnapshot &snap)
{
    std::ostringstream os;

    // Submission front-end counters.
    counter(os, "gmx_requests_submitted", snap.submitted);
    counter(os, "gmx_requests_completed", snap.completed);
    counter(os, "gmx_requests_failed", snap.failed);
    counter(os, "gmx_requests_rejected", snap.rejected);
    counter(os, "gmx_requests_shed", snap.shed);
    counter(os, "gmx_requests_invalid", snap.invalid);
    counter(os, "gmx_requests_deadline_missed", snap.deadline_missed);
    counter(os, "gmx_requests_cancelled", snap.cancelled);
    counter(os, "gmx_requests_downgraded", snap.downgraded);
    counter(os, "gmx_requests_resource_rejected", snap.resource_rejected);
    counter(os, "gmx_microbatches", snap.microbatches);
    counter(os, "gmx_batched_pairs", snap.batched_pairs);
    counter(os, "gmx_filter_batches", snap.filter_batches);
    counter(os, "gmx_filter_batched_pairs", snap.filter_batched_pairs);
    // Lane-occupancy breakdown of the packed filter groups.
    os << "# TYPE gmx_filter_batch_groups counter\n";
    for (size_t l = 0; l < snap.filter_batch_lanes.size(); ++l)
        os << "gmx_filter_batch_groups_total{lanes=\"" << (l + 1)
           << "\"} " << snap.filter_batch_lanes[l] << "\n";
    counter(os, "gmx_pool_tasks_executed", snap.pool_executed);
    counter(os, "gmx_pool_steals", snap.pool_steals);

    // Queue / pool / memory-budget gauges.
    gauge(os, "gmx_queue_depth", static_cast<double>(snap.queue_depth));
    gauge(os, "gmx_queue_peak", static_cast<double>(snap.queue_peak));
    gauge(os, "gmx_pool_workers", static_cast<double>(snap.pool_workers));
    gauge(os, "gmx_memory_budget_bytes",
          static_cast<double>(snap.mem_budget_bytes));
    gauge(os, "gmx_memory_reserved_bytes",
          static_cast<double>(snap.mem_reserved_bytes));
    gauge(os, "gmx_memory_reserved_peak_bytes",
          static_cast<double>(snap.mem_reserved_peak));
    gauge(os, "gmx_arena_peak_bytes",
          static_cast<double>(snap.arena_peak_bytes));

    // Per-tier counters and gauges, one family per quantity.
    os << "# TYPE gmx_tier_completed counter\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_completed_total{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} " << snap.tier_hits[t]
           << "\n";
    os << "# TYPE gmx_tier_attempts counter\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_attempts_total{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} "
           << snap.tiers[t].attempts << "\n";
    os << "# TYPE gmx_tier_cells counter\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_cells_total{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} "
           << snap.tiers[t].cells << "\n";
    os << "# TYPE gmx_tier_peak_bytes gauge\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_peak_bytes{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} "
           << snap.tier_peak_bytes[t] << "\n";
    // Seconds of kernel work split by phase: setup is mask/grid building
    // and scratch carving, kernel is the DP loop plus traceback. The
    // gcups gauge below divides cells by the kernel phase only.
    os << "# TYPE gmx_tier_setup_seconds counter\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_setup_seconds_total{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} "
           << num(snap.tiers[t].setup_us * 1e-6) << "\n";
    os << "# TYPE gmx_tier_kernel_seconds counter\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_kernel_seconds_total{tier=\""
           << tierName(static_cast<Tier>(t)) << "\"} "
           << num(snap.tiers[t].kernel_us * 1e-6) << "\n";
    os << "# TYPE gmx_tier_gcups gauge\n";
    for (unsigned t = 0; t < kTierCount; ++t)
        os << "gmx_tier_gcups{tier=\"" << tierName(static_cast<Tier>(t))
           << "\"} " << num(snap.tiers[t].gcups) << "\n";

    // Latency histograms: end-to-end, then the queue-wait/service split.
    os << "# TYPE gmx_request_latency_seconds histogram\n";
    histogramSeries(os, "gmx_request_latency_seconds", nullptr,
                    snap.latency_buckets, snap.latency_sum_us,
                    snap.latency_count);
    os << "# TYPE gmx_queue_wait_seconds histogram\n";
    for (unsigned t = 0; t < kTierCount; ++t) {
        const LatencySummary &s = snap.tiers[t].queue_wait;
        histogramSeries(os, "gmx_queue_wait_seconds",
                        tierName(static_cast<Tier>(t)), s.buckets, s.sum_us,
                        s.count);
    }
    os << "# TYPE gmx_service_time_seconds histogram\n";
    for (unsigned t = 0; t < kTierCount; ++t) {
        const LatencySummary &s = snap.tiers[t].service;
        histogramSeries(os, "gmx_service_time_seconds",
                        tierName(static_cast<Tier>(t)), s.buckets, s.sum_us,
                        s.count);
    }

    os << "# EOF\n";
    return os.str();
}

} // namespace gmx::engine
