/**
 * @file
 * Persistent work-stealing thread pool.
 *
 * The paper's multicore scaling model (§7.2) is one independent GMX unit
 * per core; this pool is the software analogue: N persistent workers, each
 * with its own deque. The owner pushes and pops at the back (LIFO, cache
 * warm); an idle worker steals from the front of a sibling's deque (FIFO,
 * oldest work first) — the classic Blumofe/Leiserson discipline. Deques
 * are mutex-sharded rather than lock-free: alignment tasks run for
 * microseconds to milliseconds, so scheduling cost is not the bottleneck
 * and the simple locking stays ThreadSanitizer-clean by construction.
 *
 * Shutdown is graceful: queued tasks are drained before the workers join.
 */

#ifndef GMX_ENGINE_POOL_HH
#define GMX_ENGINE_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace gmx::engine {

/** Counters exported by the pool (all monotonic). */
struct PoolStats
{
    u64 submitted = 0; //!< tasks accepted
    u64 executed = 0;  //!< tasks run to completion
    u64 steals = 0;    //!< tasks a worker took from a sibling's deque
};

/** Fixed-size pool of persistent workers with per-worker deques. */
class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start @p workers threads (0 = one per hardware thread; platforms
     * reporting zero hardware threads get one worker, never zero).
     */
    explicit WorkStealingPool(unsigned workers = 0);

    /** Graceful: drains every queued task, then joins. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * Enqueue @p task. Called from a worker thread, it lands on that
     * worker's own deque (LIFO locality); from outside, deques are fed
     * round-robin. Throws FatalError after shutdown().
     */
    void submit(Task task);

    /**
     * Like submit(), but returns false instead of dying when the pool is
     * already shut down. Lets callers racing with shutdown() surface a
     * typed status instead of crashing.
     */
    bool trySubmit(Task task);

    /**
     * Stop accepting work, drain all queued tasks, join the workers.
     * Idempotent; also called by the destructor.
     */
    void shutdown();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    PoolStats stats() const;

    /**
     * Resolve a requested worker count: 0 means hardware concurrency,
     * clamped to at least 1 (std::thread::hardware_concurrency() may
     * return 0 on exotic platforms).
     */
    static unsigned resolveWorkers(unsigned requested);

    /** True when the calling thread is one of this pool's workers. */
    bool onWorkerThread() const;

  private:
    /** One worker's deque. Owner pops back; thieves pop front. */
    struct Shard
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool tryPop(unsigned self, Task &out);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> threads_;

    // Idle workers sleep on idle_cv_; pending_ counts queued tasks so the
    // wait predicate never misses a submission.
    std::mutex idle_mu_;
    std::condition_variable idle_cv_;
    std::atomic<size_t> pending_{0};
    std::atomic<bool> stopping_{false};

    std::atomic<u64> submitted_{0};
    std::atomic<u64> executed_{0};
    std::atomic<u64> steals_{0};
    std::atomic<unsigned> rr_{0};
};

/**
 * Process-wide shared pool (one per hardware thread), used by
 * align::batchAlign and anything else that wants parallelism without
 * owning threads. Constructed on first use, joined at exit.
 */
WorkStealingPool &sharedPool();

} // namespace gmx::engine

#endif // GMX_ENGINE_POOL_HH
