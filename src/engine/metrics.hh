/**
 * @file
 * Atomic metrics for the alignment engine.
 *
 * The engine is a concurrent pipeline, so every counter here is a plain
 * relaxed atomic: producers and workers bump them wait-free and a snapshot
 * reads them without stopping the pipeline. A snapshot is a plain value
 * struct that can be diffed, printed, or serialized to JSON — the shape a
 * monitoring scraper would consume in a service deployment.
 */

#ifndef GMX_ENGINE_METRICS_HH
#define GMX_ENGINE_METRICS_HH

#include <array>
#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "common/types.hh"

namespace gmx::engine {

/**
 * Cascade tiers, cheapest first. Tier indices are stable: they are used
 * as array offsets in the metrics and as labels in the JSON snapshot.
 * Downgraded is not a routing tier: it marks requests the memory-budget
 * admission gate diverted from Full(GMX) traceback to Hirschberg.
 */
enum class Tier : unsigned {
    Filter = 0,     //!< Bitap edit-distance filter answered the request
    Banded = 1,     //!< Banded(GMX) inside the band answered it
    Full = 2,       //!< escalated to Full(GMX)
    Downgraded = 3, //!< budget pressure: Hirschberg fallback answered it
    Streamed = 4,   //!< long length class: streaming Windowed(GMX) tier
};

inline constexpr unsigned kTierCount = 5;

/** Human-readable tier name ("filter" / "banded" / ... / "streamed"). */
const char *tierName(Tier t);

/**
 * Upper edge of log2-microsecond latency bucket @p b, in microseconds
 * (bucket 0 is [0, 1us), bucket b>0 is [2^(b-1), 2^b) us). The ONE
 * definition of the bucket-edge function: the snapshot's quantile
 * approximation and the OpenMetrics exporter's `le` labels both use it,
 * so a reported p99 and the scraped bucket it falls in cannot drift.
 */
inline double
latencyBucketUpperUs(size_t b)
{
    return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
}

/**
 * Lock-free latency histogram with power-of-two microsecond buckets:
 * bucket b counts samples in [2^(b-1), 2^b) microseconds (bucket 0 is
 * [0, 1us)). 32 buckets cover up to ~35 minutes, far beyond any
 * alignment latency this engine can produce.
 *
 * record() is robust to garbage durations: a stepped clock or a
 * fault-injected stall can hand it a negative, NaN, or infinite value,
 * and feeding any of those to std::log2 (or casting the result) is
 * undefined. Negative and NaN samples clamp to bucket 0, oversized and
 * +inf samples to the last bucket; the running sum is clamped the same
 * way so mean latency stays finite.
 */
class LatencyHistogram
{
  public:
    static constexpr size_t kBuckets = 32;

    void record(double seconds);

    /** Per-bucket counts (relaxed reads; consistent enough for reporting). */
    std::vector<u64> buckets() const;

    /** Sum of recorded (clamped) samples in microseconds. */
    double sumUs() const
    {
        return sum_us_.load(std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<u64>, kBuckets> buckets_{};
    std::atomic<double> sum_us_{0.0};
};

/** Summary of one latency histogram, in microseconds. */
struct LatencySummary
{
    std::vector<u64> buckets; //!< log2-microsecond histogram
    u64 count = 0;
    double sum_us = 0.0;
    double mean_us = 0.0;
    double p50_us = 0.0; //!< bucket-upper-bound approximation
    double p99_us = 0.0;
};

/** Point-in-time copy of every engine counter. Plain values, no atomics. */
struct MetricsSnapshot
{
    // Submission front-end.
    u64 submitted = 0;    //!< requests accepted into the queue
    u64 completed = 0;    //!< requests whose future carried an ok Result
    u64 failed = 0;       //!< requests whose future carried a failed Result
    u64 rejected = 0;     //!< requests refused by the Reject policy
    u64 shed = 0;         //!< queued requests dropped by the ShedOldest policy
    u64 invalid = 0;      //!< requests refused by input validation
    u64 queue_depth = 0;  //!< current queued (not yet dispatched) requests
    u64 queue_peak = 0;   //!< high-water mark of queue_depth
    u64 microbatches = 0; //!< pool tasks that fused >= 2 small requests
    u64 batched_pairs = 0; //!< requests that rode inside a micro-batch

    /**
     * Lane-packed filter-tier groups: how often the engine ran the
     * cascade's filter through the 4-lane SIMD batcher, how many
     * requests rode in those groups, and the occupancy histogram
     * (filter_batch_lanes[l] = groups that ran with l+1 lanes filled —
     * partial tails land in the lower slots).
     */
    u64 filter_batches = 0;
    u64 filter_batched_pairs = 0;
    std::array<u64, 4> filter_batch_lanes{};

    // Robustness: deadline / cancel / memory-budget outcomes.
    u64 deadline_missed = 0;   //!< requests failed with DeadlineExceeded
    u64 cancelled = 0;         //!< requests failed with Cancelled
    u64 downgraded = 0;        //!< budget pressure: Hirschberg fallback
    u64 resource_rejected = 0; //!< failed with ResourceExhausted
    u64 mem_budget_bytes = 0;  //!< configured budget (0 = unlimited)
    u64 mem_reserved_bytes = 0; //!< currently reserved estimates
    u64 mem_reserved_peak = 0;  //!< high-water mark of reserved estimates
    u64 arena_peak_bytes = 0;   //!< max per-worker scratch-arena footprint

    // Work-stealing pool.
    u64 pool_workers = 0;  //!< worker threads
    u64 pool_executed = 0; //!< tasks executed
    u64 pool_steals = 0;   //!< tasks obtained by stealing from a sibling

    // Cascade tiers.
    std::array<u64, kTierCount> tier_hits{}; //!< completions per tier
    std::array<u64, kTierCount> tier_peak_bytes{}; //!< max footprint per tier

    /**
     * Per-tier observability: kernel work accounting and the split
     * latency story. Work (attempts/cells/work_us, hence gcups) is
     * attributed per kernel invocation — a request that tries the band
     * and escalates charges the banded tier for the failed attempt —
     * while the queue-wait/service histograms are request-level and
     * keyed by the tier that answered.
     */
    struct TierStats
    {
        u64 attempts = 0;   //!< kernel invocations routed at this tier
        u64 cells = 0;      //!< DP cells computed by those invocations
        double work_us = 0; //!< wall-clock microseconds spent in them

        /**
         * Phase split of work_us, as attributed by the kernels: setup is
         * mask/grid building and scratch carving, kernel is the DP loop
         * plus traceback.
         */
        double setup_us = 0;
        double kernel_us = 0;

        /**
         * cells / kernel time, in 1e9 cells/s. Computed from kernel_us
         * only, so setup overhead shows up as a setup_us/work_us ratio
         * instead of silently diluting throughput.
         */
        double gcups = 0;

        LatencySummary queue_wait; //!< enqueue -> worker pickup
        LatencySummary service;    //!< worker pickup -> result ready
    };
    std::array<TierStats, kTierCount> tiers{};

    // Latency, request submit -> future fulfilled.
    std::vector<u64> latency_buckets; //!< log2-microsecond histogram
    u64 latency_count = 0;
    double latency_sum_us = 0.0; //!< true running sum, not mean * count
    double latency_mean_us = 0.0;
    double latency_p50_us = 0.0;
    double latency_p99_us = 0.0;

    /**
     * Serialize as a single JSON object (stable key order, no trailing
     * commas) — the engine's monitoring endpoint in library form.
     */
    std::string toJson() const;
};

/**
 * The live counters. One instance per Engine; sharable by reference with
 * the cascade so tier hits land in the same snapshot.
 */
class EngineMetrics
{
  public:
    std::atomic<u64> submitted{0};
    std::atomic<u64> completed{0};
    std::atomic<u64> failed{0};
    std::atomic<u64> rejected{0};
    std::atomic<u64> shed{0};
    std::atomic<u64> invalid{0};
    std::atomic<u64> queue_depth{0};
    std::atomic<u64> queue_peak{0};
    std::atomic<u64> microbatches{0};
    std::atomic<u64> batched_pairs{0};
    std::atomic<u64> filter_batches{0};
    std::atomic<u64> filter_batched_pairs{0};
    std::array<std::atomic<u64>, 4> filter_batch_lanes{};

    /** Count one lane-packed filter group that ran with @p lanes lanes. */
    void recordFilterBatch(size_t lanes)
    {
        filter_batches.fetch_add(1, std::memory_order_relaxed);
        filter_batched_pairs.fetch_add(lanes, std::memory_order_relaxed);
        if (lanes >= 1 && lanes <= filter_batch_lanes.size())
            filter_batch_lanes[lanes - 1].fetch_add(
                1, std::memory_order_relaxed);
    }
    std::atomic<u64> deadline_missed{0};
    std::atomic<u64> cancelled{0};
    std::atomic<u64> downgraded{0};
    std::atomic<u64> resource_rejected{0};
    std::array<std::atomic<u64>, kTierCount> tier_hits{};
    std::array<std::atomic<u64>, kTierCount> tier_peak_bytes{};
    std::array<std::atomic<u64>, kTierCount> tier_attempts{};
    std::array<std::atomic<u64>, kTierCount> tier_cells{};
    std::array<std::atomic<double>, kTierCount> tier_work_us{};
    std::array<std::atomic<double>, kTierCount> tier_setup_us{};
    std::array<std::atomic<double>, kTierCount> tier_kernel_us{};
    std::atomic<u64> arena_peak_bytes{0};
    std::array<LatencyHistogram, kTierCount> queue_wait{};
    std::array<LatencyHistogram, kTierCount> service{};
    LatencyHistogram latency;

    /** Count a completion at @p t with its reserved footprint estimate. */
    void recordTier(Tier t, u64 estimated_bytes = 0)
    {
        const unsigned i = static_cast<unsigned>(t);
        tier_hits[i].fetch_add(1, std::memory_order_relaxed);
        noteMax(tier_peak_bytes[i], estimated_bytes);
    }

    /**
     * Charge one kernel invocation's work to tier @p t, with the
     * setup/kernel phase split the kernel attributed itself.
     */
    void recordAttempt(Tier t, u64 cells, double micros,
                       double setup_us = 0.0, double kernel_us = 0.0)
    {
        const unsigned i = static_cast<unsigned>(t);
        tier_attempts[i].fetch_add(1, std::memory_order_relaxed);
        tier_cells[i].fetch_add(cells, std::memory_order_relaxed);
        tier_work_us[i].fetch_add(micros, std::memory_order_relaxed);
        tier_setup_us[i].fetch_add(setup_us, std::memory_order_relaxed);
        tier_kernel_us[i].fetch_add(kernel_us, std::memory_order_relaxed);
    }

    /** Raise the worker scratch-arena high-water mark to @p bytes. */
    void noteArenaPeak(u64 bytes) { noteMax(arena_peak_bytes, bytes); }

    /** Record the split latency of a request answered by tier @p t. */
    void recordTimings(Tier t, double queue_wait_s, double service_s)
    {
        const unsigned i = static_cast<unsigned>(t);
        queue_wait[i].record(queue_wait_s);
        service[i].record(service_s);
    }

    /** Raise queue_peak to at least @p depth (monotonic CAS loop). */
    void notePeak(u64 depth);

    /**
     * Copy everything into a snapshot. Pool and budget numbers are
     * passed in by the engine, which owns both.
     */
    MetricsSnapshot snapshot(u64 pool_workers, u64 pool_executed,
                             u64 pool_steals, u64 mem_budget_bytes = 0,
                             u64 mem_reserved_bytes = 0,
                             u64 mem_reserved_peak = 0) const;

  private:
    /** Monotonic CAS max. */
    static void noteMax(std::atomic<u64> &slot, u64 value);
};

} // namespace gmx::engine

#endif // GMX_ENGINE_METRICS_HH
