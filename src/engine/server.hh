/**
 * @file
 * HTTP/1.1 scrape server for the engine's observability surfaces.
 *
 * PR 3 made the engine inspectable through library calls
 * (MetricsSnapshot::toJson, renderOpenMetrics, TraceRecorder::toJson);
 * this server puts those behind a real socket so a deployed engine can
 * be monitored the way any production service is: a Prometheus scraper
 * polls /metrics, a dashboard reads /vars, an operator chasing one slow
 * request hits /trace?id=N, and an orchestrator health-checks /healthz.
 *
 * Endpoints (GET only; anything else is 405):
 *
 *   /metrics      OpenMetrics text (renderOpenMetrics of a live snapshot)
 *   /vars         the same snapshot as JSON (MetricsSnapshot::toJson)
 *   /trace        span ring + slow-request exemplars, one JSON object
 *   /trace?id=N   one request's span timeline (404 when not in the ring)
 *   /healthz      200 "ok" liveness probe
 *
 * Deliberately dependency-free and blocking: one accept-loop thread
 * multiplexes the TCP listener, the optional unix-domain listener, and a
 * self-pipe via poll(); accepted connections are handed to a small fixed
 * pool of handler threads over a mutex+cv queue. Robustness is the
 * point, not throughput — a scrape endpoint serves a handful of pollers:
 *
 *   - hard cap on concurrent connections (503 beyond it, never queued
 *     unboundedly),
 *   - per-connection SO_RCVTIMEO/SO_SNDTIMEO deadlines, so a slow or
 *     dead client can stall a handler for at most io_timeout (408),
 *   - request-line + header size cap (431),
 *   - one request per connection ("Connection: close"), no keep-alive
 *     state machine to get wrong,
 *   - graceful stop(): the self-pipe unblocks poll(), handlers drain the
 *     accepted-connection queue, and every thread is joined before
 *     stop() returns — no leaked fds or threads under ASan.
 *
 * Fault-injection integration (GMX_FAULT_INJECTION builds): QueueFull
 * forces the connection cap (503), TaskError fails a /metrics render
 * (500), and WorkerStall sleeps a handler mid-request, so test_chaos
 * can storm the scrape path with the same seeded harness as the engine.
 */

#ifndef GMX_ENGINE_SERVER_HH
#define GMX_ENGINE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.hh"
#include "common/status.hh"
#include "common/types.hh"

namespace gmx::engine {

class Engine;

/** MetricsServer construction parameters. */
struct ServerConfig
{
    /** TCP bind address. */
    std::string host = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (read it back via port()). */
    u16 port = 0;

    /** Also listen on this unix-domain socket path (empty = TCP only). */
    std::string unix_path{};

    /** Handler pool size (>= 1; each handler serves one connection). */
    unsigned handler_threads = 2;

    /**
     * Hard cap on concurrent accepted connections (queued + in-flight).
     * Connections beyond it are answered 503 and closed immediately.
     */
    unsigned max_connections = 32;

    /** Per-connection read/write deadline (SO_RCVTIMEO / SO_SNDTIMEO). */
    std::chrono::milliseconds io_timeout{2000};

    /** Request line + headers cap; longer requests are answered 431. */
    size_t max_request_bytes = 8192;

    /**
     * Extra OpenMetrics families appended to /metrics (before the
     * trailing `# EOF`). The serving layer registers its per-client /
     * per-shard / cache families here so one scrape covers the whole
     * deployment. Must return well-formed family blocks, no `# EOF`.
     */
    std::function<std::string()> extra_metrics{};

    /**
     * Extra JSON appended to /vars. When set, /vars becomes
     * {"engine":<snapshot>,"serve":<extra>} instead of the bare
     * snapshot object; the callback must return one JSON value.
     */
    std::function<std::string()> extra_vars{};
};

/**
 * Blocking-socket HTTP/1.1 scrape server over one Engine. Start it next
 * to the engine, point a scraper at it, stop() (or destroy) to shut
 * down; stop is graceful and idempotent. The referenced engine must
 * outlive the server.
 */
class MetricsServer
{
  public:
    explicit MetricsServer(const Engine &engine, ServerConfig config = {});
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind, listen, and spawn the accept loop + handler pool. Returns a
     * typed error (and holds no resources) when a socket call fails —
     * e.g. the port is taken or the unix path is not bindable.
     */
    Status start();

    /**
     * Graceful shutdown: unblock the accept loop via the self-pipe,
     * serve every already-accepted connection, join all threads, close
     * all sockets. Idempotent; the destructor calls it.
     */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Bound TCP port (resolves port 0); 0 before start(). */
    u16 port() const { return bound_port_; }

    /** Responses written (any status), and connections refused with 503. */
    u64 served() const { return served_.load(std::memory_order_relaxed); }
    u64 refused() const { return refused_.load(std::memory_order_relaxed); }

    const ServerConfig &config() const { return config_; }

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    /** Route a parsed request to a body + content type. */
    int route(const net::HttpRequestLine &req, std::string &body,
              std::string &content_type) const;
    void respond(int fd, int status, const std::string &content_type,
                 const std::string &body);

    const Engine &engine_;
    ServerConfig config_;

    int tcp_fd_ = -1;
    int unix_fd_ = -1;
    net::SelfPipe wake_; //!< stop() -> accept poll()
    u16 bound_port_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<unsigned> active_{0}; //!< queued + in-flight connections
    std::atomic<u64> served_{0};
    std::atomic<u64> refused_{0};

    std::mutex mu_;
    std::condition_variable conn_cv_;
    std::deque<int> conn_queue_; //!< accepted fds awaiting a handler

    std::thread acceptor_;
    std::vector<std::thread> handlers_;
};

} // namespace gmx::engine

#endif // GMX_ENGINE_SERVER_HH
