#include "engine/metrics.hh"

#include <cmath>
#include <sstream>

namespace gmx::engine {

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Filter:
        return "filter";
      case Tier::Banded:
        return "banded";
      case Tier::Full:
        return "full";
      case Tier::Downgraded:
        return "downgraded";
    }
    return "?";
}

void
LatencyHistogram::record(double seconds)
{
    const double us = seconds * 1e6;
    size_t bucket = 0;
    if (us >= 1.0) {
        bucket = static_cast<size_t>(std::log2(us)) + 1;
        bucket = std::min(bucket, kBuckets - 1);
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<u64>
LatencyHistogram::buckets() const
{
    std::vector<u64> out(kBuckets);
    for (size_t b = 0; b < kBuckets; ++b)
        out[b] = buckets_[b].load(std::memory_order_relaxed);
    return out;
}

void
EngineMetrics::noteMax(std::atomic<u64> &slot, u64 value)
{
    u64 cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
EngineMetrics::notePeak(u64 depth)
{
    noteMax(queue_peak, depth);
}

namespace {

/** Upper edge of histogram bucket b in microseconds. */
double
bucketUpperUs(size_t b)
{
    return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
}

/** Approximate quantile from the log2 histogram (bucket upper bound). */
double
quantileUs(const std::vector<u64> &buckets, u64 total, double q)
{
    if (total == 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    double seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        seen += static_cast<double>(buckets[b]);
        if (seen >= target)
            return bucketUpperUs(b);
    }
    return bucketUpperUs(buckets.size() - 1);
}

} // namespace

MetricsSnapshot
EngineMetrics::snapshot(u64 pool_workers, u64 pool_executed, u64 pool_steals,
                        u64 mem_budget_bytes, u64 mem_reserved_bytes,
                        u64 mem_reserved_peak) const
{
    MetricsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.invalid = invalid.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth.load(std::memory_order_relaxed);
    s.queue_peak = queue_peak.load(std::memory_order_relaxed);
    s.microbatches = microbatches.load(std::memory_order_relaxed);
    s.batched_pairs = batched_pairs.load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
    s.cancelled = cancelled.load(std::memory_order_relaxed);
    s.downgraded = downgraded.load(std::memory_order_relaxed);
    s.resource_rejected = resource_rejected.load(std::memory_order_relaxed);
    s.mem_budget_bytes = mem_budget_bytes;
    s.mem_reserved_bytes = mem_reserved_bytes;
    s.mem_reserved_peak = mem_reserved_peak;
    s.pool_workers = pool_workers;
    s.pool_executed = pool_executed;
    s.pool_steals = pool_steals;
    for (unsigned t = 0; t < kTierCount; ++t) {
        s.tier_hits[t] = tier_hits[t].load(std::memory_order_relaxed);
        s.tier_peak_bytes[t] =
            tier_peak_bytes[t].load(std::memory_order_relaxed);
    }
    s.latency_buckets = latency.buckets();
    for (u64 c : s.latency_buckets)
        s.latency_count += c;
    const double total_us = latency_total_us.load(std::memory_order_relaxed);
    s.latency_mean_us =
        s.latency_count
            ? total_us / static_cast<double>(s.latency_count)
            : 0.0;
    s.latency_p50_us = quantileUs(s.latency_buckets, s.latency_count, 0.50);
    s.latency_p99_us = quantileUs(s.latency_buckets, s.latency_count, 0.99);
    return s;
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"submitted\":" << submitted;
    os << ",\"completed\":" << completed;
    os << ",\"failed\":" << failed;
    os << ",\"rejected\":" << rejected;
    os << ",\"shed\":" << shed;
    os << ",\"invalid\":" << invalid;
    os << ",\"queue_depth\":" << queue_depth;
    os << ",\"queue_peak\":" << queue_peak;
    os << ",\"microbatches\":" << microbatches;
    os << ",\"batched_pairs\":" << batched_pairs;
    os << ",\"deadline_missed\":" << deadline_missed;
    os << ",\"cancelled\":" << cancelled;
    os << ",\"downgraded\":" << downgraded;
    os << ",\"resource_rejected\":" << resource_rejected;
    os << ",\"memory\":{";
    os << "\"budget\":" << mem_budget_bytes;
    os << ",\"reserved\":" << mem_reserved_bytes;
    os << ",\"reserved_peak\":" << mem_reserved_peak;
    os << "}";
    os << ",\"pool\":{";
    os << "\"workers\":" << pool_workers;
    os << ",\"executed\":" << pool_executed;
    os << ",\"steals\":" << pool_steals;
    os << "}";
    os << ",\"tiers\":{";
    for (unsigned t = 0; t < kTierCount; ++t) {
        if (t)
            os << ",";
        os << "\"" << tierName(static_cast<Tier>(t)) << "\":{"
           << "\"hits\":" << tier_hits[t]
           << ",\"peak_bytes\":" << tier_peak_bytes[t] << "}";
    }
    os << "}";
    os << ",\"latency_us\":{";
    os << "\"count\":" << latency_count;
    os << ",\"mean\":" << latency_mean_us;
    os << ",\"p50\":" << latency_p50_us;
    os << ",\"p99\":" << latency_p99_us;
    os << ",\"log2_buckets\":[";
    // Trim trailing empty buckets so the array stays readable.
    size_t last = latency_buckets.size();
    while (last > 0 && latency_buckets[last - 1] == 0)
        --last;
    for (size_t b = 0; b < last; ++b) {
        if (b)
            os << ",";
        os << latency_buckets[b];
    }
    os << "]}";
    os << "}";
    return os.str();
}

} // namespace gmx::engine
