#include "engine/metrics.hh"

#include <cmath>
#include <sstream>

namespace gmx::engine {

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Filter:
        return "filter";
      case Tier::Banded:
        return "banded";
      case Tier::Full:
        return "full";
      case Tier::Downgraded:
        return "downgraded";
      case Tier::Streamed:
        return "streamed";
    }
    return "?";
}

void
LatencyHistogram::record(double seconds)
{
    double us = seconds * 1e6;
    // Clamp garbage before std::log2 / the size_t cast see it: NaN and
    // negative samples (stepped clocks) land in bucket 0 as 0us, +inf
    // and oversized samples (fault-injected stalls) in the last bucket
    // at its lower edge. kMaxUs = 2^(kBuckets-2) is that edge.
    constexpr double kMaxUs = 1ull << (kBuckets - 2);
    size_t bucket;
    if (std::isnan(us) || us < 1.0) {
        bucket = 0;
        us = std::isnan(us) || us < 0.0 ? 0.0 : us;
    } else if (us >= kMaxUs) {
        bucket = kBuckets - 1;
        us = kMaxUs;
    } else {
        bucket = static_cast<size_t>(std::log2(us)) + 1;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
}

std::vector<u64>
LatencyHistogram::buckets() const
{
    std::vector<u64> out(kBuckets);
    for (size_t b = 0; b < kBuckets; ++b)
        out[b] = buckets_[b].load(std::memory_order_relaxed);
    return out;
}

void
EngineMetrics::noteMax(std::atomic<u64> &slot, u64 value)
{
    u64 cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
EngineMetrics::notePeak(u64 depth)
{
    noteMax(queue_peak, depth);
}

namespace {

/** Approximate quantile from the log2 histogram (bucket upper bound). */
double
quantileUs(const std::vector<u64> &buckets, u64 total, double q)
{
    if (total == 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    double seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        seen += static_cast<double>(buckets[b]);
        if (seen >= target)
            return latencyBucketUpperUs(b);
    }
    return latencyBucketUpperUs(buckets.size() - 1);
}

/** Summarize one live histogram into plain values. */
LatencySummary
summarize(const LatencyHistogram &h)
{
    LatencySummary s;
    s.buckets = h.buckets();
    for (u64 c : s.buckets)
        s.count += c;
    s.sum_us = h.sumUs();
    s.mean_us = s.count ? s.sum_us / static_cast<double>(s.count) : 0.0;
    s.p50_us = quantileUs(s.buckets, s.count, 0.50);
    s.p99_us = quantileUs(s.buckets, s.count, 0.99);
    return s;
}

} // namespace

MetricsSnapshot
EngineMetrics::snapshot(u64 pool_workers, u64 pool_executed, u64 pool_steals,
                        u64 mem_budget_bytes, u64 mem_reserved_bytes,
                        u64 mem_reserved_peak) const
{
    MetricsSnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.rejected = rejected.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.invalid = invalid.load(std::memory_order_relaxed);
    s.queue_depth = queue_depth.load(std::memory_order_relaxed);
    s.queue_peak = queue_peak.load(std::memory_order_relaxed);
    s.microbatches = microbatches.load(std::memory_order_relaxed);
    s.batched_pairs = batched_pairs.load(std::memory_order_relaxed);
    s.filter_batches = filter_batches.load(std::memory_order_relaxed);
    s.filter_batched_pairs =
        filter_batched_pairs.load(std::memory_order_relaxed);
    for (size_t l = 0; l < s.filter_batch_lanes.size(); ++l)
        s.filter_batch_lanes[l] =
            filter_batch_lanes[l].load(std::memory_order_relaxed);
    s.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
    s.cancelled = cancelled.load(std::memory_order_relaxed);
    s.downgraded = downgraded.load(std::memory_order_relaxed);
    s.resource_rejected = resource_rejected.load(std::memory_order_relaxed);
    s.mem_budget_bytes = mem_budget_bytes;
    s.mem_reserved_bytes = mem_reserved_bytes;
    s.mem_reserved_peak = mem_reserved_peak;
    s.arena_peak_bytes = arena_peak_bytes.load(std::memory_order_relaxed);
    s.pool_workers = pool_workers;
    s.pool_executed = pool_executed;
    s.pool_steals = pool_steals;
    for (unsigned t = 0; t < kTierCount; ++t) {
        s.tier_hits[t] = tier_hits[t].load(std::memory_order_relaxed);
        s.tier_peak_bytes[t] =
            tier_peak_bytes[t].load(std::memory_order_relaxed);
        MetricsSnapshot::TierStats &ts = s.tiers[t];
        ts.attempts = tier_attempts[t].load(std::memory_order_relaxed);
        ts.cells = tier_cells[t].load(std::memory_order_relaxed);
        ts.work_us = tier_work_us[t].load(std::memory_order_relaxed);
        ts.setup_us = tier_setup_us[t].load(std::memory_order_relaxed);
        ts.kernel_us = tier_kernel_us[t].load(std::memory_order_relaxed);
        // GCUPS = 1e9 cells/s; cells per microsecond is 1e6 cells/s.
        // Pure-kernel time only: setup (mask/grid building, scratch
        // carving) is reported separately instead of diluting this.
        ts.gcups = ts.kernel_us > 0.0
                       ? static_cast<double>(ts.cells) / ts.kernel_us / 1e3
                       : 0.0;
        ts.queue_wait = summarize(queue_wait[t]);
        ts.service = summarize(service[t]);
    }
    const LatencySummary total = summarize(latency);
    s.latency_buckets = total.buckets;
    s.latency_count = total.count;
    s.latency_sum_us = total.sum_us;
    s.latency_mean_us = total.mean_us;
    s.latency_p50_us = total.p50_us;
    s.latency_p99_us = total.p99_us;
    return s;
}

namespace {

/** Emit {"count":..,"sum":..,"mean":..,"p50":..,"p99":..} for a summary. */
void
jsonSummary(std::ostringstream &os, const LatencySummary &s)
{
    os << "{\"count\":" << s.count << ",\"sum\":" << s.sum_us
       << ",\"mean\":" << s.mean_us << ",\"p50\":" << s.p50_us
       << ",\"p99\":" << s.p99_us << "}";
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"submitted\":" << submitted;
    os << ",\"completed\":" << completed;
    os << ",\"failed\":" << failed;
    os << ",\"rejected\":" << rejected;
    os << ",\"shed\":" << shed;
    os << ",\"invalid\":" << invalid;
    os << ",\"queue_depth\":" << queue_depth;
    os << ",\"queue_peak\":" << queue_peak;
    os << ",\"microbatches\":" << microbatches;
    os << ",\"batched_pairs\":" << batched_pairs;
    os << ",\"filter_batches\":" << filter_batches;
    os << ",\"filter_batched_pairs\":" << filter_batched_pairs;
    os << ",\"filter_batch_lanes\":[";
    for (size_t l = 0; l < filter_batch_lanes.size(); ++l)
        os << (l ? "," : "") << filter_batch_lanes[l];
    os << "]";
    os << ",\"deadline_missed\":" << deadline_missed;
    os << ",\"cancelled\":" << cancelled;
    os << ",\"downgraded\":" << downgraded;
    os << ",\"resource_rejected\":" << resource_rejected;
    os << ",\"memory\":{";
    os << "\"budget\":" << mem_budget_bytes;
    os << ",\"reserved\":" << mem_reserved_bytes;
    os << ",\"reserved_peak\":" << mem_reserved_peak;
    os << ",\"arena_peak\":" << arena_peak_bytes;
    os << "}";
    os << ",\"pool\":{";
    os << "\"workers\":" << pool_workers;
    os << ",\"executed\":" << pool_executed;
    os << ",\"steals\":" << pool_steals;
    os << "}";
    os << ",\"tiers\":{";
    for (unsigned t = 0; t < kTierCount; ++t) {
        if (t)
            os << ",";
        const TierStats &ts = tiers[t];
        os << "\"" << tierName(static_cast<Tier>(t)) << "\":{"
           << "\"hits\":" << tier_hits[t]
           << ",\"peak_bytes\":" << tier_peak_bytes[t]
           << ",\"attempts\":" << ts.attempts
           << ",\"cells\":" << ts.cells
           << ",\"work_us\":" << ts.work_us
           << ",\"setup_us\":" << ts.setup_us
           << ",\"kernel_us\":" << ts.kernel_us
           << ",\"gcups\":" << ts.gcups
           << ",\"queue_wait_us\":";
        jsonSummary(os, ts.queue_wait);
        os << ",\"service_us\":";
        jsonSummary(os, ts.service);
        os << "}";
    }
    os << "}";
    os << ",\"latency_us\":{";
    os << "\"count\":" << latency_count;
    os << ",\"sum\":" << latency_sum_us;
    os << ",\"mean\":" << latency_mean_us;
    os << ",\"p50\":" << latency_p50_us;
    os << ",\"p99\":" << latency_p99_us;
    os << ",\"log2_buckets\":[";
    // Trim trailing empty buckets so the array stays readable.
    size_t last = latency_buckets.size();
    while (last > 0 && latency_buckets[last - 1] == 0)
        --last;
    for (size_t b = 0; b < last; ++b) {
        if (b)
            os << ",";
        os << latency_buckets[b];
    }
    os << "]}";
    os << "}";
    return os.str();
}

} // namespace gmx::engine
