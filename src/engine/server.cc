#include "engine/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>

#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/faults.hh"
#include "engine/trace.hh"

namespace gmx::engine {

MetricsServer::MetricsServer(const Engine &engine, ServerConfig config)
    : engine_(engine), config_(std::move(config))
{
    if (config_.handler_threads == 0)
        config_.handler_threads = 1;
    if (config_.max_connections == 0)
        config_.max_connections = 1;
}

MetricsServer::~MetricsServer()
{
    stop();
}

Status
MetricsServer::start()
{
    if (running_.load(std::memory_order_acquire))
        return Status::internal("MetricsServer already running");
    stopping_.store(false, std::memory_order_release);

    if (Status s = net::listenTcp(config_.host, config_.port, tcp_fd_,
                                  bound_port_);
        !s.ok())
        return s;

    if (!config_.unix_path.empty()) {
        if (Status s = net::listenUnix(config_.unix_path, unix_fd_);
            !s.ok()) {
            net::closeFd(tcp_fd_);
            return s;
        }
    }

    if (Status s = wake_.open(); !s.ok()) {
        net::closeFd(unix_fd_);
        net::closeFd(tcp_fd_);
        return s;
    }

    running_.store(true, std::memory_order_release);
    handlers_.reserve(config_.handler_threads);
    for (unsigned i = 0; i < config_.handler_threads; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
MetricsServer::stop()
{
    // One stopper wins and performs the whole teardown; a second call
    // after stop() has returned is a no-op (idempotent destructor path).
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    if (!running_.load(std::memory_order_acquire))
        return;
    wake_.notify();
    conn_cv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    // Handlers drain every already-accepted connection, then exit.
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    net::closeFd(tcp_fd_);
    net::closeFd(unix_fd_);
    wake_.close();
    if (!config_.unix_path.empty())
        (void)::unlink(config_.unix_path.c_str());
    bound_port_ = 0;
    running_.store(false, std::memory_order_release);
}

void
MetricsServer::acceptLoop()
{
    for (;;) {
        pollfd pfds[3];
        nfds_t n = 0;
        pfds[n++] = {wake_.readFd(), POLLIN, 0};
        pfds[n++] = {tcp_fd_, POLLIN, 0};
        if (unix_fd_ >= 0)
            pfds[n++] = {unix_fd_, POLLIN, 0};
        const int rc = ::poll(pfds, n, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (pfds[0].revents != 0)
            return; // stop() signalled through the self-pipe
        for (nfds_t i = 1; i < n; ++i) {
            if ((pfds[i].revents & POLLIN) == 0)
                continue;
            const int conn =
                ::accept4(pfds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (conn < 0)
                continue;
            net::setIoDeadlines(conn, config_.io_timeout);

            // Connection cap: reserve a slot or answer 503 right here —
            // the queue of accepted connections stays bounded by the
            // cap, not by how fast clients arrive. The QueueFull fault
            // point forces this path so chaos tests can storm it.
            bool over = GMX_INJECT_FAULT(faults::Point::QueueFull);
            unsigned cur = active_.load(std::memory_order_relaxed);
            while (!over) {
                if (cur >= config_.max_connections) {
                    over = true;
                    break;
                }
                if (active_.compare_exchange_weak(
                        cur, cur + 1, std::memory_order_acq_rel))
                    break;
            }
            if (over) {
                refused_.fetch_add(1, std::memory_order_relaxed);
                respond(conn, 503, "text/plain; charset=utf-8",
                        "connection limit reached\n");
                ::close(conn);
                continue;
            }
            {
                std::lock_guard<std::mutex> lk(mu_);
                conn_queue_.push_back(conn);
            }
            conn_cv_.notify_one();
        }
    }
}

void
MetricsServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(mu_);
            conn_cv_.wait(lk, [this] {
                return !conn_queue_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (conn_queue_.empty())
                return; // stopping, and every accepted connection served
            fd = conn_queue_.front();
            conn_queue_.pop_front();
        }
        handleConnection(fd);
        ::close(fd);
        active_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

int
MetricsServer::route(const net::HttpRequestLine &req, std::string &body,
                     std::string &content_type) const
{
    content_type = "text/plain; charset=utf-8";
    if (req.method != "GET") {
        body = "only GET is supported\n";
        return 405;
    }
    if (req.path == "/healthz") {
        body = "ok\n";
        return 200;
    }
    if (req.path == "/metrics") {
        if (GMX_INJECT_FAULT(faults::Point::TaskError)) {
            body = "injected scrape failure\n";
            return 500;
        }
        content_type =
            "application/openmetrics-text; version=1.0.0; charset=utf-8";
        body = renderOpenMetrics(engine_.metrics());
        if (config_.extra_metrics) {
            // Splice the registered extra families in before the
            // mandatory trailer so the exposition stays one document.
            constexpr const char kEof[] = "# EOF\n";
            if (body.size() >= sizeof kEof - 1)
                body.resize(body.size() - (sizeof kEof - 1));
            body += config_.extra_metrics();
            body += kEof;
        }
        return 200;
    }
    if (req.path == "/vars") {
        content_type = "application/json; charset=utf-8";
        if (config_.extra_vars)
            body = "{\"engine\":" + engine_.metrics().toJson() +
                   ",\"serve\":" + config_.extra_vars() + "}";
        else
            body = engine_.metrics().toJson();
        return 200;
    }
    if (req.path == "/trace") {
        content_type = "application/json; charset=utf-8";
        if (req.query.empty()) {
            // Whole observability dump: the span ring plus the rolling
            // slow-request exemplars, one object.
            body = "{\"ring\":" + engine_.trace().toJson() +
                   ",\"slow\":" + engine_.slowRequests().toJson() + "}";
            return 200;
        }
        if (req.query.compare(0, 3, "id=") != 0 || req.query.size() == 3) {
            content_type = "text/plain; charset=utf-8";
            body = "expected /trace?id=<request id>\n";
            return 400;
        }
        u64 id = 0;
        for (size_t i = 3; i < req.query.size(); ++i) {
            const char c = req.query[i];
            if (c < '0' || c > '9') {
                content_type = "text/plain; charset=utf-8";
                body = "expected /trace?id=<request id>\n";
                return 400;
            }
            id = id * 10 + static_cast<u64>(c - '0');
        }
        const bool found = !engine_.trace().spansFor(id).empty();
        body = engine_.trace().jsonFor(id);
        return found ? 200 : 404;
    }
    body = "unknown path (try /metrics /vars /trace /healthz)\n";
    return 404;
}

void
MetricsServer::respond(int fd, int status, const std::string &content_type,
                       const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << " " << net::httpReasonPhrase(status)
       << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n";
    if (status == 405)
        os << "Allow: GET\r\n";
    os << "\r\n" << body;
    const std::string out = os.str();
    (void)net::sendAll(fd, out.data(), out.size());
    served_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsServer::handleConnection(int fd)
{
    // WorkerStall: a chaos plan can sleep a handler here, turning it
    // into the slow server the connection cap and timeouts exist for.
    GMX_FAULT_STALL();

    std::string raw;
    int error_status = 0;
    if (!net::readHttpRequest(fd, config_.max_request_bytes, raw,
                              error_status)) {
        if (error_status != 0)
            respond(fd, error_status, "text/plain; charset=utf-8",
                    error_status == 431 ? "request too large\n"
                                        : "request timed out\n");
        return;
    }
    net::HttpRequestLine req;
    if (!net::parseHttpRequestLine(raw, req)) {
        respond(fd, 400, "text/plain; charset=utf-8",
                "malformed request line\n");
        return;
    }
    std::string body, content_type;
    const int status = route(req, body, content_type);
    respond(fd, status, content_type, body);
}

} // namespace gmx::engine
