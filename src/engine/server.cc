#include "engine/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/faults.hh"
#include "engine/trace.hh"

namespace gmx::engine {

namespace {

/** errno-carrying Status for a failed socket call. */
Status
sockError(const char *what)
{
    return Status::internal(std::string(what) + ": " +
                            std::strerror(errno));
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
    }
    return "Unknown";
}

/** Apply the per-connection read/write deadlines. */
void
setDeadlines(int fd, std::chrono::milliseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/**
 * Write the whole buffer, tolerating partial sends and EINTR. Gives up
 * on any other error (including an SO_SNDTIMEO expiry): the client is
 * slow or gone, and a scrape server never blocks on one client forever.
 * MSG_NOSIGNAL: a vanished client must produce EPIPE, not SIGPIPE.
 */
void
sendAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return;
    }
}

} // namespace

MetricsServer::MetricsServer(const Engine &engine, ServerConfig config)
    : engine_(engine), config_(std::move(config))
{
    if (config_.handler_threads == 0)
        config_.handler_threads = 1;
    if (config_.max_connections == 0)
        config_.max_connections = 1;
}

MetricsServer::~MetricsServer()
{
    stop();
}

void
MetricsServer::closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Status
MetricsServer::start()
{
    if (running_.load(std::memory_order_acquire))
        return Status::internal("MetricsServer already running");
    stopping_.store(false, std::memory_order_release);

    // TCP listener.
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_fd_ < 0)
        return sockError("socket(AF_INET)");
    const int one = 1;
    (void)::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
        closeFd(tcp_fd_);
        return Status::invalidInput("MetricsServer: bad host \"" +
                                    config_.host + "\"");
    }
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        const Status s = sockError("bind");
        closeFd(tcp_fd_);
        return s;
    }
    if (::listen(tcp_fd_, 64) < 0) {
        const Status s = sockError("listen");
        closeFd(tcp_fd_);
        return s;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        bound_port_ = ntohs(addr.sin_port);

    // Optional unix-domain listener.
    if (!config_.unix_path.empty()) {
        sockaddr_un uaddr{};
        if (config_.unix_path.size() >= sizeof uaddr.sun_path) {
            closeFd(tcp_fd_);
            return Status::invalidInput(
                "MetricsServer: unix_path too long");
        }
        unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (unix_fd_ < 0) {
            const Status s = sockError("socket(AF_UNIX)");
            closeFd(tcp_fd_);
            return s;
        }
        uaddr.sun_family = AF_UNIX;
        std::strncpy(uaddr.sun_path, config_.unix_path.c_str(),
                     sizeof uaddr.sun_path - 1);
        (void)::unlink(config_.unix_path.c_str());
        if (::bind(unix_fd_, reinterpret_cast<sockaddr *>(&uaddr),
                   sizeof uaddr) < 0 ||
            ::listen(unix_fd_, 16) < 0) {
            const Status s = sockError("bind/listen(unix)");
            closeFd(unix_fd_);
            closeFd(tcp_fd_);
            return s;
        }
    }

    // Self-pipe: stop() writes one byte to unblock the accept poll().
    if (::pipe(wake_fd_) < 0) {
        const Status s = sockError("pipe");
        closeFd(unix_fd_);
        closeFd(tcp_fd_);
        return s;
    }

    running_.store(true, std::memory_order_release);
    handlers_.reserve(config_.handler_threads);
    for (unsigned i = 0; i < config_.handler_threads; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
MetricsServer::stop()
{
    // One stopper wins and performs the whole teardown; a second call
    // after stop() has returned is a no-op (idempotent destructor path).
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    if (!running_.load(std::memory_order_acquire))
        return;
    if (wake_fd_[1] >= 0) {
        const char byte = 1;
        (void)!::write(wake_fd_[1], &byte, 1);
    }
    conn_cv_.notify_all();
    if (acceptor_.joinable())
        acceptor_.join();
    // Handlers drain every already-accepted connection, then exit.
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    closeFd(tcp_fd_);
    closeFd(unix_fd_);
    closeFd(wake_fd_[0]);
    closeFd(wake_fd_[1]);
    if (!config_.unix_path.empty())
        (void)::unlink(config_.unix_path.c_str());
    bound_port_ = 0;
    running_.store(false, std::memory_order_release);
}

void
MetricsServer::acceptLoop()
{
    for (;;) {
        pollfd pfds[3];
        nfds_t n = 0;
        pfds[n++] = {wake_fd_[0], POLLIN, 0};
        pfds[n++] = {tcp_fd_, POLLIN, 0};
        if (unix_fd_ >= 0)
            pfds[n++] = {unix_fd_, POLLIN, 0};
        const int rc = ::poll(pfds, n, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (pfds[0].revents != 0)
            return; // stop() signalled through the self-pipe
        for (nfds_t i = 1; i < n; ++i) {
            if ((pfds[i].revents & POLLIN) == 0)
                continue;
            const int conn =
                ::accept4(pfds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (conn < 0)
                continue;
            setDeadlines(conn, config_.io_timeout);

            // Connection cap: reserve a slot or answer 503 right here —
            // the queue of accepted connections stays bounded by the
            // cap, not by how fast clients arrive. The QueueFull fault
            // point forces this path so chaos tests can storm it.
            bool over = GMX_INJECT_FAULT(faults::Point::QueueFull);
            unsigned cur = active_.load(std::memory_order_relaxed);
            while (!over) {
                if (cur >= config_.max_connections) {
                    over = true;
                    break;
                }
                if (active_.compare_exchange_weak(
                        cur, cur + 1, std::memory_order_acq_rel))
                    break;
            }
            if (over) {
                refused_.fetch_add(1, std::memory_order_relaxed);
                respond(conn, 503, "text/plain; charset=utf-8",
                        "connection limit reached\n");
                ::close(conn);
                continue;
            }
            {
                std::lock_guard<std::mutex> lk(mu_);
                conn_queue_.push_back(conn);
            }
            conn_cv_.notify_one();
        }
    }
}

void
MetricsServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(mu_);
            conn_cv_.wait(lk, [this] {
                return !conn_queue_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (conn_queue_.empty())
                return; // stopping, and every accepted connection served
            fd = conn_queue_.front();
            conn_queue_.pop_front();
        }
        handleConnection(fd);
        ::close(fd);
        active_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

bool
MetricsServer::readRequest(int fd, std::string &raw, int &error_status)
{
    char buf[2048];
    while (raw.find("\r\n\r\n") == std::string::npos) {
        if (raw.size() > config_.max_request_bytes) {
            error_status = 431;
            return false;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            raw.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            error_status = 408; // SO_RCVTIMEO expired: slow client
            return false;
        }
        error_status = 0; // peer closed (or hard error): drop silently
        return false;
    }
    if (raw.size() > config_.max_request_bytes) {
        error_status = 431;
        return false;
    }
    return true;
}

bool
MetricsServer::parseRequestLine(const std::string &raw, RequestLine &out)
{
    const size_t eol = raw.find("\r\n");
    if (eol == std::string::npos)
        return false;
    const std::string line = raw.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
        return false;
    if (line.compare(sp2 + 1, 5, "HTTP/") != 0)
        return false;
    out.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (target.empty() || target[0] != '/')
        return false;
    const size_t q = target.find('?');
    out.path = target.substr(0, q);
    out.query = q == std::string::npos ? "" : target.substr(q + 1);
    return true;
}

int
MetricsServer::route(const RequestLine &req, std::string &body,
                     std::string &content_type) const
{
    content_type = "text/plain; charset=utf-8";
    if (req.method != "GET") {
        body = "only GET is supported\n";
        return 405;
    }
    if (req.path == "/healthz") {
        body = "ok\n";
        return 200;
    }
    if (req.path == "/metrics") {
        if (GMX_INJECT_FAULT(faults::Point::TaskError)) {
            body = "injected scrape failure\n";
            return 500;
        }
        content_type =
            "application/openmetrics-text; version=1.0.0; charset=utf-8";
        body = renderOpenMetrics(engine_.metrics());
        return 200;
    }
    if (req.path == "/vars") {
        content_type = "application/json; charset=utf-8";
        body = engine_.metrics().toJson();
        return 200;
    }
    if (req.path == "/trace") {
        content_type = "application/json; charset=utf-8";
        if (req.query.empty()) {
            // Whole observability dump: the span ring plus the rolling
            // slow-request exemplars, one object.
            body = "{\"ring\":" + engine_.trace().toJson() +
                   ",\"slow\":" + engine_.slowRequests().toJson() + "}";
            return 200;
        }
        if (req.query.compare(0, 3, "id=") != 0 || req.query.size() == 3) {
            content_type = "text/plain; charset=utf-8";
            body = "expected /trace?id=<request id>\n";
            return 400;
        }
        u64 id = 0;
        for (size_t i = 3; i < req.query.size(); ++i) {
            const char c = req.query[i];
            if (c < '0' || c > '9') {
                content_type = "text/plain; charset=utf-8";
                body = "expected /trace?id=<request id>\n";
                return 400;
            }
            id = id * 10 + static_cast<u64>(c - '0');
        }
        const bool found = !engine_.trace().spansFor(id).empty();
        body = engine_.trace().jsonFor(id);
        return found ? 200 : 404;
    }
    body = "unknown path (try /metrics /vars /trace /healthz)\n";
    return 404;
}

void
MetricsServer::respond(int fd, int status, const std::string &content_type,
                       const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << " " << reasonPhrase(status) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n";
    if (status == 405)
        os << "Allow: GET\r\n";
    os << "\r\n" << body;
    const std::string out = os.str();
    sendAll(fd, out.data(), out.size());
    served_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsServer::handleConnection(int fd)
{
    // WorkerStall: a chaos plan can sleep a handler here, turning it
    // into the slow server the connection cap and timeouts exist for.
    GMX_FAULT_STALL();

    std::string raw;
    int error_status = 0;
    if (!readRequest(fd, raw, error_status)) {
        if (error_status != 0)
            respond(fd, error_status, "text/plain; charset=utf-8",
                    error_status == 431 ? "request too large\n"
                                        : "request timed out\n");
        return;
    }
    RequestLine req;
    if (!parseRequestLine(raw, req)) {
        respond(fd, 400, "text/plain; charset=utf-8",
                "malformed request line\n");
        return;
    }
    std::string body, content_type;
    const int status = route(req, body, content_type);
    respond(fd, status, content_type, body);
}

} // namespace gmx::engine
