#include "engine/faults.hh"

#include <atomic>
#include <thread>

namespace gmx::engine::faults {

namespace {

/** Global harness state; tests arm/disarm around each chaos scenario. */
struct State
{
    std::atomic<bool> armed{false};
    Plan plan; //!< written only while disarmed
    std::array<std::atomic<u64>, kPointCount> calls{};
    std::array<std::atomic<u64>, kPointCount> injected{};
};

State g_state;

/** splitmix64: the standard 64-bit finalizer-style mixer. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
pointName(Point p)
{
    switch (p) {
      case Point::AllocFail:
        return "alloc_fail";
      case Point::WorkerStall:
        return "worker_stall";
      case Point::QueueFull:
        return "queue_full";
      case Point::TaskError:
        return "task_error";
      case Point::AcceptFail:
        return "accept_fail";
      case Point::FrameTooLarge:
        return "frame_too_large";
      case Point::SlowClient:
        return "slow_client";
      case Point::ShardWedge:
        return "shard_wedge";
      case Point::RetryStorm:
        return "retry_storm";
      case Point::ClockSkew:
        return "clock_skew";
    }
    return "?";
}

void
arm(const Plan &plan)
{
    disarm();
    g_state.plan = plan;
    for (unsigned i = 0; i < kPointCount; ++i) {
        g_state.calls[i].store(0, std::memory_order_relaxed);
        g_state.injected[i].store(0, std::memory_order_relaxed);
    }
    g_state.armed.store(true, std::memory_order_release);
}

void
disarm()
{
    g_state.armed.store(false, std::memory_order_release);
}

bool
armed()
{
    return g_state.armed.load(std::memory_order_acquire);
}

bool
shouldInject(Point p)
{
    if (!g_state.armed.load(std::memory_order_acquire))
        return false;
    const unsigned idx = static_cast<unsigned>(p);
    const double prob = g_state.plan.probability[idx];
    if (prob <= 0.0)
        return false;
    const u64 n = g_state.calls[idx].fetch_add(1, std::memory_order_relaxed);
    // Decision n at point p is a pure function of (seed, p, n).
    const u64 h =
        mix64(g_state.plan.seed ^ mix64((u64{idx} << 32) ^ n));
    const bool inject =
        prob >= 1.0 ||
        static_cast<double>(h) < prob * static_cast<double>(~u64{0});
    if (inject)
        g_state.injected[idx].fetch_add(1, std::memory_order_relaxed);
    return inject;
}

void
maybeStall()
{
    maybeStallAt(Point::WorkerStall);
}

void
maybeStallAt(Point p)
{
    if (shouldInject(p))
        std::this_thread::sleep_for(p == Point::ShardWedge
                                        ? g_state.plan.wedge_duration
                                        : g_state.plan.stall_duration);
}

std::chrono::microseconds
maybeSkew()
{
    if (shouldInject(Point::ClockSkew))
        return g_state.plan.skew;
    return std::chrono::microseconds{0};
}

u64
callCount(Point p)
{
    return g_state.calls[static_cast<unsigned>(p)].load(
        std::memory_order_relaxed);
}

u64
injectedCount(Point p)
{
    return g_state.injected[static_cast<unsigned>(p)].load(
        std::memory_order_relaxed);
}

} // namespace gmx::engine::faults
