#include "isa_sim/cpu.hh"

#include <cstring>

#include "common/logging.hh"

namespace gmx::isa_sim {

Cpu::Cpu(size_t mem_bytes, unsigned tile, const CpuConfig &cfg)
    : memory_(mem_bytes, 0), gmx_(tile), cfg_(cfg)
{
}

void
Cpu::loadProgram(Program program)
{
    program_ = std::move(program);
    pc_ = 0;
    halted_ = false;
    stats_ = CpuStats();
}

u64
Cpu::reg(unsigned index) const
{
    GMX_ASSERT(index < 32);
    return index == 0 ? 0 : regs_[index];
}

void
Cpu::setReg(unsigned index, u64 value)
{
    GMX_ASSERT(index < 32);
    if (index != 0)
        regs_[index] = value;
}

u64
Cpu::loadWord(u64 addr) const
{
    if (addr + 8 > memory_.size() || addr % 8 != 0)
        GMX_FATAL("ld fault at 0x%llx",
                  static_cast<unsigned long long>(addr));
    u64 value;
    std::memcpy(&value, memory_.data() + addr, 8);
    return value;
}

void
Cpu::storeWord(u64 addr, u64 value)
{
    if (addr + 8 > memory_.size() || addr % 8 != 0)
        GMX_FATAL("sd fault at 0x%llx",
                  static_cast<unsigned long long>(addr));
    std::memcpy(memory_.data() + addr, &value, 8);
}

u8
Cpu::loadByte(u64 addr) const
{
    if (addr >= memory_.size())
        GMX_FATAL("lbu fault at 0x%llx",
                  static_cast<unsigned long long>(addr));
    return memory_[addr];
}

void
Cpu::storeByte(u64 addr, u8 value)
{
    if (addr >= memory_.size())
        GMX_FATAL("sb fault at 0x%llx",
                  static_cast<unsigned long long>(addr));
    memory_[addr] = value;
}

void
Cpu::writeBlock(u64 addr, const void *data, size_t size)
{
    if (addr + size > memory_.size())
        GMX_FATAL("writeBlock beyond memory");
    std::memcpy(memory_.data() + addr, data, size);
}

bool
Cpu::run()
{
    while (!halted_) {
        if (stats_.instructions >= cfg_.max_instructions)
            return false;
        step();
    }
    return true;
}

void
Cpu::step()
{
    if (pc_ >= program_.code.size())
        GMX_FATAL("PC 0x%llx outside the program",
                  static_cast<unsigned long long>(pc_));
    const Instruction &ins = program_.code[pc_];
    ++stats_.instructions;
    ++stats_.cycles;
    u64 next_pc = pc_ + 1;

    auto s1 = [&] { return reg(ins.rs1); };
    auto s2 = [&] { return reg(ins.rs2); };

    switch (ins.op) {
      case Opcode::Add:
        setReg(ins.rd, s1() + s2());
        break;
      case Opcode::Addi:
        setReg(ins.rd, s1() + static_cast<u64>(ins.imm));
        break;
      case Opcode::Sub:
        setReg(ins.rd, s1() - s2());
        break;
      case Opcode::And:
        setReg(ins.rd, s1() & s2());
        break;
      case Opcode::Andi:
        setReg(ins.rd, s1() & static_cast<u64>(ins.imm));
        break;
      case Opcode::Or:
        setReg(ins.rd, s1() | s2());
        break;
      case Opcode::Ori:
        setReg(ins.rd, s1() | static_cast<u64>(ins.imm));
        break;
      case Opcode::Xor:
        setReg(ins.rd, s1() ^ s2());
        break;
      case Opcode::Xori:
        setReg(ins.rd, s1() ^ static_cast<u64>(ins.imm));
        break;
      case Opcode::Slli:
        setReg(ins.rd, s1() << (ins.imm & 63));
        break;
      case Opcode::Srli:
        setReg(ins.rd, s1() >> (ins.imm & 63));
        break;
      case Opcode::Slt:
        setReg(ins.rd, static_cast<i64>(s1()) < static_cast<i64>(s2()));
        break;
      case Opcode::Cpop:
        setReg(ins.rd, static_cast<u64>(__builtin_popcountll(s1())));
        break;
      case Opcode::Ld:
        setReg(ins.rd, loadWord(s1() + static_cast<u64>(ins.imm)));
        ++stats_.loads;
        stats_.cycles += cfg_.load_use_penalty;
        break;
      case Opcode::Lbu:
        setReg(ins.rd, loadByte(s1() + static_cast<u64>(ins.imm)));
        ++stats_.loads;
        stats_.cycles += cfg_.load_use_penalty;
        break;
      case Opcode::Sd:
        storeWord(s1() + static_cast<u64>(ins.imm), s2());
        ++stats_.stores;
        break;
      case Opcode::Sb:
        storeByte(s1() + static_cast<u64>(ins.imm),
                  static_cast<u8>(s2()));
        ++stats_.stores;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        ++stats_.branches;
        bool taken = false;
        switch (ins.op) {
          case Opcode::Beq: taken = s1() == s2(); break;
          case Opcode::Bne: taken = s1() != s2(); break;
          case Opcode::Blt:
            taken = static_cast<i64>(s1()) < static_cast<i64>(s2());
            break;
          default:
            taken = static_cast<i64>(s1()) >= static_cast<i64>(s2());
            break;
        }
        if (taken) {
            next_pc = static_cast<u64>(ins.imm);
            stats_.cycles += cfg_.branch_taken_penalty;
        }
        break;
      }
      case Opcode::Jal:
        setReg(ins.rd, pc_ + 1);
        next_pc = static_cast<u64>(ins.imm);
        stats_.cycles += cfg_.branch_taken_penalty;
        break;
      case Opcode::Jalr:
        setReg(ins.rd, pc_ + 1);
        next_pc = s1();
        stats_.cycles += cfg_.branch_taken_penalty;
        break;
      case Opcode::Csrw:
        ++stats_.csr_ops;
        switch (ins.csr) {
          case kCsrGmxPattern:
            gmx_.csrwPatternPacked(s1());
            break;
          case kCsrGmxText:
            gmx_.csrwTextPacked(s1());
            break;
          case kCsrGmxPos:
            gmx_.csrwPosPacked(s1());
            break;
          default:
            GMX_FATAL("line %u: csrw to read-only CSR 0x%x", ins.line,
                      ins.csr);
        }
        break;
      case Opcode::Csrr:
        ++stats_.csr_ops;
        switch (ins.csr) {
          case kCsrGmxPos:
            setReg(ins.rd, gmx_.csrrPosPacked());
            break;
          case kCsrGmxLo:
            setReg(ins.rd, gmx_.csrrLo());
            break;
          case kCsrGmxHi:
            setReg(ins.rd, gmx_.csrrHi());
            break;
          default:
            GMX_FATAL("line %u: csrr from write-only CSR 0x%x", ins.line,
                      ins.csr);
        }
        break;
      case Opcode::GmxV:
        ++stats_.gmx_ops;
        stats_.cycles += cfg_.gmx_ac_latency - 1;
        setReg(ins.rd, gmx_.gmxVPacked(s1(), s2()));
        break;
      case Opcode::GmxH:
        ++stats_.gmx_ops;
        stats_.cycles += cfg_.gmx_ac_latency - 1;
        setReg(ins.rd, gmx_.gmxHPacked(s1(), s2()));
        break;
      case Opcode::GmxTb:
        ++stats_.gmx_ops;
        stats_.cycles += cfg_.gmx_tb_latency - 1;
        gmx_.gmxTb(core::unpackDelta(s1(), gmx_.tileSize()),
                   core::unpackDelta(s2(), gmx_.tileSize()));
        break;
      case Opcode::Halt:
        halted_ = true;
        break;
    }
    pc_ = next_pc;
}

} // namespace gmx::isa_sim
