#include "isa_sim/programs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gmx::isa_sim {

std::string
fullGmxDistanceSource()
{
    return R"(
# Full(GMX) edit distance — paper Algorithm 1, tile-column-major.
# a0=pattern base, a1=gr, a2=text base, a3=gc, a4=right[] scratch.
# s0 = all-lanes-(+1) delta constant (0b01 per 2-bit lane)
# s1 = running distance, t4 = dh chain, right[ti] = dv chain.
        li   s0, 0x5555555555555555
        slli t2, a1, 5            # n = gr * 32
        mv   s1, t2               # dist = D[n][0] = n
        li   t1, 0                # ti = 0: right[] = boundary (+1) deltas
        mv   t2, a4
init_loop:
        bge  t1, a1, init_done
        sd   s0, 0(t2)
        addi t2, t2, 8
        addi t1, t1, 1
        j    init_loop
init_done:
        li   t0, 0                # tj = 0
outer:
        bge  t0, a3, done
        slli t2, t0, 3            # csrw gmx_text, text[tj]
        add  t2, a2, t2
        ld   t3, 0(t2)
        csrw gmx_text, t3
        mv   t4, s0               # dh = top boundary (+1) deltas
        li   t1, 0                # ti = 0
inner:
        bge  t1, a1, inner_done
        slli t2, t1, 3            # csrw gmx_pattern, pattern[ti]
        add  t2, a0, t2
        ld   t3, 0(t2)
        csrw gmx_pattern, t3
        slli t2, t1, 3            # t5 = dv_in = right[ti]
        add  t2, a4, t2
        ld   t5, 0(t2)
        gmx.v t6, t5, t4          # right-edge deltas of this tile
        gmx.h t4, t5, t4          # bottom-edge deltas -> dh chain
        sd   t6, 0(t2)            # right[ti] = dv_out
        addi t1, t1, 1
        j    inner
inner_done:
        and  t2, t4, s0           # dist += (+1 lanes) - (-1 lanes)
        cpop t2, t2
        add  s1, s1, t2
        slli t3, s0, 1            # -1 lanes live at the odd bits
        and  t2, t4, t3
        cpop t2, t2
        sub  s1, s1, t2
        addi t0, t0, 1
        j    outer
done:
        mv   a0, s1
        halt
)";
}

std::string
tileTracebackSource()
{
    return R"(
# One gmx.tb step: CSR setup, traceback, CSR readback.
        csrw gmx_pattern, a0
        csrw gmx_text, a1
        csrw gmx_pos, a4
        gmx.tb a2, a3
        csrr a0, gmx_lo
        csrr a1, gmx_hi
        csrr a2, gmx_pos
        halt
)";
}

std::string
fullGmxAlignSource()
{
    return R"(
# Full(GMX) alignment — paper Algorithms 1 + 2.
# a0=pattern, a1=gr, a2=text, a3=gc, a4=M (16B/tile), a5=tb out (24B/step)
# s0 = (+1)-lanes constant, s1 = distance, s3 = M row stride (gc*16).
        li   s0, 0x5555555555555555
        slli s3, a3, 4
        slli t2, a1, 5
        mv   s1, t2               # dist = n
# ---- Phase 1: compute the edge matrix M column by column ----
        li   t0, 0                # tj
p1_outer:
        bge  t0, a3, p1_done
        slli t2, t0, 3
        add  t2, a2, t2
        ld   t3, 0(t2)
        csrw gmx_text, t3
        mv   t4, s0               # dh chain = top boundary
        li   t1, 0                # ti
        slli s2, t0, 4
        add  s2, a4, s2           # &M[0][tj]
p1_inner:
        bge  t1, a1, p1_col_done
        slli t2, t1, 3
        add  t2, a0, t2
        ld   t3, 0(t2)
        csrw gmx_pattern, t3
        mv   t5, s0               # dv_in = left boundary...
        beq  t0, zero, p1_have_dv
        ld   t5, -16(s2)          # ...or M[ti][tj-1].v
p1_have_dv:
        gmx.v t6, t5, t4
        gmx.h t4, t5, t4
        sd   t6, 0(s2)            # M[ti][tj].v
        sd   t4, 8(s2)            # M[ti][tj].h
        add  s2, s2, s3
        addi t1, t1, 1
        j    p1_inner
p1_col_done:
        and  t2, t4, s0           # distance accumulation (bottom row)
        cpop t2, t2
        add  s1, s1, t2
        slli t3, s0, 1
        and  t2, t4, t3
        cpop t2, t2
        sub  s1, s1, t2
        addi t0, t0, 1
        j    p1_outer
p1_done:
# ---- Phase 2: tile-wise traceback from the bottom-right corner ----
        addi s4, a1, -1           # ti
        addi s5, a3, -1           # tj
        li   t2, 0x80000000       # one-hot: bottom row, column T-1
        csrw gmx_pos, t2
        mv   s6, a5               # output cursor
        li   s7, 0                # step count
        # s8 = &M[gr-1][gc-1] (built incrementally; no mul needed)
        mv   s8, a4
        li   t1, 0
p2_ptr_loop:
        bge  t1, s4, p2_ptr_done
        add  s8, s8, s3
        addi t1, t1, 1
        j    p2_ptr_loop
p2_ptr_done:
        slli t2, s5, 4
        add  s8, s8, t2
p2_loop:
        blt  s4, zero, p2_done
        blt  s5, zero, p2_done
        slli t2, s4, 3            # csrw gmx_pattern, pattern[s4]
        add  t2, a0, t2
        ld   t3, 0(t2)
        csrw gmx_pattern, t3
        slli t2, s5, 3            # csrw gmx_text, text[s5]
        add  t2, a2, t2
        ld   t3, 0(t2)
        csrw gmx_text, t3
        mv   t5, s0               # dv_in
        beq  s5, zero, p2_have_dv
        ld   t5, -16(s8)
p2_have_dv:
        mv   t4, s0               # dh_in
        beq  s4, zero, p2_have_dh
        sub  t2, s8, s3
        ld   t4, 8(t2)
p2_have_dh:
        gmx.tb t5, t4
        csrr t2, gmx_lo
        sd   t2, 0(s6)
        csrr t2, gmx_hi
        sd   t2, 8(s6)
        csrr t3, gmx_pos
        sd   t3, 16(s6)
        addi s6, s6, 24
        addi s7, s7, 1
        srli t2, t2, 62           # next-tile field of gmx_hi
        beq  t2, zero, p2_diag
        li   t3, 1
        beq  t2, t3, p2_up
        addi s5, s5, -1           # Left
        addi s8, s8, -16
        j    p2_loop
p2_up:
        addi s4, s4, -1
        sub  s8, s8, s3
        j    p2_loop
p2_diag:
        addi s4, s4, -1
        addi s5, s5, -1
        sub  s8, s8, s3
        addi s8, s8, -16
        j    p2_loop
p2_done:
        mv   a0, s1
        mv   a1, s7
        halt
)";
}

std::vector<u64>
packSequenceWords(const seq::Sequence &s)
{
    std::vector<u64> words((s.size() + 31) / 32, 0);
    for (size_t i = 0; i < s.size(); ++i)
        words[i / 32] |= static_cast<u64>(s.code(i) & 3) << (2 * (i % 32));
    return words;
}

ProgramRunResult
runFullGmxDistanceProgram(const seq::Sequence &pattern,
                          const seq::Sequence &text)
{
    if (pattern.empty() || text.empty() || pattern.size() % 32 != 0 ||
        text.size() % 32 != 0) {
        GMX_FATAL("distance program: lengths (%zu, %zu) must be positive "
                  "multiples of 32",
                  pattern.size(), text.size());
    }
    const auto p_words = packSequenceWords(pattern);
    const auto t_words = packSequenceWords(text);

    // Memory map: pattern at 0x1000, text after it, scratch after that.
    const u64 p_base = 0x1000;
    const u64 t_base = p_base + p_words.size() * 8;
    const u64 scratch = t_base + t_words.size() * 8;
    const size_t mem_size =
        static_cast<size_t>(scratch + p_words.size() * 8 + 0x1000);

    Cpu cpu(mem_size, 32);
    cpu.loadProgram(assemble(fullGmxDistanceSource()));
    cpu.writeBlock(p_base, p_words.data(), p_words.size() * 8);
    cpu.writeBlock(t_base, t_words.data(), t_words.size() * 8);
    cpu.setReg(10, p_base);                // a0
    cpu.setReg(11, p_words.size());        // a1 = gr
    cpu.setReg(12, t_base);                // a2
    cpu.setReg(13, t_words.size());        // a3 = gc
    cpu.setReg(14, scratch);               // a4

    if (!cpu.run())
        GMX_FATAL("distance program did not halt");

    ProgramRunResult res;
    res.distance = static_cast<i64>(cpu.reg(10));
    res.stats = cpu.stats();
    return res;
}

ProgramAlignResult
runFullGmxAlignProgram(const seq::Sequence &pattern,
                       const seq::Sequence &text)
{
    if (pattern.empty() || text.empty() || pattern.size() % 32 != 0 ||
        text.size() % 32 != 0) {
        GMX_FATAL("align program: lengths (%zu, %zu) must be positive "
                  "multiples of 32",
                  pattern.size(), text.size());
    }
    const auto p_words = packSequenceWords(pattern);
    const auto t_words = packSequenceWords(text);
    const size_t gr = p_words.size();
    const size_t gc = t_words.size();

    const u64 p_base = 0x1000;
    const u64 t_base = p_base + gr * 8;
    const u64 m_base = (t_base + gc * 8 + 63) & ~u64{63};
    const u64 tb_base = m_base + gr * gc * 16;
    const size_t max_steps = gr + gc + 2;
    const size_t mem_size =
        static_cast<size_t>(tb_base + max_steps * 24 + 0x1000);

    Cpu cpu(mem_size, 32);
    cpu.loadProgram(assemble(fullGmxAlignSource()));
    cpu.writeBlock(p_base, p_words.data(), gr * 8);
    cpu.writeBlock(t_base, t_words.data(), gc * 8);
    cpu.setReg(10, p_base);
    cpu.setReg(11, gr);
    cpu.setReg(12, t_base);
    cpu.setReg(13, gc);
    cpu.setReg(14, m_base);
    cpu.setReg(15, tb_base);
    if (!cpu.run())
        GMX_FATAL("align program did not halt");

    ProgramAlignResult out;
    out.stats = cpu.stats();
    out.tb_steps = cpu.reg(11);
    out.result.distance = static_cast<i64>(cpu.reg(10));
    out.result.has_cigar = true;
    GMX_ASSERT(out.tb_steps <= max_steps, "traceback overran its buffer");

    // Decode the dumped (gmx_lo, gmx_hi, gmx_pos) records exactly like
    // the software driver: per-op walk with in-tile coordinates, stopping
    // at matrix boundaries, then boundary completion.
    std::vector<align::Op> ops;
    size_t ai = pattern.size(), aj = text.size();
    int r = 31, c = 31; // entry cell of the first tile (one-hot bit 31)
    for (u64 step = 0; step < out.tb_steps && ai > 0 && aj > 0; ++step) {
        const u64 lo = cpu.loadWord(tb_base + step * 24);
        const u64 hi = cpu.loadWord(tb_base + step * 24 + 8);
        size_t k = 0;
        while (r >= 0 && c >= 0 && ai > 0 && aj > 0) {
            const u64 code =
                k < 32 ? (lo >> (2 * k)) & 3 : (hi >> (2 * (k - 32))) & 3;
            ++k;
            const auto op = static_cast<align::Op>(code);
            ops.push_back(op);
            if (op != align::Op::Deletion) {
                --r;
                --ai;
            }
            if (op != align::Op::Insertion) {
                --c;
                --aj;
            }
        }
        // Entry cell of the next tile from the exit classification.
        if (r < 0 && c < 0) {
            r = 31;
            c = 31;
        } else if (r < 0) {
            r = 31;
        } else {
            c = 31;
        }
    }
    for (; aj > 0; --aj)
        ops.push_back(align::Op::Deletion);
    for (; ai > 0; --ai)
        ops.push_back(align::Op::Insertion);
    std::reverse(ops.begin(), ops.end());
    out.result.cigar = align::Cigar(std::move(ops));
    return out;
}

} // namespace gmx::isa_sim
