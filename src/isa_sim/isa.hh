/**
 * @file
 * The instruction set of the RISC-V-style functional simulator.
 *
 * The paper integrates GMX into a RV64 core via standard R-type custom
 * opcodes and csrr/csrw (§5). This simulator executes a small RV64-like
 * subset — enough to write the paper's Algorithms 1 and 2 as real
 * programs — plus the three GMX instructions:
 *
 *   gmx.v  rd, rs1, rs2   rd  = dv_out(tile; rs1 = dv_in, rs2 = dh_in)
 *   gmx.h  rd, rs1, rs2   rd  = dh_out(tile; rs1 = dv_in, rs2 = dh_in)
 *   gmx.tb rs1, rs2       CSR-side traceback step (updates pos/lo/hi)
 *
 * Delta operands use the packed 2-bit-per-lane register layout of
 * core::packDelta; gmx_pattern/gmx_text CSRs take 32 packed 2-bit
 * characters per 64-bit register.
 */

#ifndef GMX_ISA_SIM_ISA_HH
#define GMX_ISA_SIM_ISA_HH

#include <string>

#include "common/types.hh"

namespace gmx::isa_sim {

/** Supported opcodes (RV64I subset + Zbb cpop + Zicsr + GMX). */
enum class Opcode : u8
{
    // Arithmetic / logic (register and immediate forms).
    Add,
    Addi,
    Sub,
    And,
    Andi,
    Or,
    Ori,
    Xor,
    Xori,
    Slli,
    Srli,
    Slt,
    Cpop, // Zbb population count (used to sum packed delta lanes)
    // Memory (64-bit and byte).
    Ld,
    Sd,
    Lbu,
    Sb,
    // Control flow.
    Beq,
    Bne,
    Blt,
    Bge,
    Jal,
    Jalr,
    // CSR access (Zicsr).
    Csrw,
    Csrr,
    // GMX extension.
    GmxV,
    GmxH,
    GmxTb,
    // Simulation control.
    Halt,
};

/** CSR addresses of the GMX architectural state (custom range). */
enum GmxCsr : u16
{
    kCsrGmxPattern = 0x7c0,
    kCsrGmxText = 0x7c1,
    kCsrGmxPos = 0x7c2,
    kCsrGmxLo = 0x7c3,
    kCsrGmxHi = 0x7c4,
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Halt;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i64 imm = 0;  //!< immediate / branch target (instruction index)
    u16 csr = 0;  //!< CSR address for Csrw/Csrr
    u32 line = 0; //!< source line (diagnostics)
};

/** Mnemonic of @p op (for diagnostics). */
std::string opcodeName(Opcode op);

} // namespace gmx::isa_sim

#endif // GMX_ISA_SIM_ISA_HH
