/**
 * @file
 * GMX assembly programs: the paper's Algorithm 1 written for the
 * simulated core, plus helpers to marshal sequences into the packed
 * 2-bit memory layout and run the programs.
 *
 * This closes the loop the paper describes in §5: a RISC-V-style binary
 * drives the GMX unit purely through registers, loads/stores, and
 * csrw/csrr — no C++ kernel in sight.
 */

#ifndef GMX_ISA_SIM_PROGRAMS_HH
#define GMX_ISA_SIM_PROGRAMS_HH

#include <string>
#include <vector>

#include "align/types.hh"
#include "isa_sim/cpu.hh"
#include "sequence/sequence.hh"

namespace gmx::isa_sim {

/**
 * Assembly source of the Full(GMX) distance kernel (Algorithm 1,
 * tile-column-major sweep with rolling right-edge storage).
 *
 * Calling convention:
 *   a0 = base of the packed pattern (gr 64-bit words)
 *   a1 = gr (pattern length / 32)
 *   a2 = base of the packed text (gc words)
 *   a3 = gc (text length / 32)
 *   a4 = base of a gr-word scratch buffer (right-edge deltas)
 * Returns the edit distance in a0.
 */
std::string fullGmxDistanceSource();

/**
 * Assembly source of a single-tile traceback step:
 *   a0 = packed pattern word, a1 = packed text word,
 *   a2 = packed dv_in, a3 = packed dh_in, a4 = gmx_pos one-hot.
 * Returns gmx_lo in a0, gmx_hi in a1, the updated gmx_pos in a2.
 */
std::string tileTracebackSource();

/** Pack a DNA sequence into 2-bit lanes, 32 characters per word. */
std::vector<u64> packSequenceWords(const seq::Sequence &s);

/** Result of running the distance program. */
struct ProgramRunResult
{
    i64 distance = 0;
    CpuStats stats;
};

/**
 * Assemble and execute fullGmxDistanceSource() on @p cpu-sized fresh
 * machine for one pair. Lengths must be positive multiples of 32.
 */
ProgramRunResult runFullGmxDistanceProgram(const seq::Sequence &pattern,
                                           const seq::Sequence &text);

/**
 * Assembly source of the full Algorithm 1 + Algorithm 2 kernel: phase 1
 * computes the complete tile-edge matrix M (both dv and dh per tile) and
 * the distance; phase 2 walks the traceback tile by tile with gmx.tb,
 * dumping one (gmx_lo, gmx_hi, gmx_pos) record per step.
 *
 * Calling convention:
 *   a0 = packed pattern base, a1 = gr, a2 = packed text base, a3 = gc,
 *   a4 = M base (gr*gc records of 16 bytes: .v word then .h word),
 *   a5 = traceback output base (24 bytes per step).
 * Returns: a0 = distance, a1 = number of traceback steps.
 */
std::string fullGmxAlignSource();

/** A full-alignment program run, decoded back into an AlignResult. */
struct ProgramAlignResult
{
    align::AlignResult result;
    CpuStats stats;
    u64 tb_steps = 0;
};

/**
 * Assemble and execute fullGmxAlignSource(), then decode the dumped
 * gmx_lo/gmx_hi records into the CIGAR exactly as the software driver
 * does (per-op walk with boundary completion).
 */
ProgramAlignResult runFullGmxAlignProgram(const seq::Sequence &pattern,
                                          const seq::Sequence &text);

} // namespace gmx::isa_sim

#endif // GMX_ISA_SIM_PROGRAMS_HH
