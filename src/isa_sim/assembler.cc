#include "isa_sim/assembler.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace gmx::isa_sim {

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Addi: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Andi: return "andi";
      case Opcode::Or: return "or";
      case Opcode::Ori: return "ori";
      case Opcode::Xor: return "xor";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slt: return "slt";
      case Opcode::Cpop: return "cpop";
      case Opcode::Ld: return "ld";
      case Opcode::Sd: return "sd";
      case Opcode::Lbu: return "lbu";
      case Opcode::Sb: return "sb";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Csrw: return "csrw";
      case Opcode::Csrr: return "csrr";
      case Opcode::GmxV: return "gmx.v";
      case Opcode::GmxH: return "gmx.h";
      case Opcode::GmxTb: return "gmx.tb";
      case Opcode::Halt: return "halt";
    }
    GMX_PANIC("invalid opcode");
}

u8
parseRegister(const std::string &name)
{
    static const std::map<std::string, u8> kAbi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},   {"s0", 8},   {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11},  {"a2", 12},  {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16},  {"a7", 17},  {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21},  {"s6", 22},  {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    const auto it = kAbi.find(name);
    if (it != kAbi.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'x') {
        const int idx = std::atoi(name.c_str() + 1);
        if (idx >= 0 && idx < 32)
            return static_cast<u8>(idx);
    }
    GMX_FATAL("unknown register '%s'", name.c_str());
}

namespace {

u16
parseCsr(const std::string &name, u32 line)
{
    static const std::map<std::string, u16> kCsrs = {
        {"gmx_pattern", kCsrGmxPattern}, {"gmx_text", kCsrGmxText},
        {"gmx_pos", kCsrGmxPos},         {"gmx_lo", kCsrGmxLo},
        {"gmx_hi", kCsrGmxHi},
    };
    const auto it = kCsrs.find(name);
    if (it == kCsrs.end())
        GMX_FATAL("line %u: unknown CSR '%s'", line, name.c_str());
    return it->second;
}

/** Tokenized source line: mnemonic + comma-separated operands. */
struct Line
{
    u32 number = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

i64
parseImmediate(const std::string &tok, u32 line)
{
    if (tok.empty())
        GMX_FATAL("line %u: empty immediate", line);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 0);
    if (end == tok.c_str() || *end != '\0')
        GMX_FATAL("line %u: bad immediate '%s'", line, tok.c_str());
    return static_cast<i64>(v);
}

/** Split "imm(reg)" into its parts. */
void
parseAddress(const std::string &tok, u32 line, i64 &imm, u8 &base)
{
    const size_t open = tok.find('(');
    const size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        GMX_FATAL("line %u: expected imm(reg), got '%s'", line,
                  tok.c_str());
    const std::string imm_part = trim(tok.substr(0, open));
    imm = imm_part.empty() ? 0 : parseImmediate(imm_part, line);
    base = parseRegister(trim(tok.substr(open + 1, close - open - 1)));
}

} // namespace

Program
assemble(const std::string &source)
{
    // Pass 1: tokenize and collect label addresses.
    std::vector<Line> lines;
    std::map<std::string, size_t> labels;
    {
        std::istringstream in(source);
        std::string raw;
        u32 number = 0;
        while (std::getline(in, raw)) {
            ++number;
            const size_t hash = raw.find('#');
            if (hash != std::string::npos)
                raw = raw.substr(0, hash);
            std::string text = trim(raw);
            while (!text.empty()) {
                const size_t colon = text.find(':');
                const size_t space = text.find_first_of(" \t");
                if (colon != std::string::npos &&
                    (space == std::string::npos || colon < space)) {
                    const std::string label = trim(text.substr(0, colon));
                    if (label.empty())
                        GMX_FATAL("line %u: empty label", number);
                    if (labels.count(label))
                        GMX_FATAL("line %u: duplicate label '%s'", number,
                                  label.c_str());
                    labels[label] = lines.size();
                    text = trim(text.substr(colon + 1));
                    continue;
                }
                break;
            }
            if (text.empty())
                continue;
            Line parsed;
            parsed.number = number;
            const size_t sp = text.find_first_of(" \t");
            parsed.mnemonic = text.substr(0, sp);
            std::transform(parsed.mnemonic.begin(), parsed.mnemonic.end(),
                           parsed.mnemonic.begin(), ::tolower);
            if (sp != std::string::npos) {
                std::string rest = text.substr(sp + 1);
                std::string tok;
                std::istringstream ts(rest);
                while (std::getline(ts, tok, ','))
                    parsed.operands.push_back(trim(tok));
            }
            lines.push_back(std::move(parsed));
        }
    }

    auto target = [&](const std::string &label, u32 line) -> i64 {
        const auto it = labels.find(label);
        if (it == labels.end())
            GMX_FATAL("line %u: unknown label '%s'", line, label.c_str());
        return static_cast<i64>(it->second);
    };

    // Pass 2: encode.
    Program prog;
    for (const Line &l : lines) {
        Instruction ins;
        ins.line = l.number;
        const auto &ops = l.operands;
        auto need = [&](size_t n) {
            if (ops.size() != n)
                GMX_FATAL("line %u: %s expects %zu operands, got %zu",
                          l.number, l.mnemonic.c_str(), n, ops.size());
        };
        auto rrr = [&](Opcode op) {
            need(3);
            ins.op = op;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = parseRegister(ops[1]);
            ins.rs2 = parseRegister(ops[2]);
        };
        auto rri = [&](Opcode op) {
            need(3);
            ins.op = op;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = parseRegister(ops[1]);
            ins.imm = parseImmediate(ops[2], l.number);
        };
        auto branch = [&](Opcode op) {
            need(3);
            ins.op = op;
            ins.rs1 = parseRegister(ops[0]);
            ins.rs2 = parseRegister(ops[1]);
            ins.imm = target(ops[2], l.number);
        };

        const std::string &m = l.mnemonic;
        if (m == "add") rrr(Opcode::Add);
        else if (m == "sub") rrr(Opcode::Sub);
        else if (m == "and") rrr(Opcode::And);
        else if (m == "or") rrr(Opcode::Or);
        else if (m == "xor") rrr(Opcode::Xor);
        else if (m == "slt") rrr(Opcode::Slt);
        else if (m == "addi") rri(Opcode::Addi);
        else if (m == "andi") rri(Opcode::Andi);
        else if (m == "ori") rri(Opcode::Ori);
        else if (m == "xori") rri(Opcode::Xori);
        else if (m == "slli") rri(Opcode::Slli);
        else if (m == "srli") rri(Opcode::Srli);
        else if (m == "cpop") {
            need(2);
            ins.op = Opcode::Cpop;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = parseRegister(ops[1]);
        } else if (m == "li") {
            need(2);
            ins.op = Opcode::Addi;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = 0;
            ins.imm = parseImmediate(ops[1], l.number);
        } else if (m == "mv") {
            need(2);
            ins.op = Opcode::Addi;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = parseRegister(ops[1]);
            ins.imm = 0;
        } else if (m == "ld" || m == "lbu") {
            need(2);
            ins.op = m == "ld" ? Opcode::Ld : Opcode::Lbu;
            ins.rd = parseRegister(ops[0]);
            parseAddress(ops[1], l.number, ins.imm, ins.rs1);
        } else if (m == "sd" || m == "sb") {
            need(2);
            ins.op = m == "sd" ? Opcode::Sd : Opcode::Sb;
            ins.rs2 = parseRegister(ops[0]);
            parseAddress(ops[1], l.number, ins.imm, ins.rs1);
        } else if (m == "beq") branch(Opcode::Beq);
        else if (m == "bne") branch(Opcode::Bne);
        else if (m == "blt") branch(Opcode::Blt);
        else if (m == "bge") branch(Opcode::Bge);
        else if (m == "jal") {
            need(2);
            ins.op = Opcode::Jal;
            ins.rd = parseRegister(ops[0]);
            ins.imm = target(ops[1], l.number);
        } else if (m == "j") {
            need(1);
            ins.op = Opcode::Jal;
            ins.rd = 0;
            ins.imm = target(ops[0], l.number);
        } else if (m == "jalr") {
            need(2);
            ins.op = Opcode::Jalr;
            ins.rd = parseRegister(ops[0]);
            ins.rs1 = parseRegister(ops[1]);
        } else if (m == "csrw") {
            need(2);
            ins.op = Opcode::Csrw;
            ins.csr = parseCsr(ops[0], l.number);
            ins.rs1 = parseRegister(ops[1]);
        } else if (m == "csrr") {
            need(2);
            ins.op = Opcode::Csrr;
            ins.rd = parseRegister(ops[0]);
            ins.csr = parseCsr(ops[1], l.number);
        } else if (m == "gmx.v") rrr(Opcode::GmxV);
        else if (m == "gmx.h") rrr(Opcode::GmxH);
        else if (m == "gmx.tb") {
            need(2);
            ins.op = Opcode::GmxTb;
            ins.rs1 = parseRegister(ops[0]);
            ins.rs2 = parseRegister(ops[1]);
        } else if (m == "halt") {
            need(0);
            ins.op = Opcode::Halt;
        } else {
            GMX_FATAL("line %u: unknown mnemonic '%s'", l.number,
                      m.c_str());
        }
        prog.code.push_back(ins);
    }
    return prog;
}

} // namespace gmx::isa_sim
