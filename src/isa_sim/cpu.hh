/**
 * @file
 * Functional + timing simulator for the RV64-like subset with the GMX
 * extension attached (the repository's instruction-level integration
 * model — a GMX-enhanced core executing real programs).
 *
 * Timing follows the RTL-InOrder design point: single issue, one cycle
 * per instruction, gmx.v/gmx.h occupy the GMX unit for its 2-cycle
 * latency, gmx.tb for 6 cycles, and loads pay a configurable load-to-use
 * penalty. (Cache effects are the business of sim/perf.hh; this model
 * times the instruction stream itself.)
 */

#ifndef GMX_ISA_SIM_CPU_HH
#define GMX_ISA_SIM_CPU_HH

#include <vector>

#include "gmx/isa.hh"
#include "isa_sim/assembler.hh"

namespace gmx::isa_sim {

/** Execution statistics. */
struct CpuStats
{
    u64 instructions = 0;
    u64 cycles = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 branches = 0;
    u64 gmx_ops = 0;
    u64 csr_ops = 0;
};

/** Timing knobs (defaults: the paper's RTL-InOrder @ 1 GHz). */
struct CpuConfig
{
    unsigned gmx_ac_latency = 2;
    unsigned gmx_tb_latency = 6;
    unsigned load_use_penalty = 1;
    unsigned branch_taken_penalty = 1;
    u64 max_instructions = 1ull << 32; //!< runaway guard
};

/** The simulated core. */
class Cpu
{
  public:
    explicit Cpu(size_t mem_bytes, unsigned tile = 32,
                 const CpuConfig &cfg = CpuConfig());

    /** Load a program (replaces any previous one, resets the PC). */
    void loadProgram(Program program);

    /** Register access (x0 is hardwired to zero). */
    u64 reg(unsigned index) const;
    void setReg(unsigned index, u64 value);

    /** Byte-addressed little-endian memory access. */
    u64 loadWord(u64 addr) const;
    void storeWord(u64 addr, u64 value);
    u8 loadByte(u64 addr) const;
    void storeByte(u64 addr, u8 value);

    /** Copy a buffer into simulated memory. */
    void writeBlock(u64 addr, const void *data, size_t size);

    /**
     * Run until halt (returns true) or until the instruction guard trips
     * (returns false). Execution faults (bad PC, bad memory) throw
     * FatalError.
     */
    bool run();

    const CpuStats &stats() const { return stats_; }
    const core::GmxUnit &gmxUnit() const { return gmx_; }

  private:
    void step();

    Program program_;
    std::vector<u8> memory_;
    u64 regs_[32] = {};
    u64 pc_ = 0;
    bool halted_ = false;
    core::GmxUnit gmx_;
    CpuConfig cfg_;
    CpuStats stats_;
};

} // namespace gmx::isa_sim

#endif // GMX_ISA_SIM_CPU_HH
