/**
 * @file
 * A two-pass assembler for the simulator's RV64-like subset.
 *
 * Syntax (one instruction or label per line; '#' starts a comment):
 *
 *   label:
 *   add   rd, rs1, rs2        addi rd, rs1, imm
 *   ld    rd, imm(rs1)        sd   rs2, imm(rs1)
 *   beq   rs1, rs2, label     jal  rd, label
 *   li    rd, imm             mv   rd, rs       (pseudo-instructions)
 *   csrw  csrname, rs         csrr rd, csrname
 *   gmx.v rd, rs1, rs2        gmx.h rd, rs1, rs2     gmx.tb rs1, rs2
 *   halt
 *
 * Registers: x0..x31 or the ABI names (zero, ra, sp, gp, tp, t0-t6,
 * s0-s11, a0-a7). CSR names: gmx_pattern, gmx_text, gmx_pos, gmx_lo,
 * gmx_hi. Immediates accept decimal and 0x hex. Errors throw FatalError
 * with the offending line number.
 */

#ifndef GMX_ISA_SIM_ASSEMBLER_HH
#define GMX_ISA_SIM_ASSEMBLER_HH

#include <string>
#include <vector>

#include "isa_sim/isa.hh"

namespace gmx::isa_sim {

/** An assembled program (instruction index space, no encoding step). */
struct Program
{
    std::vector<Instruction> code;
};

/** Assemble @p source. Throws FatalError on any syntax error. */
Program assemble(const std::string &source);

/** Parse a register name; throws FatalError if unknown. */
u8 parseRegister(const std::string &name);

} // namespace gmx::isa_sim

#endif // GMX_ISA_SIM_ASSEMBLER_HH
