#include "serve/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gmx::serve {

namespace {

/** Escape a client id for JSON / OpenMetrics label embedding. */
std::string
escapeLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

void
counter(std::ostringstream &os, const char *name, u64 value)
{
    os << "# TYPE " << name << " counter\n"
       << name << "_total " << value << "\n";
}

void
gauge(std::ostringstream &os, const char *name, double value)
{
    os << "# TYPE " << name << " gauge\n" << name << " " << num(value)
       << "\n";
}

} // namespace

double
ServeSnapshot::cacheHitRate() const
{
    const u64 lookups = cache_hits + cache_coalesced + cache_misses;
    if (lookups == 0)
        return 0.0;
    return static_cast<double>(cache_hits + cache_coalesced) /
           static_cast<double>(lookups);
}

std::string
ServeSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\"connections_accepted\":" << connections_accepted;
    os << ",\"connections_refused\":" << connections_refused;
    os << ",\"accept_failures\":" << accept_failures;
    os << ",\"protocol_errors\":" << protocol_errors;
    os << ",\"frames_in\":" << frames_in;
    os << ",\"frames_out\":" << frames_out;
    os << ",\"bytes_in\":" << bytes_in;
    os << ",\"bytes_out\":" << bytes_out;
    os << ",\"requests\":" << requests;
    os << ",\"responses_ok\":" << responses_ok;
    os << ",\"responses_failed\":" << responses_failed;
    os << ",\"quota_throttled\":" << quota_throttled;
    os << ",\"shed\":{";
    for (unsigned p = 0; p < kPriorityCount; ++p) {
        if (p)
            os << ",";
        os << "\"" << priorityName(static_cast<Priority>(p))
           << "\":" << shed_by_priority[p];
    }
    os << "}";
    os << ",\"pending\":" << pending;
    os << ",\"pending_peak\":" << pending_peak;
    os << ",\"cache\":{";
    os << "\"hits\":" << cache_hits;
    os << ",\"coalesced\":" << cache_coalesced;
    os << ",\"misses\":" << cache_misses;
    os << ",\"evictions\":" << cache_evictions;
    os << ",\"invalidated\":" << cache_invalidated;
    os << ",\"drained\":" << cache_drained;
    os << ",\"entries\":" << cache_entries;
    os << ",\"hit_rate\":" << num(cacheHitRate());
    os << "}";
    os << ",\"deadline\":{";
    os << "\"requests\":" << deadline_requests;
    os << ",\"refused\":" << deadline_refused;
    os << ",\"budget_us\":" << deadline_budget_us;
    os << ",\"queue_spent_us\":" << deadline_queue_spent_us;
    os << "}";
    os << ",\"resilience\":{";
    os << "\"breaker_opens\":" << breaker_opens;
    os << ",\"breaker_rejected\":" << breaker_rejected;
    os << ",\"brownout_shed\":{";
    for (unsigned p = 0; p < kPriorityCount; ++p) {
        if (p)
            os << ",";
        os << "\"" << priorityName(static_cast<Priority>(p))
           << "\":" << brownout_shed[p];
    }
    os << "}";
    os << ",\"brownout_level\":" << brownout_level;
    os << ",\"queue_wait_ewma_us\":" << queue_wait_ewma_us;
    os << ",\"watchdog_kills\":" << watchdog_kills;
    os << "}";
    os << ",\"shards\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"routed\":" << shards[i].routed
           << ",\"outstanding\":" << shards[i].outstanding
           << ",\"outstanding_bytes\":" << shards[i].outstanding_bytes
           << ",\"breaker_state\":"
           << static_cast<unsigned>(shards[i].breaker_state)
           << ",\"breaker_opens\":" << shards[i].breaker_opens
           << ",\"breaker_probes\":" << shards[i].breaker_probes
           << ",\"window_samples\":" << shards[i].window_samples
           << ",\"window_fails\":" << shards[i].window_fails << "}";
    }
    os << "]";
    os << ",\"clients\":[";
    for (size_t i = 0; i < clients.size(); ++i) {
        const ClientStats &c = clients[i];
        if (i)
            os << ",";
        os << "{\"id\":\"" << escapeLabel(c.id) << "\""
           << ",\"requests\":" << c.requests
           << ",\"throttled\":" << c.throttled << ",\"shed\":" << c.shed
           << ",\"completed\":" << c.completed
           << ",\"failed\":" << c.failed << "}";
    }
    os << "]";
    os << "}";
    return os.str();
}

std::string
renderServeOpenMetrics(const ServeSnapshot &snap)
{
    std::ostringstream os;
    counter(os, "gmx_serve_connections_accepted",
            snap.connections_accepted);
    counter(os, "gmx_serve_connections_refused", snap.connections_refused);
    counter(os, "gmx_serve_accept_failures", snap.accept_failures);
    counter(os, "gmx_serve_protocol_errors", snap.protocol_errors);
    counter(os, "gmx_serve_frames_in", snap.frames_in);
    counter(os, "gmx_serve_frames_out", snap.frames_out);
    counter(os, "gmx_serve_bytes_in", snap.bytes_in);
    counter(os, "gmx_serve_bytes_out", snap.bytes_out);
    counter(os, "gmx_serve_requests", snap.requests);
    counter(os, "gmx_serve_responses_ok", snap.responses_ok);
    counter(os, "gmx_serve_responses_failed", snap.responses_failed);
    counter(os, "gmx_serve_quota_throttled", snap.quota_throttled);

    os << "# TYPE gmx_serve_shed counter\n";
    for (unsigned p = 0; p < kPriorityCount; ++p)
        os << "gmx_serve_shed_total{priority=\""
           << priorityName(static_cast<Priority>(p)) << "\"} "
           << snap.shed_by_priority[p] << "\n";

    gauge(os, "gmx_serve_pending", static_cast<double>(snap.pending));
    gauge(os, "gmx_serve_pending_peak",
          static_cast<double>(snap.pending_peak));

    counter(os, "gmx_serve_cache_hits", snap.cache_hits);
    counter(os, "gmx_serve_cache_coalesced", snap.cache_coalesced);
    counter(os, "gmx_serve_cache_misses", snap.cache_misses);
    counter(os, "gmx_serve_cache_evictions", snap.cache_evictions);
    counter(os, "gmx_serve_cache_invalidated", snap.cache_invalidated);
    counter(os, "gmx_serve_cache_drained", snap.cache_drained);
    gauge(os, "gmx_serve_cache_entries",
          static_cast<double>(snap.cache_entries));
    gauge(os, "gmx_serve_cache_hit_rate", snap.cacheHitRate());

    counter(os, "gmx_serve_deadline_requests", snap.deadline_requests);
    counter(os, "gmx_serve_deadline_refused", snap.deadline_refused);
    counter(os, "gmx_serve_deadline_budget_us", snap.deadline_budget_us);
    counter(os, "gmx_serve_deadline_queue_spent_us",
            snap.deadline_queue_spent_us);

    counter(os, "gmx_serve_breaker_opens", snap.breaker_opens);
    counter(os, "gmx_serve_breaker_rejected", snap.breaker_rejected);
    os << "# TYPE gmx_serve_brownout_shed counter\n";
    for (unsigned p = 0; p < kPriorityCount; ++p)
        os << "gmx_serve_brownout_shed_total{priority=\""
           << priorityName(static_cast<Priority>(p)) << "\"} "
           << snap.brownout_shed[p] << "\n";
    gauge(os, "gmx_serve_brownout_level",
          static_cast<double>(snap.brownout_level));
    gauge(os, "gmx_serve_queue_wait_ewma_us",
          static_cast<double>(snap.queue_wait_ewma_us));
    counter(os, "gmx_serve_watchdog_kills", snap.watchdog_kills);

    os << "# TYPE gmx_serve_shard_routed counter\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_routed_total{shard=\"" << i << "\"} "
           << snap.shards[i].routed << "\n";
    os << "# TYPE gmx_serve_shard_outstanding gauge\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_outstanding{shard=\"" << i << "\"} "
           << snap.shards[i].outstanding << "\n";
    os << "# TYPE gmx_serve_shard_outstanding_bytes gauge\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_outstanding_bytes{shard=\"" << i << "\"} "
           << snap.shards[i].outstanding_bytes << "\n";
    os << "# TYPE gmx_serve_shard_breaker_state gauge\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_breaker_state{shard=\"" << i << "\"} "
           << static_cast<unsigned>(snap.shards[i].breaker_state) << "\n";
    os << "# TYPE gmx_serve_shard_breaker_opens counter\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_breaker_opens_total{shard=\"" << i
           << "\"} " << snap.shards[i].breaker_opens << "\n";
    os << "# TYPE gmx_serve_shard_breaker_probes counter\n";
    for (size_t i = 0; i < snap.shards.size(); ++i)
        os << "gmx_serve_shard_breaker_probes_total{shard=\"" << i
           << "\"} " << snap.shards[i].breaker_probes << "\n";

    os << "# TYPE gmx_serve_client_requests counter\n";
    for (const ClientStats &c : snap.clients)
        os << "gmx_serve_client_requests_total{client=\""
           << escapeLabel(c.id) << "\"} " << c.requests << "\n";
    os << "# TYPE gmx_serve_client_throttled counter\n";
    for (const ClientStats &c : snap.clients)
        os << "gmx_serve_client_throttled_total{client=\""
           << escapeLabel(c.id) << "\"} " << c.throttled << "\n";
    os << "# TYPE gmx_serve_client_shed counter\n";
    for (const ClientStats &c : snap.clients)
        os << "gmx_serve_client_shed_total{client=\"" << escapeLabel(c.id)
           << "\"} " << c.shed << "\n";
    os << "# TYPE gmx_serve_client_completed counter\n";
    for (const ClientStats &c : snap.clients)
        os << "gmx_serve_client_completed_total{client=\""
           << escapeLabel(c.id) << "\"} " << c.completed << "\n";
    os << "# TYPE gmx_serve_client_failed counter\n";
    for (const ClientStats &c : snap.clients)
        os << "gmx_serve_client_failed_total{client=\""
           << escapeLabel(c.id) << "\"} " << c.failed << "\n";
    return os.str();
}

void
ServeMetrics::notePendingPeak(u64 depth)
{
    u64 cur = pending_peak.load(std::memory_order_relaxed);
    while (depth > cur &&
           !pending_peak.compare_exchange_weak(cur, depth,
                                               std::memory_order_relaxed))
        ;
}

void
ServeMetrics::noteQueueWait(u64 wait_us, double alpha)
{
    u64 cur = queue_wait_ewma_us.load(std::memory_order_relaxed);
    for (;;) {
        const double folded = cur == 0
                                  ? static_cast<double>(wait_us)
                                  : static_cast<double>(cur) * (1.0 - alpha) +
                                        static_cast<double>(wait_us) * alpha;
        const u64 next = static_cast<u64>(folded + 0.5);
        if (queue_wait_ewma_us.compare_exchange_weak(
                cur, next, std::memory_order_relaxed))
            return;
    }
}

void
ServeMetrics::noteClient(const std::string &id, ClientEvent e)
{
    std::lock_guard<std::mutex> lk(clients_mu_);
    ClientCells &c = clients_[id];
    switch (e) {
      case ClientEvent::Request:
        ++c.requests;
        break;
      case ClientEvent::Throttled:
        ++c.throttled;
        break;
      case ClientEvent::Shed:
        ++c.shed;
        break;
      case ClientEvent::Completed:
        ++c.completed;
        break;
      case ClientEvent::Failed:
        ++c.failed;
        break;
    }
}

ServeSnapshot
ServeMetrics::snapshot(std::vector<ShardStats> shards) const
{
    ServeSnapshot s;
    s.connections_accepted =
        connections_accepted.load(std::memory_order_relaxed);
    s.connections_refused =
        connections_refused.load(std::memory_order_relaxed);
    s.accept_failures = accept_failures.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.frames_in = frames_in.load(std::memory_order_relaxed);
    s.frames_out = frames_out.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.requests = requests.load(std::memory_order_relaxed);
    s.responses_ok = responses_ok.load(std::memory_order_relaxed);
    s.responses_failed = responses_failed.load(std::memory_order_relaxed);
    s.quota_throttled = quota_throttled.load(std::memory_order_relaxed);
    for (unsigned p = 0; p < kPriorityCount; ++p)
        s.shed_by_priority[p] =
            shed_by_priority[p].load(std::memory_order_relaxed);
    s.pending = pending.load(std::memory_order_relaxed);
    s.pending_peak = pending_peak.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.cache_coalesced = cache_coalesced.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses.load(std::memory_order_relaxed);
    s.cache_evictions = cache_evictions.load(std::memory_order_relaxed);
    s.cache_invalidated =
        cache_invalidated.load(std::memory_order_relaxed);
    s.cache_drained = cache_drained.load(std::memory_order_relaxed);
    s.cache_entries = cache_entries.load(std::memory_order_relaxed);
    s.deadline_requests =
        deadline_requests.load(std::memory_order_relaxed);
    s.deadline_refused = deadline_refused.load(std::memory_order_relaxed);
    s.deadline_budget_us =
        deadline_budget_us.load(std::memory_order_relaxed);
    s.deadline_queue_spent_us =
        deadline_queue_spent_us.load(std::memory_order_relaxed);
    s.breaker_opens = breaker_opens.load(std::memory_order_relaxed);
    s.breaker_rejected = breaker_rejected.load(std::memory_order_relaxed);
    for (unsigned p = 0; p < kPriorityCount; ++p)
        s.brownout_shed[p] =
            brownout_shed[p].load(std::memory_order_relaxed);
    s.brownout_level = brownout_level.load(std::memory_order_relaxed);
    s.queue_wait_ewma_us =
        queue_wait_ewma_us.load(std::memory_order_relaxed);
    s.watchdog_kills = watchdog_kills.load(std::memory_order_relaxed);
    s.shards = std::move(shards);
    {
        std::lock_guard<std::mutex> lk(clients_mu_);
        s.clients.reserve(clients_.size());
        for (const auto &[id, c] : clients_) {
            ClientStats row;
            row.id = id;
            row.requests = c.requests;
            row.throttled = c.throttled;
            row.shed = c.shed;
            row.completed = c.completed;
            row.failed = c.failed;
            s.clients.push_back(std::move(row));
        }
    }
    std::sort(s.clients.begin(), s.clients.end(),
              [](const ClientStats &a, const ClientStats &b) {
                  return a.id < b.id;
              });
    return s;
}

} // namespace gmx::serve
