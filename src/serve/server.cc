#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "engine/faults.hh"

namespace gmx::serve {

namespace {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

u64
steadyMicros()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
capMessage(const std::string &msg)
{
    if (msg.size() <= kMaxMessageBytes)
        return msg;
    return msg.substr(0, kMaxMessageBytes);
}

/** An already-encoded AlignResponse carrying a rejection. */
AlignResponseFrame
rejection(u64 id, StatusCode code, std::string message)
{
    AlignResponseFrame f;
    f.id = id;
    f.code = code;
    f.distance = align::kNoAlignment;
    f.message = capMessage(std::move(message));
    return f;
}

} // namespace

AlignServer::AlignServer(std::vector<engine::Engine *> engines,
                         AlignServerConfig config)
    : engines_(std::move(engines)), config_(std::move(config)),
      quota_(config_.quota),
      router_(engines_, config_.router, &metrics_)
{
    if (config_.handler_threads == 0)
        config_.handler_threads = 1;
    if (config_.max_connections == 0)
        config_.max_connections = 1;
    if (config_.max_inflight_per_conn == 0)
        config_.max_inflight_per_conn = 1;
    if (config_.max_frame_bytes < 64)
        config_.max_frame_bytes = 64; // room for any fixed-field frame
    if (config_.brownout_alpha <= 0.0 || config_.brownout_alpha > 1.0)
        config_.brownout_alpha = 0.2;
}

AlignServer::~AlignServer()
{
    stop();
}

Status
AlignServer::start()
{
    if (running_.load(std::memory_order_acquire))
        return Status::internal("AlignServer already running");
    stopping_.store(false, std::memory_order_release);

    if (Status s = net::listenTcp(config_.host, config_.port, tcp_fd_,
                                  bound_port_);
        !s.ok())
        return s;

    if (!config_.unix_path.empty()) {
        if (Status s = net::listenUnix(config_.unix_path, unix_fd_);
            !s.ok()) {
            net::closeFd(tcp_fd_);
            return s;
        }
    }

    if (Status s = wake_.open(); !s.ok()) {
        net::closeFd(unix_fd_);
        net::closeFd(tcp_fd_);
        return s;
    }

    running_.store(true, std::memory_order_release);
    handlers_.reserve(config_.handler_threads);
    for (unsigned i = 0; i < config_.handler_threads; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    if (config_.watchdog_multiple > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
    return Status();
}

void
AlignServer::stop()
{
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    if (!running_.load(std::memory_order_acquire))
        return;
    wake_.notify();
    if (acceptor_.joinable())
        acceptor_.join();
    watchdog_cv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();
    // Half-close every live connection: readers see EOF and stop taking
    // new requests; writers still flush every accepted request's
    // response through the intact write side (graceful drain).
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto &[fd, conn] : open_conns_)
            (void)::shutdown(fd, SHUT_RD);
    }
    conn_cv_.notify_all();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    net::closeFd(tcp_fd_);
    net::closeFd(unix_fd_);
    wake_.close();
    if (!config_.unix_path.empty())
        (void)::unlink(config_.unix_path.c_str());
    bound_port_ = 0;
    running_.store(false, std::memory_order_release);
}

size_t
AlignServer::watermark(Priority p) const
{
    const size_t cap = config_.pending_cap;
    size_t mark = cap;
    if (p == Priority::Low)
        mark = cap / 2;
    else if (p == Priority::Normal)
        mark = cap - cap / 4;
    return mark == 0 ? 1 : mark;
}

void
AlignServer::acceptLoop()
{
    for (;;) {
        pollfd pfds[3];
        nfds_t n = 0;
        pfds[n++] = {wake_.readFd(), POLLIN, 0};
        pfds[n++] = {tcp_fd_, POLLIN, 0};
        if (unix_fd_ >= 0)
            pfds[n++] = {unix_fd_, POLLIN, 0};
        const int rc = ::poll(pfds, n, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (pfds[0].revents != 0)
            return; // stop() signalled through the self-pipe
        for (nfds_t i = 1; i < n; ++i) {
            if ((pfds[i].revents & POLLIN) == 0)
                continue;
            const int conn =
                ::accept4(pfds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (conn < 0)
                continue;
            // AcceptFail: the client vanished between accept and
            // handshake; count it and keep accepting.
            if (GMX_INJECT_FAULT(engine::faults::Point::AcceptFail)) {
                metrics_.accept_failures.fetch_add(
                    1, std::memory_order_relaxed);
                ::close(conn);
                continue;
            }
            net::setIoDeadlines(conn, config_.io_timeout);

            bool over =
                GMX_INJECT_FAULT(engine::faults::Point::QueueFull);
            unsigned cur = active_.load(std::memory_order_relaxed);
            while (!over) {
                if (cur >= config_.max_connections) {
                    over = true;
                    break;
                }
                if (active_.compare_exchange_weak(
                        cur, cur + 1, std::memory_order_acq_rel))
                    break;
            }
            if (over) {
                metrics_.connections_refused.fetch_add(
                    1, std::memory_order_relaxed);
                const std::string err = encodeError(
                    {StatusCode::Overloaded, "connection limit reached"});
                (void)net::sendAll(conn, err.data(), err.size());
                ::close(conn);
                continue;
            }
            metrics_.connections_accepted.fetch_add(
                1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lk(mu_);
                conn_queue_.push_back(conn);
            }
            conn_cv_.notify_one();
        }
    }
}

void
AlignServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lk(mu_);
            conn_cv_.wait(lk, [this] {
                return !conn_queue_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (conn_queue_.empty())
                return; // stopping, and every accepted connection served
            fd = conn_queue_.front();
            conn_queue_.pop_front();
        }
        handleConnection(fd);
        {
            // Unregister before close so stop()'s SHUT_RD sweep can
            // never touch a recycled fd number.
            std::lock_guard<std::mutex> lk(conns_mu_);
            open_conns_.erase(fd);
        }
        ::close(fd);
        active_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

bool
AlignServer::sendFrame(Conn &conn, const std::string &encoded)
{
    if (conn.dead.load(std::memory_order_relaxed))
        return false;
    // SlowClient: a chaos plan stalls the writer here, modelling a
    // client that stops draining; the bounded per-connection queue and
    // the reader's blocking enqueue must hold the line.
    GMX_FAULT_STALL_AT(engine::faults::Point::SlowClient);
    if (net::sendAll(conn.fd, encoded.data(), encoded.size()) !=
        net::IoResult::Ok) {
        conn.dead.store(true, std::memory_order_relaxed);
        return false;
    }
    metrics_.frames_out.fetch_add(1, std::memory_order_relaxed);
    metrics_.bytes_out.fetch_add(encoded.size(),
                                 std::memory_order_relaxed);
    return true;
}

void
AlignServer::enqueue(Conn &conn, Outgoing item)
{
    item.accepted = std::chrono::steady_clock::now();
    conn.inflight.fetch_add(1, std::memory_order_relaxed);
    conn.last_progress_us.store(steadyMicros(), std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(conn.mu);
    // Blocking here is the point: a full queue stops the reader, the
    // socket receive buffer fills, and TCP pushes back to the client.
    conn.space_cv.wait(lk, [&] {
        return conn.out.size() < config_.max_inflight_per_conn;
    });
    conn.out.push_back(std::move(item));
    lk.unlock();
    conn.data_cv.notify_one();
}

void
AlignServer::protocolError(Conn &conn, const Status &error)
{
    metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    Outgoing o;
    o.immediate = true;
    o.encoded = encodeError({error.code(), capMessage(error.message())});
    enqueue(conn, std::move(o));
}

unsigned
AlignServer::brownoutLevel() const
{
    const u64 ewma =
        metrics_.queue_wait_ewma_us.load(std::memory_order_relaxed);
    unsigned level = 0;
    if (config_.brownout_low.count() > 0 &&
        ewma >= static_cast<u64>(config_.brownout_low.count()))
        level = 1;
    if (config_.brownout_normal.count() > 0 &&
        ewma >= static_cast<u64>(config_.brownout_normal.count()))
        level = 2;
    return level;
}

void
AlignServer::handleRequest(Conn &conn, AlignRequestFrame req,
                           std::chrono::steady_clock::time_point received)
{
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.noteClient(conn.client_id, ServeMetrics::ClientEvent::Request);

    // 1. Per-client token bucket.
    if (!quota_.admit(conn.client_id, monotonicSeconds())) {
        metrics_.quota_throttled.fetch_add(1, std::memory_order_relaxed);
        metrics_.noteClient(conn.client_id,
                            ServeMetrics::ClientEvent::Throttled);
        Outgoing o;
        o.immediate = true;
        o.reject = true;
        o.encoded = encodeAlignResponse(
            rejection(req.id, StatusCode::Overloaded,
                      "client quota exhausted"));
        enqueue(conn, std::move(o));
        return;
    }

    // 2. Brownout: when the smoothed queue wait says responses are
    //    already late, shed by priority BEFORE the hard pending cap —
    //    a latency-driven soft ramp, Low first, mirroring watermarks.
    const unsigned level = brownoutLevel();
    metrics_.brownout_level.store(level, std::memory_order_relaxed);
    if ((level >= 1 && conn.priority == Priority::Low) ||
        (level >= 2 && conn.priority == Priority::Normal)) {
        metrics_.brownout_shed[static_cast<unsigned>(conn.priority)]
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.noteClient(conn.client_id,
                            ServeMetrics::ClientEvent::Shed);
        Outgoing o;
        o.immediate = true;
        o.reject = true;
        o.encoded = encodeAlignResponse(rejection(
            req.id, StatusCode::Overloaded,
            std::string("brownout: queue wait over budget (priority ") +
                priorityName(conn.priority) + ")"));
        enqueue(conn, std::move(o));
        return;
    }

    // 3. Priority admission: under load, low watermarks trip first.
    if (config_.pending_cap > 0) {
        const u64 pending =
            metrics_.pending.load(std::memory_order_relaxed);
        if (pending >= watermark(conn.priority)) {
            metrics_.shed_by_priority[static_cast<unsigned>(conn.priority)]
                .fetch_add(1, std::memory_order_relaxed);
            metrics_.noteClient(conn.client_id,
                                ServeMetrics::ClientEvent::Shed);
            Outgoing o;
            o.immediate = true;
            o.reject = true;
            o.encoded = encodeAlignResponse(rejection(
                req.id, StatusCode::Overloaded,
                std::string("shed under load (priority ") +
                    priorityName(conn.priority) + ")"));
            enqueue(conn, std::move(o));
            return;
        }
    }

    // 4. Validation, before the router so rejects never touch an engine
    //    or pollute the cache.
    seq::SequencePair pair{seq::Sequence(std::move(req.pattern)),
                           seq::Sequence(std::move(req.text))};
    // Class-aware validation: long-read pairs are judged by the long
    // class's own cap, not the short-class length/skew limits (the
    // engine's streamed tier serves them in O(window) memory).
    const align::LengthClass klass =
        config_.long_read_threshold > 0 &&
                std::max(pair.pattern.size(), pair.text.size()) >=
                    config_.long_read_threshold
            ? align::LengthClass::Long
            : align::LengthClass::Short;
    if (Status v = align::validatePair(pair, config_.limits, klass);
        !v.ok()) {
        Outgoing o;
        o.immediate = true;
        o.reject = true;
        o.encoded = encodeAlignResponse(
            rejection(req.id, v.code(), v.message()));
        enqueue(conn, std::move(o));
        return;
    }

    // 5. Deadline budget: subtract the serve-side time this request
    //    already spent; an exhausted budget is refused HERE, before the
    //    router or an engine sees it (the per-tier counters prove no
    //    kernel ran). The remainder becomes the engine-side timeout so
    //    expiry fires queued or mid-kernel via the cancel gate.
    std::chrono::nanoseconds timeout{0};
    if (req.deadline_us > 0) {
        metrics_.deadline_requests.fetch_add(1, std::memory_order_relaxed);
        metrics_.deadline_budget_us.fetch_add(req.deadline_us,
                                              std::memory_order_relaxed);
        auto spent = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - received);
        // ClockSkew: a chaos plan shifts the observed spend, modelling a
        // peer whose budget was computed against a skewed clock; the
        // clamp keeps a negative shift from inflating the budget.
        spent += GMX_FAULT_SKEW();
        if (spent.count() < 0)
            spent = std::chrono::microseconds{0};
        metrics_.deadline_queue_spent_us.fetch_add(
            static_cast<u64>(spent.count()), std::memory_order_relaxed);
        if (static_cast<u64>(spent.count()) >= req.deadline_us) {
            metrics_.deadline_refused.fetch_add(1,
                                                std::memory_order_relaxed);
            Outgoing o;
            o.immediate = true;
            o.reject = true;
            o.encoded = encodeAlignResponse(rejection(
                req.id, StatusCode::DeadlineExceeded,
                "deadline budget exhausted before dispatch"));
            enqueue(conn, std::move(o));
            return;
        }
        timeout = std::chrono::microseconds(req.deadline_us) - spent;
    }

    // 6. Route (cache hit, coalesce, or least-loaded engine).
    Outgoing o;
    o.ticket =
        router_.submit(pair, req.want_cigar, req.max_edits, timeout);
    o.id = req.id;
    o.max_edits = req.max_edits;
    const u64 now =
        metrics_.pending.fetch_add(1, std::memory_order_relaxed) + 1;
    metrics_.notePendingPeak(now);
    enqueue(conn, std::move(o));
}

void
AlignServer::writerLoop(Conn &conn)
{
    for (;;) {
        Outgoing item;
        {
            std::unique_lock<std::mutex> lk(conn.mu);
            conn.data_cv.wait(lk, [&] {
                return !conn.out.empty() || conn.closing;
            });
            if (conn.out.empty())
                return; // closing and fully drained
            item = std::move(conn.out.front());
            conn.out.pop_front();
        }
        conn.space_cv.notify_one();
        conn.last_progress_us.store(steadyMicros(),
                                    std::memory_order_relaxed);

        if (item.bye) {
            (void)sendFrame(conn, encodeByeAck());
        } else if (item.immediate) {
            (void)sendFrame(conn, item.encoded);
            // Rejections count as responses whether or not the bytes
            // landed, matching the routed path below.
            if (item.reject) {
                metrics_.responses_failed.fetch_add(
                    1, std::memory_order_relaxed);
                metrics_.noteClient(conn.client_id,
                                    ServeMetrics::ClientEvent::Failed);
            }
        } else {
            // A routed request: wait for the engine (futures are always
            // fulfilled with a Result, even across engine stop()).
            const engine::Engine::AlignOutcome &outcome =
                item.ticket.future.get();
            metrics_.pending.fetch_sub(1, std::memory_order_relaxed);
            // Admission-to-response-ready time feeds the brownout EWMA
            // and the breaker's latency leg.
            const auto waited =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - item.accepted);
            const u64 waited_us =
                waited.count() < 0 ? 0 : static_cast<u64>(waited.count());
            metrics_.noteQueueWait(waited_us, config_.brownout_alpha);
            router_.complete(item.ticket,
                             outcome.ok() ? StatusCode::Ok
                                          : outcome.status().code(),
                             waited_us);

            AlignResponseFrame resp;
            resp.id = item.id;
            resp.cache_hit =
                item.ticket.cache_hit || item.ticket.coalesced;
            if (outcome.ok()) {
                const align::AlignResult &r = outcome.value();
                i64 d = r.distance;
                bool has_cigar = r.has_cigar;
                // max_edits is a post-filter: the cascade computes the
                // true distance; beyond the client's budget it becomes
                // not-found.
                if (item.max_edits > 0 && d != align::kNoAlignment &&
                    d > static_cast<i64>(item.max_edits)) {
                    d = align::kNoAlignment;
                    has_cigar = false;
                }
                resp.code = StatusCode::Ok;
                resp.distance = d;
                resp.has_cigar = has_cigar && d != align::kNoAlignment;
                if (resp.has_cigar)
                    resp.cigar = r.cigar.str();
                metrics_.responses_ok.fetch_add(1,
                                                std::memory_order_relaxed);
                metrics_.noteClient(conn.client_id,
                                    ServeMetrics::ClientEvent::Completed);
            } else {
                resp.code = outcome.status().code();
                resp.distance = align::kNoAlignment;
                resp.message = capMessage(outcome.status().message());
                metrics_.responses_failed.fetch_add(
                    1, std::memory_order_relaxed);
                metrics_.noteClient(conn.client_id,
                                    ServeMetrics::ClientEvent::Failed);
            }
            (void)sendFrame(conn, encodeAlignResponse(resp));
        }

        conn.last_progress_us.store(steadyMicros(),
                                    std::memory_order_relaxed);
        conn.inflight.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
AlignServer::readerLoop(Conn &conn)
{
    for (;;) {
        char hdr[kHeaderBytes];
        size_t got = 0;
        // One-byte probe first: a timeout here means an idle (not slow)
        // client with nothing consumed, so the stream stays in sync and
        // the reader gets a periodic stopping_ check.
        net::IoResult r = net::recvSome(conn.fd, hdr, 1, got);
        if (r == net::IoResult::Timeout) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            continue;
        }
        if (r != net::IoResult::Ok || got == 0)
            return; // peer closed (or stop()'s SHUT_RD), or hard error
        r = net::recvExact(conn.fd, hdr + 1, kHeaderBytes - 1);
        if (r != net::IoResult::Ok) {
            protocolError(conn,
                          Status::invalidInput("truncated frame header"));
            return;
        }

        FrameHeader fh;
        Status hs =
            decodeHeader(hdr, kHeaderBytes, config_.max_frame_bytes, fh);
        if (hs.ok() &&
            GMX_INJECT_FAULT(engine::faults::Point::FrameTooLarge))
            hs = Status::invalidInput(
                "frame payload exceeds cap (injected)");
        if (!hs.ok()) {
            protocolError(conn, hs);
            return;
        }
        std::string payload(fh.payload_len, '\0');
        if (fh.payload_len > 0) {
            r = net::recvExact(conn.fd, payload.data(), payload.size());
            if (r != net::IoResult::Ok) {
                protocolError(
                    conn, Status::invalidInput("truncated frame payload"));
                return;
            }
        }
        const auto received = std::chrono::steady_clock::now();
        metrics_.frames_in.fetch_add(1, std::memory_order_relaxed);
        metrics_.bytes_in.fetch_add(kHeaderBytes + payload.size(),
                                    std::memory_order_relaxed);
        conn.last_progress_us.store(steadyMicros(),
                                    std::memory_order_relaxed);

        switch (fh.type) {
          case FrameType::AlignRequest: {
            AlignRequestFrame req;
            if (Status s = decodeAlignRequest(payload.data(),
                                              payload.size(), req);
                !s.ok()) {
                protocolError(conn, s);
                return;
            }
            handleRequest(conn, std::move(req), received);
            break;
          }
          case FrameType::Bye: {
            if (Status s = decodeEmpty(FrameType::Bye, payload.size());
                !s.ok()) {
                protocolError(conn, s);
                return;
            }
            Outgoing o;
            o.bye = true;
            enqueue(conn, std::move(o));
            return; // drain + ByeAck, then the connection closes
          }
          default:
            protocolError(
                conn, Status::invalidInput(
                          std::string("unexpected ") +
                          frameTypeName(fh.type) + " frame from client"));
            return;
        }
    }
}

void
AlignServer::handleConnection(int fd)
{
    Conn conn;
    conn.fd = fd;
    conn.last_progress_us.store(steadyMicros(), std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        open_conns_.emplace(fd, &conn);
    }

    // Synchronous handshake: the first frame must be a Hello, answered
    // with a HelloAck, before the writer exists — so direct sends here
    // cannot interleave with response frames.
    char hdr[kHeaderBytes];
    if (net::recvExact(fd, hdr, kHeaderBytes) != net::IoResult::Ok) {
        metrics_.accept_failures.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    FrameHeader fh;
    Status hs = decodeHeader(hdr, kHeaderBytes, config_.max_frame_bytes, fh);
    if (hs.ok() && fh.type != FrameType::Hello)
        hs = Status::invalidInput("expected hello as the first frame");
    std::string payload;
    HelloFrame hello;
    if (hs.ok()) {
        payload.resize(fh.payload_len);
        if (fh.payload_len > 0 &&
            net::recvExact(fd, payload.data(), payload.size()) !=
                net::IoResult::Ok)
            hs = Status::invalidInput("truncated hello frame");
    }
    if (hs.ok())
        hs = decodeHello(payload.data(), payload.size(), hello);
    if (!hs.ok()) {
        metrics_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        const std::string err =
            encodeError({hs.code(), capMessage(hs.message())});
        (void)net::sendAll(fd, err.data(), err.size());
        return;
    }
    metrics_.frames_in.fetch_add(1, std::memory_order_relaxed);
    metrics_.bytes_in.fetch_add(kHeaderBytes + payload.size(),
                                std::memory_order_relaxed);
    conn.client_id =
        hello.client_id.empty() ? "anonymous" : hello.client_id;
    conn.priority = hello.priority;
    // Echo the intersection of offered and supported feature bits; the
    // client uses only echoed bits, so a v1 peer (offers 0) sees 0.
    conn.features = hello.features & kSupportedFeatures;
    if (!sendFrame(conn, encodeHelloAck({kVersion, conn.features,
                                         config_.max_frame_bytes})))
        return;

    std::thread writer([this, &conn] { writerLoop(conn); });
    readerLoop(conn);
    {
        std::lock_guard<std::mutex> lk(conn.mu);
        conn.closing = true;
    }
    conn.data_cv.notify_all();
    writer.join();
}

void
AlignServer::watchdogLoop()
{
    const u64 limit_us = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            config_.io_timeout)
            .count() *
        config_.watchdog_multiple);
    // Scan at a fraction of the kill threshold so a stuck connection is
    // caught within ~1.25x the configured limit, worst case.
    const auto tick = std::max<std::chrono::milliseconds>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            config_.io_timeout * config_.watchdog_multiple / 4),
        std::chrono::milliseconds{10});
    std::unique_lock<std::mutex> lk(watchdog_mu_);
    for (;;) {
        watchdog_cv_.wait_for(lk, tick, [this] {
            return stopping_.load(std::memory_order_acquire);
        });
        if (stopping_.load(std::memory_order_acquire))
            return;
        const u64 now_us = steadyMicros();
        std::lock_guard<std::mutex> ck(conns_mu_);
        for (const auto &[fd, conn] : open_conns_) {
            if (conn->inflight.load(std::memory_order_relaxed) == 0)
                continue; // idle, not stuck
            const u64 last =
                conn->last_progress_us.load(std::memory_order_relaxed);
            if (now_us - last <= limit_us)
                continue;
            if (conn->watchdog_killed.exchange(true,
                                               std::memory_order_acq_rel))
                continue; // already shot once
            // Force-close both directions: the reader sees EOF, the
            // writer's next send fails, and the drain path still settles
            // every routed ticket — counted, never silently hung.
            metrics_.watchdog_kills.fetch_add(1,
                                              std::memory_order_relaxed);
            conn->dead.store(true, std::memory_order_relaxed);
            (void)::shutdown(fd, SHUT_RDWR);
        }
    }
}

} // namespace gmx::serve
