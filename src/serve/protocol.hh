/**
 * @file
 * GMX alignment-serving wire protocol: versioned, length-prefixed
 * binary frames.
 *
 * The engine's submission API is a function call; this protocol is the
 * same contract over a byte stream, so a remote client can stream
 * batches of alignment requests at a server and read typed results
 * back. Design goals, in order: impossible to misparse (every frame is
 * length-prefixed, magic-tagged, and versioned; decoders validate every
 * field and never read past a bound), cheap to encode/decode (flat
 * little-endian fields, one pass, no varints), and aligned with the
 * engine's error taxonomy (response status bytes ARE gmx::StatusCode
 * values, so a remote caller branches on exactly the codes a local
 * caller would).
 *
 * Frame layout (all integers little-endian):
 *
 *   offset size field
 *        0    4 magic        "GMX1" (0x31584D47)
 *        4    1 version      kVersion (1)
 *        5    1 type         FrameType
 *        6    2 reserved     must be 0 in v1
 *        8    4 payload_len  bytes after this 12-byte header
 *
 * Conversation: the client opens with Hello (client id + priority
 * class), the server answers HelloAck (negotiated frame cap). The
 * client then streams AlignRequest frames — no per-request round trip —
 * and the server streams AlignResponse frames back, matched by the
 * client-chosen request id (responses arrive in submission order on one
 * connection, but the id is the contract). Bye/ByeAck close politely;
 * Error is a connection-level failure (protocol violation, oversized
 * frame) after which the server hangs up.
 *
 * Distance on the wire: -1 encodes "no alignment within the requested
 * max_edits" (align::kNoAlignment is an i64 sentinel that would not
 * survive narrowing); decode maps it back.
 *
 * Feature negotiation: Hello and HelloAck each carry a feature bitmask
 * in what v1 called a reserved byte (v1 peers wrote zeros there, and
 * v1 decoders read the byte without checking it, so the bit is free).
 * The client offers its feature set; the server echoes the
 * intersection with what it supports; both sides then use only echoed
 * bits. kFeatureDeadline gates the AlignRequest deadline_us extension:
 * a request whose flags bit 0 is set carries a trailing u64
 * microsecond budget. The extension is only ever sent to a server
 * that advertised the feature — a v1 decoder would correctly reject
 * the trailing bytes — so strict decoders stay strict on both sides.
 */

#ifndef GMX_SERVE_PROTOCOL_HH
#define GMX_SERVE_PROTOCOL_HH

#include <string>

#include "common/status.hh"
#include "common/types.hh"

namespace gmx::serve {

/** Wire magic: "GMX1" read as a little-endian u32. */
inline constexpr u32 kMagic = 0x31584D47u;

/** Protocol version this build speaks. */
inline constexpr u8 kVersion = 1;

/** Fixed frame-header size in bytes. */
inline constexpr size_t kHeaderBytes = 12;

/**
 * Default cap on one frame's payload (requests and responses alike).
 * Sized for long-read traffic: a 1 Mbp + 3 Mbp window request is ~4 MB
 * of sequence bytes, and its CIGAR response is about one byte per op,
 * so 8 MiB admits the long length class with headroom while still
 * bounding a hostile frame to well under the per-connection budget.
 */
inline constexpr u32 kDefaultMaxFrameBytes = 8u << 20;

/** Cap on a Hello client-id string. */
inline constexpr u32 kMaxClientIdBytes = 256;

/** Cap on a response's human-readable status message. */
inline constexpr u32 kMaxMessageBytes = 4096;

/** Feature bit: AlignRequest frames may carry a deadline_us budget. */
inline constexpr u8 kFeatureDeadline = 0x01;

/** Every feature bit this build understands. */
inline constexpr u8 kSupportedFeatures = kFeatureDeadline;

enum class FrameType : u8 {
    Hello = 1,        //!< client -> server: identify + priority class
    HelloAck = 2,     //!< server -> client: version + frame cap
    AlignRequest = 3, //!< client -> server: one pair to align
    AlignResponse = 4, //!< server -> client: one result, matched by id
    Error = 5,        //!< server -> client: connection-level failure
    Bye = 6,          //!< client -> server: polite close after drain
    ByeAck = 7,       //!< server -> client: drain done, closing
};

/** True for the types a v1 peer may legally receive. */
bool knownFrameType(u8 type);

/** Human-readable frame-type name ("hello", "align_request", ...). */
const char *frameTypeName(FrameType t);

/** Client priority class; lower classes shed first under overload. */
enum class Priority : u8 {
    Low = 0,
    Normal = 1,
    High = 2,
};

inline constexpr unsigned kPriorityCount = 3;

/** Human-readable priority name ("low" / "normal" / "high"). */
const char *priorityName(Priority p);

/** Decoded frame header. */
struct FrameHeader
{
    u8 version = kVersion;
    FrameType type = FrameType::Error;
    u32 payload_len = 0;
};

struct HelloFrame
{
    Priority priority = Priority::Normal;
    u8 features = 0;       //!< feature bits the client offers
    std::string client_id; //!< empty is allowed (an anonymous client)
};

struct HelloAckFrame
{
    u8 version = kVersion;
    u8 features = 0; //!< offered ∩ supported; client uses only these
    u32 max_frame_bytes = kDefaultMaxFrameBytes;
};

struct AlignRequestFrame
{
    u64 id = 0;        //!< client-chosen; echoed in the response
    u32 max_edits = 0; //!< 0 = unbounded; else "within k or not found"
    bool want_cigar = true;
    /**
     * Remaining time budget in microseconds (0 = none). A budget, not a
     * wall-clock instant, so it survives clock skew between peers; each
     * hop subtracts the time it observed before forwarding the rest.
     * Only sent when the server advertised kFeatureDeadline.
     */
    u64 deadline_us = 0;
    std::string pattern;
    std::string text;
};

struct AlignResponseFrame
{
    u64 id = 0;
    StatusCode code = StatusCode::Ok;
    bool has_cigar = false;
    bool cache_hit = false; //!< served from the dedup cache (or coalesced)
    i64 distance = -1;      //!< -1 = no alignment within max_edits
    std::string message;    //!< failure detail (empty on Ok)
    std::string cigar;
};

struct ErrorFrame
{
    StatusCode code = StatusCode::Internal;
    std::string message;
};

// ---------------------------------------------------------------------
// Encoding: each returns one complete frame (header + payload).
// ---------------------------------------------------------------------

std::string encodeHello(const HelloFrame &f);
std::string encodeHelloAck(const HelloAckFrame &f);
std::string encodeAlignRequest(const AlignRequestFrame &f);
std::string encodeAlignResponse(const AlignResponseFrame &f);
std::string encodeError(const ErrorFrame &f);
std::string encodeBye();
std::string encodeByeAck();

// ---------------------------------------------------------------------
// Decoding: strict. Every decoder checks magic/version/type/bounds and
// demands exact payload consumption; any violation is a typed
// InvalidInput naming the defect. Decoders never read outside
// [data, data+len) and never throw.
// ---------------------------------------------------------------------

/**
 * Decode a 12-byte header. @p max_payload bounds payload_len (pass the
 * negotiated frame cap). @p data must hold kHeaderBytes bytes.
 */
Status decodeHeader(const void *data, size_t len, u32 max_payload,
                    FrameHeader &out);

Status decodeHello(const void *data, size_t len, HelloFrame &out);
Status decodeHelloAck(const void *data, size_t len, HelloAckFrame &out);
Status decodeAlignRequest(const void *data, size_t len,
                          AlignRequestFrame &out);
Status decodeAlignResponse(const void *data, size_t len,
                           AlignResponseFrame &out);
Status decodeError(const void *data, size_t len, ErrorFrame &out);

/** Bye and ByeAck carry no payload; len must be 0. */
Status decodeEmpty(FrameType t, size_t len);

} // namespace gmx::serve

#endif // GMX_SERVE_PROTOCOL_HH
