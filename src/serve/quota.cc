#include "serve/quota.hh"

#include <algorithm>

namespace gmx::serve {

QuotaRegistry::QuotaRegistry(QuotaConfig config) : config_(config)
{
    if (config_.burst < 1)
        config_.burst = 1;
}

bool
QuotaRegistry::admit(const std::string &client_id, double now_s)
{
    if (config_.tokens_per_sec <= 0)
        return true;
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, fresh] = buckets_.try_emplace(client_id);
    Bucket &b = it->second;
    if (fresh) {
        b.tokens = config_.burst; // a new client gets its full burst
        b.last_s = now_s;
    }
    // Refill for elapsed time; a stepped/backwards clock refills nothing.
    const double dt = now_s - b.last_s;
    if (dt > 0)
        b.tokens = std::min(config_.burst,
                            b.tokens + dt * config_.tokens_per_sec);
    b.last_s = now_s;
    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        ++b.counts.admitted;
        return true;
    }
    ++b.counts.throttled;
    return false;
}

std::vector<std::pair<std::string, QuotaRegistry::ClientCounters>>
QuotaRegistry::snapshot() const
{
    std::vector<std::pair<std::string, ClientCounters>> out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out.reserve(buckets_.size());
        for (const auto &[id, bucket] : buckets_)
            out.emplace_back(id, bucket.counts);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

} // namespace gmx::serve
