/**
 * @file
 * Per-client admission quotas for the align server.
 *
 * A serving front door cannot let one chatty client starve the rest:
 * every client id gets a token bucket (burst capacity + steady refill
 * rate), and a request is admitted only if its client's bucket holds a
 * token. Exhausted buckets answer Overloaded immediately — cheaper for
 * both sides than queueing work that would be shed later.
 *
 * Time is passed in by the caller (monotonic seconds) rather than read
 * here, so tests drive the refill math deterministically and the server
 * pays one clock read per request, not one per layer.
 */

#ifndef GMX_SERVE_QUOTA_HH
#define GMX_SERVE_QUOTA_HH

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace gmx::serve {

/** Token-bucket parameters applied to every client id. */
struct QuotaConfig
{
    /** Steady-state requests/second per client (0 = quotas disabled). */
    double tokens_per_sec = 0;

    /** Bucket capacity: the burst a client may spend at once. */
    double burst = 64;
};

/**
 * Registry of per-client token buckets. Thread-safe; one instance per
 * AlignServer. Buckets are created on first sight of a client id and
 * start full (a new client gets its burst).
 */
class QuotaRegistry
{
  public:
    explicit QuotaRegistry(QuotaConfig config = {});

    /**
     * Take one token for @p client_id at time @p now_s (monotonic
     * seconds). True = admitted. Always true when quotas are disabled.
     */
    bool admit(const std::string &client_id, double now_s);

    /** Lifetime counters for one client. */
    struct ClientCounters
    {
        u64 admitted = 0;
        u64 throttled = 0;
    };

    /** Per-client counters, sorted by client id (stable snapshots). */
    std::vector<std::pair<std::string, ClientCounters>> snapshot() const;

    const QuotaConfig &config() const { return config_; }

  private:
    struct Bucket
    {
        double tokens = 0;
        double last_s = 0;
        ClientCounters counts;
    };

    QuotaConfig config_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, Bucket> buckets_;
};

} // namespace gmx::serve

#endif // GMX_SERVE_QUOTA_HH
